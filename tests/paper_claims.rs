//! The reproduction scoreboard: every quantitative claim of the paper we
//! reproduce, asserted as a test. EXPERIMENTS.md is the prose version of
//! this file.

use pasta_edge::cipher::counters::{
    encryption_op_count, fhe_pke_mul_estimate, REFERENCE_CPU_CYCLES_PASTA3,
    REFERENCE_CPU_CYCLES_PASTA4,
};
use pasta_edge::cipher::{derive_block_material, PastaParams, SecretKey};
use pasta_edge::hhe::link::{figure8, RiseReference, MAX_5G_BPS, MIN_5G_BPS};
use pasta_edge::hhe::Resolution;
use pasta_edge::hw::area::{estimate_fpga, table1_reference};
use pasta_edge::hw::asic::{estimate_asic, soc_area_mm2, TechNode};
use pasta_edge::hw::perf::{measure_row, Platform};
use pasta_edge::soc::firmware::encrypt_on_soc;

/// Tab. I: the DSP column is reproduced exactly; LUT/FF within 1%.
#[test]
fn table1_fpga_area() {
    for (params, reference) in table1_reference() {
        let est = estimate_fpga(&params);
        assert_eq!(est.dsps, reference.dsps, "{params} DSP");
        assert_eq!(est.brams, 0, "{params} BRAM");
        let lut_err = (est.luts as f64 - reference.luts as f64).abs() / reference.luts as f64;
        let ff_err = (est.ffs as f64 - reference.ffs as f64).abs() / reference.ffs as f64;
        assert!(
            lut_err < 0.01 && ff_err < 0.01,
            "{params}: {lut_err:.4}/{ff_err:.4}"
        );
    }
}

/// Tab. II: cycle counts within 5% of 4,955 / 1,591; µs columns follow.
#[test]
fn table2_cycles_and_latency() {
    for (params, cc, fpga_us, asic_us) in [
        (PastaParams::pasta3_17bit(), 4_955.0, 66.1, 4.96),
        (PastaParams::pasta4_17bit(), 1_591.0, 21.2, 1.59),
    ] {
        let row = measure_row(&params, 12).unwrap();
        assert!(
            (row.cycles - cc).abs() / cc < 0.05,
            "{params}: {} vs {cc}",
            row.cycles
        );
        assert!((row.fpga_us - fpga_us).abs() / fpga_us < 0.05);
        assert!((row.asic_us - asic_us).abs() / asic_us < 0.05);
    }
}

/// §I.B / Tab. II note: 857–3,439× fewer clock cycles than the CPU \[9\].
#[test]
fn cpu_cycle_reduction_range() {
    let p4 = measure_row(&PastaParams::pasta4_17bit(), 12).unwrap();
    let p3 = measure_row(&PastaParams::pasta3_17bit(), 12).unwrap();
    let low = REFERENCE_CPU_CYCLES_PASTA4 as f64 / p4.cycles;
    let high = REFERENCE_CPU_CYCLES_PASTA3 as f64 / p3.cycles;
    // Paper: 857 and 3,439. Our exact-rejection model sits within ±6%.
    assert!((low - 857.0).abs() / 857.0 < 0.06, "low end {low}");
    assert!((high - 3_439.0).abs() / 3_439.0 < 0.06, "high end {high}");
}

/// Abstract: "43–171× speedup compared to a CPU" (SoC at 100 MHz).
#[test]
fn cpu_wall_clock_speedup_range() {
    let p4 = measure_row(&PastaParams::pasta4_17bit(), 12).unwrap();
    let p3 = measure_row(&PastaParams::pasta3_17bit(), 12).unwrap();
    let s4 = p4.speedup_vs_cpu(Platform::RiscVSoc).unwrap();
    let s3 = p3.speedup_vs_cpu(Platform::RiscVSoc).unwrap();
    // 857/22 ≈ 39 and 3,439/22 ≈ 156 at the true 22× clock ratio; the
    // paper divides by ≈20×. Accept the bracket [35, 180].
    assert!(s4 > 35.0 && s4 < 50.0, "PASTA-4 speedup {s4}");
    assert!(s3 > 140.0 && s3 < 180.0, "PASTA-3 speedup {s3}");
}

/// Abstract / Tab. III: "97× speedup over prior public-key client
/// accelerators" — per element vs RISE on our 1 GHz ASIC.
#[test]
fn asic_speedup_97x() {
    let p4 = measure_row(&PastaParams::pasta4_17bit(), 12).unwrap();
    let ours = p4.per_element_us(Platform::Asic);
    let rise_per_element = 4.88;
    let speedup = rise_per_element / ours;
    assert!((speedup - 97.0).abs() < 8.0, "speedup {speedup}");
}

/// §IV.C ❷: 98–338× vs RISE/RACE standalone; 10–34× from the SoC.
#[test]
fn soc_and_asic_speedup_ranges() {
    let p4 = measure_row(&PastaParams::pasta4_17bit(), 12).unwrap();
    let ours_asic = p4.per_element_us(Platform::Asic);
    let key = SecretKey::from_seed(&PastaParams::pasta4_17bit(), b"claims");
    let soc = encrypt_on_soc(
        PastaParams::pasta4_17bit(),
        &key,
        1,
        &(0..32).collect::<Vec<_>>(),
    )
    .unwrap();
    let ours_soc = soc.accelerator_cycles as f64 / 100.0 / 32.0;
    let (rise, race) = (4.88, 16.9);
    assert!((rise / ours_asic) > 90.0 && (race / ours_asic) < 355.0);
    assert!((rise / ours_soc) > 8.5 && (race / ours_soc) < 36.0);
}

/// §IV.A ❷: ASIC anchors 0.24 mm² (28nm), 0.03 mm² (7nm), ≤1.2 W;
/// bit-width scaling ≈2.1× / ≈4.3×; §IV.B: PASTA-3 ≈3× PASTA-4 area.
#[test]
fn asic_area_claims() {
    let p4 = PastaParams::pasta4_17bit();
    assert!((estimate_asic(&p4, TechNode::Tsmc28).area_mm2 - 0.24).abs() < 1e-9);
    assert!((estimate_asic(&p4, TechNode::Asap7).area_mm2 - 0.03).abs() < 1e-9);
    assert!(estimate_asic(&p4, TechNode::Tsmc28).power_w <= 1.2);
    let r33 = estimate_asic(&PastaParams::pasta4_33bit(), TechNode::Tsmc28).area_mm2 / 0.24;
    let r54 = estimate_asic(&PastaParams::pasta4_54bit(), TechNode::Tsmc28).area_mm2 / 0.24;
    assert!((r33 - 2.1).abs() < 0.01 && (r54 - 4.3).abs() < 0.01);
    let p3_ratio = estimate_asic(&PastaParams::pasta3_17bit(), TechNode::Tsmc28).area_mm2 / 0.24;
    assert!((p3_ratio - 3.0).abs() < 0.01);
    // §IV.A ❸: 1.8 mm² peripheral, 4.6 mm² with the Ibex core.
    let (peri, total) = soc_area_mm2(&p4);
    assert!((peri - 1.8).abs() < 1e-9 && (total - 4.6).abs() < 1e-9);
}

/// §I.A: FHE PKE ≈2¹⁹ multiplications, PASTA-3 exactly 2¹⁸.
#[test]
fn section_1a_mul_counts() {
    assert_eq!(
        encryption_op_count(&PastaParams::pasta3_17bit()).mul,
        1 << 18
    );
    let fhe = fhe_pke_mul_estimate(13);
    assert!(fhe > (1 << 18) && fhe < (1 << 20));
}

/// §III.A: PASTA-3/-4 demand 2,048/640 XOF coefficients.
#[test]
fn section_3a_xof_demand() {
    assert_eq!(
        PastaParams::pasta3_17bit().xof_coefficients_per_block(),
        2_048
    );
    assert_eq!(
        PastaParams::pasta4_17bit().xof_coefficients_per_block(),
        640
    );
}

/// §IV.B: ≈60 (PASTA-4) and ≈186–196 (PASTA-3) Keccak permutations per
/// block under ≈2× rejection for p = 65537.
#[test]
fn section_4b_keccak_calls() {
    let mut perms4 = 0u64;
    let mut perms3 = 0u64;
    let n = 12;
    for counter in 0..n {
        perms4 +=
            derive_block_material(&PastaParams::pasta4_17bit(), 0xBEE, counter).keccak_permutations;
        perms3 +=
            derive_block_material(&PastaParams::pasta3_17bit(), 0xBEE, counter).keccak_permutations;
    }
    let avg4 = perms4 as f64 / n as f64;
    let avg3 = perms3 as f64 / n as f64;
    assert!((58.0..66.0).contains(&avg4), "PASTA-4 permutations {avg4}");
    // Paper estimates 186; the exact expectation is 196 (see DESIGN.md).
    assert!(
        (183.0..203.0).contains(&avg3),
        "PASTA-3 permutations {avg3}"
    );
}

/// §V / Fig. 8: ciphertext sizes (132 B vs 1.5 MB), RISE's 70 fps QQVGA
/// ceiling, and the VGA-at-minimum-bandwidth qualitative claim.
#[test]
fn section_5_video_claims() {
    let params = PastaParams::pasta4_33bit();
    assert_eq!(params.ciphertext_block_bytes(), 132);
    let rise = RiseReference;
    assert_eq!(rise.ciphertext_bytes(), 1_597_440);
    assert!((rise.frames_per_second(Resolution::Qqvga, MAX_5G_BPS) - 70.4).abs() < 1.0);
    assert!(rise.frames_per_second(Resolution::Vga, MIN_5G_BPS) < 1.0);
    let grid = figure8(params);
    for point in &grid {
        assert!(
            point.pasta_fps > point.rise_fps * 10.0,
            "HHE must dominate everywhere"
        );
    }
    let vga_min = grid
        .iter()
        .find(|p| p.resolution == Resolution::Vga && (p.bandwidth_bps - MIN_5G_BPS).abs() < 1.0)
        .unwrap();
    assert!(
        vga_min.pasta_fps > 9.0,
        "PASTA sustains VGA at minimum bandwidth"
    );
}

/// Tab. II discussion: PASTA-3 is ≈22% faster per element than PASTA-4 in
/// hardware, but PASTA-4 wins area-time — "preferred for client-side
/// devices".
#[test]
fn pasta3_vs_pasta4_tradeoff() {
    let p3 = measure_row(&PastaParams::pasta3_17bit(), 12).unwrap();
    let p4 = measure_row(&PastaParams::pasta4_17bit(), 12).unwrap();
    let per_el_gain = 1.0 - p3.per_element_us(Platform::Fpga) / p4.per_element_us(Platform::Fpga);
    assert!(
        (0.15..0.30).contains(&per_el_gain),
        "per-element gain {per_el_gain}"
    );
    let a3 = estimate_fpga(&PastaParams::pasta3_17bit()).luts as f64;
    let a4 = estimate_fpga(&PastaParams::pasta4_17bit()).luts as f64;
    let area_time_3 = a3 * p3.cycles / 128.0;
    let area_time_4 = a4 * p4.cycles / 32.0;
    assert!(
        area_time_3 > area_time_4,
        "PASTA-4 must win the area-time product per element"
    );
}
