//! End-to-end robustness tests for the resilient transciphering pipeline.
//!
//! These are the acceptance scenarios for the lossy-link work: a fixed
//! seed drives packet drops, bit flips, and an injected datapath fault
//! through the whole edge→cloud flow, and every frame that reaches the
//! cloud must still transcipher pixel-exact under real FHE.

use pasta_edge::fhe::BfvParams;
use pasta_edge::hw::fault::{FaultSpec, FaultTarget};
use pasta_edge::math::Modulus;
use pasta_edge::pipeline::{
    run_session, ChannelConfig, PipelineError, ScheduledFault, SessionConfig,
};

fn tiny_params() -> pasta_edge::cipher::PastaParams {
    pasta_edge::cipher::PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap()
}

/// The headline scenario: 20% packet drop, 1e-4 bit-error rate, and one
/// transient datapath fault — with real FHE transciphering verifying
/// every delivered frame, and the fault caught before leaving the edge.
#[test]
fn lossy_faulty_session_transciphers_exactly() {
    let cfg = SessionConfig {
        params: tiny_params(),
        frames: 4,
        target_fps: 20.0,
        pixels_override: Some(8),
        mtu: 256,
        channel: ChannelConfig {
            drop_prob: 0.2,
            bit_error_rate: 1e-4,
            reorder_prob: 0.05,
            seed: 5,
            ..ChannelConfig::default()
        },
        faults: vec![ScheduledFault {
            frame_id: 1,
            counter: 0,
            fault: FaultSpec {
                target: FaultTarget::MatrixSeed {
                    layer: 0,
                    left: true,
                    index: 2,
                },
                mask: 0x5B,
            },
        }],
        bfv: Some(BfvParams::test_tiny()),
        ..SessionConfig::default()
    };

    let report = run_session(&cfg).unwrap();

    // Every frame that made it through must transcipher pixel-exact —
    // corruption is rejected at the CRC, never silently transciphered.
    assert_eq!(report.verify_failures, 0, "{report:?}");
    assert_eq!(report.frames_delivered, 4, "{report:?}");
    assert_eq!(report.verified_frames, 4);

    // The injected fault was detected (and masked) on the device.
    assert_eq!(report.faults_detected, 1);
    assert_eq!(report.faults_escaped, 0);

    // The guard admitted the session and reported its budget.
    assert!(report.noise_budget_bits.unwrap() >= 12.0);

    // The lossy link actually did something: the ARQ had to work.
    assert!(
        report.drops + report.corrupt_rejected + report.acks_lost > 0,
        "the channel was supposed to misbehave: {report:?}"
    );

    // Deterministic replay: the same seed tells the same story.
    let again = run_session(&cfg).unwrap();
    assert_eq!(again.chunks_sent, report.chunks_sent);
    assert_eq!(again.retransmissions, report.retransmissions);
    assert!((again.elapsed_ms - report.elapsed_ms).abs() < 1e-9);
}

/// The noise-budget guard refuses an under-provisioned cloud with a
/// structured error that names the prime count that would work.
#[test]
fn noise_guard_names_the_fix() {
    let cfg = SessionConfig {
        params: tiny_params(),
        frames: 1,
        pixels_override: Some(4),
        mtu: 256,
        bfv: Some(BfvParams {
            prime_count: 2,
            ..BfvParams::test_tiny()
        }),
        ..SessionConfig::default()
    };
    let err = run_session(&cfg).unwrap_err();
    match &err {
        PipelineError::NoiseBudget {
            prime_count,
            suggested_prime_count,
            ..
        } => {
            assert_eq!(*prime_count, 2);
            let suggested = suggested_prime_count.expect("tiny circuit has a workable RNS size");
            assert!(suggested > 2);
            let msg = err.to_string();
            assert!(
                msg.contains(&format!("use at least {suggested}")),
                "error must name the fix: {msg}"
            );
        }
        other => panic!("expected NoiseBudget, got {other:?}"),
    }
}

/// Degradation instead of garbage: a link too slow for QVGA walks down
/// the resolution ladder and keeps delivering exact frames.
#[test]
fn slow_link_degrades_but_stays_exact() {
    let cfg = SessionConfig {
        params: pasta_edge::cipher::PastaParams::pasta4_17bit(),
        resolution: pasta_edge::hhe::link::Resolution::Qvga,
        frames: 5,
        target_fps: 20.0,
        channel: ChannelConfig {
            bandwidth_bps: 1.0e6,
            seed: 13,
            ..ChannelConfig::default()
        },
        ..SessionConfig::default()
    };
    let report = run_session(&cfg).unwrap();
    assert!(!report.downshifts.is_empty(), "{report:?}");
    assert_eq!(
        report.final_resolution,
        pasta_edge::hhe::link::Resolution::Qqvga
    );
    assert_eq!(report.verify_failures, 0);
    assert!(report.frames_delivered > 0);
}
