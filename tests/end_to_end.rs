//! Cross-crate integration: the same PASTA block computed by the software
//! cipher, the cycle-accurate hardware model, and the RISC-V SoC must be
//! identical — and the full HHE pipeline must round-trip through all of
//! them.

use pasta_edge::cipher::{PastaCipher, PastaParams, SecretKey};
use pasta_edge::fhe::{BfvContext, BfvParams};
use pasta_edge::hhe::{HheClient, HheServer};
use pasta_edge::hw::PastaProcessor;
use pasta_edge::math::Modulus;
use pasta_edge::soc::firmware::encrypt_on_soc;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Software cipher, hardware model and SoC agree bit-for-bit.
#[test]
fn three_implementations_agree() {
    for params in [PastaParams::pasta4_17bit(), PastaParams::pasta3_17bit()] {
        let key = SecretKey::from_seed(&params, b"tri");
        let message: Vec<u64> = (0..params.t() as u64)
            .map(|i| (i * 31 + 7) % 65_537)
            .collect();
        let nonce = 0x0123_4567_89AB_CDEF;

        let sw = PastaCipher::new(params, key.clone())
            .encrypt(nonce, &message)
            .unwrap();
        let hw = PastaProcessor::new(params)
            .encrypt_block(&key, nonce, 0, &message)
            .unwrap()
            .ciphertext
            .unwrap();
        let soc = encrypt_on_soc(params, &key, nonce, &message)
            .unwrap()
            .ciphertext;

        assert_eq!(
            sw.elements(),
            &hw[..],
            "software vs hardware model ({params})"
        );
        assert_eq!(sw.elements(), &soc[..], "software vs SoC ({params})");
    }
}

/// The agreement holds across many nonces and counters (multi-block).
#[test]
fn agreement_across_nonces_and_blocks() {
    let params = PastaParams::pasta4_17bit();
    let key = SecretKey::from_seed(&params, b"nonces");
    let cipher = PastaCipher::new(params, key.clone());
    let proc = PastaProcessor::new(params);
    for nonce in [0u128, 1, u128::MAX, 0xDEAD_BEEF_CAFE] {
        for counter in [0u64, 1, 99] {
            let sw = cipher.keystream_block(nonce, counter).unwrap();
            let hw = proc
                .keystream_block(&key, nonce, counter)
                .unwrap()
                .keystream;
            assert_eq!(sw, hw, "nonce={nonce:x} counter={counter}");
        }
    }
}

/// Full HHE workflow: PASTA-encrypt on the *hardware model*, transcipher
/// on the BFV server, decrypt with the FHE key — Fig. 1 end to end with
/// the accelerator in the loop.
#[test]
fn hhe_with_hardware_client() {
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(2718);
    let fhe_sk = ctx.generate_secret_key(&mut rng);
    let fhe_pk = ctx.generate_public_key(&fhe_sk, &mut rng);
    let relin = ctx.generate_relin_key(&fhe_sk, &mut rng);

    let client = HheClient::new(params, b"hw client");
    let server =
        HheServer::new(params, relin, client.provision_key(&ctx, &fhe_pk, &mut rng)).unwrap();

    // Encrypt on the modelled cryptoprocessor instead of in software.
    let message = vec![111u64, 222, 333, 444];
    let proc = PastaProcessor::new(params);
    let hw = proc
        .encrypt_block(client.cipher().key(), 0xFEED, 0, &message)
        .unwrap()
        .ciphertext
        .unwrap();
    // Wrap the hardware output as a PASTA ciphertext for the server.
    let pasta_ct = pasta_edge::cipher::Ciphertext::from_packed_bytes(
        &params,
        0xFEED,
        &pack(&params, &hw),
        hw.len(),
    )
    .unwrap();
    let fhe_cts = server.transcipher(&ctx, &pasta_ct).unwrap();
    assert_eq!(client.retrieve(&ctx, &fhe_sk, &fhe_cts), message);
}

/// Bit-packs elements in the cipher's wire format (⌈log2 p⌉ bits,
/// little-endian bit order) so the hardware output can cross the "wire"
/// to the server as a [`pasta_edge::cipher::Ciphertext`].
fn pack(params: &PastaParams, elements: &[u64]) -> Vec<u8> {
    let bits = params.modulus().bits() as usize;
    let mut out = vec![0u8; (elements.len() * bits).div_ceil(8)];
    for (i, &v) in elements.iter().enumerate() {
        for b in 0..bits {
            if (v >> b) & 1 == 1 {
                let pos = i * bits + b;
                out[pos / 8] |= 1 << (pos % 8);
            }
        }
    }
    out
}

/// Multi-block messages transcipher correctly after SoC encryption.
#[test]
fn soc_to_server_pipeline() {
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(31415);
    let fhe_sk = ctx.generate_secret_key(&mut rng);
    let fhe_pk = ctx.generate_public_key(&fhe_sk, &mut rng);
    let relin = ctx.generate_relin_key(&fhe_sk, &mut rng);

    let client = HheClient::new(params, b"soc pipeline");
    let server =
        HheServer::new(params, relin, client.provision_key(&ctx, &fhe_pk, &mut rng)).unwrap();

    let message = vec![9u64, 8, 7, 6, 5, 4]; // 1.5 blocks
    let soc_run = encrypt_on_soc(params, client.cipher().key(), 77, &message).unwrap();
    let sw_ct = client.encrypt(77, &message).unwrap();
    assert_eq!(soc_run.ciphertext, sw_ct.elements());

    let fhe_cts = server.transcipher(&ctx, &sw_ct).unwrap();
    assert_eq!(client.retrieve(&ctx, &fhe_sk, &fhe_cts), message);
}

/// Keys provisioned from the cipher's key material decrypt to it exactly.
#[test]
fn provisioned_key_is_faithful() {
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(161803);
    let fhe_sk = ctx.generate_secret_key(&mut rng);
    let fhe_pk = ctx.generate_public_key(&fhe_sk, &mut rng);
    let client = HheClient::new(params, b"faithful");
    let ek = client.provision_key(&ctx, &fhe_pk, &mut rng);
    let decrypted: Vec<u64> = ek
        .elements
        .iter()
        .map(|c| ctx.decrypt(&fhe_sk, c).scalar())
        .collect();
    assert_eq!(decrypted, client.cipher().key().expose_elements());
}
