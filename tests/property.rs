//! Workspace-level property tests: invariants that must hold across crate
//! boundaries for randomized inputs.

use pasta_edge::cipher::{PastaCipher, PastaParams, SecretKey};
use pasta_edge::hw::PastaProcessor;
use pasta_edge::math::{linalg::Matrix, Modulus, Zp};
use pasta_edge::pipeline::WireFrame;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hardware model == software cipher for random keys/nonces/counters.
    #[test]
    fn prop_hw_equals_sw(seed in proptest::collection::vec(any::<u8>(), 8),
                         nonce in any::<u64>(),
                         counter in 0u64..1000) {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, &seed);
        let sw = PastaCipher::new(params, key.clone())
            .keystream_block(u128::from(nonce), counter).unwrap();
        let hw = PastaProcessor::new(params)
            .keystream_block(&key, u128::from(nonce), counter).unwrap().keystream;
        prop_assert_eq!(sw, hw);
    }

    /// Encrypt/decrypt round-trips for random messages of random lengths.
    #[test]
    fn prop_roundtrip(seed in proptest::collection::vec(any::<u8>(), 4),
                      message in proptest::collection::vec(0u64..65_537, 0..100),
                      nonce in any::<u128>()) {
        let params = PastaParams::pasta4_17bit();
        let cipher = PastaCipher::new(params, SecretKey::from_seed(&params, &seed));
        let ct = cipher.encrypt(nonce, &message).unwrap();
        prop_assert_eq!(cipher.decrypt(&ct).unwrap(), message);
    }

    /// The wire format round-trips for random ciphertexts.
    #[test]
    fn prop_wire_format(message in proptest::collection::vec(0u64..65_537, 1..50),
                        nonce in any::<u128>()) {
        let params = PastaParams::pasta4_17bit();
        let cipher = PastaCipher::new(params, SecretKey::from_seed(&params, b"wire"));
        let ct = cipher.encrypt(nonce, &message).unwrap();
        let bytes = ct.to_packed_bytes(&params);
        let back = pasta_edge::cipher::Ciphertext::from_packed_bytes(
            &params, nonce, &bytes, message.len()).unwrap();
        prop_assert_eq!(back, ct);
    }

    /// Every matrix the real XOF generates is invertible (the Eq. 1
    /// guarantee that gives the affine layer its bijectivity).
    #[test]
    fn prop_generated_matrices_invertible(nonce in any::<u64>(), counter in 0u64..50) {
        let params = PastaParams::custom(8, 2, Modulus::PASTA_17_BIT).unwrap();
        let material = pasta_edge::cipher::derive_block_material(
            &params, u128::from(nonce), counter);
        let zp = Zp::new(Modulus::PASTA_17_BIT).unwrap();
        for layer in &material.layers {
            for seed in [&layer.seed_left, &layer.seed_right] {
                let m = pasta_edge::cipher::matrix::RowGenerator::new(zp, seed.clone())
                    .into_matrix();
                prop_assert!(m.is_invertible(&zp));
            }
        }
    }

    /// Distinct keys produce distinct keystreams (truncation collisions
    /// are information-theoretically negligible).
    #[test]
    fn prop_keystream_key_sensitivity(a in proptest::collection::vec(any::<u8>(), 4),
                                      b in proptest::collection::vec(any::<u8>(), 4)) {
        prop_assume!(a != b);
        let params = PastaParams::custom(8, 2, Modulus::PASTA_17_BIT).unwrap();
        let ka = SecretKey::from_seed(&params, &a);
        let kb = SecretKey::from_seed(&params, &b);
        prop_assume!(ka.expose_elements() != kb.expose_elements());
        let sa = PastaCipher::new(params, ka).keystream_block(1, 0).unwrap();
        let sb = PastaCipher::new(params, kb).keystream_block(1, 0).unwrap();
        prop_assert_ne!(sa, sb);
    }

    /// The pipeline wire protocol round-trips any payload exactly.
    #[test]
    fn prop_wire_frame_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..256),
                                 nonce in any::<u128>(),
                                 frame_id in any::<u32>(),
                                 counter_base in any::<u32>()) {
        let frame = WireFrame::data(nonce, frame_id, counter_base, payload);
        let decoded = WireFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Any single-bit flip anywhere in an encoded wire frame is detected:
    /// the decoder must reject it, never hand back different content.
    #[test]
    fn prop_wire_single_bit_flip_detected(payload in proptest::collection::vec(any::<u8>(), 0..128),
                                          nonce in any::<u128>(),
                                          frame_id in any::<u32>(),
                                          flip in any::<u32>()) {
        let frame = WireFrame::data(nonce, frame_id, 0, payload);
        let mut encoded = frame.encode();
        let bit = flip as usize % (encoded.len() * 8);
        encoded[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(WireFrame::decode(&encoded).is_err(),
                     "flip of bit {} went undetected", bit);
    }

    /// The full permutation (pre-truncation) is injective in the key for
    /// fixed public material: different states never collide through the
    /// invertible layers.
    #[test]
    fn prop_state_injectivity(x in proptest::collection::vec(0u64..65_537, 8),
                              y in proptest::collection::vec(0u64..65_537, 8)) {
        prop_assume!(x != y);
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        let material = pasta_edge::cipher::derive_block_material(&params, 42, 0);
        let tx = pasta_edge::cipher::permutation::permute_with_trace(&params, &x, &material)
            .unwrap();
        let ty = pasta_edge::cipher::permutation::permute_with_trace(&params, &y, &material)
            .unwrap();
        // Compare the full final state (both halves after the last
        // affine layer), which must differ because π is a bijection.
        prop_assert_ne!(tx.after_affine.last(), ty.after_affine.last());
    }
}

/// Deterministic cross-check: the rank function and the matrix generator
/// agree on hand-built singular inputs.
#[test]
fn singular_matrices_detected() {
    let zp = Zp::new(Modulus::PASTA_17_BIT).unwrap();
    // Duplicate rows are singular.
    let singular = Matrix::from_rows(3, 3, vec![1, 2, 3, 1, 2, 3, 4, 5, 6]).unwrap();
    assert!(!singular.is_invertible(&zp));
    assert_eq!(singular.rank(&zp), 2);
}
