//! Integration tests for the beyond-the-paper extensions: batched
//! transciphering, streaming encryption, fault countermeasures, the
//! noise-model parameter picker, and the seekable keystream — all
//! exercised across crate boundaries.

use pasta_edge::cipher::{Keystream, PastaCipher, PastaParams, SecretKey};
use pasta_edge::fhe::{suggest_bfv_params, BfvContext};
use pasta_edge::hhe::{provision_batched_key, BatchedHheServer, HheClient};
use pasta_edge::hw::fault::{Countermeasure, FaultSpec, FaultTarget};
use pasta_edge::hw::PastaProcessor;
use pasta_edge::math::Modulus;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Batched transciphering with parameters chosen *by the noise model*
/// decrypts a hardware-model-encrypted, multi-block message.
#[test]
fn noise_model_sized_batched_pipeline() {
    let pasta = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let bfv = suggest_bfv_params(4, 2, true, 256, 50).expect("model finds workable parameters");
    assert!(bfv.prime_count >= 4, "model must size the basis up");
    let ctx = BfvContext::new(bfv).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let sk = ctx.generate_secret_key(&mut rng);
    let pk = ctx.generate_public_key(&sk, &mut rng);
    let relin = ctx.generate_relin_key(&sk, &mut rng);

    let client = HheClient::new(pasta, b"ext");
    let ek = provision_batched_key(client.cipher().key().expose_elements(), &ctx, &pk, &mut rng)
        .unwrap();
    let server = BatchedHheServer::new(pasta, &ctx, relin, ek).unwrap();

    // Encrypt 3 blocks on the hardware model (streaming mode).
    let message: Vec<u64> = (0..12u64).map(|i| (i * 5_000 + 3) % 65_537).collect();
    let proc = PastaProcessor::new(pasta);
    let stream = proc
        .encrypt_stream(client.cipher().key(), 0xE07, &message, true)
        .unwrap();
    let pasta_ct = {
        // Same data through the software API (verified equal), to get a
        // Ciphertext value for the server.
        let sw = client.encrypt(0xE07, &message).unwrap();
        assert_eq!(stream.ciphertext, sw.elements());
        sw
    };
    let batch = server.transcipher_batched(&ctx, &pasta_ct).unwrap();
    let mut recovered = vec![0u64; message.len()];
    for position in 0..4 {
        let vals = server.decode_position(&ctx, &sk, &batch, position);
        for (s, &v) in vals.iter().enumerate() {
            let idx = s * 4 + position;
            if idx < recovered.len() {
                recovered[idx] = v;
            }
        }
    }
    assert_eq!(recovered, message);
}

/// The protected (fault-checked) pipeline composes with the SoC: a
/// detected fault must block the ciphertext from ever reaching the bus.
#[test]
fn fault_detection_blocks_corrupted_keystream() {
    let params = PastaParams::pasta4_17bit();
    let key = SecretKey::from_seed(&params, b"ext-fault");
    let fault = FaultSpec {
        target: FaultTarget::RoundConstant {
            layer: 4,
            left: true,
            index: 0,
        },
        mask: 0x3,
    };
    // Unprotected: the corrupted keystream leaks (exactly what SASTA
    // needs — one local fault in the final affine layer).
    let leaked = pasta_edge::hw::fault::protected_keystream(
        &params,
        &key,
        1,
        0,
        Some(&fault),
        Countermeasure::None,
    )
    .unwrap();
    assert!(leaked.is_some());
    // Full redundancy stops it at ~2x latency.
    let stopped = pasta_edge::hw::fault::protected_keystream(
        &params,
        &key,
        1,
        0,
        Some(&fault),
        Countermeasure::FullTemporalRedundancy,
    )
    .unwrap();
    assert_eq!(stopped, None);
    let overhead = Countermeasure::FullTemporalRedundancy
        .overhead_factor(&params, &key)
        .unwrap();
    assert!(overhead < 2.1);
}

/// The seekable keystream agrees with hardware-model block encryption at
/// arbitrary offsets.
#[test]
fn keystream_seek_matches_hardware_blocks() {
    let params = PastaParams::pasta4_17bit();
    let key = SecretKey::from_seed(&params, b"ext-ks");
    let proc = PastaProcessor::new(params);
    let mut ks = Keystream::new(params, key.clone(), 0x5EEC);
    for counter in [0u64, 3, 17] {
        ks.seek(counter * 32);
        let streamed = ks.take_elements(32).unwrap();
        let hw = proc
            .keystream_block(&key, 0x5EEC, counter)
            .unwrap()
            .keystream;
        assert_eq!(streamed, hw, "counter {counter}");
    }
}

/// Streaming-mode throughput feeds the link model: a VGA frame's worth
/// of blocks in overlap mode beats the serialized schedule.
#[test]
fn streaming_throughput_improvement() {
    let params = PastaParams::pasta4_17bit();
    let key = SecretKey::from_seed(&params, b"ext-stream");
    let cipher = PastaCipher::new(params, key.clone());
    let frame: Vec<u64> = (0..640u64).map(|i| i % 256).collect(); // 20 blocks
    let proc = PastaProcessor::new(params);
    let serial = proc.encrypt_stream(&key, 2, &frame, false).unwrap();
    let overlapped = proc.encrypt_stream(&key, 2, &frame, true).unwrap();
    assert_eq!(
        serial.ciphertext,
        cipher.encrypt(2, &frame).unwrap().elements()
    );
    let gain = 1.0 - overlapped.total_cycles as f64 / serial.total_cycles as f64;
    assert!(gain > 0.01 && gain < 0.10, "streaming gain {gain:.3}");
}
