//! Pinned known-answer vectors for this implementation.
//!
//! The DATE paper ships no test vectors and the reference artifact is not
//! available offline, so cross-implementation vectors cannot be pinned
//! (see DESIGN.md). These *self*-vectors freeze the behaviour of this
//! implementation instead: any refactor of the sampler, the matrix
//! generator, the layer order, or the XOF seeding that silently changes
//! the cipher will trip them. Hardware-model and SoC paths are asserted
//! against the same vectors, so all three implementations are pinned at
//! once.

use pasta_edge::cipher::{permute, PastaParams, SecretKey};
use pasta_edge::hw::PastaProcessor;
use pasta_edge::soc::firmware::encrypt_on_soc;

const NONCE: u128 = 0x0123_4567_89AB_CDEF;

fn counting_key(params: &PastaParams) -> SecretKey {
    SecretKey::from_elements(
        params,
        (0..params.state_size() as u64)
            .map(|i| i % 65_537)
            .collect(),
    )
    .expect("valid key")
}

/// PASTA-3, counting key, nonce 0x0123456789ABCDEF, counter 0.
const PASTA3_KS_HEAD: [u64; 8] = [39_769, 30_191, 6_948, 7_513, 351, 4_230, 46_128, 34_042];
/// PASTA-3, same key, nonce 1, counter 1.
const PASTA3_N1C1_HEAD: [u64; 8] = [15_874, 5_704, 3_302, 29_640, 43_173, 22_772, 64_621, 23_096];
/// PASTA-4, counting key, nonce 0x0123456789ABCDEF, counter 0.
const PASTA4_KS_HEAD: [u64; 8] = [4_847, 32_942, 43_396, 45_974, 9_804, 62_350, 56_452, 29_035];
/// PASTA-4, same key, nonce 1, counter 1.
const PASTA4_N1C1_HEAD: [u64; 8] = [
    38_424, 40_071, 42_648, 26_710, 14_826, 44_199, 32_938, 35_461,
];
/// Head of the key derived from seed "kat-seed" (SHAKE256 expansion).
const SEED_KEY_HEAD: [u64; 8] = [48_676, 19_551, 38_661, 17_600, 3_002, 28_620, 6_455, 20_526];

#[test]
fn software_keystream_vectors() {
    let p3 = PastaParams::pasta3_17bit();
    let k3 = counting_key(&p3);
    assert_eq!(
        permute(&p3, k3.expose_elements(), NONCE, 0).unwrap()[..8],
        PASTA3_KS_HEAD
    );
    assert_eq!(
        permute(&p3, k3.expose_elements(), 1, 1).unwrap()[..8],
        PASTA3_N1C1_HEAD
    );

    let p4 = PastaParams::pasta4_17bit();
    let k4 = counting_key(&p4);
    assert_eq!(
        permute(&p4, k4.expose_elements(), NONCE, 0).unwrap()[..8],
        PASTA4_KS_HEAD
    );
    assert_eq!(
        permute(&p4, k4.expose_elements(), 1, 1).unwrap()[..8],
        PASTA4_N1C1_HEAD
    );
}

#[test]
fn hardware_model_matches_vectors() {
    let p4 = PastaParams::pasta4_17bit();
    let k4 = counting_key(&p4);
    let hw = PastaProcessor::new(p4)
        .keystream_block(&k4, NONCE, 0)
        .unwrap();
    assert_eq!(hw.keystream[..8], PASTA4_KS_HEAD);
}

#[test]
fn soc_matches_vectors() {
    let p4 = PastaParams::pasta4_17bit();
    let k4 = counting_key(&p4);
    // Encrypt all-zeros: the ciphertext IS the keystream.
    let run = encrypt_on_soc(p4, &k4, NONCE, &vec![0u64; 32]).unwrap();
    assert_eq!(run.ciphertext[..8], PASTA4_KS_HEAD);
}

#[test]
fn seed_derived_key_vector() {
    let p4 = PastaParams::pasta4_17bit();
    let key = SecretKey::from_seed(&p4, b"kat-seed");
    assert_eq!(key.expose_elements()[..8], SEED_KEY_HEAD);
}

#[test]
fn shake_vectors_still_anchor_the_stack() {
    // The cipher vectors above depend transitively on SHAKE128; re-assert
    // the FIPS 202 anchor here so a Keccak regression is attributed
    // correctly rather than surfacing as a cipher mismatch.
    let out = pasta_edge::keccak::Shake128::digest(b"", 4);
    assert_eq!(out, vec![0x7F, 0x9C, 0x2B, 0xA4]);
}
