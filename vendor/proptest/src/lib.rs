//! Offline-vendored, dependency-free reimplementation of the subset of
//! `proptest` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! its external crates (see `vendor/`). This shim keeps the call-site
//! syntax of upstream proptest — `proptest! { fn t(x in strategy) {..} }`,
//! `any::<T>()`, `proptest::collection::vec`, `prop_assert*!`,
//! `prop_assume!`, `ProptestConfig::with_cases` — with simplified
//! semantics:
//!
//! - cases are generated from a deterministic per-test RNG (seeded from
//!   the test name), so failures reproduce across runs;
//! - there is **no shrinking**: a failing case panics with the standard
//!   assertion message and the case index;
//! - `prop_assume!` skips the current case instead of retrying it.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait: something that can generate values.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // u128 ranges are not covered by the vendored `rand::SampleRange`;
    // sample by rejection from the full-width generator.
    impl Strategy for core::ops::Range<u128> {
        type Value = u128;
        fn sample(&self, rng: &mut StdRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            self.start + rng.gen::<u128>() % span
        }
    }

    /// Constant strategy (upstream `Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the full-type-range strategy.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Fill, Rng};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Fill {}
    impl<T: Fill> Arbitrary for T {}

    /// Strategy over every value of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// Returns the strategy generating any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive-min/exclusive-max element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec<S::Value>` with a length in the range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy: `size` is an exact `usize` or a `usize` range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic per-test RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG for a named test (FNV-1a over the name), so a
    /// failure reproduces on re-run.
    #[must_use]
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Everything call sites need: traits, `any`, config, and the macros.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` for each of `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                // A closure so `prop_assume!` can skip the case via
                // `return`; assertion macros panic with the case index.
                let __case_fn = move || -> () { $body };
                __case_fn();
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -2i64..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..5),
                                    exact in crate::collection::vec(any::<u64>(), 7)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(exact.len(), 7);
        }

        #[test]
        fn assume_skips(v in 0u32..4) {
            prop_assume!(v != 2);
            prop_assert_ne!(v, 2);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
