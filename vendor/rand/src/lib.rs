//! Offline-vendored, dependency-free reimplementation of the subset of
//! the `rand` 0.8 API this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the three external crates it depends on as minimal local
//! implementations (see `vendor/`). This crate provides:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with the methods the
//!   workspace calls (`next_u64`, `fill_bytes`, `gen`, `gen_range`,
//!   `seed_from_u64`, `from_seed`);
//! - [`rngs::StdRng`], a deterministic xoshiro256++ generator (the
//!   *stream* differs from upstream `StdRng`, which is fine: the
//!   workspace only relies on seeded determinism, never on specific
//!   values);
//! - [`thread_rng`], seeded from the system clock.
//!
//! Not a cryptographic RNG — the workspace's security-relevant sampling
//! all flows through the SHAKE-based XOF in `pasta-keccak`; `rand` here
//! only drives tests, benches and simulation inputs.

#![forbid(unsafe_code)]

/// Core RNG interface: a source of pseudo-random words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the role upstream's
/// `Standard` distribution plays for `Rng::gen`).
pub trait Fill: Sized {
    /// Draws one uniformly random value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_fill_uint {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_fill_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Fill for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Fill for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Fill for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let offset = u128::random(rng) % span;
                (self.start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let offset = u128::random(rng) % span;
                (start as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Convenience extension over [`RngCore`] mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniformly random value of an inferred type.
    fn gen<T: Fill>(&mut self) -> T {
        T::random(self)
    }

    /// Uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a 64-bit seed (SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A seeded deterministic generator (xoshiro256++). Stream-compatible
    /// only with itself, which is all the workspace needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; perturb it the way
            // the reference implementation recommends.
            if s.iter().all(|&w| w == 0) {
                let mut sm = 0x853C_49E6_748F_EA9B;
                for word in &mut s {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    /// Handle to a process-global, time-seeded generator.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a generator seeded from the system clock (non-reproducible,
/// for the few call sites that want fresh entropy).
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(
        nanos ^ (std::process::id() as u64).rotate_left(32),
    ))
}

/// Minimal `rand::distributions` namespace (trait-object-free).
pub mod distributions {
    /// Marker for the uniform "every bit pattern equally likely"
    /// distribution; [`crate::Rng::gen`] uses [`crate::Fill`] directly.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s: i64 = rng.gen_range(-1..=1);
            assert!((-1..=1).contains(&s));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
