//! Offline-vendored, dependency-free reimplementation of the subset of
//! `criterion` this workspace's benches use.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! its external crates (see `vendor/`). This shim keeps the upstream
//! call-site API — `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, `Bencher::iter` — and
//! performs a simple wall-clock measurement (short warm-up, then a
//! timed run) printing one line per benchmark. No statistics, HTML
//! reports, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Declared per-iteration work, for derived throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `routine`: brief warm-up, then timed batches until the
    /// measurement window closes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and rough calibration: how many iterations fit 25 ms?
        let calibration = Instant::now();
        let mut calib_iters: u64 = 0;
        while calibration.elapsed() < Duration::from_millis(25) {
            black_box(routine());
            calib_iters += 1;
        }
        let target = calib_iters.clamp(1, 1_000_000);
        let timed = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.ns_per_iter = timed.elapsed().as_nanos() as f64 / target as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(path: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!("{path:<48} time: {:>12}", human_time(bencher.ns_per_iter));
    if let Some(tp) = throughput {
        let per_second = match tp {
            Throughput::Elements(n) => {
                format!("{:.2e} elem/s", n as f64 * 1e9 / bencher.ns_per_iter)
            }
            Throughput::Bytes(n) => format!("{:.2e} B/s", n as f64 * 1e9 / bencher.ns_per_iter),
        };
        line.push_str(&format!("  thrpt: {per_second}"));
    }
    println!("{line}");
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(id, &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let path = format!("{}/{}", self.name, id.into().label);
        report(&path, &bencher, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        let path = format!("{}/{}", self.name, id.into().label);
        report(&path, &bencher, self.throughput);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group function running each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| black_box(2 * 2))
        });
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }
}
