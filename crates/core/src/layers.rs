//! The PASTA round layers: affine, Mix, and the two S-boxes (paper §II.B).
//!
//! Every layer is invertible — a requirement for the permutation to be a
//! bijection of the key state — and the inverses are implemented here too
//! so the test suite can verify invertibility directly (the hardware only
//! ever computes the forward direction).

use crate::matrix::RowGenerator;
use pasta_math::Zp;

/// Affine layer `x ← M·x + rc` with the matrix streamed from its seed row.
///
/// # Panics
///
/// Panics if `state`, the generator dimension and `rc` disagree in length.
pub fn affine_streamed(zp: &Zp, gen: &mut RowGenerator, state: &mut [u64], rc: &[u64]) {
    assert_eq!(
        state.len(),
        gen.t(),
        "state length must equal matrix dimension"
    );
    assert_eq!(
        rc.len(),
        state.len(),
        "round-constant length must equal state length"
    );
    let mixed = crate::matrix::streamed_mat_vec(gen, state);
    for (s, (m, r)) in state.iter_mut().zip(mixed.iter().zip(rc.iter())) {
        *s = zp.add(*m, *r);
    }
}

/// Mix layer: `(X_L, X_R) ← (2·X_L + X_R, 2·X_R + X_L)`.
///
/// The hardware computes this with three additions (§III.D):
/// `s = X_L + X_R`, then `X_L + s` and `X_R + s`.
///
/// # Panics
///
/// Panics if the two halves differ in length.
// audit: secret(left, right)
pub fn mix(zp: &Zp, left: &mut [u64], right: &mut [u64]) {
    assert_eq!(
        left.len(),
        right.len(),
        "state halves must have equal length"
    );
    for (l, r) in left.iter_mut().zip(right.iter_mut()) {
        let s = zp.add(*l, *r); // X_L + X_R
        let new_l = zp.add(*l, s); // 2·X_L + X_R
        let new_r = zp.add(*r, s); // 2·X_R + X_L
        *l = new_l;
        *r = new_r;
    }
}

/// Inverse of [`mix`]: solves the 2×2 system with determinant 3.
///
/// # Panics
///
/// Panics if the halves differ in length or `p = 3` (where Mix is
/// singular; parameter validation forbids this).
pub fn mix_inverse(zp: &Zp, left: &mut [u64], right: &mut [u64]) {
    assert_eq!(
        left.len(),
        right.len(),
        "state halves must have equal length"
    );
    // audit: allow(panic, reason = "p > 3 is enforced by parameter validation, so 3 is invertible; documented in this fn's Panics section")
    let inv3 = zp.inv(3 % zp.p()).expect("p > 3 by parameter validation");
    for (l, r) in left.iter_mut().zip(right.iter_mut()) {
        // Inverse of [[2,1],[1,2]] is inv3 * [[2,-1],[-1,2]].
        let new_l = zp.mul(inv3, zp.sub(zp.add(*l, *l), *r));
        let new_r = zp.mul(inv3, zp.sub(zp.add(*r, *r), *l));
        *l = new_l;
        *r = new_r;
    }
}

/// Feistel S-box `S'` (all rounds but the last):
/// `y_0 = x_0`, `y_j = x_j + x_{j-1}²` on the *input* values.
///
/// One squaring and one addition per element (§III.D).
// audit: secret(state)
pub fn sbox_feistel(zp: &Zp, state: &mut [u64]) {
    let mut prev_sq = 0u64; // x_{-1}² treated as 0 for j = 0
    for x in state.iter_mut() {
        let this = *x;
        *x = zp.add(this, prev_sq);
        prev_sq = zp.square(this);
    }
}

/// Inverse of [`sbox_feistel`]: `x_0 = y_0`, `x_j = y_j − x_{j-1}²`
/// (sequential).
pub fn sbox_feistel_inverse(zp: &Zp, state: &mut [u64]) {
    let mut prev_sq = 0u64; // reconstructed x_{j-1}²
    for y in state.iter_mut() {
        let x = zp.sub(*y, prev_sq);
        *y = x;
        prev_sq = zp.square(x);
    }
}

/// Cube S-box `S` (final round): `y_j = x_j³`.
///
/// Two multiplications per element (§III.D). Invertible because
/// `gcd(3, p-1) = 1` for the PASTA moduli (`p ≡ 2 (mod 3)`).
// audit: secret(state)
pub fn sbox_cube(zp: &Zp, state: &mut [u64]) {
    for x in state.iter_mut() {
        *x = zp.cube(*x);
    }
}

/// Inverse of [`sbox_cube`]: `x = y^d` with `d = 3⁻¹ mod (p-1)`.
///
/// # Panics
///
/// Panics if `3 | p - 1` (the cube map is not a bijection there; the
/// PASTA moduli all satisfy `p ≡ 2 (mod 3)`).
pub fn sbox_cube_inverse(zp: &Zp, state: &mut [u64]) {
    // audit: allow(panic, reason = "gcd(3, p-1) = 1 for every validated PASTA modulus (p = 2 mod 3); documented in this fn's Panics section")
    let d = inv_exponent_mod(3, zp.p() - 1).expect("cube S-box requires gcd(3, p-1) = 1");
    for x in state.iter_mut() {
        *x = zp.pow(*x, d);
    }
}

/// Truncation: keep only the left half (paper §II.B).
#[must_use]
pub fn truncate(left: &[u64]) -> Vec<u64> {
    left.to_vec()
}

/// `e⁻¹ mod m` via the extended Euclidean algorithm, or `None` if
/// `gcd(e, m) ≠ 1`.
#[allow(clippy::many_single_char_names)] // textbook extended-Euclid names
fn inv_exponent_mod(e: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (i128::from(e), i128::from(m));
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    u64::try_from(old_s.rem_euclid(i128::from(m))).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RowGenerator;
    use pasta_math::{Modulus, Zp};
    use proptest::prelude::*;

    fn zp17() -> Zp {
        Zp::new(Modulus::PASTA_17_BIT).unwrap()
    }

    #[test]
    fn mix_roundtrip() {
        let zp = zp17();
        let mut l = vec![1u64, 65_536, 30_000, 0];
        let mut r = vec![9u64, 8, 7, 65_536];
        let (l0, r0) = (l.clone(), r.clone());
        mix(&zp, &mut l, &mut r);
        assert_ne!((l.clone(), r.clone()), (l0.clone(), r0.clone()));
        mix_inverse(&zp, &mut l, &mut r);
        assert_eq!((l, r), (l0, r0));
    }

    #[test]
    fn mix_matches_three_addition_schedule() {
        // §III.D: (i) s = X_R + X_L, (ii) X_R + s, (iii) X_L + s.
        let zp = zp17();
        let mut l = vec![123u64];
        let mut r = vec![456u64];
        mix(&zp, &mut l, &mut r);
        let s = zp.add(123, 456);
        assert_eq!(l[0], zp.add(123, s));
        assert_eq!(r[0], zp.add(456, s));
    }

    #[test]
    fn feistel_roundtrip() {
        let zp = zp17();
        let mut x = vec![0u64, 1, 2, 65_536, 40_000, 3];
        let x0 = x.clone();
        sbox_feistel(&zp, &mut x);
        sbox_feistel_inverse(&zp, &mut x);
        assert_eq!(x, x0);
    }

    #[test]
    fn feistel_uses_input_values() {
        // y_2 must use x_1², not the updated y_1².
        let zp = zp17();
        let mut x = vec![1u64, 2, 3];
        sbox_feistel(&zp, &mut x);
        assert_eq!(x, vec![1, zp.add(2, 1), zp.add(3, 4)]);
    }

    #[test]
    fn cube_roundtrip() {
        let zp = zp17();
        let mut x = vec![0u64, 1, 2, 65_536, 54_321];
        let x0 = x.clone();
        sbox_cube(&zp, &mut x);
        sbox_cube_inverse(&zp, &mut x);
        assert_eq!(x, x0);
    }

    #[test]
    fn cube_is_a_permutation_on_small_field() {
        // p = 5: gcd(3, 4) = 1, so cubing permutes F_5.
        let zp = Zp::new(Modulus::new(5).unwrap()).unwrap();
        let mut seen = [false; 5];
        for x in 0..5u64 {
            let mut v = vec![x];
            sbox_cube(&zp, &mut v);
            seen[usize::try_from(v[0]).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn affine_streamed_is_matrix_times_x_plus_rc() {
        let zp = zp17();
        let seed = vec![2u64, 3, 5, 7];
        let rc = vec![10u64, 20, 30, 40];
        let mut state = vec![1u64, 2, 3, 4];
        let expect = {
            let m = RowGenerator::new(zp, seed.clone()).into_matrix();
            let mx = m.mul_vec(&zp, &state).unwrap();
            pasta_math::linalg::vec_add(&zp, &mx, &rc)
        };
        affine_streamed(&zp, &mut RowGenerator::new(zp, seed), &mut state, &rc);
        assert_eq!(state, expect);
    }

    #[test]
    fn inv_exponent() {
        assert_eq!(inv_exponent_mod(3, 65_536), Some(43_691)); // 3·43691 = 131073 = 2·65536+1
        assert_eq!(inv_exponent_mod(2, 65_536), None);
        assert_eq!(inv_exponent_mod(3, 4), Some(3));
    }

    proptest! {
        #[test]
        fn prop_mix_invertible(l in proptest::collection::vec(0u64..65_537, 16),
                               r in proptest::collection::vec(0u64..65_537, 16)) {
            let zp = zp17();
            let (mut l2, mut r2) = (l.clone(), r.clone());
            mix(&zp, &mut l2, &mut r2);
            mix_inverse(&zp, &mut l2, &mut r2);
            prop_assert_eq!(l2, l);
            prop_assert_eq!(r2, r);
        }

        #[test]
        fn prop_sboxes_invertible(x in proptest::collection::vec(0u64..65_537, 32)) {
            let zp = zp17();
            let mut f = x.clone();
            sbox_feistel(&zp, &mut f);
            sbox_feistel_inverse(&zp, &mut f);
            prop_assert_eq!(&f, &x);
            let mut c = x.clone();
            sbox_cube(&zp, &mut c);
            sbox_cube_inverse(&zp, &mut c);
            prop_assert_eq!(&c, &x);
        }

        #[test]
        fn prop_cube_injective_pairs(a in 0u64..65_537, b in 0u64..65_537) {
            let zp = zp17();
            if a != b {
                prop_assert_ne!(zp.cube(a), zp.cube(b));
            }
        }
    }
}
