//! First-order arithmetic masking of the PASTA permutation.
//!
//! The paper's future scope (§VI) asks for the cost of side-channel
//! countermeasures on HHE ciphers vs. on public-key encryption. This
//! module implements the standard first-order countermeasure — additive
//! secret sharing over `F_p` — for the PASTA datapath:
//!
//! - the secret state `x` is split as `x = a + b (mod p)`; every
//!   intermediate value exists only as two shares;
//! - **linear layers are free**: the affine matrix multiplies each share
//!   independently (the round constant goes to one share), and Mix is
//!   linear too;
//! - the **S-boxes need masked multiplication gadgets**: a squaring
//!   `x² = a² + 2ab + b²` has the cross-term `2ab` re-shared with fresh
//!   randomness (ISW-style), costing 3 multiplications instead of 1; the
//!   cube's share-product costs 4.
//!
//! The punchline this module quantifies (see the `ablation_masking`
//! bench): because the cryptoprocessor is XOF-bound (§IV.B) and the XOF
//! processes only *public* material (nonce/counter-derived), first-order
//! masking costs ≈3× multiplier *area* for the S-box path but almost no
//! *latency* — an asymmetry unavailable to PKE accelerators, whose
//! polynomial arithmetic is all secret-dependent.

use crate::matrix::RowGenerator;
use crate::params::{PastaError, PastaParams};
use crate::permutation::BlockMaterial;
use pasta_math::Zp;

/// A first-order additively shared state: `value = a + b (mod p)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedState {
    /// First share.
    pub a: Vec<u64>,
    /// Second share.
    pub b: Vec<u64>,
}

impl SharedState {
    /// Splits `values` into two shares using the caller's randomness
    /// stream (one fresh element per value).
    ///
    /// # Panics
    ///
    /// Panics if the randomness callback yields non-canonical values.
    pub fn share(zp: &Zp, values: &[u64], mut fresh: impl FnMut() -> u64) -> Self {
        let mut a = Vec::with_capacity(values.len());
        let mut b = Vec::with_capacity(values.len());
        for &v in values {
            let r = fresh();
            assert!(r < zp.p(), "masking randomness must be canonical");
            a.push(r);
            b.push(zp.sub(v, r));
        }
        SharedState { a, b }
    }

    /// Recombines the shares.
    #[must_use]
    pub fn unmask(&self, zp: &Zp) -> Vec<u64> {
        self.a
            .iter()
            .zip(self.b.iter())
            .map(|(&x, &y)| zp.add(x, y))
            .collect()
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the state is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }
}

/// Operation counts of one masked permutation (for the overhead model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskedOpCount {
    /// Modular multiplications performed on shares.
    pub mul: u64,
    /// Modular additions performed on shares.
    pub add: u64,
    /// Fresh masking randomness consumed (field elements).
    pub randomness: u64,
}

/// Masked squaring: given `x = a + b`, returns shares of `x²`.
///
/// `x² = a² + 2ab + b²`; the cross term is re-shared with fresh `r`:
/// `y_a = a² + (2ab + r)`, `y_b = b² − r`. Three multiplications.
fn masked_square(
    zp: &Zp,
    a: u64,
    b: u64,
    fresh: &mut impl FnMut() -> u64,
    ops: &mut MaskedOpCount,
) -> (u64, u64) {
    let r = fresh();
    ops.randomness += 1;
    let a2 = zp.mul(a, a);
    let b2 = zp.mul(b, b);
    let cross = zp.mul(zp.add(a, a), b); // 2ab
    ops.mul += 3;
    ops.add += 4;
    (zp.add(a2, zp.add(cross, r)), zp.sub(b2, r))
}

/// Masked multiplication: shares of `x·y` from `x = (xa, xb)`,
/// `y = (ya, yb)`. Four multiplications (ISW n = 2).
fn masked_mul(
    zp: &Zp,
    (xa, xb): (u64, u64),
    (ya, yb): (u64, u64),
    fresh: &mut impl FnMut() -> u64,
    ops: &mut MaskedOpCount,
) -> (u64, u64) {
    let r = fresh();
    ops.randomness += 1;
    // z = xa·ya + xa·yb + xb·ya + xb·yb, re-shared around r.
    let t00 = zp.mul(xa, ya);
    let t01 = zp.mul(xa, yb);
    let t10 = zp.mul(xb, ya);
    let t11 = zp.mul(xb, yb);
    ops.mul += 4;
    ops.add += 4;
    (zp.add(t00, zp.add(t01, r)), zp.add(t11, zp.sub(t10, r)))
}

/// Runs the PASTA permutation on a shared key, never recombining.
///
/// Returns the shared keystream and the operation counts.
///
/// # Errors
///
/// Returns [`PastaError::InvalidKey`] if the shared state length is not
/// `2t`.
pub fn masked_permute(
    params: &PastaParams,
    shared_key: &SharedState,
    material: &BlockMaterial,
    mut fresh: impl FnMut() -> u64,
) -> Result<(SharedState, MaskedOpCount), PastaError> {
    let t = params.t();
    if shared_key.len() != params.state_size() {
        return Err(PastaError::InvalidKey {
            expected: params.state_size(),
            found: shared_key.len(),
        });
    }
    let zp = params.field();
    let mut ops = MaskedOpCount::default();
    let mut share_a = shared_key.a.clone();
    let mut share_b = shared_key.b.clone();
    let r = params.rounds();

    for (i, layer) in material.layers.iter().enumerate() {
        // Affine layer: matrices act share-wise (linear); the round
        // constant is added to share a only.
        for (seed, rc, offset) in [
            (&layer.seed_left, &layer.rc_left, 0usize),
            (&layer.seed_right, &layer.rc_right, t),
        ] {
            let a_half = crate::matrix::streamed_mat_vec(
                &mut RowGenerator::new(zp, seed.clone()),
                &share_a[offset..offset + t],
            );
            let b_half = crate::matrix::streamed_mat_vec(
                &mut RowGenerator::new(zp, seed.clone()),
                &share_b[offset..offset + t],
            );
            ops.mul += 4 * (t as u64) * (t as u64); // two matgens + two matmuls
            ops.add += 4 * (t as u64) * (t as u64);
            for j in 0..t {
                share_a[offset + j] = zp.add(a_half[j], rc[j]);
                share_b[offset + j] = b_half[j];
            }
            ops.add += t as u64;
        }
        if i < r {
            // Mix: linear, applied share-wise.
            for shares in [&mut share_a, &mut share_b] {
                let (left, right) = shares.split_at_mut(t);
                crate::layers::mix(&zp, left, right);
            }
            ops.add += 2 * 3 * t as u64;
            // S-box on the concatenated state.
            if i < r - 1 {
                // Feistel: y_j = x_j + x_{j-1}² — masked square + share-wise add.
                let prev_a = share_a.clone();
                let prev_b = share_b.clone();
                for j in (1..2 * t).rev() {
                    let (sq_a, sq_b) =
                        masked_square(&zp, prev_a[j - 1], prev_b[j - 1], &mut fresh, &mut ops);
                    share_a[j] = zp.add(share_a[j], sq_a);
                    share_b[j] = zp.add(share_b[j], sq_b);
                    ops.add += 2;
                }
            } else {
                // Cube: x³ = x²·x with masked square then masked mul.
                for j in 0..2 * t {
                    let (sq_a, sq_b) =
                        masked_square(&zp, share_a[j], share_b[j], &mut fresh, &mut ops);
                    let (c_a, c_b) = masked_mul(
                        &zp,
                        (sq_a, sq_b),
                        (share_a[j], share_b[j]),
                        &mut fresh,
                        &mut ops,
                    );
                    share_a[j] = c_a;
                    share_b[j] = c_b;
                }
            }
        }
    }
    let ks = SharedState {
        a: share_a[..t].to_vec(),
        b: share_b[..t].to_vec(),
    };
    Ok((ks, ops))
}

/// The multiplier-count overhead of first-order masking on the
/// secret-dependent datapath (S-box path only — the affine path doubles
/// instead, and the XOF needs no protection at all since its inputs are
/// public).
#[must_use]
pub fn sbox_multiplier_overhead(params: &PastaParams) -> f64 {
    let r = params.rounds() as u64;
    let t2 = 2 * params.t() as u64;
    // Unmasked: Feistel rounds cost 1 mul per element, cube 2.
    let unmasked = (r - 1) * (t2 - 1) + 2 * t2;
    // Masked: squares cost 3, cube = square (3) + mul (4) = 7.
    let masked = 3 * (r - 1) * (t2 - 1) + 7 * t2;
    masked as f64 / unmasked as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permutation::{derive_block_material, permute};
    use crate::SecretKey;
    use pasta_math::Modulus;

    /// A deterministic randomness stream for tests.
    fn rng_stream(seed: u64, p: u64) -> impl FnMut() -> u64 {
        let mut x = seed;
        move || {
            // SplitMix64, reduced into the field.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % p
        }
    }

    #[test]
    fn share_unmask_roundtrip() {
        let zp = Zp::new(Modulus::PASTA_17_BIT).unwrap();
        let values: Vec<u64> = (0..16u64).map(|i| i * 4_099 % 65_537).collect();
        let shared = SharedState::share(&zp, &values, rng_stream(1, zp.p()));
        assert_eq!(shared.unmask(&zp), values);
        assert_ne!(shared.a, values, "share a must not equal the secret");
    }

    #[test]
    fn masked_gadgets_correct() {
        let zp = Zp::new(Modulus::PASTA_17_BIT).unwrap();
        let mut fresh = rng_stream(7, zp.p());
        let mut ops = MaskedOpCount::default();
        for x in [0u64, 1, 2, 65_536, 12_345] {
            let r = fresh();
            let (a, b) = (r, zp.sub(x, r));
            let (sa, sb) = masked_square(&zp, a, b, &mut fresh, &mut ops);
            assert_eq!(zp.add(sa, sb), zp.square(x), "square of {x}");
            let (ma, mb) = masked_mul(&zp, (sa, sb), (a, b), &mut fresh, &mut ops);
            assert_eq!(zp.add(ma, mb), zp.cube(x), "cube of {x}");
        }
        assert!(ops.mul > 0 && ops.randomness > 0);
    }

    #[test]
    fn masked_permutation_equals_unmasked() {
        for params in [
            PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap(),
            PastaParams::pasta4_17bit(),
        ] {
            let key = SecretKey::from_seed(&params, b"mask");
            let zp = params.field();
            let material = derive_block_material(&params, 0xAB, 0);
            let shared = SharedState::share(&zp, key.expose_elements(), rng_stream(3, zp.p()));
            let (masked_ks, ops) =
                masked_permute(&params, &shared, &material, rng_stream(4, zp.p())).unwrap();
            let expect = permute(&params, key.expose_elements(), 0xAB, 0).unwrap();
            assert_eq!(masked_ks.unmask(&zp), expect, "{params}");
            assert!(ops.randomness > 0, "S-boxes must consume fresh randomness");
        }
    }

    #[test]
    fn different_maskings_same_result() {
        // The unmasked output must not depend on the masking randomness.
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        let key = SecretKey::from_seed(&params, b"mask2");
        let zp = params.field();
        let material = derive_block_material(&params, 5, 0);
        let mut results = Vec::new();
        for seed in [10u64, 20, 30] {
            let shared = SharedState::share(&zp, key.expose_elements(), rng_stream(seed, zp.p()));
            let (ks, _) =
                masked_permute(&params, &shared, &material, rng_stream(seed + 1, zp.p())).unwrap();
            results.push(ks.unmask(&zp));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn shares_differ_across_maskings() {
        // While the recombined value is fixed, the individual shares must
        // change with the randomness (the whole point of masking).
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        let key = SecretKey::from_seed(&params, b"mask3");
        let zp = params.field();
        let material = derive_block_material(&params, 6, 0);
        let run = |seed: u64| {
            let shared = SharedState::share(&zp, key.expose_elements(), rng_stream(seed, zp.p()));
            masked_permute(&params, &shared, &material, rng_stream(seed * 7, zp.p()))
                .unwrap()
                .0
        };
        let x = run(100);
        let y = run(200);
        assert_ne!(x.a, y.a, "share a must vary with the masking randomness");
        assert_eq!(x.unmask(&zp), y.unmask(&zp));
    }

    #[test]
    fn overhead_model() {
        // S-box multiplier overhead ≈ 3–3.5× for PASTA-4 — the number to
        // weigh against a PKE accelerator masking its entire NTT datapath.
        let o = sbox_multiplier_overhead(&PastaParams::pasta4_17bit());
        assert!((2.8..3.6).contains(&o), "overhead {o}");
        let wrong_key = SharedState {
            a: vec![0; 3],
            b: vec![0; 3],
        };
        let params = PastaParams::pasta4_17bit();
        let material = derive_block_material(&params, 0, 0);
        assert!(matches!(
            masked_permute(&params, &wrong_key, &material, || 0),
            Err(PastaError::InvalidKey { .. })
        ));
    }
}
