//! Rejection sampling of field elements from the SHAKE128 XOF.
//!
//! The XOF unit produces one 64-bit word per clock cycle; a rejection
//! sampler masks it to `⌈log2 p⌉` bits and discards values `≥ p`
//! (paper §III.A). For `p = 65537` the acceptance rate is ≈0.5, which is
//! why the paper's Keccak budget doubles from the ideal 31 permutations to
//! ≈60 for PASTA-4 (§IV.B).
//!
//! The sampler here is shared by the software cipher and by the
//! cycle-accurate hardware model (which feeds it the same words in the
//! same order), guaranteeing keystream equality between the two.

use crate::params::PastaParams;
use pasta_keccak::{Shake128, XofReader};

/// Statistics of one sampling session, feeding the §IV.B analysis bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Raw 64-bit words drawn from the XOF.
    pub words_drawn: u64,
    /// Samples accepted (returned to the caller).
    pub accepted: u64,
    /// Samples rejected by the `< p` test.
    pub rejected: u64,
}

impl SamplerStats {
    /// Observed acceptance rate (`accepted / words_drawn`).
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        if self.words_drawn == 0 {
            return 0.0;
        }
        self.accepted as f64 / self.words_drawn as f64
    }
}

/// A rejection sampler over a SHAKE128 stream seeded with
/// `nonce ‖ counter`.
///
/// One instance corresponds to one block of the PASTA keystream: the
/// reference design re-seeds the XOF per block so blocks are independently
/// addressable (the stream-cipher `ctr` input of Fig. 2).
///
/// # Examples
///
/// ```
/// use pasta_core::{PastaParams, sampler::XofSampler};
/// let params = PastaParams::pasta4_17bit();
/// let mut s = XofSampler::for_block(&params, 42, 0);
/// let x = s.next_accepted();
/// assert!(x < params.modulus().value());
/// ```
#[derive(Debug, Clone)]
pub struct XofSampler {
    reader: XofReader,
    modulus: u64,
    mask: u64,
    stats: SamplerStats,
}

impl XofSampler {
    /// Seeds a sampler for block `counter` under `nonce`.
    ///
    /// The seeding convention (SHAKE128 over little-endian
    /// `nonce: u128 ‖ counter: u64`) is fixed by this crate; the paper's
    /// artifact does not pin one, so equality with other implementations
    /// is not expected — equality between the software cipher and the
    /// hardware model is (both use this sampler).
    #[must_use]
    pub fn for_block(params: &PastaParams, nonce: u128, counter: u64) -> Self {
        let mut xof = Shake128::new();
        xof.absorb(&nonce.to_le_bytes());
        xof.absorb(&counter.to_le_bytes());
        let modulus = params.modulus().value();
        let bits = params.modulus().bits();
        XofSampler {
            reader: xof.finalize(),
            modulus,
            mask: if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            },
            stats: SamplerStats::default(),
        }
    }

    /// Draws the next accepted field element in `[0, p)`.
    #[must_use]
    pub fn next_accepted(&mut self) -> u64 {
        loop {
            let word = self.reader.next_u64();
            self.stats.words_drawn += 1;
            let candidate = word & self.mask;
            if candidate < self.modulus {
                self.stats.accepted += 1;
                return candidate;
            }
            self.stats.rejected += 1;
        }
    }

    /// Draws the next accepted *nonzero* element in `[1, p)`.
    ///
    /// The first element of each matrix seed row must be nonzero for the
    /// sequential construction (Eq. 1) to yield an invertible matrix.
    #[must_use]
    pub fn next_nonzero_element(&mut self) -> u64 {
        loop {
            let x = self.next_accepted();
            if x != 0 {
                return x;
            }
        }
    }

    /// Draws a vector of `n` accepted elements.
    #[must_use]
    pub fn next_vector(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_accepted()).collect()
    }

    /// Draws a matrix seed row: first element nonzero, remaining uniform.
    #[must_use]
    pub fn next_matrix_seed(&mut self, t: usize) -> Vec<u64> {
        let mut row = Vec::with_capacity(t);
        row.push(self.next_nonzero_element());
        for _ in 1..t {
            row.push(self.next_accepted());
        }
        row
    }

    /// Sampling statistics so far.
    #[must_use]
    pub fn stats(&self) -> SamplerStats {
        self.stats
    }

    /// Keccak permutations executed so far (absorb + squeeze).
    #[must_use]
    pub fn permutations(&self) -> u64 {
        self.reader.permutations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PastaParams;

    #[test]
    fn samples_are_canonical() {
        let params = PastaParams::pasta4_17bit();
        let mut s = XofSampler::for_block(&params, 1, 2);
        for _ in 0..5_000 {
            assert!(s.next_accepted() < params.modulus().value());
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let params = PastaParams::pasta4_17bit();
        let a: Vec<u64> = XofSampler::for_block(&params, 7, 3).next_vector(100);
        let b: Vec<u64> = XofSampler::for_block(&params, 7, 3).next_vector(100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_nonce_or_counter_changes_stream() {
        let params = PastaParams::pasta4_17bit();
        let base = XofSampler::for_block(&params, 7, 3).next_vector(64);
        assert_ne!(XofSampler::for_block(&params, 8, 3).next_vector(64), base);
        assert_ne!(XofSampler::for_block(&params, 7, 4).next_vector(64), base);
    }

    #[test]
    fn acceptance_rate_near_half_for_65537() {
        // §IV.B: "we have a high rate of rejection sampling (≈2×) for the
        // stated prime 65,537".
        let params = PastaParams::pasta4_17bit();
        let mut s = XofSampler::for_block(&params, 99, 0);
        let _ = s.next_vector(20_000);
        let rate = s.stats().acceptance_rate();
        assert!((rate - 0.5).abs() < 0.02, "observed acceptance {rate}");
    }

    #[test]
    fn acceptance_rate_near_one_for_33bit_prime() {
        // 2^33 - 2^20 + 1 fills almost the whole 33-bit range.
        let params = PastaParams::pasta4_33bit();
        let mut s = XofSampler::for_block(&params, 99, 0);
        let _ = s.next_vector(20_000);
        assert!(s.stats().acceptance_rate() > 0.999);
    }

    #[test]
    fn matrix_seed_first_element_nonzero() {
        let params = PastaParams::pasta4_17bit();
        let mut s = XofSampler::for_block(&params, 0, 0);
        for _ in 0..50 {
            let seed = s.next_matrix_seed(32);
            assert_eq!(seed.len(), 32);
            assert_ne!(seed[0], 0);
        }
    }

    #[test]
    fn stats_add_up() {
        let params = PastaParams::pasta4_17bit();
        let mut s = XofSampler::for_block(&params, 5, 5);
        let _ = s.next_vector(1_000);
        let st = s.stats();
        assert_eq!(st.accepted, 1_000);
        assert_eq!(st.words_drawn, st.accepted + st.rejected);
    }

    #[test]
    fn samples_look_uniform() {
        // Chi-square-ish sanity: bucket 17-bit samples into 16 buckets.
        let params = PastaParams::pasta4_17bit();
        let mut s = XofSampler::for_block(&params, 1234, 0);
        let n = 64_000;
        let mut buckets = [0u64; 16];
        for _ in 0..n {
            let x = s.next_accepted();
            buckets[(x / 4_097).min(15) as usize] += 1;
        }
        let expect = f64::from(n) / 16.0;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as f64 - expect).abs() / expect;
            assert!(dev < 0.10, "bucket {i} deviates {dev}");
        }
    }
}
