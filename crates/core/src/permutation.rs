//! The PASTA permutation π (paper Fig. 2, §II.B).
//!
//! The permutation maps the secret key `K ∈ F_p^{2t}` to a keystream block
//! `KS ∈ F_p^t` under public per-block randomness derived from
//! `(nonce, counter)`:
//!
//! ```text
//! (X_L, X_R) ← K
//! for i in 0..r:
//!     X_L ← M_{i,L}·X_L + RC_{i,L};  X_R ← M_{i,R}·X_R + RC_{i,R}   (A_i)
//!     (X_L, X_R) ← (2X_L + X_R, 2X_R + X_L)                         (Mix)
//!     state ← S'(state)   for i < r-1,   S(state) for i = r-1       (S-box)
//! X_L ← M_{r,L}·X_L + RC_{r,L};  X_R ← M_{r,R}·X_R + RC_{r,R}       (A_r)
//! KS ← X_L                                                          (Trunc)
//! ```
//!
//! so there are `r + 1` affine layers, each with *independent* matrices
//! and round constants for the two halves — four XOF vectors per layer, in
//! the order `(seed_L, seed_R, rc_L, rc_R)` matching the Fig. 3 schedule
//! (`V_0 → M_0`, `V_1 → M_1`, `V_2/V_3 → VecAdd`).
//!
//! The Feistel S-box chains across the concatenated state `X_L ‖ X_R`
//! (all squares taken of *input* values, so the hardware can evaluate all
//! lanes in parallel).

use crate::layers;
use crate::matrix::RowGenerator;
use crate::params::{PastaError, PastaParams};
use crate::sampler::{SamplerStats, XofSampler};

/// The public per-block randomness of one affine layer, as drawn from the
/// XOF (used by the homomorphic evaluator, which must recompute exactly
/// the same material on the server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineMaterial {
    /// Seed row of the left-half matrix (`α_0 ≠ 0`).
    pub seed_left: Vec<u64>,
    /// Seed row of the right-half matrix.
    pub seed_right: Vec<u64>,
    /// Round constant added to the left half.
    pub rc_left: Vec<u64>,
    /// Round constant added to the right half.
    pub rc_right: Vec<u64>,
}

/// All public randomness of one block: `r + 1` affine layers' material.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMaterial {
    /// Per-affine-layer material, index `0..=r`.
    pub layers: Vec<AffineMaterial>,
    /// Rejection-sampling statistics for the block.
    pub stats: SamplerStats,
    /// Keccak permutations consumed for the block.
    pub keccak_permutations: u64,
}

/// Expands the XOF for `(nonce, counter)` into the full block material.
///
/// This is *public* data (paper Fig. 2: everything outside the box is
/// public): both the client and the server derive it identically.
#[must_use]
pub fn derive_block_material(params: &PastaParams, nonce: u128, counter: u64) -> BlockMaterial {
    let t = params.t();
    let mut sampler = XofSampler::for_block(params, nonce, counter);
    let layers = (0..params.affine_layers())
        .map(|_| AffineMaterial {
            seed_left: sampler.next_matrix_seed(t),
            seed_right: sampler.next_matrix_seed(t),
            rc_left: sampler.next_vector(t),
            rc_right: sampler.next_vector(t),
        })
        .collect();
    BlockMaterial {
        layers,
        stats: sampler.stats(),
        keccak_permutations: sampler.permutations(),
    }
}

/// A snapshot of the state after each layer, for cross-checking the
/// hardware datapath against the software reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationTrace {
    /// State (`X_L ‖ X_R`) after each affine layer, index `0..=r`.
    pub after_affine: Vec<Vec<u64>>,
    /// State after each Mix, index `0..r`.
    pub after_mix: Vec<Vec<u64>>,
    /// State after each S-box, index `0..r`.
    pub after_sbox: Vec<Vec<u64>>,
    /// The final truncated keystream block.
    pub keystream: Vec<u64>,
}

/// Applies π to `key` under the given block material, recording a trace.
///
/// # Errors
///
/// Returns [`PastaError::InvalidKey`] if the key length is not `2t`, or
/// [`PastaError::ElementOutOfRange`] if any key element is `≥ p`.
// audit: secret(key)
pub fn permute_with_trace(
    params: &PastaParams,
    key: &[u64],
    material: &BlockMaterial,
) -> Result<PermutationTrace, PastaError> {
    let t = params.t();
    // audit: allow(secret-branch, reason = "one-time import validation on the key length, independent of element values")
    if key.len() != params.state_size() {
        return Err(PastaError::InvalidKey {
            expected: params.state_size(),
            found: key.len(),
        });
    }
    let zp = params.field();
    // audit: allow(secret-branch, reason = "one-time canonicality check at key import, outside the per-block hot path; rejects malformed keys before any keystream exists")
    if let Some(&bad) = key.iter().find(|&&x| x >= zp.p()) {
        return Err(PastaError::ElementOutOfRange(bad));
    }
    debug_assert_eq!(material.layers.len(), params.affine_layers());

    // audit: secret
    let mut left = key[..t].to_vec();
    // audit: secret
    let mut right = key[t..].to_vec();
    let r = params.rounds();
    let mut trace = PermutationTrace {
        after_affine: Vec::with_capacity(r + 1),
        after_mix: Vec::with_capacity(r),
        after_sbox: Vec::with_capacity(r),
        keystream: Vec::new(),
    };

    for (i, layer) in material.layers.iter().enumerate() {
        layers::affine_streamed(
            &zp,
            &mut RowGenerator::new(zp, layer.seed_left.clone()),
            &mut left,
            &layer.rc_left,
        );
        layers::affine_streamed(
            &zp,
            &mut RowGenerator::new(zp, layer.seed_right.clone()),
            &mut right,
            &layer.rc_right,
        );
        trace.after_affine.push(concat(&left, &right));
        if i < r {
            layers::mix(&zp, &mut left, &mut right);
            trace.after_mix.push(concat(&left, &right));
            let mut full = concat(&left, &right);
            if i < r - 1 {
                layers::sbox_feistel(&zp, &mut full);
            } else {
                layers::sbox_cube(&zp, &mut full);
            }
            left.copy_from_slice(&full[..t]);
            right.copy_from_slice(&full[t..]);
            trace.after_sbox.push(full);
        }
    }
    trace.keystream = layers::truncate(&left);
    Ok(trace)
}

/// Applies π to `key` for `(nonce, counter)` and returns the keystream
/// block `KS ∈ F_p^t`.
///
/// # Errors
///
/// Same conditions as [`permute_with_trace`].
///
/// # Examples
///
/// ```
/// use pasta_core::{PastaParams, permutation::permute};
/// let params = PastaParams::pasta4_17bit();
/// let key = vec![1u64; params.state_size()];
/// let ks = permute(&params, &key, 123, 0)?;
/// assert_eq!(ks.len(), params.t());
/// # Ok::<(), pasta_core::PastaError>(())
/// ```
// audit: secret(key)
pub fn permute(
    params: &PastaParams,
    key: &[u64],
    nonce: u128,
    counter: u64,
) -> Result<Vec<u64>, PastaError> {
    let material = derive_block_material(params, nonce, counter);
    Ok(permute_with_trace(params, key, &material)?.keystream)
}

fn concat(left: &[u64], right: &[u64]) -> Vec<u64> {
    let mut v = Vec::with_capacity(left.len() + right.len());
    v.extend_from_slice(left);
    v.extend_from_slice(right);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PastaParams;
    use pasta_math::Modulus;

    fn small_params() -> PastaParams {
        PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap()
    }

    #[test]
    fn material_has_expected_shape() {
        let params = PastaParams::pasta4_17bit();
        let m = derive_block_material(&params, 5, 9);
        assert_eq!(m.layers.len(), 5);
        for layer in &m.layers {
            assert_eq!(layer.seed_left.len(), 32);
            assert_eq!(layer.seed_right.len(), 32);
            assert_eq!(layer.rc_left.len(), 32);
            assert_eq!(layer.rc_right.len(), 32);
            assert_ne!(layer.seed_left[0], 0);
            assert_ne!(layer.seed_right[0], 0);
        }
        // PASTA-4 needs 640 accepted coefficients (§III.A); the nonzero
        // retry for matrix seeds may very rarely consume a couple more.
        assert!(
            (640..=644).contains(&m.stats.accepted),
            "accepted = {}",
            m.stats.accepted
        );
    }

    #[test]
    fn keystream_depends_on_all_inputs() {
        let params = small_params();
        let key = vec![3u64; 8];
        let base = permute(&params, &key, 1, 0).unwrap();
        assert_ne!(
            permute(&params, &key, 2, 0).unwrap(),
            base,
            "nonce must matter"
        );
        assert_ne!(
            permute(&params, &key, 1, 1).unwrap(),
            base,
            "counter must matter"
        );
        let mut key2 = key.clone();
        key2[0] = 4;
        assert_ne!(
            permute(&params, &key2, 1, 0).unwrap(),
            base,
            "key must matter"
        );
    }

    #[test]
    fn permutation_is_deterministic() {
        let params = PastaParams::pasta4_17bit();
        let key: Vec<u64> = (0..64).map(|i| i * 1_000 % 65_537).collect();
        assert_eq!(
            permute(&params, &key, 42, 7).unwrap(),
            permute(&params, &key, 42, 7).unwrap()
        );
    }

    #[test]
    fn trace_records_every_layer() {
        let params = small_params();
        let key = vec![1u64; 8];
        let material = derive_block_material(&params, 9, 9);
        let trace = permute_with_trace(&params, &key, &material).unwrap();
        assert_eq!(trace.after_affine.len(), 3); // r + 1 = 3
        assert_eq!(trace.after_mix.len(), 2);
        assert_eq!(trace.after_sbox.len(), 2);
        assert_eq!(trace.keystream.len(), 4);
        // The keystream is the left half of the final affine output.
        assert_eq!(trace.keystream[..], trace.after_affine[2][..4]);
    }

    #[test]
    fn bad_key_rejected() {
        let params = small_params();
        assert_eq!(
            permute(&params, &[1, 2, 3], 0, 0).unwrap_err(),
            PastaError::InvalidKey {
                expected: 8,
                found: 3
            }
        );
        let mut key = vec![0u64; 8];
        key[5] = 65_537;
        assert_eq!(
            permute(&params, &key, 0, 0).unwrap_err(),
            PastaError::ElementOutOfRange(65_537)
        );
    }

    #[test]
    fn distinct_keys_distinct_keystreams_injective_smoke() {
        // π is a bijection of the state before truncation; truncation
        // keeps t of 2t elements, so collisions are possible but
        // astronomically unlikely for distinct random keys.
        let params = small_params();
        let mut seen = std::collections::HashSet::new();
        for k in 0..20u64 {
            let key: Vec<u64> = (0..8).map(|i| (k * 7 + i) % 65_537).collect();
            let ks = permute(&params, &key, 11, 0).unwrap();
            assert!(seen.insert(ks), "keystream collision for key {k}");
        }
    }

    #[test]
    fn pasta3_block_consumes_about_186_keccak_calls() {
        // §IV.B: "the average number of Keccak calls as 186" for PASTA-3.
        let params = PastaParams::pasta3_17bit();
        let mut total = 0u64;
        let n = 5;
        for counter in 0..n {
            total += derive_block_material(&params, 0xABCD, counter).keccak_permutations;
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 186.0).abs() < 12.0, "average Keccak calls = {avg}");
    }

    #[test]
    fn pasta4_block_consumes_about_60_keccak_calls() {
        // §IV.B: "we require, on average, 60 Keccak permutation rounds".
        let params = PastaParams::pasta4_17bit();
        let mut total = 0u64;
        let n = 10;
        for counter in 0..n {
            total += derive_block_material(&params, 0x1234, counter).keccak_permutations;
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 60.0).abs() < 6.0, "average Keccak calls = {avg}");
    }
}
