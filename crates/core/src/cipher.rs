//! PASTA encryption and decryption (the HHE client side, paper Fig. 1/2).
//!
//! PASTA is a stream cipher: block `i` of the plaintext is encrypted as
//! `c_i = m_i + KS_i (mod p)` where `KS_i = Trunc(π_{nonce,i}(K))`.
//! Decryption subtracts the keystream. On the server this same decryption
//! circuit is evaluated *homomorphically* (see the `pasta-hhe` crate).

use crate::params::{PastaError, PastaParams};
use crate::permutation::permute;
use pasta_keccak::Shake256;

/// The PASTA secret key `K ∈ F_p^{2t}`.
///
/// The key doubles as the initial permutation state (Fig. 2). Create it
/// from explicit elements or deterministically from a seed.
///
/// # Examples
///
/// ```
/// use pasta_core::{PastaParams, SecretKey};
/// let params = PastaParams::pasta4_17bit();
/// let key = SecretKey::from_seed(&params, b"demo seed");
/// assert_eq!(key.expose_elements().len(), params.state_size());
/// ```
// audit: secret
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    elements: Vec<u64>,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey({} elements, redacted)", self.elements.len())
    }
}

impl SecretKey {
    /// Builds a key from explicit elements.
    ///
    /// # Errors
    ///
    /// Returns [`PastaError::InvalidKey`] on wrong length and
    /// [`PastaError::ElementOutOfRange`] on non-canonical elements.
    pub fn from_elements(params: &PastaParams, elements: Vec<u64>) -> Result<Self, PastaError> {
        if elements.len() != params.state_size() {
            return Err(PastaError::InvalidKey {
                expected: params.state_size(),
                found: elements.len(),
            });
        }
        let p = params.modulus().value();
        if let Some(&bad) = elements.iter().find(|&&x| x >= p) {
            return Err(PastaError::ElementOutOfRange(bad));
        }
        Ok(SecretKey { elements })
    }

    /// Derives a key deterministically from a byte seed via SHAKE256 with
    /// rejection sampling (keeps the crate dependency-free; examples that
    /// want OS randomness pass random seed bytes).
    #[must_use]
    pub fn from_seed(params: &PastaParams, seed: &[u8]) -> Self {
        let mut xof = Shake256::new();
        xof.absorb(b"pasta-key");
        xof.absorb(seed);
        let mut reader = xof.finalize();
        let p = params.modulus().value();
        let bits = params.modulus().bits();
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut elements = Vec::with_capacity(params.state_size());
        while elements.len() < params.state_size() {
            // audit: secret
            let candidate = reader.next_u64() & mask;
            // audit: allow(secret-branch, reason = "rejection sampling: the branch leaks only the rejection count of masked XOF draws, never which value was kept")
            if candidate < p {
                elements.push(candidate);
            }
        }
        SecretKey { elements }
    }

    /// Exposes the raw key elements (needed by the HHE client to
    /// FHE-encrypt the key for the server, and by the hardware model to
    /// load the key registers). The explicit name marks every site
    /// where key material leaves the wrapper.
    #[must_use]
    pub fn expose_elements(&self) -> &[u64] {
        &self.elements
    }
}

/// A PASTA ciphertext: the nonce plus `len` encrypted elements.
///
/// Elements beyond a multiple of `t` form a final partial block (the
/// keystream is simply truncated further, as in the reference stream
/// cipher usage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    nonce: u128,
    payload: Vec<u64>,
}

impl Ciphertext {
    /// The public nonce the blocks were encrypted under.
    #[must_use]
    pub fn nonce(&self) -> u128 {
        self.nonce
    }

    /// The encrypted elements.
    #[must_use]
    pub fn elements(&self) -> &[u64] {
        &self.payload
    }

    /// Number of encrypted elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the ciphertext is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Bit-packs the ciphertext elements at `⌈log2 p⌉` bits each — the
    /// wire format whose size the paper's §V communication analysis uses
    /// (one PASTA-4 block at 33 bits = 132 bytes).
    #[must_use]
    pub fn to_packed_bytes(&self, params: &PastaParams) -> Vec<u8> {
        pack_bits(&self.payload, params.modulus().bits())
    }

    /// Reconstructs a ciphertext from the bit-packed wire format.
    ///
    /// # Errors
    ///
    /// Returns [`PastaError::ElementOutOfRange`] if an unpacked value is
    /// `≥ p` (corrupt wire data).
    pub fn from_packed_bytes(
        params: &PastaParams,
        nonce: u128,
        bytes: &[u8],
        len: usize,
    ) -> Result<Self, PastaError> {
        let elements = unpack_bits(bytes, params.modulus().bits(), len);
        let p = params.modulus().value();
        if let Some(&bad) = elements.iter().find(|&&x| x >= p) {
            return Err(PastaError::ElementOutOfRange(bad));
        }
        Ok(Ciphertext {
            nonce,
            payload: elements,
        })
    }
}

/// The PASTA cipher bound to a parameter set and a secret key.
///
/// # Examples
///
/// ```
/// use pasta_core::{PastaCipher, PastaParams, SecretKey};
/// let params = PastaParams::pasta4_17bit();
/// let key = SecretKey::from_seed(&params, b"k");
/// let cipher = PastaCipher::new(params, key);
/// let message = vec![1u64, 2, 3, 42];
/// let ct = cipher.encrypt(7, &message)?;
/// assert_eq!(cipher.decrypt(&ct)?, message);
/// # Ok::<(), pasta_core::PastaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PastaCipher {
    params: PastaParams,
    key: SecretKey,
}

impl PastaCipher {
    /// Binds a key to a parameter set.
    #[must_use]
    pub fn new(params: PastaParams, key: SecretKey) -> Self {
        PastaCipher { params, key }
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &PastaParams {
        &self.params
    }

    /// The secret key (the HHE client needs it to provision the server).
    #[must_use]
    pub fn key(&self) -> &SecretKey {
        &self.key
    }

    /// Generates keystream block `counter` (`t` elements).
    ///
    /// # Errors
    ///
    /// Propagates [`PastaError`] from the permutation (cannot occur for a
    /// key built through [`SecretKey`]'s validated constructors).
    pub fn keystream_block(&self, nonce: u128, counter: u64) -> Result<Vec<u64>, PastaError> {
        permute(&self.params, self.key.expose_elements(), nonce, counter)
    }

    /// Encrypts `message` (any number of elements in `[0, p)`) under
    /// `nonce`.
    ///
    /// # Errors
    ///
    /// Returns [`PastaError::ElementOutOfRange`] if a message element is
    /// not canonical.
    pub fn encrypt(&self, nonce: u128, message: &[u64]) -> Result<Ciphertext, PastaError> {
        let zp = self.params.field();
        if let Some(&bad) = message.iter().find(|&&x| x >= zp.p()) {
            return Err(PastaError::ElementOutOfRange(bad));
        }
        let mut elements = Vec::with_capacity(message.len());
        for (counter, block) in message.chunks(self.params.t()).enumerate() {
            let ks = self.keystream_block(nonce, counter as u64)?;
            elements.extend(block.iter().zip(ks.iter()).map(|(&m, &k)| zp.add(m, k)));
        }
        Ok(Ciphertext {
            nonce,
            payload: elements,
        })
    }

    /// Decrypts a ciphertext produced by [`PastaCipher::encrypt`].
    ///
    /// # Errors
    ///
    /// Propagates permutation errors (none for validated keys).
    pub fn decrypt(&self, ciphertext: &Ciphertext) -> Result<Vec<u64>, PastaError> {
        let zp = self.params.field();
        let mut message = Vec::with_capacity(ciphertext.len());
        for (counter, block) in ciphertext.payload.chunks(self.params.t()).enumerate() {
            let ks = self.keystream_block(ciphertext.nonce, counter as u64)?;
            message.extend(block.iter().zip(ks.iter()).map(|(&c, &k)| zp.sub(c, k)));
        }
        Ok(message)
    }
}

/// Packs `values` at `bits` bits each, little-endian bit order.
fn pack_bits(values: &[u64], bits: u32) -> Vec<u8> {
    let total_bits = values.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    let mut bit_pos = 0usize;
    for &v in values {
        for b in 0..bits as usize {
            if (v >> b) & 1 == 1 {
                out[(bit_pos + b) / 8] |= 1 << ((bit_pos + b) % 8);
            }
        }
        bit_pos += bits as usize;
    }
    out
}

/// Unpacks `len` values of `bits` bits each.
fn unpack_bits(bytes: &[u8], bits: u32, len: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let mut v = 0u64;
        let base = i * bits as usize;
        for b in 0..bits as usize {
            let pos = base + b;
            if pos / 8 < bytes.len() && (bytes[pos / 8] >> (pos % 8)) & 1 == 1 {
                v |= 1 << b;
            }
        }
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cipher4() -> PastaCipher {
        let params = PastaParams::pasta4_17bit();
        PastaCipher::new(params, SecretKey::from_seed(&params, b"test key"))
    }

    #[test]
    fn roundtrip_exact_block() {
        let c = cipher4();
        let m: Vec<u64> = (0..32).map(|i| i * 2_048 % 65_537).collect();
        let ct = c.encrypt(1, &m).unwrap();
        assert_eq!(c.decrypt(&ct).unwrap(), m);
    }

    #[test]
    fn roundtrip_multi_block_and_partial() {
        let c = cipher4();
        for len in [1usize, 31, 33, 64, 100] {
            let m: Vec<u64> = (0..len as u64).map(|i| (i * 31 + 5) % 65_537).collect();
            let ct = c.encrypt(99, &m).unwrap();
            assert_eq!(ct.len(), len);
            assert_eq!(c.decrypt(&ct).unwrap(), m, "length {len}");
        }
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let c = cipher4();
        let m = vec![0u64; 32];
        let ct = c.encrypt(1, &m).unwrap();
        // Encrypting all-zeros yields exactly the keystream — which must
        // not be all-zeros.
        assert_ne!(ct.elements(), &m[..]);
    }

    #[test]
    fn same_nonce_same_ciphertext_different_nonce_differs() {
        let c = cipher4();
        let m: Vec<u64> = (0..32).collect();
        assert_eq!(c.encrypt(5, &m).unwrap(), c.encrypt(5, &m).unwrap());
        assert_ne!(c.encrypt(5, &m).unwrap(), c.encrypt(6, &m).unwrap());
    }

    #[test]
    fn blocks_use_distinct_keystream() {
        let c = cipher4();
        let m = vec![0u64; 64];
        let ct = c.encrypt(4, &m).unwrap();
        assert_ne!(
            ct.elements()[..32],
            ct.elements()[32..],
            "block counters must differ"
        );
    }

    #[test]
    fn key_validation() {
        let params = PastaParams::pasta4_17bit();
        assert!(matches!(
            SecretKey::from_elements(&params, vec![0; 10]),
            Err(PastaError::InvalidKey {
                expected: 64,
                found: 10
            })
        ));
        let mut bad = vec![0u64; 64];
        bad[0] = 70_000;
        assert!(matches!(
            SecretKey::from_elements(&params, bad),
            Err(PastaError::ElementOutOfRange(70_000))
        ));
        let ok = SecretKey::from_seed(&params, b"s");
        assert!(ok.expose_elements().iter().all(|&x| x < 65_537));
    }

    #[test]
    fn key_debug_redacts() {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"secret");
        let dbg = format!("{key:?}");
        assert!(dbg.contains("redacted"));
        for &e in key.expose_elements().iter().take(4) {
            assert!(
                !dbg.contains(&format!("{e}, ")),
                "debug must not leak elements"
            );
        }
    }

    #[test]
    fn message_validation() {
        let c = cipher4();
        assert!(matches!(
            c.encrypt(0, &[65_537]),
            Err(PastaError::ElementOutOfRange(65_537))
        ));
    }

    #[test]
    fn packed_wire_format_roundtrip_and_size() {
        let params = PastaParams::pasta4_33bit();
        let c = PastaCipher::new(params, SecretKey::from_seed(&params, b"k"));
        let m: Vec<u64> = (0..32)
            .map(|i| i * 123_456_789 % params.modulus().value())
            .collect();
        let ct = c.encrypt(1, &m).unwrap();
        let bytes = ct.to_packed_bytes(&params);
        assert_eq!(
            bytes.len(),
            132,
            "§V: one 33-bit PASTA-4 block is 132 bytes"
        );
        let back = Ciphertext::from_packed_bytes(&params, ct.nonce(), &bytes, ct.len()).unwrap();
        assert_eq!(back, ct);
    }

    #[test]
    fn corrupt_wire_data_rejected() {
        let params = PastaParams::pasta4_17bit();
        let bytes = vec![0xFFu8; 68]; // every 17-bit field = 0x1FFFF >= p
        assert!(matches!(
            Ciphertext::from_packed_bytes(&params, 0, &bytes, 32),
            Err(PastaError::ElementOutOfRange(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_encrypt_decrypt_roundtrip(m in proptest::collection::vec(0u64..65_537, 1..80),
                                          nonce in 0u128..1000,
                                          seed in proptest::collection::vec(0u8..=255, 4)) {
            let params = PastaParams::pasta4_17bit();
            let c = PastaCipher::new(params, SecretKey::from_seed(&params, &seed));
            let ct = c.encrypt(nonce, &m).unwrap();
            prop_assert_eq!(c.decrypt(&ct).unwrap(), m);
        }

        #[test]
        fn prop_pack_unpack_roundtrip(v in proptest::collection::vec(0u64..65_537, 0..50)) {
            let packed = pack_bits(&v, 17);
            prop_assert_eq!(unpack_bits(&packed, 17, v.len()), v);
        }
    }
}
