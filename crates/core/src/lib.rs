//! The PASTA hybrid-homomorphic-encryption stream cipher.
//!
//! PASTA [Dobraunig et al., `ToSC` 2023] is a symmetric cipher over a prime
//! field `F_p`, designed so that its *decryption* circuit is cheap to
//! evaluate under fully homomorphic encryption. A client encrypts data
//! symmetrically (fast, no ciphertext expansion) and the server
//! transciphers it into FHE ciphertexts — the Hybrid Homomorphic
//! Encryption (HHE) workflow of the paper's Fig. 1.
//!
//! This crate is the *software reference* for the PASTA-on-Edge
//! cryptoprocessor reproduction:
//!
//! - [`params`]: the PASTA-3 (`t = 128`, 3 rounds) and PASTA-4 (`t = 32`,
//!   4 rounds) parameter sets over structured 17/33/54-bit primes;
//! - [`sampler`]: SHAKE128 rejection sampling of the public round
//!   material;
//! - [`matrix`]: the sequential invertible-matrix generator (Eq. 1) with
//!   two-row storage, exactly as the hardware streams it;
//! - [`layers`]: affine, Mix, Feistel/cube S-boxes (and inverses);
//! - [`permutation`]: the full π with per-layer tracing for
//!   hardware-model cross-checks;
//! - [`cipher`]: keys, encryption, decryption, and the bit-packed wire
//!   format whose sizes drive the paper's §V communication analysis;
//! - [`counters`]: analytic operation counts and the quoted CPU baseline
//!   (Tab. II, §I.A).
//!
//! # Examples
//!
//! ```
//! use pasta_core::{PastaCipher, PastaParams, SecretKey};
//!
//! let params = PastaParams::pasta4_17bit();
//! let key = SecretKey::from_seed(&params, b"quickstart");
//! let cipher = PastaCipher::new(params, key);
//!
//! let message: Vec<u64> = (0..32).collect();
//! let ciphertext = cipher.encrypt(0xD00D, &message)?;
//! assert_eq!(cipher.decrypt(&ciphertext)?, message);
//! # Ok::<(), pasta_core::PastaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Rate and statistics reporting deliberately casts u64/u128 counters to
// f64; the magnitudes involved stay far below 2^52, where f64 is exact.
#![allow(clippy::cast_precision_loss)]

pub mod cipher;
pub mod counters;
pub mod keystream;
pub mod layers;
pub mod masking;
pub mod matrix;
pub mod params;
pub mod permutation;
pub mod sampler;

pub use cipher::{Ciphertext, PastaCipher, SecretKey};
pub use keystream::Keystream;
pub use params::{PastaError, PastaParams, Variant};
pub use permutation::{derive_block_material, permute, BlockMaterial};
