//! Operation counting and the CPU baseline (paper §I.A and Tab. II).
//!
//! §I.A compares the multiplication counts of FHE public-key encryption
//! (≈2¹⁹ for `N = 2^13` NTT-based encryption) against PASTA-3 (≈2¹⁸) and
//! derives the famous "32× slower for data-intensive applications"
//! conclusion. Tab. II quotes the CPU clock-cycle counts of the original
//! PASTA software \[9\] (17,041,380 cc for PASTA-3, 1,363,339 cc for
//! PASTA-4 on an Intel Xeon E5-2699 v4 at 2.2 GHz). This module exposes
//! both analyses as code so the benches can regenerate them.

use crate::params::PastaParams;

/// Reference CPU cycle count for one PASTA-3 block from \[9\] (Tab. II).
pub const REFERENCE_CPU_CYCLES_PASTA3: u64 = 17_041_380;
/// Reference CPU cycle count for one PASTA-4 block from \[9\] (Tab. II).
pub const REFERENCE_CPU_CYCLES_PASTA4: u64 = 1_363_339;
/// Clock frequency of the reference CPU (Intel Xeon E5-2699 v4), Hz.
pub const REFERENCE_CPU_HZ: f64 = 2.2e9;
/// Fraction of CPU time the PASTA authors attribute to affine generation
/// (§III: "the affine generation alone consumes 54–60% of the total").
pub const AFFINE_GENERATION_CPU_SHARE: (f64, f64) = (0.54, 0.60);

/// Exact arithmetic-operation counts for one block encryption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Modular multiplications (including squarings).
    pub mul: u64,
    /// Modular additions/subtractions.
    pub add: u64,
    /// Rejection-sampled XOF coefficients consumed (accepted draws).
    pub xof_coefficients: u64,
}

impl OpCount {
    /// Sums two counts component-wise.
    #[must_use]
    pub fn plus(self, other: OpCount) -> OpCount {
        OpCount {
            mul: self.mul + other.mul,
            add: self.add + other.add,
            xof_coefficients: self.xof_coefficients + other.xof_coefficients,
        }
    }
}

/// Counts the operations of one PASTA block encryption analytically.
///
/// Per affine layer and per half: matrix generation costs `t(t-1)` MACs
/// (rows 1..t, one MAC per element), the matrix–vector product costs `t²`
/// multiplications and `t(t-1)` additions, and the round-constant addition
/// costs `t` additions. Mix costs `3t` additions; the Feistel S-box one
/// square and one add per state element, the cube S-box two
/// multiplications per element. Keystream addition costs `t` adds.
///
/// # Examples
///
/// ```
/// use pasta_core::{PastaParams, counters::encryption_op_count};
/// let ops = encryption_op_count(&PastaParams::pasta3_17bit());
/// // §I.A: "the total multiplication cost ... 2^18" — the exact count
/// // lands on the headline figure on the nose.
/// assert_eq!(ops.mul, 1 << 18);
/// ```
#[must_use]
pub fn encryption_op_count(params: &PastaParams) -> OpCount {
    let t = params.t() as u64;
    let r = params.rounds() as u64;
    let layers = r + 1;

    // Affine layers (both halves).
    let matgen_mul = layers * 2 * t * (t - 1);
    let matgen_add = layers * 2 * t * (t - 1);
    let matmul_mul = layers * 2 * t * t;
    let matmul_add = layers * 2 * t * (t - 1);
    let rc_add = layers * 2 * t;

    // Mix: three additions per element pair, t pairs, once per round.
    let mix_add = r * 3 * t;

    // S-boxes over the full 2t state: Feistel rounds (r - 1 of them) cost
    // one square + one add per element; the cube round costs two muls.
    let feistel_mul = (r - 1) * 2 * t;
    let feistel_add = (r - 1) * 2 * t;
    let cube_mul = 2 * 2 * t;

    // Keystream addition to the message block.
    let stream_add = t;

    OpCount {
        mul: matgen_mul + matmul_mul + feistel_mul + cube_mul,
        add: matgen_add + matmul_add + rc_add + mix_add + feistel_add + stream_add,
        xof_coefficients: params.xof_coefficients_per_block() as u64,
    }
}

/// §I.A's FHE public-key-encryption multiplication estimate: three NTTs
/// per modulus over three moduli at `(N/2)·log2 N` multiplications each.
#[must_use]
pub fn fhe_pke_mul_estimate(log_n: u32) -> u64 {
    let n = 1u64 << log_n;
    3 * 3 * (n / 2) * u64::from(log_n)
}

/// Multiplications *per encrypted element*: the §I.A throughput argument
/// (FHE packs `2^12` elements per encryption; PASTA-3 packs 128).
#[must_use]
pub fn mul_per_element(total_mul: u64, elements: u64) -> f64 {
    total_mul as f64 / elements as f64
}

/// Reference CPU time (µs) for one block, from the quoted \[9\] cycles.
#[must_use]
pub fn reference_cpu_block_micros(params: &PastaParams) -> Option<f64> {
    let cycles = match params.variant() {
        crate::params::Variant::Pasta3 => REFERENCE_CPU_CYCLES_PASTA3,
        crate::params::Variant::Pasta4 => REFERENCE_CPU_CYCLES_PASTA4,
        crate::params::Variant::Custom => return None,
    };
    Some(cycles as f64 / REFERENCE_CPU_HZ * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PastaParams;

    #[test]
    fn pasta3_mul_count_matches_section_1a() {
        // §I.A: eight matgen+matmul operations of complexity 128·128 give
        // "the total multiplication cost to 2^18". Our exact count adds
        // the S-box multiplications on top.
        let ops = encryption_op_count(&PastaParams::pasta3_17bit());
        let headline = 2u64 * 8 * 128 * 128; // 2 ops × 8 matrices × t²
        assert_eq!(headline, 1 << 18);
        assert!(ops.mul >= 1 << 18, "exact count {} below headline", ops.mul);
        let slack = ops.mul - (1 << 18);
        // matgen is t(t-1) not t², minus; S-boxes add ~2t per feistel etc.
        assert!(
            slack < 1 << 13,
            "exact count {} too far above headline",
            ops.mul
        );
    }

    #[test]
    fn fhe_pke_estimate_matches_section_1a() {
        // §I.A: "the total number of multiplications required is ≈ 2^19"
        // for N = 2^13 (three NTTs per modulus, three moduli).
        let est = fhe_pke_mul_estimate(13);
        assert_eq!(est, 9 * (1 << 12) * 13);
        assert!(
            est > 1 << 18 && est < 1 << 20,
            "estimate {est} should be ≈2^19"
        );
    }

    #[test]
    fn throughput_gap_is_about_32x() {
        // §I.A: PASTA-3 encrypts 128 elements with ~2^18 muls; FHE encrypts
        // 2^12 with ~2^19 — per element PASTA-3 is ≈32× worse.
        let pasta = mul_per_element(encryption_op_count(&PastaParams::pasta3_17bit()).mul, 128);
        let fhe = mul_per_element(fhe_pke_mul_estimate(13), 1 << 12);
        let gap = pasta / fhe;
        assert!(gap > 14.0 && gap < 40.0, "per-element gap = {gap}");
    }

    #[test]
    fn xof_coefficient_counts() {
        assert_eq!(
            encryption_op_count(&PastaParams::pasta3_17bit()).xof_coefficients,
            2_048
        );
        assert_eq!(
            encryption_op_count(&PastaParams::pasta4_17bit()).xof_coefficients,
            640
        );
    }

    #[test]
    fn reference_cpu_times() {
        // Tab. II at 2.2 GHz: PASTA-3 ≈ 7.75 ms, PASTA-4 ≈ 0.62 ms.
        let p3 = reference_cpu_block_micros(&PastaParams::pasta3_17bit()).unwrap();
        assert!((p3 - 7_746.0).abs() < 10.0, "PASTA-3 CPU µs = {p3}");
        let p4 = reference_cpu_block_micros(&PastaParams::pasta4_17bit()).unwrap();
        assert!((p4 - 619.7).abs() < 2.0, "PASTA-4 CPU µs = {p4}");
        let custom = PastaParams::custom(8, 2, pasta_math::Modulus::PASTA_17_BIT).unwrap();
        assert!(reference_cpu_block_micros(&custom).is_none());
    }

    #[test]
    fn opcount_plus_adds_componentwise() {
        let a = OpCount {
            mul: 1,
            add: 2,
            xof_coefficients: 3,
        };
        let b = OpCount {
            mul: 10,
            add: 20,
            xof_coefficients: 30,
        };
        assert_eq!(
            a.plus(b),
            OpCount {
                mul: 11,
                add: 22,
                xof_coefficients: 33
            }
        );
    }

    #[test]
    fn pasta3_mul_count_grows_quadratically_per_element() {
        // Raw multiplication count per element is *worse* for PASTA-3
        // (t² matrices): the hardware's per-element win for PASTA-3
        // (Tab. II: 22% less time per element) comes from the XOF being
        // the bottleneck, not from arithmetic — which is exactly why the
        // paper's design spends its parallelism on the XOF.
        let p3 = encryption_op_count(&PastaParams::pasta3_17bit());
        let p4 = encryption_op_count(&PastaParams::pasta4_17bit());
        assert!(p4.mul < p3.mul, "PASTA-4 block must be cheaper in total");
        assert!(
            mul_per_element(p3.mul, 128) > mul_per_element(p4.mul, 32),
            "PASTA-3 must cost more multiplications per element"
        );
    }
}
