//! PASTA parameter sets.
//!
//! PASTA is a family of stream ciphers over `F_p` with two standard
//! instantiations (paper §II.B, Tab. II):
//!
//! - **PASTA-3**: block size `t = 128` (state `2t = 256`), 3 rounds;
//! - **PASTA-4**: block size `t = 32` (state `2t = 64`), 4 rounds.
//!
//! Each of the `r + 1` affine layers draws four rejection-sampled vectors
//! of `t` coefficients from SHAKE128 (two invertible-matrix seed rows and
//! two round constants), so one block consumes `4·t·(r+1)` pseudo-random
//! coefficients: 2,048 for PASTA-3 and 640 for PASTA-4 (§III.A).
//!
//! Note: §II.B of the DATE paper says "for PASTA-3, 2t = 128", which
//! contradicts its own Tab. II ("128 elements processed") and the original
//! PASTA specification; we follow Tab. II.

use pasta_math::{MathError, Modulus, Zp};
use std::error::Error;
use std::fmt;

/// Errors produced by the PASTA cipher crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PastaError {
    /// Underlying arithmetic error (bad modulus, dimension mismatch, …).
    Math(MathError),
    /// Parameter validation failed.
    InvalidParams(String),
    /// A key of the wrong length (or with out-of-range elements) was given.
    InvalidKey {
        /// Expected number of key elements (`2t`).
        expected: usize,
        /// Number actually supplied.
        found: usize,
    },
    /// Ciphertext/plaintext block length did not match the parameters.
    InvalidBlock {
        /// Expected number of elements (`t` or a final partial block).
        expected: usize,
        /// Number actually supplied.
        found: usize,
    },
    /// An element was not a canonical residue in `[0, p)`.
    ElementOutOfRange(u64),
    /// An internal invariant was violated (a bug in this crate family,
    /// not a usage error; please report it).
    Internal(String),
}

impl fmt::Display for PastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PastaError::Math(e) => write!(f, "arithmetic error: {e}"),
            PastaError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            PastaError::InvalidKey { expected, found } => {
                write!(
                    f,
                    "invalid key length: expected {expected} elements, found {found}"
                )
            }
            PastaError::InvalidBlock { expected, found } => {
                write!(
                    f,
                    "invalid block length: expected {expected} elements, found {found}"
                )
            }
            PastaError::ElementOutOfRange(v) => {
                write!(f, "element {v} is not a canonical residue")
            }
            PastaError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl Error for PastaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PastaError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for PastaError {
    fn from(e: MathError) -> Self {
        PastaError::Math(e)
    }
}

/// Which standard PASTA instantiation a parameter set corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `t = 128`, 3 rounds.
    Pasta3,
    /// `t = 32`, 4 rounds.
    Pasta4,
    /// A non-standard `(t, rounds)` combination.
    Custom,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Variant::Pasta3 => write!(f, "PASTA-3"),
            Variant::Pasta4 => write!(f, "PASTA-4"),
            Variant::Custom => write!(f, "PASTA-custom"),
        }
    }
}

/// A validated PASTA parameter set.
///
/// # Examples
///
/// ```
/// use pasta_core::PastaParams;
/// let p = PastaParams::pasta4_17bit();
/// assert_eq!(p.t(), 32);
/// assert_eq!(p.rounds(), 4);
/// assert_eq!(p.xof_coefficients_per_block(), 640);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastaParams {
    variant: Variant,
    t: usize,
    rounds: usize,
    modulus: Modulus,
}

impl PastaParams {
    /// PASTA-3 over the 17-bit modulus `65537` (the paper's Tab. I row 1).
    #[must_use]
    pub fn pasta3_17bit() -> Self {
        Self::pasta3(Modulus::PASTA_17_BIT)
    }

    /// PASTA-4 over the 17-bit modulus `65537` (Tab. I row 2, and the
    /// comparison point for Tab. II/III).
    #[must_use]
    pub fn pasta4_17bit() -> Self {
        Self::pasta4(Modulus::PASTA_17_BIT)
    }

    /// PASTA-4 over the 33-bit structured modulus (Tab. I row 3).
    #[must_use]
    pub fn pasta4_33bit() -> Self {
        Self::pasta4(Modulus::PASTA_33_BIT)
    }

    /// PASTA-4 over the 54-bit structured modulus (Tab. I row 4).
    #[must_use]
    pub fn pasta4_54bit() -> Self {
        Self::pasta4(Modulus::PASTA_54_BIT)
    }

    /// PASTA-3 (`t = 128`, 3 rounds) over an arbitrary modulus.
    #[must_use]
    pub fn pasta3(modulus: Modulus) -> Self {
        PastaParams {
            variant: Variant::Pasta3,
            t: 128,
            rounds: 3,
            modulus,
        }
    }

    /// PASTA-4 (`t = 32`, 4 rounds) over an arbitrary modulus.
    #[must_use]
    pub fn pasta4(modulus: Modulus) -> Self {
        PastaParams {
            variant: Variant::Pasta4,
            t: 32,
            rounds: 4,
            modulus,
        }
    }

    /// A custom instantiation, e.g. for scaled-down testing.
    ///
    /// # Errors
    ///
    /// Returns [`PastaError::InvalidParams`] if `t < 2` or `rounds == 0`,
    /// or if the modulus is too small for the Mix layer to be invertible
    /// (`p` must exceed 3).
    pub fn custom(t: usize, rounds: usize, modulus: Modulus) -> Result<Self, PastaError> {
        if t < 2 {
            return Err(PastaError::InvalidParams(format!(
                "block size t = {t} must be >= 2"
            )));
        }
        if rounds == 0 {
            return Err(PastaError::InvalidParams("rounds must be >= 1".into()));
        }
        if modulus.value() <= 3 {
            return Err(PastaError::InvalidParams(
                "modulus must exceed 3 for Mix to be invertible".into(),
            ));
        }
        let variant = match (t, rounds) {
            (128, 3) => Variant::Pasta3,
            (32, 4) => Variant::Pasta4,
            _ => Variant::Custom,
        };
        Ok(PastaParams {
            variant,
            t,
            rounds,
            modulus,
        })
    }

    /// The standard variant this parameter set matches.
    #[must_use]
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Block size `t` (elements of keystream/plaintext per block).
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// Number of rounds `r`.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of affine layers (`r + 1`).
    #[must_use]
    pub fn affine_layers(&self) -> usize {
        self.rounds + 1
    }

    /// State size `2t` (= secret-key length in elements).
    #[must_use]
    pub fn state_size(&self) -> usize {
        2 * self.t
    }

    /// The modulus descriptor.
    #[must_use]
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// A field context for this modulus with the hardware-default reducer.
    ///
    /// # Panics
    ///
    /// Never in practice: the modulus was validated when these
    /// parameters were constructed.
    #[must_use]
    pub fn field(&self) -> Zp {
        // audit: allow(panic, reason = "the modulus was validated when these params were constructed, so Zp::new cannot fail")
        Zp::new(self.modulus).expect("modulus was validated at construction")
    }

    /// Rejection-sampled XOF coefficients needed per block:
    /// `4·t·(r+1)` (§III.A: 2,048 for PASTA-3, 640 for PASTA-4).
    #[must_use]
    pub fn xof_coefficients_per_block(&self) -> usize {
        4 * self.t * self.affine_layers()
    }

    /// Ciphertext size of one block in bits: `t · ⌈log2 p⌉`
    /// (§V: 32 × 33 bits = 132 bytes for the video benchmark parameters).
    #[must_use]
    pub fn ciphertext_block_bits(&self) -> usize {
        self.t * self.modulus.bits() as usize
    }

    /// Ciphertext size of one block in bytes (bit-packed, rounded up).
    #[must_use]
    pub fn ciphertext_block_bytes(&self) -> usize {
        self.ciphertext_block_bits().div_ceil(8)
    }

    /// Acceptance probability of one masked XOF draw
    /// (`p / 2^⌈log2 p⌉`, ≈0.5 for 65537).
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        self.modulus.value() as f64 / (1u128 << self.modulus.bits()) as f64
    }
}

impl fmt::Display for PastaParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (t = {}, rounds = {}, p = {})",
            self.variant,
            self.t,
            self.rounds,
            self.modulus.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_variants_match_paper() {
        let p3 = PastaParams::pasta3_17bit();
        assert_eq!(p3.t(), 128);
        assert_eq!(p3.rounds(), 3);
        assert_eq!(p3.state_size(), 256);
        assert_eq!(p3.xof_coefficients_per_block(), 2_048);
        assert_eq!(p3.variant(), Variant::Pasta3);

        let p4 = PastaParams::pasta4_17bit();
        assert_eq!(p4.t(), 32);
        assert_eq!(p4.rounds(), 4);
        assert_eq!(p4.state_size(), 64);
        assert_eq!(p4.xof_coefficients_per_block(), 640);
        assert_eq!(p4.variant(), Variant::Pasta4);
    }

    #[test]
    fn ciphertext_sizes_match_paper_section_v() {
        // §V: one PASTA block of 2^5 = 32 coefficients at 33 bits = 132 B.
        let p = PastaParams::pasta4_33bit();
        assert_eq!(p.ciphertext_block_bytes(), 132);
        // 17-bit variant: 32 × 17 = 544 bits = the "544-bit PASTA state"
        // the SoC peripheral stores (§IV.A ❸).
        let p17 = PastaParams::pasta4_17bit();
        assert_eq!(p17.ciphertext_block_bits(), 544);
        assert_eq!(p17.ciphertext_block_bytes(), 68);
    }

    #[test]
    fn acceptance_rate_for_65537_is_half() {
        let p = PastaParams::pasta4_17bit();
        let rate = p.acceptance_rate();
        assert!((rate - 0.5).abs() < 1e-4, "rate = {rate}");
    }

    #[test]
    fn custom_validation() {
        use pasta_math::Modulus;
        assert!(PastaParams::custom(1, 3, Modulus::PASTA_17_BIT).is_err());
        assert!(PastaParams::custom(8, 0, Modulus::PASTA_17_BIT).is_err());
        assert!(PastaParams::custom(2, 2, Modulus::new(3).unwrap()).is_err());
        let ok = PastaParams::custom(8, 2, Modulus::PASTA_17_BIT).unwrap();
        assert_eq!(ok.variant(), Variant::Custom);
        // Custom constructor recognizes the standard shapes.
        let p3 = PastaParams::custom(128, 3, Modulus::PASTA_17_BIT).unwrap();
        assert_eq!(p3.variant(), Variant::Pasta3);
    }

    #[test]
    fn display_is_informative() {
        let s = PastaParams::pasta4_17bit().to_string();
        assert!(s.contains("PASTA-4") && s.contains("65537"), "{s}");
    }
}
