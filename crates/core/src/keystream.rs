//! Seekable keystream generation.
//!
//! PASTA is a counter-mode stream cipher (Fig. 2): block `ctr` of the
//! keystream is `Trunc(π_{nonce,ctr}(K))`, independently addressable.
//! [`Keystream`] exposes that as an element-granular, seekable stream —
//! the access pattern a disk-encryption or random-access-storage client
//! would use (the HHE workflow's "store data on the cloud" case).

use crate::cipher::SecretKey;
use crate::params::{PastaError, PastaParams};
use crate::permutation::permute;

/// A lazily generated, seekable PASTA keystream.
///
/// # Examples
///
/// ```
/// use pasta_core::{keystream::Keystream, PastaParams, SecretKey};
/// let params = PastaParams::pasta4_17bit();
/// let key = SecretKey::from_seed(&params, b"ks");
/// let mut ks = Keystream::new(params, key, 42);
/// let first_hundred: Vec<u64> = ks.take_elements(100)?;
/// ks.seek(0);
/// assert_eq!(ks.take_elements(100)?, first_hundred);
/// # Ok::<(), pasta_core::PastaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Keystream {
    params: PastaParams,
    key: SecretKey,
    nonce: u128,
    /// Absolute element position.
    position: u64,
    /// Cached keystream block and its counter.
    // audit: secret
    cache: Option<(u64, Vec<u64>)>,
}

impl Keystream {
    /// Creates a keystream for `(key, nonce)` positioned at element 0.
    #[must_use]
    pub fn new(params: PastaParams, key: SecretKey, nonce: u128) -> Self {
        Keystream {
            params,
            key,
            nonce,
            position: 0,
            cache: None,
        }
    }

    /// Current element position.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Seeks to an absolute element position (O(1); the block is
    /// regenerated on the next read).
    pub fn seek(&mut self, element: u64) {
        self.position = element;
    }

    /// Returns the next keystream element.
    ///
    /// # Errors
    ///
    /// Propagates permutation errors (none for validated keys).
    pub fn next_element(&mut self) -> Result<u64, PastaError> {
        let t = self.params.t() as u64;
        let counter = self.position / t;
        // offset < t <= block size, far below any usize limit.
        #[allow(clippy::cast_possible_truncation)]
        let offset = (self.position % t) as usize;
        // audit: allow(secret-branch, reason = "the match inspects only the cached block's public counter, never keystream values")
        let block = match &mut self.cache {
            // audit: allow(secret-branch, reason = "the guard compares the cached counter (public stream position), not keystream material")
            Some((c, block)) if *c == counter => block,
            cache => {
                let block = permute(
                    &self.params,
                    self.key.expose_elements(),
                    self.nonce,
                    counter,
                )?;
                &mut cache.insert((counter, block)).1
            }
        };
        let value = block[offset];
        self.position += 1;
        Ok(value)
    }

    /// Returns the next `n` elements.
    ///
    /// # Errors
    ///
    /// Propagates permutation errors.
    pub fn take_elements(&mut self, n: usize) -> Result<Vec<u64>, PastaError> {
        (0..n).map(|_| self.next_element()).collect()
    }

    /// XORs-like combine: adds the keystream to `data` in place
    /// (encryption at the current position).
    ///
    /// # Errors
    ///
    /// Returns [`PastaError::ElementOutOfRange`] for non-canonical data.
    pub fn apply(&mut self, data: &mut [u64]) -> Result<(), PastaError> {
        let zp = self.params.field();
        for d in data.iter_mut() {
            if *d >= zp.p() {
                return Err(PastaError::ElementOutOfRange(*d));
            }
            *d = zp.add(*d, self.next_element()?);
        }
        Ok(())
    }

    /// Inverse of [`Keystream::apply`] (decryption at the current
    /// position).
    ///
    /// # Errors
    ///
    /// Returns [`PastaError::ElementOutOfRange`] for non-canonical data.
    pub fn remove(&mut self, data: &mut [u64]) -> Result<(), PastaError> {
        let zp = self.params.field();
        for d in data.iter_mut() {
            if *d >= zp.p() {
                return Err(PastaError::ElementOutOfRange(*d));
            }
            *d = zp.sub(*d, self.next_element()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::PastaCipher;

    fn stream() -> Keystream {
        let params = PastaParams::pasta4_17bit();
        Keystream::new(params, SecretKey::from_seed(&params, b"seek"), 0xABCD)
    }

    #[test]
    fn matches_block_cipher_api() {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"seek");
        let cipher = PastaCipher::new(params, key);
        let mut ks = stream();
        let streamed = ks.take_elements(96).unwrap();
        let mut blocked = Vec::new();
        for counter in 0..3 {
            blocked.extend(cipher.keystream_block(0xABCD, counter).unwrap());
        }
        assert_eq!(streamed, blocked);
    }

    #[test]
    fn seek_is_random_access() {
        let mut ks = stream();
        let linear = ks.take_elements(200).unwrap();
        // Jump straight to element 150.
        ks.seek(150);
        assert_eq!(ks.next_element().unwrap(), linear[150]);
        // Jump backwards across a block boundary.
        ks.seek(31);
        assert_eq!(ks.take_elements(3).unwrap(), linear[31..34]);
        assert_eq!(ks.position(), 34);
    }

    #[test]
    fn apply_remove_roundtrip_mid_stream() {
        let mut enc = stream();
        let mut dec = stream();
        enc.seek(1_000);
        dec.seek(1_000);
        let original: Vec<u64> = (0..50u64).map(|i| i * 999 % 65_537).collect();
        let mut data = original.clone();
        enc.apply(&mut data).unwrap();
        assert_ne!(data, original);
        dec.remove(&mut data).unwrap();
        assert_eq!(data, original);
    }

    #[test]
    fn cache_avoids_regeneration_within_block() {
        let mut ks = stream();
        let _ = ks.next_element().unwrap();
        let cached_counter = ks.cache.as_ref().unwrap().0;
        let _ = ks.take_elements(30).unwrap(); // still block 0
        assert_eq!(ks.cache.as_ref().unwrap().0, cached_counter);
        let _ = ks.take_elements(2).unwrap(); // crosses into block 1
        assert_eq!(ks.cache.as_ref().unwrap().0, cached_counter + 1);
    }

    #[test]
    fn out_of_range_data_rejected() {
        let mut ks = stream();
        let mut bad = vec![65_537u64];
        assert!(matches!(
            ks.apply(&mut bad),
            Err(PastaError::ElementOutOfRange(65_537))
        ));
    }
}
