//! Sequential invertible-matrix generation (paper §II.C, Eq. 1).
//!
//! The affine layers of PASTA need fresh *invertible* `t × t` matrices
//! every block. Sampling a random matrix and testing invertibility would
//! be far too expensive; instead PASTA (following PHOTON/LED) samples only
//! the first row `α = (α_0 … α_{t-1})` with `α_0 ≠ 0` and derives row
//! `j+1` from row `j` by multiplying with the companion matrix
//!
//! ```text
//!       ⎡ 0   1   0  …  0    ⎤
//!  C =  ⎢ …   …   …  …  …    ⎥     M^{j+1} = M^j · C
//!       ⎢ 0   0   0  …  1    ⎥
//!       ⎣ α_0 α_1 α_2 … α_{t-1} ⎦
//! ```
//!
//! so `(M^{j+1})_c = M^j_{c-1} + M^j_{t-1}·α_c` (and
//! `(M^{j+1})_0 = M^j_{t-1}·α_0`): exactly one multiply-accumulate per
//! element, which is what the hardware's MAC array exploits (Fig. 5). The
//! resulting matrix is the Krylov matrix `[α; αC; …; αC^{t-1}]`, which is
//! invertible whenever `α` is a cyclic vector for `C`; sampling `α_0 ≠ 0`
//! makes this hold with overwhelming probability, and the generator
//! verifies it in debug builds for small `t`.

use pasta_math::linalg::Matrix;
use pasta_math::Zp;

/// Streaming generator of the rows of an invertible matrix.
///
/// Holds only the seed row `α` and the most recent row — the same minimal
/// two-row storage the hardware uses (Fig. 5) so the matrix never needs to
/// be materialized.
///
/// # Examples
///
/// ```
/// use pasta_core::matrix::RowGenerator;
/// use pasta_math::{Zp, Modulus};
/// let zp = Zp::new(Modulus::PASTA_17_BIT)?;
/// let seed = vec![3u64, 1, 4, 1];
/// let mut gen = RowGenerator::new(zp, seed.clone());
/// assert_eq!(gen.next_row().to_vec(), seed); // row 0 is α itself
/// let row1 = gen.next_row().to_vec();
/// assert_eq!(row1[0], zp.mul(seed[3], seed[0]));
/// # Ok::<(), pasta_math::MathError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RowGenerator {
    zp: Zp,
    seed: Vec<u64>,
    current: Vec<u64>,
    /// Scratch buffer for the next row (avoids per-row allocation).
    next: Vec<u64>,
    emitted: usize,
}

impl RowGenerator {
    /// Creates a generator from the seed row `α`.
    ///
    /// # Panics
    ///
    /// Panics if the seed is empty or `α_0 == 0` (the sampler never
    /// produces such seeds; see
    /// [`XofSampler::next_matrix_seed`](crate::sampler::XofSampler::next_matrix_seed)).
    #[must_use]
    pub fn new(zp: Zp, seed: Vec<u64>) -> Self {
        assert!(!seed.is_empty(), "matrix seed row must be nonempty");
        assert_ne!(
            seed[0], 0,
            "matrix seed row must start with a nonzero element"
        );
        let t = seed.len();
        RowGenerator {
            zp,
            current: seed.clone(),
            next: vec![0; t],
            seed,
            emitted: 0,
        }
    }

    /// Dimension `t` of the matrix.
    #[must_use]
    pub fn t(&self) -> usize {
        self.seed.len()
    }

    /// Number of rows emitted so far.
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Produces the next row (row 0 is the seed itself).
    ///
    /// The returned slice is valid until the next call. The generator can
    /// run past `t` rows (the recurrence is well defined), but a full
    /// matrix uses exactly rows `0..t`.
    pub fn next_row(&mut self) -> &[u64] {
        if self.emitted > 0 {
            let t = self.t();
            let last = self.current[t - 1];
            self.next[0] = self.zp.mul(last, self.seed[0]);
            for c in 1..t {
                self.next[c] = self.zp.mac(last, self.seed[c], self.current[c - 1]);
            }
            std::mem::swap(&mut self.current, &mut self.next);
        }
        self.emitted += 1;
        &self.current
    }

    /// Materializes the full `t × t` matrix (software/debug path; the
    /// hardware never does this).
    ///
    /// # Panics
    ///
    /// Never in practice: the generator emits exactly `t` rows of `t`
    /// elements.
    #[must_use]
    pub fn into_matrix(mut self) -> Matrix {
        let t = self.t();
        let mut data = Vec::with_capacity(t * t);
        // Restart from row 0 regardless of prior iteration.
        self.current = self.seed.clone();
        self.emitted = 0;
        for _ in 0..t {
            data.extend_from_slice(self.next_row());
        }
        // audit: allow(panic, reason = "t rows of t elements were just generated, so the dimensions always match")
        Matrix::from_rows(t, t, data).expect("dimensions are consistent by construction")
    }
}

/// Streaming matrix–vector product: multiplies the generated matrix by
/// `x` without materializing the matrix, mirroring the hardware's
/// generate-row-then-dot-product pipeline (Fig. 5).
///
/// # Panics
///
/// Panics if `x.len()` differs from the generator dimension.
#[must_use]
pub fn streamed_mat_vec(gen: &mut RowGenerator, x: &[u64]) -> Vec<u64> {
    let t = gen.t();
    assert_eq!(
        x.len(),
        t,
        "state vector length must equal matrix dimension"
    );
    let zp = gen.zp;
    (0..t)
        .map(|_| pasta_math::linalg::dot(&zp, gen.next_row(), x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PastaParams;
    use crate::sampler::XofSampler;
    use pasta_math::linalg::Matrix;
    use pasta_math::{Modulus, Zp};
    use proptest::prelude::*;

    fn zp17() -> Zp {
        Zp::new(Modulus::PASTA_17_BIT).unwrap()
    }

    /// Brute-force reference: explicitly build the companion matrix and
    /// multiply.
    fn reference_matrix(zp: &Zp, seed: &[u64]) -> Matrix {
        let t = seed.len();
        let mut companion = Matrix::zero(t, t);
        for r in 0..t - 1 {
            companion.set(r, r + 1, 1);
        }
        for (c, &sc) in seed.iter().enumerate() {
            companion.set(t - 1, c, sc);
        }
        let mut rows = Vec::with_capacity(t * t);
        let mut row = seed.to_vec();
        for j in 0..t {
            rows.extend_from_slice(&row);
            if j + 1 < t {
                // row · companion
                let as_mat = Matrix::from_rows(1, t, row.clone()).unwrap();
                row = as_mat.mul_mat(zp, &companion).unwrap().row(0).to_vec();
            }
        }
        Matrix::from_rows(t, t, rows).unwrap()
    }

    #[test]
    fn generator_matches_companion_reference() {
        let zp = zp17();
        let seed = vec![5u64, 0, 65_536, 7, 123, 9_999, 1, 2];
        let fast = RowGenerator::new(zp, seed.clone()).into_matrix();
        let slow = reference_matrix(&zp, &seed);
        assert_eq!(fast, slow);
    }

    #[test]
    fn generated_matrices_are_invertible() {
        let zp = zp17();
        let params = PastaParams::pasta4_17bit();
        for counter in 0..10 {
            let mut s = XofSampler::for_block(&params, 0xDEAD_BEEF, counter);
            let seed = s.next_matrix_seed(16);
            let m = RowGenerator::new(zp, seed).into_matrix();
            assert!(
                m.is_invertible(&zp),
                "matrix for counter {counter} must be invertible"
            );
        }
    }

    #[test]
    fn full_size_pasta4_matrix_is_invertible() {
        let zp = zp17();
        let params = PastaParams::pasta4_17bit();
        let mut s = XofSampler::for_block(&params, 1, 0);
        let seed = s.next_matrix_seed(32);
        let m = RowGenerator::new(zp, seed).into_matrix();
        assert!(m.is_invertible(&zp));
    }

    #[test]
    fn streamed_matvec_equals_materialized() {
        let zp = zp17();
        let params = PastaParams::pasta4_17bit();
        let mut s = XofSampler::for_block(&params, 77, 0);
        let seed = s.next_matrix_seed(32);
        let x = s.next_vector(32);
        let streamed = streamed_mat_vec(&mut RowGenerator::new(zp, seed.clone()), &x);
        let materialized = RowGenerator::new(zp, seed)
            .into_matrix()
            .mul_vec(&zp, &x)
            .unwrap();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn two_row_storage_is_enough() {
        // The generator must not need row j-2: emitting rows one at a time
        // and collecting equals materializing.
        let zp = zp17();
        let seed = vec![9u64, 8, 7, 6, 5];
        let mut gen = RowGenerator::new(zp, seed.clone());
        let mut collected = Vec::new();
        for _ in 0..5 {
            collected.extend_from_slice(gen.next_row());
        }
        let m = RowGenerator::new(zp, seed).into_matrix();
        let expect: Vec<u64> = (0..5).flat_map(|r| m.row(r).to_vec()).collect();
        assert_eq!(collected, expect);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_leading_seed_rejected() {
        let _ = RowGenerator::new(zp17(), vec![0u64, 1, 2, 3]);
    }

    proptest! {
        /// Random nonzero-leading seeds of size 8 are invertible in the
        /// overwhelming majority of cases; we assert it outright for the
        /// sampled cases (failure probability ~ 1/p per case).
        #[test]
        fn prop_random_seeds_invertible(seed0 in 1u64..65_537,
                                        rest in proptest::collection::vec(0u64..65_537, 7)) {
            let zp = zp17();
            let mut seed = vec![seed0];
            seed.extend(rest);
            let m = RowGenerator::new(zp, seed).into_matrix();
            prop_assert!(m.is_invertible(&zp));
        }

        #[test]
        fn prop_streamed_matches_materialized(seed0 in 1u64..65_537,
                                              rest in proptest::collection::vec(0u64..65_537, 7),
                                              x in proptest::collection::vec(0u64..65_537, 8)) {
            let zp = zp17();
            let mut seed = vec![seed0];
            seed.extend(rest);
            let streamed = streamed_mat_vec(&mut RowGenerator::new(zp, seed.clone()), &x);
            let materialized = RowGenerator::new(zp, seed).into_matrix()
                .mul_vec(&zp, &x).unwrap();
            prop_assert_eq!(streamed, materialized);
        }
    }
}
