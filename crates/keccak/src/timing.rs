//! Clock-cycle model of the hardware XOF core.
//!
//! §IV.B of the paper develops the XOF cost model that dominates the whole
//! design:
//!
//! - one Keccak permutation = **24 clock cycles** (one round per cycle);
//! - one permutation yields **21 usable 64-bit words** (SHAKE128 rate
//!   1,344 bits);
//! - a *naive* core serializes permutation and squeeze: each 21-word batch
//!   costs 24 + 21 cycles;
//! - the adopted *squeeze-parallel* core (KaLi-style, two 1,600-bit state
//!   buffers) hides the permutation behind the squeeze of the previous
//!   batch, leaving only **21 + 5 cycles** per batch.
//!
//! With the ≈2× rejection rate of `p = 65537`, PASTA-4 needs on average 60
//! permutations → `60 × (21 + 5) = 1,560` cycles of XOF time, and PASTA-3
//! needs ≈186 → `4,836` cycles. These formulas are exposed here and
//! cross-checked against the cycle-accurate simulator in `pasta-hw`.

/// Words of usable output per SHAKE128 squeeze batch.
pub const WORDS_PER_BATCH: u64 = 21;
/// Clock cycles per Keccak-f\[1600\] permutation in the hardware core.
pub const CYCLES_PER_PERMUTATION: u64 = 24;
/// Extra cycles between squeeze batches in the squeeze-parallel core.
pub const SQUEEZE_PARALLEL_GAP: u64 = 5;

/// Which hardware XOF core variant is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XofCoreKind {
    /// Permutation and squeeze serialized: `24 + 21` cycles per batch.
    Naive,
    /// Permutation overlapped with the previous squeeze: `21 + 5` cycles
    /// per batch (requires a second 1,600-bit state buffer).
    SqueezeParallel,
}

/// Cycle cost model for a given XOF core variant.
///
/// # Examples
///
/// ```
/// use pasta_keccak::{XofCoreKind, XofTiming};
/// let t = XofTiming::new(XofCoreKind::SqueezeParallel);
/// // The paper's PASTA-4 estimate: 60 batches -> 1,560 cycles.
/// assert_eq!(t.cycles_for_batches(60), 1_560);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XofTiming {
    kind: XofCoreKind,
}

impl XofTiming {
    /// Creates a timing model for the chosen core.
    #[must_use]
    pub fn new(kind: XofCoreKind) -> Self {
        XofTiming { kind }
    }

    /// The modelled core variant.
    #[must_use]
    pub fn kind(&self) -> XofCoreKind {
        self.kind
    }

    /// Cycles per squeeze batch of 21 words.
    #[must_use]
    pub fn cycles_per_batch(&self) -> u64 {
        match self.kind {
            XofCoreKind::Naive => CYCLES_PER_PERMUTATION + WORDS_PER_BATCH,
            XofCoreKind::SqueezeParallel => WORDS_PER_BATCH + SQUEEZE_PARALLEL_GAP,
        }
    }

    /// Cycles to produce `batches` squeeze batches.
    #[must_use]
    pub fn cycles_for_batches(&self, batches: u64) -> u64 {
        batches * self.cycles_per_batch()
    }

    /// Cycles to produce at least `words` raw 64-bit words.
    #[must_use]
    pub fn cycles_for_words(&self, words: u64) -> u64 {
        self.cycles_for_batches(words.div_ceil(WORDS_PER_BATCH))
    }

    /// Expected number of raw words (before rejection) needed for
    /// `coefficients` accepted samples at the given acceptance rate, and
    /// the resulting expected cycle count.
    ///
    /// `acceptance` is the probability that one masked draw lands below
    /// `p` (e.g. ≈0.5 for `p = 65537`).
    ///
    /// # Panics
    ///
    /// Panics if `acceptance` is not within `(0, 1]`.
    #[must_use]
    pub fn expected_cycles_for_samples(&self, coefficients: u64, acceptance: f64) -> u64 {
        assert!(
            acceptance > 0.0 && acceptance <= 1.0,
            "acceptance must be in (0, 1]"
        );
        // The ceiling of a positive, finite word count fits u64.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let words = (coefficients as f64 / acceptance).ceil() as u64;
        self.cycles_for_words(words)
    }

    /// Area overhead of the core in 1,600-bit state buffers.
    #[must_use]
    pub fn state_buffers(&self) -> u32 {
        match self.kind {
            XofCoreKind::Naive => 1,
            XofCoreKind::SqueezeParallel => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pasta4_xof_budget() {
        // §IV.B: "the Keccak round function alone consumes 1,440 cc
        // (60 × 24)" for the naive permutation time, and the parallel core
        // leaves 60 · (21 + 5) = 1,560 cc.
        assert_eq!(60 * CYCLES_PER_PERMUTATION, 1_440);
        let parallel = XofTiming::new(XofCoreKind::SqueezeParallel);
        assert_eq!(parallel.cycles_for_batches(60), 1_560);
    }

    #[test]
    fn paper_pasta3_xof_budget() {
        // §IV.B: 186 Keccak calls -> 186 · (21 + 5) = 4,836 cc.
        let parallel = XofTiming::new(XofCoreKind::SqueezeParallel);
        assert_eq!(parallel.cycles_for_batches(186), 4_836);
    }

    #[test]
    fn naive_core_nearly_doubles_cost() {
        // §IV.B: "the clock cycle almost doubles for a naive Keccak
        // implementation".
        let naive = XofTiming::new(XofCoreKind::Naive);
        let parallel = XofTiming::new(XofCoreKind::SqueezeParallel);
        let ratio = naive.cycles_for_batches(60) as f64 / parallel.cycles_for_batches(60) as f64;
        assert!(ratio > 1.7 && ratio < 1.8, "naive/parallel = {ratio}");
        assert_eq!(naive.state_buffers(), 1);
        assert_eq!(parallel.state_buffers(), 2);
    }

    #[test]
    fn words_round_up_to_batches() {
        let t = XofTiming::new(XofCoreKind::SqueezeParallel);
        assert_eq!(t.cycles_for_words(1), t.cycles_per_batch());
        assert_eq!(t.cycles_for_words(21), t.cycles_per_batch());
        assert_eq!(t.cycles_for_words(22), 2 * t.cycles_per_batch());
    }

    #[test]
    fn rejection_doubles_word_demand() {
        let t = XofTiming::new(XofCoreKind::SqueezeParallel);
        let ideal = t.expected_cycles_for_samples(640, 1.0);
        let rejected = t.expected_cycles_for_samples(640, 0.5);
        assert!(rejected >= 2 * ideal - t.cycles_per_batch());
    }

    #[test]
    #[should_panic(expected = "acceptance")]
    fn invalid_acceptance_panics() {
        let _ = XofTiming::new(XofCoreKind::Naive).expected_cycles_for_samples(10, 0.0);
    }
}
