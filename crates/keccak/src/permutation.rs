//! The Keccak-f\[1600\] permutation (FIPS 202).
//!
//! The state is 25 lanes of 64 bits, indexed `A[x + 5y]`. One permutation
//! is 24 rounds of θ, ρ, π, χ, ι — which the hardware executes in 24 clock
//! cycles (one round per cycle, paper §IV.B).

/// Number of rounds in Keccak-f\[1600\] (and clock cycles per permutation in
/// the one-round-per-cycle hardware core).
pub const KECCAK_ROUNDS: usize = 24;

/// Round constants for the ι step.
const RC: [u64; KECCAK_ROUNDS] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets `r[x][y]` for the ρ step.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Applies one Keccak-f\[1600\] round (θ, ρ, π, χ, ι) in place.
///
/// Exposed so the cycle-accurate hardware model can step the core one
/// round (= one clock cycle) at a time.
pub fn keccak_round(state: &mut [u64; 25], round: usize) {
    debug_assert!(round < KECCAK_ROUNDS);
    // θ
    let mut c = [0u64; 5];
    for (x, cx) in c.iter_mut().enumerate() {
        *cx = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
    }
    for x in 0..5 {
        let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        for y in 0..5 {
            state[x + 5 * y] ^= d;
        }
    }
    // ρ and π
    let mut b = [0u64; 25];
    for x in 0..5 {
        for y in 0..5 {
            let nx = y;
            let ny = (2 * x + 3 * y) % 5;
            b[nx + 5 * ny] = state[x + 5 * y].rotate_left(RHO[x][y]);
        }
    }
    // χ
    for y in 0..5 {
        for x in 0..5 {
            state[x + 5 * y] = b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
        }
    }
    // ι
    state[0] ^= RC[round];
}

/// Applies the full 24-round Keccak-f\[1600\] permutation in place.
///
/// # Examples
///
/// ```
/// use pasta_keccak::keccak_f1600;
/// let mut state = [0u64; 25];
/// keccak_f1600(&mut state);
/// assert_eq!(state[0], 0xF125_8F79_40E1_DDE7);
/// ```
pub fn keccak_f1600(state: &mut [u64; 25]) {
    for round in 0..KECCAK_ROUNDS {
        keccak_round(state, round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: Keccak-f\[1600\] applied to the all-zero state
    /// (the standard KAT distributed with the Keccak reference code).
    #[test]
    fn zero_state_known_answer() {
        let mut state = [0u64; 25];
        keccak_f1600(&mut state);
        assert_eq!(state[0], 0xF125_8F79_40E1_DDE7);
        assert_eq!(state[1], 0x84D5_CCF9_33C0_478A);
        assert_eq!(state[2], 0xD598_261E_A65A_A9EE);
        assert_eq!(state[3], 0xBD15_4730_6F80_494D);
        assert_eq!(state[4], 0x8B28_4E05_6253_D057);
    }

    #[test]
    fn permutation_is_not_identity_and_diffuses() {
        let mut a = [0u64; 25];
        let mut b = [0u64; 25];
        b[0] = 1; // single-bit difference
        keccak_f1600(&mut a);
        keccak_f1600(&mut b);
        let differing_lanes = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        assert_eq!(
            differing_lanes, 25,
            "one input bit must diffuse to all lanes"
        );
    }

    #[test]
    fn stepping_rounds_equals_full_permutation() {
        let mut full = [0x1234_5678_9abc_def0u64; 25];
        let mut stepped = full;
        keccak_f1600(&mut full);
        for round in 0..KECCAK_ROUNDS {
            keccak_round(&mut stepped, round);
        }
        assert_eq!(full, stepped);
    }

    #[test]
    fn double_permutation_differs_from_single() {
        let mut once = [7u64; 25];
        keccak_f1600(&mut once);
        let mut twice = once;
        keccak_f1600(&mut twice);
        assert_ne!(once, twice);
    }
}
