//! A generic incremental Keccak sponge.

use crate::permutation::keccak_f1600;

/// An incremental Keccak\[1600\] sponge with a configurable rate.
///
/// The sponge absorbs bytes into the rate portion of the state, permuting
/// whenever the rate block fills, and squeezes bytes out of the rate
/// portion, permuting whenever it is exhausted.
///
/// # Examples
///
/// ```
/// use pasta_keccak::Sponge;
/// let mut s = Sponge::new(168, 0x1F); // SHAKE128 parameters
/// s.absorb(b"seed");
/// s.pad_and_switch();
/// let mut out = [0u8; 16];
/// s.squeeze(&mut out);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sponge {
    /// The Keccak state. When the sponge is keyed (PASTA keystream
    /// derivation absorbs the master key), every lane is secret.
    // audit: secret
    state: [u64; 25],
    rate: usize,
    domain: u8,
    /// Byte position within the current rate block.
    position: usize,
    squeezing: bool,
    /// Number of Keccak permutations executed so far (for the timing model
    /// and the paper's §IV.B Keccak-call statistics).
    permutations: u64,
}

impl Sponge {
    /// Creates a sponge with the given `rate` in bytes and domain
    /// separation byte (`0x1F` for SHAKE).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero, not a multiple of 8, or ≥ 200 bytes.
    #[must_use]
    pub fn new(rate: usize, domain: u8) -> Self {
        assert!(
            rate > 0 && rate < 200 && rate.is_multiple_of(8),
            "invalid sponge rate {rate}"
        );
        Sponge {
            state: [0; 25],
            rate,
            domain,
            position: 0,
            squeezing: false,
            permutations: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Sponge::pad_and_switch`].
    pub fn absorb(&mut self, data: &[u8]) {
        assert!(
            !self.squeezing,
            "cannot absorb after switching to squeeze phase"
        );
        for &byte in data {
            self.xor_byte(self.position, byte);
            self.position += 1;
            if self.position == self.rate {
                self.permute();
            }
        }
    }

    /// Applies the pad10*1 padding (with the domain byte) and switches to
    /// the squeeze phase.
    ///
    /// # Panics
    ///
    /// Panics if the sponge is already squeezing (absorb-after-finalize
    /// is a caller bug).
    pub fn pad_and_switch(&mut self) {
        assert!(!self.squeezing, "already in squeeze phase");
        self.xor_byte(self.position, self.domain);
        self.xor_byte(self.rate - 1, 0x80);
        self.permute();
        self.squeezing = true;
    }

    /// Squeezes `out.len()` bytes from the sponge.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Sponge::pad_and_switch`].
    pub fn squeeze(&mut self, out: &mut [u8]) {
        assert!(self.squeezing, "must pad_and_switch before squeezing");
        for byte in out.iter_mut() {
            if self.position == self.rate {
                self.permute();
            }
            *byte = self.read_byte(self.position);
            self.position += 1;
        }
    }

    /// Squeezes the next 64-bit word (little-endian), the granularity the
    /// hardware rejection sampler consumes.
    #[must_use]
    pub fn squeeze_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.squeeze(&mut buf);
        u64::from_le_bytes(buf)
    }

    /// Number of Keccak-f\[1600\] permutations executed so far.
    #[must_use]
    pub fn permutations(&self) -> u64 {
        self.permutations
    }

    /// The sponge rate in bytes.
    #[must_use]
    pub fn rate(&self) -> usize {
        self.rate
    }

    fn permute(&mut self) {
        keccak_f1600(&mut self.state);
        self.permutations += 1;
        self.position = 0;
    }

    fn xor_byte(&mut self, pos: usize, byte: u8) {
        let lane = pos / 8;
        let shift = (pos % 8) * 8;
        self.state[lane] ^= u64::from(byte) << shift;
    }

    fn read_byte(&self, pos: usize) -> u8 {
        let lane = pos / 8;
        let shift = (pos % 8) * 8;
        // Byte extraction: the truncation to the low 8 bits is the point.
        #[allow(clippy::cast_possible_truncation)]
        {
            (self.state[lane] >> shift) as u8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_absorb_equals_oneshot() {
        let data = (0u8..=255).collect::<Vec<_>>();
        let mut oneshot = Sponge::new(168, 0x1F);
        oneshot.absorb(&data);
        oneshot.pad_and_switch();
        let mut a = [0u8; 64];
        oneshot.squeeze(&mut a);

        let mut incremental = Sponge::new(168, 0x1F);
        for chunk in data.chunks(7) {
            incremental.absorb(chunk);
        }
        incremental.pad_and_switch();
        let mut b = [0u8; 64];
        incremental.squeeze(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_squeeze_equals_oneshot() {
        let mut oneshot = Sponge::new(168, 0x1F);
        oneshot.absorb(b"x");
        oneshot.pad_and_switch();
        let mut a = vec![0u8; 400]; // crosses two rate boundaries
        oneshot.squeeze(&mut a);

        let mut incremental = Sponge::new(168, 0x1F);
        incremental.absorb(b"x");
        incremental.pad_and_switch();
        let mut b = Vec::new();
        for _ in 0..40 {
            let mut chunk = [0u8; 10];
            incremental.squeeze(&mut chunk);
            b.extend_from_slice(&chunk);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn rate_boundary_absorption_permutes() {
        let mut s = Sponge::new(168, 0x1F);
        s.absorb(&[0u8; 167]);
        assert_eq!(s.permutations(), 0);
        s.absorb(&[0u8]);
        assert_eq!(s.permutations(), 1);
    }

    #[test]
    fn permutation_count_during_squeeze() {
        let mut s = Sponge::new(168, 0x1F);
        s.pad_and_switch();
        assert_eq!(s.permutations(), 1);
        let mut buf = vec![0u8; 168];
        s.squeeze(&mut buf); // exactly one block: no extra permutation yet
        assert_eq!(s.permutations(), 1);
        s.squeeze(&mut [0u8]);
        assert_eq!(s.permutations(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot absorb")]
    fn absorb_after_squeeze_panics() {
        let mut s = Sponge::new(168, 0x1F);
        s.pad_and_switch();
        s.absorb(b"late");
    }

    #[test]
    #[should_panic(expected = "invalid sponge rate")]
    fn bad_rate_panics() {
        let _ = Sponge::new(7, 0x1F);
    }
}
