//! SHAKE128 and SHAKE256 extendable-output functions (FIPS 202).

use crate::sponge::Sponge;

/// SHAKE128 rate in bytes (1,344 bits — 21 words of 64 bits, the squeeze
/// batch size the paper's throughput analysis is built on).
pub const SHAKE128_RATE: usize = 168;
/// SHAKE256 rate in bytes (1,088 bits).
pub const SHAKE256_RATE: usize = 136;
/// SHAKE domain-separation byte.
const SHAKE_DOMAIN: u8 = 0x1F;

/// The SHAKE128 XOF in its absorb phase.
///
/// # Examples
///
/// ```
/// use pasta_keccak::Shake128;
/// let mut xof = Shake128::new();
/// xof.absorb(b"");
/// let mut out = [0u8; 32];
/// xof.finalize().read(&mut out);
/// assert_eq!(out[..4], [0x7f, 0x9c, 0x2b, 0xa4]);
/// ```
#[derive(Debug, Clone)]
pub struct Shake128 {
    sponge: Sponge,
}

/// The SHAKE256 XOF in its absorb phase.
#[derive(Debug, Clone)]
pub struct Shake256 {
    sponge: Sponge,
}

macro_rules! impl_shake {
    ($name:ident, $rate:expr) => {
        impl $name {
            /// Creates a fresh XOF instance.
            #[must_use]
            pub fn new() -> Self {
                $name {
                    sponge: Sponge::new($rate, SHAKE_DOMAIN),
                }
            }

            /// Absorbs input bytes (may be called repeatedly).
            pub fn absorb(&mut self, data: &[u8]) {
                self.sponge.absorb(data);
            }

            /// Finalizes the absorb phase and returns an unbounded reader.
            /// Finalization consumes the XOF, so "absorb after finalize"
            /// is unrepresentable rather than a runtime panic.
            #[must_use]
            pub fn finalize(mut self) -> XofReader {
                self.sponge.pad_and_switch();
                XofReader {
                    sponge: self.sponge,
                }
            }

            /// One-shot convenience: absorb `data`, squeeze `n` bytes.
            #[must_use]
            pub fn digest(data: &[u8], n: usize) -> Vec<u8> {
                let mut xof = Self::new();
                xof.absorb(data);
                let mut out = vec![0u8; n];
                xof.finalize().read(&mut out);
                out
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

impl_shake!(Shake128, SHAKE128_RATE);
impl_shake!(Shake256, SHAKE256_RATE);

/// The squeeze phase of a SHAKE XOF: an unbounded byte/word stream.
#[derive(Debug, Clone)]
pub struct XofReader {
    sponge: Sponge,
}

impl XofReader {
    /// Fills `out` with the next output bytes.
    pub fn read(&mut self, out: &mut [u8]) {
        self.sponge.squeeze(out);
    }

    /// Returns the next 64-bit little-endian word — the granularity at
    /// which the hardware rejection sampler consumes the XOF (§III.A).
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        self.sponge.squeeze_u64()
    }

    /// Number of Keccak permutations executed so far (absorb + squeeze),
    /// feeding the §IV.B Keccak-call statistics.
    #[must_use]
    pub fn permutations(&self) -> u64 {
        self.sponge.permutations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        use std::fmt::Write;
        bytes.iter().fold(String::new(), |mut s, b| {
            let _ = write!(s, "{b:02x}");
            s
        })
    }

    /// FIPS 202 known-answer: SHAKE128 of the empty string.
    #[test]
    fn shake128_empty_kat() {
        let out = Shake128::digest(b"", 32);
        assert_eq!(
            hex(&out),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"
        );
    }

    /// FIPS 202 known-answer: SHAKE256 of the empty string.
    #[test]
    fn shake256_empty_kat() {
        let out = Shake256::digest(b"", 64);
        assert_eq!(
            hex(&out),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f\
             d75dc4ddd8c0f200cb05019d67b592f6fc821c49479ab48640292eacb3b7c4be"
        );
    }

    #[test]
    fn reading_in_pieces_matches_oneshot() {
        let oneshot = Shake128::digest(b"pasta", 100);
        let mut xof = Shake128::new();
        xof.absorb(b"pas");
        xof.absorb(b"ta");
        let mut reader = xof.finalize();
        let mut pieces = Vec::new();
        for n in [1usize, 2, 3, 10, 84] {
            let mut buf = vec![0u8; n];
            reader.read(&mut buf);
            pieces.extend_from_slice(&buf);
        }
        assert_eq!(pieces, oneshot);
    }

    #[test]
    fn next_u64_is_little_endian_prefix() {
        let bytes = Shake128::digest(b"seed", 8);
        let mut xof = Shake128::new();
        xof.absorb(b"seed");
        let word = xof.finalize().next_u64();
        assert_eq!(word, u64::from_le_bytes(bytes.try_into().unwrap()));
    }

    #[test]
    fn distinct_inputs_give_distinct_streams() {
        assert_ne!(Shake128::digest(b"a", 32), Shake128::digest(b"b", 32));
        assert_ne!(Shake128::digest(b"", 32), Shake256::digest(b"", 32));
    }

    #[test]
    fn one_permutation_per_21_words() {
        // SHAKE128 rate = 21 × 64-bit words: squeezing word 22 must cost a
        // second squeeze permutation (the §IV.B accounting).
        let mut xof = Shake128::new();
        xof.absorb(b"x");
        let mut reader = xof.finalize();
        assert_eq!(reader.permutations(), 1);
        for _ in 0..21 {
            let _ = reader.next_u64();
        }
        assert_eq!(reader.permutations(), 1);
        let _ = reader.next_u64();
        assert_eq!(reader.permutations(), 2);
    }
}
