//! Keccak-f\[1600\] and the SHAKE extendable-output functions.
//!
//! PASTA (and every modern HHE-enabling cipher) derives its round material
//! — invertible matrices and round constants — from SHAKE128, "a giant
//! building block even in post-quantum schemes" (paper §I.A). The
//! cryptoprocessor's performance is dominated by this XOF: one Keccak
//! permutation takes 24 clock cycles and yields 21 usable 64-bit words at
//! the SHAKE128 rate of 1,344 bits (§IV.B).
//!
//! This crate provides:
//!
//! - [`permutation`]: the bit-exact Keccak-f\[1600\] permutation;
//! - [`sponge`]: a generic incremental sponge;
//! - [`shake`]: [`Shake128`]/[`Shake256`] with incremental absorb and an
//!   unbounded [`XofReader`] squeeze phase;
//! - [`timing`]: the clock-cycle model of the two hardware XOF variants the
//!   paper discusses — the naive serial core and the squeeze-parallel core
//!   (KaLi-style) that the design adopts (21 + 5 cycles between squeeze
//!   batches, at the cost of two 1,600-bit state buffers).
//!
//! # Examples
//!
//! ```
//! use pasta_keccak::Shake128;
//!
//! let mut xof = Shake128::new();
//! xof.absorb(b"nonce and counter");
//! let mut reader = xof.finalize();
//! let word: u64 = reader.next_u64();
//! let more: u64 = reader.next_u64();
//! assert_ne!(word, more);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Rate and statistics reporting deliberately casts u64/u128 counters to
// f64; the magnitudes involved stay far below 2^52, where f64 is exact.
#![allow(clippy::cast_precision_loss)]

pub mod permutation;
pub mod shake;
pub mod sponge;
pub mod timing;

pub use permutation::{keccak_f1600, KECCAK_ROUNDS};
pub use shake::{Shake128, Shake256, XofReader};
pub use sponge::Sponge;
pub use timing::{XofCoreKind, XofTiming};
