//! Fixture-file tests: each `tests/fixtures/*.rs.txt` exercises one
//! check, and the assertions pin the *exact* `(line, check)` locations
//! the audit must report — both the positives and the suppressed or
//! out-of-scope negatives.
//!
//! The fixtures carry a `.txt` extension so the workspace walk (and
//! rustc) never picks them up as real sources; the tests parse them
//! under a synthetic kernel-crate path instead and run the full
//! workspace pipeline (lexer → parser → call graph → taint/ordering/
//! precondition passes) over the one-file "workspace".

use pasta_audit::analyze::SourceFile;
use pasta_audit::workspace_checks;

/// Runs every check on `src` as if it lived at `rel`, returning sorted
/// `(line, check-label)` pairs.
fn run(rel: &str, src: &str) -> Vec<(usize, &'static str)> {
    let sf = SourceFile::parse(rel, src);
    let mut found: Vec<(usize, &'static str)> = workspace_checks(&[sf])
        .into_iter()
        .map(|f| (f.line, f.check.label()))
        .collect();
    found.sort_unstable();
    found
}

#[test]
fn secret_flow_locations() {
    let found = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/secret_flow.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (10, "secret-flow"), // if k.elements[0] > 7
            (18, "secret-flow"), // table[k.elements[0] as usize]
            (22, "secret-flow"), // match k.elements[0]
            (38, "secret-flow"), // if key[0] == 0 under audit: secret(key)
        ]
    );
}

#[test]
fn secret_flow_only_applies_to_secret_crates() {
    // The same source under a non-secret crate path reports nothing.
    let found = run(
        "crates/pipeline/src/fixture.rs",
        include_str!("fixtures/secret_flow.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn interprocedural_taint_locations() {
    // The secret reaches the branch only through two layers of calls
    // (`leak_through_two_calls` → `load` → `mix`): an annotation-local
    // checker that inspects one function at a time cannot see it.
    let found = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/taint_interproc.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (18, "secret-flow"), // if x > 7, x = load(k) = mix(k.elements[0])
            (59, "secret-flow"), // if y == 0, y through the ping/pong cycle
        ],
        "sanitizes(return) must declassify, rebinding must shadow, and \
         the ping/pong call-graph cycle must still converge and flag"
    );
}

#[test]
fn taint_crosses_files_through_the_call_graph() {
    let key_rs = "pub struct Key {\n    // audit: secret\n    elements: Vec<u64>,\n}\n\npub fn first(k: &Key) -> u64 {\n    k.elements[0]\n}\n";
    let user_rs = "pub fn branch(k: &Key) -> u64 {\n    if first(k) > 0 {\n        return 1;\n    }\n    0\n}\n";
    let files = vec![
        SourceFile::parse("crates/core/src/key.rs", key_rs),
        SourceFile::parse("crates/core/src/user.rs", user_rs),
    ];
    let found: Vec<(String, usize, &'static str)> = workspace_checks(&files)
        .into_iter()
        .map(|f| (f.file, f.line, f.check.label()))
        .collect();
    assert_eq!(
        found,
        vec![("crates/core/src/user.rs".to_string(), 2, "secret-flow")]
    );
}

#[test]
fn ordering_locations() {
    let found = run(
        "crates/par/src/fixture.rs",
        include_str!("fixtures/ordering.rs.txt"),
    );
    // Line 10 (counter allowlist), 19 (audit: allow) and 23 (SeqCst)
    // must stay silent.
    assert_eq!(found, vec![(14, "ordering")]);
}

#[test]
fn ordering_check_is_scoped_to_the_parallel_layer() {
    let found = run(
        "crates/cli/src/fixture.rs",
        include_str!("fixtures/ordering.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn unsafe_precondition_locations() {
    let found = run(
        "crates/math/src/simd.rs",
        include_str!("fixtures/unsafe_precondition.rs.txt"),
    );
    // Line 13 (assert in the same fn), 20 (debug_assert in the caller)
    // and 32 (capability-class SAFETY) must stay silent.
    assert_eq!(found, vec![(5, "unsafe-precondition")]);
}

#[test]
fn panic_locations() {
    let found = run(
        "crates/hw/src/fixture.rs",
        include_str!("fixtures/panics.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (4, "panic"),  // x.unwrap()
            (8, "panic"),  // x.expect("present")
            (13, "panic"), // panic!("boom")
            (15, "panic"), // unreachable!()
        ]
    );
}

#[test]
fn panic_check_skips_non_kernel_crates() {
    let found = run(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/panics.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn unsafe_locations() {
    let found = run(
        "crates/par/src/fixture.rs",
        include_str!("fixtures/unsafe_hygiene.rs.txt"),
    );
    assert_eq!(found, vec![(4, "unsafe")]);
}

#[test]
fn simd_intrinsics_unsafe_and_cast_coverage() {
    // The fixture mirrors `pasta_math::simd::avx2`: run it under the
    // real simd-module path to pin that intrinsics blocks without a
    // `// SAFETY:` comment are flagged there, a preceding `// SAFETY:`
    // downgrades them to the precondition check (which wants an assert
    // backing the stated lane bounds), and narrowing casts stay audited.
    let found = run(
        "crates/math/src/simd.rs",
        include_str!("fixtures/simd_intrinsics.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (8, "unsafe"),               // _mm256_loadu_si256 without SAFETY
            (9, "unsafe"),               // _mm256_storeu_si256 without SAFETY
            (17, "unsafe-precondition"), // SAFETY states lane bounds, no assert
            (19, "unsafe-precondition"), // same
            (23, "cast"),                // u64 -> u32 lane extraction
        ]
    );
}

#[test]
fn cast_locations() {
    let found = run(
        "crates/math/src/fixture.rs",
        include_str!("fixtures/casts.rs.txt"),
    );
    assert_eq!(found, vec![(4, "cast")]);
}

#[test]
fn cast_check_is_scoped_to_the_arithmetic_kernels() {
    // hhe is a kernel crate for panics, but not a cast-audited file.
    let found = run(
        "crates/hhe/src/fixture.rs",
        include_str!("fixtures/casts.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn determinism_locations() {
    let found = run(
        "crates/hw/src/fixture.rs",
        include_str!("fixtures/determinism.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (4, "determinism"), // Instant::now()
            (8, "determinism"), // -> HashMap<u64, u64>
            (9, "determinism"), // HashMap::new()
        ]
    );
}

#[test]
fn determinism_check_skips_other_crates() {
    let found = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/determinism.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn malformed_annotations_do_not_suppress() {
    let found = run(
        "crates/hw/src/fixture.rs",
        include_str!("fixtures/annotations.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (4, "annotation"), // empty reason
            (5, "panic"),      // ...and the unwrap still fires
            (9, "annotation"), // unknown check name
            (10, "panic"),
            (14, "annotation"), // missing reason
            (15, "panic"),
        ]
    );
}

#[test]
fn allow_diagnostics_name_the_key_and_suggest_the_nearest_check() {
    let src = "pub fn f(x: Option<u64>) -> u64 {\n    // audit: allow(orderring, reason = \"typo\")\n    x.unwrap()\n}\n";
    let findings = workspace_checks(&[SourceFile::parse("crates/hw/src/fixture.rs", src)]);
    let ann = findings
        .iter()
        .find(|f| f.check.label() == "annotation")
        .expect("malformed allow must be diagnosed");
    assert!(
        ann.message.contains("unknown allow name `orderring`"),
        "message names the offending key: {}",
        ann.message
    );
    assert!(
        ann.message.contains("did you mean `ordering`?"),
        "message suggests the nearest valid check: {}",
        ann.message
    );

    let src2 = "pub fn f(x: Option<u64>) -> u64 {\n    // audit: allow(panic, reson = \"oops\")\n    x.unwrap()\n}\n";
    let findings2 = workspace_checks(&[SourceFile::parse("crates/hw/src/fixture.rs", src2)]);
    let ann2 = findings2
        .iter()
        .find(|f| f.check.label() == "annotation")
        .expect("bad key must be diagnosed");
    assert!(
        ann2.message.contains("unexpected key `reson`") && ann2.message.contains("`reason`"),
        "message names the bad key and the valid one: {}",
        ann2.message
    );
}
