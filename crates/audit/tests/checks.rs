//! Fixture-file tests: each `tests/fixtures/*.rs.txt` exercises one
//! check, and the assertions pin the *exact* `(line, check)` locations
//! the audit must report — both the positives and the suppressed or
//! out-of-scope negatives.
//!
//! The fixtures carry a `.txt` extension so the workspace walk (and
//! rustc) never picks them up as real sources; the tests lex them under
//! a synthetic kernel-crate path instead.

use pasta_audit::analyze::{check_file, collect_secrets, SourceFile};

/// Runs all checks on `src` as if it lived at `rel`, returning sorted
/// `(line, check-label)` pairs.
fn run(rel: &str, src: &str) -> Vec<(usize, &'static str)> {
    let sf = SourceFile::parse(rel, src);
    let secrets = collect_secrets([&sf]);
    let mut found: Vec<(usize, &'static str)> = check_file(&sf, &secrets)
        .into_iter()
        .map(|f| (f.line, f.check.label()))
        .collect();
    found.sort_unstable();
    found
}

#[test]
fn secret_flow_locations() {
    let found = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/secret_flow.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (10, "secret-flow"), // if k.elements[0] > 7
            (18, "secret-flow"), // table[k.elements[0] as usize]
            (22, "secret-flow"), // match k.elements.len()
            (38, "secret-flow"), // if key[0] == 0 under audit: secret(key)
        ]
    );
}

#[test]
fn secret_flow_only_applies_to_secret_crates() {
    // The same source under a non-secret crate path reports nothing.
    let found = run(
        "crates/pipeline/src/fixture.rs",
        include_str!("fixtures/secret_flow.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn panic_locations() {
    let found = run(
        "crates/hw/src/fixture.rs",
        include_str!("fixtures/panics.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (4, "panic"),  // x.unwrap()
            (8, "panic"),  // x.expect("present")
            (13, "panic"), // panic!("boom")
            (15, "panic"), // unreachable!()
        ]
    );
}

#[test]
fn panic_check_skips_non_kernel_crates() {
    let found = run(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/panics.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn unsafe_locations() {
    let found = run(
        "crates/par/src/fixture.rs",
        include_str!("fixtures/unsafe_hygiene.rs.txt"),
    );
    assert_eq!(found, vec![(4, "unsafe")]);
}

#[test]
fn simd_intrinsics_unsafe_and_cast_coverage() {
    // The fixture mirrors `pasta_math::simd::avx2`: run it under the
    // real simd-module path to pin that intrinsics blocks without a
    // `// SAFETY:` comment are flagged there, a preceding `// SAFETY:`
    // silences the check, and narrowing casts stay audited.
    let found = run(
        "crates/math/src/simd.rs",
        include_str!("fixtures/simd_intrinsics.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (8, "unsafe"), // _mm256_loadu_si256 without SAFETY
            (9, "unsafe"), // _mm256_storeu_si256 without SAFETY
            (23, "cast"),  // u64 -> u32 lane extraction
        ]
    );
}

#[test]
fn cast_locations() {
    let found = run(
        "crates/math/src/fixture.rs",
        include_str!("fixtures/casts.rs.txt"),
    );
    assert_eq!(found, vec![(4, "cast")]);
}

#[test]
fn cast_check_is_scoped_to_the_arithmetic_kernels() {
    // hhe is a kernel crate for panics, but not a cast-audited file.
    let found = run(
        "crates/hhe/src/fixture.rs",
        include_str!("fixtures/casts.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn determinism_locations() {
    let found = run(
        "crates/hw/src/fixture.rs",
        include_str!("fixtures/determinism.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (4, "determinism"), // Instant::now()
            (8, "determinism"), // -> HashMap<u64, u64>
            (9, "determinism"), // HashMap::new()
        ]
    );
}

#[test]
fn determinism_check_skips_other_crates() {
    let found = run(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/determinism.rs.txt"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn malformed_annotations_do_not_suppress() {
    let found = run(
        "crates/hw/src/fixture.rs",
        include_str!("fixtures/annotations.rs.txt"),
    );
    assert_eq!(
        found,
        vec![
            (4, "annotation"), // empty reason
            (5, "panic"),      // ...and the unwrap still fires
            (9, "annotation"), // unknown check name
            (10, "panic"),
            (14, "annotation"), // missing reason
            (15, "panic"),
        ]
    );
}
