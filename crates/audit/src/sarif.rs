//! SARIF 2.1.0 and GitHub-annotation rendering (`--format sarif` /
//! `--format github`).
//!
//! The SARIF document is hand-rendered (the crate is dependency-free)
//! with the minimal shape GitHub code scanning ingests: one run, one
//! driver, one rule per check label, one result per finding with a
//! `physicalLocation`. The `github` format prints workflow commands
//! (`::error file=...,line=...::...`) so findings surface as inline PR
//! annotations even without a SARIF upload step.

use crate::analyze::Finding;
use crate::baseline::escape;

/// Renders `findings` as a SARIF 2.1.0 document.
#[must_use]
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.check.label()).collect();
    rules.sort_unstable();
    rules.dedup();
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"pasta-audit\",\n");
    out.push_str("          \"informationUri\": \"ARCHITECTURE.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in rules.iter().enumerate() {
        let comma = if i + 1 == rules.len() { "" } else { "," };
        out.push_str(&format!(
            "            {{ \"id\": {} }}{comma}\n",
            escape(rule)
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        out.push_str("        {\n");
        out.push_str(&format!(
            "          \"ruleId\": {},\n",
            escape(f.check.label())
        ));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{ \"text\": {} }},\n",
            escape(&f.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": {} }},\n",
            escape(&f.file)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            f.line
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(&format!("        }}{comma}\n"));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Renders `findings` as GitHub Actions workflow commands, one
/// annotation per finding.
#[must_use]
pub fn render_github(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        // Workflow-command message escaping: %, CR, LF.
        let msg = format!("[{}] {}", f.check.label(), f.message)
            .replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A");
        out.push_str(&format!(
            "::error file={},line={}::{}\n",
            f.file, f.line, msg
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{Check, Finding};

    fn finding() -> Finding {
        Finding {
            file: "crates/core/src/cipher.rs".to_string(),
            line: 7,
            check: Check::SecretFlow,
            message: "secret value `key` feeds an `if` condition".to_string(),
            text: "if key[0] == 0 {".to_string(),
        }
    }

    #[test]
    fn sarif_has_schema_rule_and_location() {
        let doc = render_sarif(&[finding()]);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"ruleId\": \"secret-flow\""));
        assert!(doc.contains("\"uri\": \"crates/core/src/cipher.rs\""));
        assert!(doc.contains("\"startLine\": 7"));
        // Minimal well-formedness: balanced braces/brackets.
        let bal = |open: char, close: char| {
            doc.chars().filter(|&c| c == open).count()
                == doc.chars().filter(|&c| c == close).count()
        };
        assert!(bal('{', '}') && bal('[', ']'));
    }

    #[test]
    fn sarif_empty_run_is_valid() {
        let doc = render_sarif(&[]);
        assert!(doc.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn github_format_escapes_newlines() {
        let mut f = finding();
        f.message = "line1\nline2".to_string();
        let text = render_github(&[f]);
        assert!(text.starts_with("::error file=crates/core/src/cipher.rs,line=7::"));
        assert!(text.contains("%0A") && !text.trim_end().contains('\n'));
    }
}
