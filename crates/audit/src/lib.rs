//! `pasta-audit` — self-contained static analysis for the workspace.
//!
//! The paper's cryptoprocessor handles the PASTA master key on an edge
//! device; two of its core properties are invisible to the compiler:
//! the cipher/keystream kernels must not leak secrets through
//! data-dependent control flow or addressing, and the cycle-accurate
//! model plus parallel layer must stay bit-deterministic. This crate
//! walks every workspace `.rs` file with a hand-rolled lexer
//! ([`lexer`]), parses each into a lightweight item tree ([`parse`]),
//! links a workspace call graph ([`callgraph`]) and enforces seven
//! checks:
//!
//! 1. **secret-flow** — interprocedural taint ([`taint`]):
//!    `// audit: secret` material in `pasta-core` / `pasta-keccak` /
//!    `pasta-rasta` may not feed `if`/`while`/`match` conditions,
//!    slice indices, `/`/`%` operands or early-exit comparisons, even
//!    through call chains; `// audit: sanitizes(x)` declassifies at
//!    encryption boundaries;
//! 2. **panic** — no `unwrap`/`expect`/`panic!`-family calls in
//!    non-test kernel-crate code;
//! 3. **unsafe** — every `unsafe` block carries a `// SAFETY:` comment;
//! 4. **cast** — no narrowing `as` casts in the modular-arithmetic
//!    kernels;
//! 5. **determinism** — no wall clocks, default-hasher collections or
//!    ambient entropy in the determinism-critical crates;
//! 6. **ordering** — `Ordering::Relaxed` on non-counter atomics in
//!    `pasta-par` needs a justifying annotation ([`ordering`]);
//! 7. **unsafe-precondition** — `pasta_math::simd` `unsafe` blocks
//!    stating data preconditions must be backed by an assert in the
//!    function or its callers ([`ordering`]).
//!
//! By-design exceptions are annotated in-source
//! (`// audit: allow(<check>, reason = "...")`); a committed
//! `audit-baseline.json` gives the CI gate `-D new` semantics
//! ([`baseline`]). Findings also render as SARIF 2.1.0 and GitHub
//! annotations ([`sarif`]). The crate is dependency-free so the audit
//! itself needs no vetting and runs in the offline build environment.

#![warn(missing_docs)]

pub mod analyze;
pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod ordering;
pub mod parse;
pub mod sarif;
pub mod taint;

use analyze::{check_file, collect_secrets, Finding, SourceFile, SECRET_CRATES};
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Collects every workspace `.rs` file under `root`, sorted, skipping
/// build output, vendored shims and VCS metadata.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The `/`-separated path of `path` relative to `root`.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every check — per-file lexical plus the workspace-wide parser/
/// call-graph/taint pipeline — over an already-parsed file set, and
/// returns findings sorted by `(file, line, check, message)` with
/// `audit: allow` suppressions applied.
#[must_use]
pub fn workspace_checks(files: &[SourceFile]) -> Vec<Finding> {
    let asts: Vec<parse::FileAst> = files.iter().map(|sf| parse::parse_file(&sf.toks)).collect();
    let cg = callgraph::CallGraph::build(&asts);
    let secrets = collect_secrets(
        files
            .iter()
            .filter(|sf| SECRET_CRATES.contains(&sf.crate_name.as_str())),
    );
    let mut findings = Vec::new();
    for sf in files {
        findings.extend(check_file(sf));
    }
    // Workspace passes return raw findings; apply suppression here.
    let by_rel: std::collections::BTreeMap<&str, &SourceFile> =
        files.iter().map(|sf| (sf.rel.as_str(), sf)).collect();
    let mut raw = taint::taint_pass(files, &asts, &cg, &secrets);
    raw.extend(ordering::ordering_pass(files, &asts));
    raw.extend(ordering::unsafe_precondition_pass(files, &asts, &cg));
    for f in raw {
        let suppressed = by_rel
            .get(f.file.as_str())
            .is_some_and(|sf| sf.allowed(f.check, f.line));
        if !suppressed {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.check, &a.message).cmp(&(&b.file, b.line, b.check, &b.message))
    });
    findings
}

/// Walks the tree under `root` and runs every check, returning findings
/// sorted by `(file, line, check)`.
///
/// # Errors
///
/// Returns a message when the tree cannot be read.
pub fn analyze_tree(root: &Path) -> Result<Vec<Finding>, String> {
    let files =
        collect_rs_files(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no .rs files found under {}", root.display()));
    }
    let mut parsed = Vec::with_capacity(files.len());
    for path in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parsed.push(SourceFile::parse(&rel_path(root, path), &src));
    }
    Ok(workspace_checks(&parsed))
}
