//! Workspace call graph over the parsed item trees.
//!
//! Functions from every file are flattened into one global list and
//! indexed two ways: by bare name and by `Type::name` qualification
//! (from the enclosing `impl`/`trait` block). Call sites resolve
//! through the qualified map first — `SecretKey::new(..)` and
//! `Self::permute(..)` bind exactly — and fall back to merging every
//! bare-name candidate, which is deliberately conservative: a taint
//! summary applied through an over-approximated edge can only *add*
//! taint, never hide it. Edges are recorded in both directions so the
//! unsafe-precondition pass can search transitive callers.

use crate::parse::{Expr, ExprKind, FileAst, Stmt, StmtKind};
use std::collections::BTreeMap;

/// A function's position: file index and index within that file's AST.
#[derive(Debug, Clone, Copy)]
pub struct FnKey {
    /// Index into the workspace file list.
    pub file: usize,
    /// Index into that file's [`FileAst::fns`].
    pub idx: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Global function list; positions index into the caller's
    /// file/AST slices.
    pub fns: Vec<FnKey>,
    /// Bare name → global fn ids.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `Type::name` → global fn ids.
    pub by_qual: BTreeMap<String, Vec<usize>>,
    /// Per-fn resolved callee ids (deduplicated).
    pub callees: Vec<Vec<usize>>,
    /// Per-fn resolved caller ids (inverse of `callees`).
    pub callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph for `asts` (one entry per workspace file).
    #[must_use]
    pub fn build(asts: &[FileAst]) -> CallGraph {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (file, ast) in asts.iter().enumerate() {
            for (idx, f) in ast.fns.iter().enumerate() {
                let id = fns.len();
                fns.push(FnKey { file, idx });
                by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(q) = &f.qual {
                    by_qual.entry(q.clone()).or_default().push(id);
                }
            }
        }
        let mut g = CallGraph {
            fns,
            by_name,
            by_qual,
            callees: Vec::new(),
            callers: Vec::new(),
        };
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); g.fns.len()];
        for (id, key) in g.fns.iter().enumerate() {
            let def = &asts[key.file].fns[key.idx];
            let self_ty = def.qual.as_deref().and_then(|q| q.split("::").next());
            let mut out = Vec::new();
            walk_stmts(&def.body, &mut |e: &Expr| match &e.kind {
                ExprKind::Call { callee, .. } => {
                    if let ExprKind::Path(segs) = &callee.kind {
                        out.extend(g.resolve_path(segs, self_ty));
                    }
                }
                ExprKind::MethodCall { name, .. } => {
                    out.extend(g.resolve_method(name));
                }
                _ => {}
            });
            out.sort_unstable();
            out.dedup();
            callees[id] = out;
        }
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); g.fns.len()];
        for (id, cs) in callees.iter().enumerate() {
            for &c in cs {
                callers[c].push(id);
            }
        }
        g.callees = callees;
        g.callers = callers;
        g
    }

    /// Resolves a call through a path. `self_ty` is the enclosing
    /// `impl` type, used for `Self::name` and unqualified names.
    #[must_use]
    pub fn resolve_path(&self, segs: &[String], self_ty: Option<&str>) -> Vec<usize> {
        if segs.is_empty() {
            return Vec::new();
        }
        let name = segs.last().expect("non-empty");
        if segs.len() >= 2 {
            let ty = &segs[segs.len() - 2];
            let ty = if ty == "Self" {
                self_ty.unwrap_or(ty.as_str())
            } else {
                ty.as_str()
            };
            if let Some(ids) = self.by_qual.get(&format!("{ty}::{name}")) {
                return ids.clone();
            }
            // A capitalized qualifier is a type; missing the qualified
            // map means the method lives outside the workspace
            // (`Vec::new`, `Mutex::new`, …) — merging every same-named
            // workspace fn would wire unrelated constructors together.
            if ty.starts_with(|c: char| c.is_ascii_uppercase()) {
                return Vec::new();
            }
            // `module::free_fn(..)` — the second-to-last segment is a
            // module, not a type; fall through to the bare name.
        }
        self.by_name.get(name).cloned().unwrap_or_default()
    }

    /// Resolves a method call by bare name, merging every candidate
    /// (receiver types are unknown at this layer).
    #[must_use]
    pub fn resolve_method(&self, name: &str) -> Vec<usize> {
        self.by_name.get(name).cloned().unwrap_or_default()
    }

    /// Breadth-first transitive callers of `id` up to `depth` hops,
    /// restricted to functions in the same file. Includes `id` itself.
    #[must_use]
    pub fn callers_within_file(&self, id: usize, depth: usize) -> Vec<usize> {
        let file = self.fns[id].file;
        let mut seen = vec![id];
        let mut frontier = vec![id];
        for _ in 0..depth {
            let mut next = Vec::new();
            for &f in &frontier {
                for &c in &self.callers[f] {
                    if self.fns[c].file == file && !seen.contains(&c) {
                        seen.push(c);
                        next.push(c);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        seen
    }
}

/// Visits every expression under `stmts` in preorder.
pub fn walk_stmts(stmts: &[Stmt], f: &mut impl FnMut(&Expr)) {
    for s in stmts {
        match &s.kind {
            StmtKind::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_stmts(b, f);
                }
            }
            StmtKind::Assign { target, value, .. } => {
                walk_expr(target, f);
                walk_expr(value, f);
            }
            StmtKind::Expr { expr, .. } => walk_expr(expr, f),
            StmtKind::While { cond, body, .. } => {
                walk_expr(cond, f);
                walk_stmts(body, f);
            }
            StmtKind::For { iter, body, .. } => {
                walk_expr(iter, f);
                walk_stmts(body, f);
            }
            StmtKind::Loop { body } => walk_stmts(body, f),
            StmtKind::Item => {}
        }
    }
}

/// Visits `e` and every sub-expression in preorder.
pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Field { base, .. } | ExprKind::Unary { expr: base } => walk_expr(base, f),
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Macro { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::If {
            cond, then, els, ..
        } => {
            walk_expr(cond, f);
            walk_stmts(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::Block(stmts) => walk_stmts(stmts, f),
        ExprKind::Closure { body, .. } => walk_expr(body, f),
        ExprKind::StructLit { fields, base, .. } => {
            for (_, v) in fields {
                walk_expr(v, f);
            }
            if let Some(b) = base {
                walk_expr(b, f);
            }
        }
        ExprKind::Tuple(items) => {
            for it in items {
                walk_expr(it, f);
            }
        }
        ExprKind::Ret { value } => {
            if let Some(v) = value {
                walk_expr(v, f);
            }
        }
        ExprKind::Path(_) | ExprKind::Lit(_) | ExprKind::Unknown => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn graph(srcs: &[&str]) -> (Vec<FileAst>, CallGraph) {
        let asts: Vec<FileAst> = srcs.iter().map(|s| parse_file(&lex(s))).collect();
        let g = CallGraph::build(&asts);
        (asts, g)
    }

    fn id_of(g: &CallGraph, asts: &[FileAst], name: &str) -> usize {
        (0..g.fns.len())
            .find(|&i| asts[g.fns[i].file].fns[g.fns[i].idx].name == name)
            .expect("fn present")
    }

    #[test]
    fn qualified_resolution_beats_bare_name() {
        let (asts, g) = graph(&[
            "impl Foo { fn go(&self) {} } impl Bar { fn go(&self) {} } fn top() { Foo::go(); }",
        ]);
        let top = id_of(&g, &asts, "top");
        assert_eq!(g.callees[top].len(), 1);
        let callee = g.callees[top][0];
        assert_eq!(
            asts[g.fns[callee].file].fns[g.fns[callee].idx]
                .qual
                .as_deref(),
            Some("Foo::go")
        );
    }

    #[test]
    fn cross_file_edges_and_callers() {
        let (asts, g) = graph(&["fn callee() {}", "fn caller() { callee(); }"]);
        let caller = id_of(&g, &asts, "caller");
        let callee = id_of(&g, &asts, "callee");
        assert_eq!(g.callees[caller], vec![callee]);
        assert_eq!(g.callers[callee], vec![caller]);
    }

    #[test]
    fn callers_within_file_stops_at_depth_and_handles_cycles() {
        let (asts, g) = graph(&["fn a() { b(); } fn b() { a(); c(); } fn c() {}"]);
        let c = id_of(&g, &asts, "c");
        let reach = g.callers_within_file(c, 3);
        // c ← b ← a, cycle a ↔ b must not loop forever.
        assert_eq!(reach.len(), 3);
    }
}
