//! Token-stream analysis: annotation parsing, test-code scoping, and the
//! per-file audit checks.
//!
//! The checks here work on the [`crate::lexer`] token stream plus light
//! structural passes — brace matching and test-span scoping. That is
//! enough for the lexical properties (panics, missing `SAFETY:`,
//! narrowing casts, nondeterminism sources, annotation hygiene). The
//! flow-sensitive checks — interprocedural secret taint
//! ([`crate::taint`]), atomics ordering and unsafe preconditions
//! ([`crate::ordering`]) — run over the [`crate::parse`] item trees and
//! the [`crate::callgraph`] workspace call graph, but share this
//! module's annotation vocabulary, test scoping and suppression rules.
//!
//! # Annotation grammar
//!
//! | comment                                        | effect |
//! |------------------------------------------------|--------|
//! | `// audit: secret`                             | the next declaration (struct/enum, field, `let`, `static`) holds secret material |
//! | `// audit: secret(a, b)`                       | the named parameters of the next `fn` hold secret material |
//! | `// audit: sanitizes(a, b)`                    | the next `fn` declassifies the named parameters: their taint does not reach its return value. `sanitizes(return)` declassifies the whole return value |
//! | `// audit: allow(<check>, reason = "…")`       | suppress `<check>` findings on this line and the next code line; the reason must be non-empty |
//! | `// SAFETY: …`                                 | safety argument for an `unsafe` block on the same or one of the next three lines |
//!
//! Valid `<check>` names are listed in [`ALLOW_NAMES`]. A malformed or
//! reason-less annotation is itself reported under the `annotation`
//! check, which cannot be suppressed.

use crate::lexer::{lex, TokKind, Token};
use std::collections::BTreeSet;

/// Crates whose non-test code must be panic-free (check 2).
pub const KERNEL_CRATES: &[&str] = &[
    "core", "fhe", "hhe", "hw", "keccak", "math", "par", "server",
];

/// Crates that must stay bit-deterministic (check 5): no wall-clock
/// reads, no default-hasher collections, no ambient entropy.
pub const DETERMINISM_CRATES: &[&str] = &["fhe", "hw", "par", "pipeline", "server"];

/// Crates in which `audit: secret` annotations are collected and
/// secret-flow (check 1) is enforced.
pub const SECRET_CRATES: &[&str] = &["core", "keccak", "rasta"];

/// Files covered by the lossy-cast check (check 4) in addition to the
/// blanket `crates/math` crate scope: the NTT and RNS-multiplication
/// kernels. The SIMD dispatch module is listed explicitly even though
/// the crate scope already reaches it, so a future move of the
/// intrinsics out of `crates/math` cannot silently drop coverage.
/// The worker pool and scratch allocator sit on the same hot path
/// (chunk arithmetic, byte-size accounting) and are enrolled too.
pub const CAST_FILES: &[&str] = &[
    "crates/fhe/src/ntt.rs",
    "crates/fhe/src/rns_mul.rs",
    "crates/fhe/src/scratch.rs",
    "crates/hhe/src/mux.rs",
    "crates/math/src/simd.rs",
    "crates/par/src/pool.rs",
];

/// Identifiers forbidden by the determinism check. `Instant` /
/// `SystemTime` read wall clocks; `HashMap` / `HashSet` / `RandomState`
/// iterate in a randomized order under the default hasher; the rest are
/// ambient-entropy constructors.
const DETERMINISM_TOKENS: &[&str] = &[
    "Instant",
    "SystemTime",
    "HashMap",
    "HashSet",
    "RandomState",
    "thread_rng",
    "from_entropy",
    "OsRng",
];

/// Narrow integer targets flagged by the cast check. Casts to 64-bit
/// and wider (`as u64`, `as u128`, `as usize` on the supported 64-bit
/// targets) are the pervasive and value-preserving reduction idiom in
/// the modular kernels; only casts that can truncate below word size
/// are flagged.
const NARROW_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Panic-check symbols: method calls (need a preceding `.`).
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Panic-check symbols: macros (need a following `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Valid check names inside `audit: allow(...)`.
pub const ALLOW_NAMES: &[&str] = &[
    "secret-branch",
    "panic",
    "unsafe",
    "cast",
    "determinism",
    "ordering",
    "unsafe-precondition",
];

/// Which of the checks (plus the meta `annotation` check) a finding
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    /// Check 1: secret material feeding control flow or addressing.
    SecretFlow,
    /// Check 2: `unwrap`/`expect`/`panic!`-family in kernel crates.
    Panic,
    /// Check 3: `unsafe` block without a `// SAFETY:` comment.
    Unsafe,
    /// Check 4: narrowing `as` cast in a modular-arithmetic kernel.
    Cast,
    /// Check 5: nondeterminism source in a determinism-critical crate.
    Determinism,
    /// Check 6: `Ordering::Relaxed` on a non-counter atomic without a
    /// justifying annotation.
    Ordering,
    /// Check 7: an `unsafe` block whose `// SAFETY:` precondition is
    /// not guarded by an assert in the function or its callers.
    UnsafePrecondition,
    /// Malformed or reason-less `audit:` annotation (not suppressible).
    Annotation,
}

impl Check {
    /// The label printed inside `[...]` and used in JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Check::SecretFlow => "secret-flow",
            Check::Panic => "panic",
            Check::Unsafe => "unsafe",
            Check::Cast => "cast",
            Check::Determinism => "determinism",
            Check::Ordering => "ordering",
            Check::UnsafePrecondition => "unsafe-precondition",
            Check::Annotation => "annotation",
        }
    }

    /// The `audit: allow(<name>, ...)` name that suppresses this check,
    /// if any.
    #[must_use]
    pub fn allow_name(self) -> Option<&'static str> {
        match self {
            Check::SecretFlow => Some("secret-branch"),
            Check::Panic => Some("panic"),
            Check::Unsafe => Some("unsafe"),
            Check::Cast => Some("cast"),
            Check::Determinism => Some("determinism"),
            Check::Ordering => Some("ordering"),
            Check::UnsafePrecondition => Some("unsafe-precondition"),
            Check::Annotation => None,
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// The check that fired.
    pub check: Check,
    /// Human-readable description.
    pub message: String,
    /// The trimmed text of the source line (baseline key component).
    pub text: String,
}

impl Finding {
    /// The `file:line: [check] message` text form.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.check.label(),
            self.message
        )
    }
}

/// A parsed `audit:` / `SAFETY:` annotation comment.
#[derive(Debug, Clone)]
pub(crate) enum Ann {
    /// `// audit: secret` — applies to the next declaration.
    SecretDecl { tok: usize },
    /// `// audit: secret(a, b)` — applies to the next `fn`'s params.
    SecretParams { tok: usize, names: Vec<String> },
    /// `// audit: sanitizes(a, b)` / `sanitizes(return)` — the next
    /// `fn` declassifies the named parameters (or its whole return).
    Sanitizes { tok: usize, names: Vec<String> },
    /// `// audit: allow(name, reason = "...")`.
    Allow { line: usize, name: String },
    /// `// SAFETY: ...`.
    Safety { line: usize },
}

/// Secret declarations collected across all [`SECRET_CRATES`] files:
/// annotating a struct marks every named field of that struct, so a
/// `.field` access anywhere in the secret crates is recognized.
#[derive(Debug, Default)]
pub struct Secrets {
    /// Names of types annotated secret (documentation / future use).
    pub types: BTreeSet<String>,
    /// Field names whose dot-access is treated as secret.
    pub fields: BTreeSet<String>,
}

/// One lexed and scoped source file, ready for checking.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// The `crates/<name>/` component, or empty for the umbrella crate.
    pub crate_name: String,
    /// Source lines (for baseline keys).
    pub lines: Vec<String>,
    /// The token stream, comments included.
    pub toks: Vec<Token>,
    pub(crate) anns: Vec<Ann>,
    ann_findings: Vec<Finding>,
    /// Whole file is test code (`#![cfg(test)]` or a tests/ path).
    test_all: bool,
    /// Token-index ranges (inclusive) of `#[cfg(test)]` items, `#[test]`
    /// functions and `mod tests` blocks.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and scopes one file. `rel` must use `/` separators.
    #[must_use]
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let path_test = rel
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples" || c == "fixtures");
        let (inner_test, test_spans) = find_test_spans(&toks);
        let (anns, ann_findings) = parse_annotations(rel, &toks, src);
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            lines: src.lines().map(str::to_string).collect(),
            toks,
            anns,
            ann_findings,
            test_all: path_test || inner_test,
            test_spans,
        }
    }

    /// Whether token `i` lies in test code.
    pub(crate) fn tok_is_test(&self, i: usize) -> bool {
        self.test_all || self.test_spans.iter().any(|&(s, e)| s <= i && i <= e)
    }

    /// The first code line strictly after `line`, if any.
    fn next_code_line(&self, line: usize) -> Option<usize> {
        self.toks
            .iter()
            .filter(|t| t.kind != TokKind::Comment && t.line > line)
            .map(|t| t.line)
            .min()
    }

    /// Whether an `audit: allow` for `check` covers `line` (the
    /// annotation's own line or the next code line after it).
    pub(crate) fn allowed(&self, check: Check, line: usize) -> bool {
        let Some(name) = check.allow_name() else {
            return false;
        };
        self.anns.iter().any(|a| match a {
            Ann::Allow { line: al, name: an } => {
                an == name && (*al == line || self.next_code_line(*al) == Some(line))
            }
            _ => false,
        })
    }

    /// Whether a `// SAFETY:` comment covers `line`: on the same line,
    /// or above it with only comment/blank lines in between (so a
    /// multi-line safety argument directly over the `unsafe` counts).
    pub(crate) fn safety_near(&self, line: usize) -> bool {
        self.anns.iter().any(|a| match a {
            Ann::Safety { line: sl } => {
                *sl <= line
                    && (*sl..line.saturating_sub(1)).all(|l0| {
                        let text = self.lines.get(l0).map_or("", |s| s.trim());
                        text.is_empty() || text.starts_with("//")
                    })
            }
            _ => false,
        })
    }

    /// The trimmed source text of `line` (1-based).
    fn line_text(&self, line: usize) -> String {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    pub(crate) fn finding(&self, line: usize, check: Check, message: String) -> Finding {
        Finding {
            file: self.rel.clone(),
            line,
            check,
            message,
            text: self.line_text(line),
        }
    }
}

/// Advances `i` past comment tokens.
fn next_code(toks: &[Token], mut i: usize) -> usize {
    while i < toks.len() && toks[i].kind == TokKind::Comment {
        i += 1;
    }
    i
}

/// The last code token strictly before `i`, if any.
fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| toks[j].kind != TokKind::Comment)
}

/// Index of the token matching the opener at `open` (`(`, `[` or `{`).
/// Same-kind counting is exact because Rust source balances each
/// bracket kind independently. Returns the last index when unbalanced.
fn matching(toks: &[Token], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_bytes().first() {
        Some(b'(') => ('(', ')'),
        Some(b'[') => ('[', ']'),
        _ => ('{', '}'),
    };
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Comment {
            continue;
        }
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// From `i`, skips any attributes, then scans to the end of the item:
/// the brace matching its first top-level `{`, or a top-level `;`.
fn item_end(toks: &[Token], mut i: usize) -> usize {
    loop {
        i = next_code(toks, i);
        if i >= toks.len() {
            return toks.len().saturating_sub(1);
        }
        if toks[i].is_punct('#') {
            let mut j = next_code(toks, i + 1);
            if j < toks.len() && toks[j].is_punct('!') {
                j = next_code(toks, j + 1);
            }
            if j < toks.len() && toks[j].is_punct('[') {
                i = matching(toks, j) + 1;
                continue;
            }
        }
        break;
    }
    let mut depth = 0i64;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Comment {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                return matching(toks, i);
            } else if depth == 0 && t.is_punct(';') {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Finds test-code token spans: `#[cfg(test)]` / `#[test]`-style
/// attributes (outer form attaches to the following item, inner
/// `#![cfg(test)]` marks the whole file) and `mod tests { ... }`.
fn find_test_spans(toks: &[Token]) -> (bool, Vec<(usize, usize)>) {
    let mut all = false;
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Comment {
            i += 1;
            continue;
        }
        if t.is_punct('#') {
            let mut j = next_code(toks, i + 1);
            let inner = j < toks.len() && toks[j].is_punct('!');
            if inner {
                j = next_code(toks, j + 1);
            }
            if j < toks.len() && toks[j].is_punct('[') {
                let close = matching(toks, j);
                let mut has_test = false;
                let mut negated = false;
                for t in toks.iter().take(close).skip(j + 1) {
                    if t.is_ident("test") {
                        has_test = true;
                    }
                    // `cfg(not(test))` and `cfg_attr(test, ...)` apply to
                    // non-test builds / are conditional lint plumbing.
                    if t.is_ident("not") || t.is_ident("cfg_attr") {
                        negated = true;
                    }
                }
                if has_test && !negated {
                    if inner {
                        all = true;
                    } else {
                        spans.push((i, item_end(toks, close + 1)));
                    }
                }
                i = close + 1;
                continue;
            }
        }
        if t.is_ident("mod") {
            let j = next_code(toks, i + 1);
            if j < toks.len() && toks[j].is_ident("tests") {
                let k = next_code(toks, j + 1);
                if k < toks.len() && toks[k].is_punct('{') {
                    let close = matching(toks, k);
                    spans.push((i, close));
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    (all, spans)
}

/// Strips comment markers (`//`, `///`, `//!`, `/*`, `*/`) and leading
/// decoration from a comment token's text.
fn comment_body(text: &str) -> &str {
    let t = text.trim();
    let t = t
        .strip_prefix("//")
        .or_else(|| t.strip_prefix("/*"))
        .unwrap_or(t);
    let t = t.strip_suffix("*/").unwrap_or(t);
    t.trim_start_matches(['/', '!', '*']).trim()
}

/// Parses `audit:` / `SAFETY:` annotations out of the comment tokens.
/// Malformed annotations become `annotation` findings.
fn parse_annotations(rel: &str, toks: &[Token], src: &str) -> (Vec<Ann>, Vec<Finding>) {
    let lines: Vec<&str> = src.lines().collect();
    let line_text = |line: usize| {
        lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut anns = Vec::new();
    let mut findings = Vec::new();
    let mut bad = |line: usize, message: String| {
        findings.push(Finding {
            file: rel.to_string(),
            line,
            check: Check::Annotation,
            message,
            text: line_text(line),
        });
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        let body = comment_body(&t.text);
        if body.starts_with("SAFETY:") {
            anns.push(Ann::Safety { line: t.line });
            continue;
        }
        let Some(rest) = body.strip_prefix("audit:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "secret" {
            anns.push(Ann::SecretDecl { tok: i });
        } else if let Some(arg) = parenthesized(rest, "secret") {
            let names: Vec<String> = arg
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if names.is_empty() {
                bad(t.line, "audit: secret(...) names no parameters".to_string());
            } else {
                anns.push(Ann::SecretParams { tok: i, names });
            }
        } else if let Some(arg) = parenthesized(rest, "sanitizes") {
            let names: Vec<String> = arg
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if names.is_empty() {
                bad(
                    t.line,
                    "audit: sanitizes(...) names no parameters (use `return` for the whole value)"
                        .to_string(),
                );
            } else {
                anns.push(Ann::Sanitizes { tok: i, names });
            }
        } else if let Some(arg) = parenthesized(rest, "allow") {
            match parse_allow(arg) {
                Ok(name) => anns.push(Ann::Allow { line: t.line, name }),
                Err(e) => bad(t.line, e),
            }
        } else {
            bad(
                t.line,
                format!("unrecognized audit annotation `audit: {rest}`"),
            );
        }
    }
    (anns, findings)
}

/// If `s` is `head ( inner )` (ignoring spacing), returns `inner`.
fn parenthesized<'a>(s: &'a str, head: &str) -> Option<&'a str> {
    let rest = s.strip_prefix(head)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    Some(&rest[..close])
}

/// Parses the inside of `allow(name, reason = "...")`, validating the
/// check name and requiring a non-empty reason. Diagnostics name the
/// offending key and suggest the nearest valid check name so the
/// vocabulary never has to be recovered from this source file.
fn parse_allow(arg: &str) -> Result<String, String> {
    let (name, rest) = arg
        .split_once(',')
        .ok_or_else(|| "audit: allow(...) is missing `reason = \"...\"`".to_string())?;
    let name = name.trim();
    if !ALLOW_NAMES.contains(&name) {
        let mut msg = format!(
            "unknown allow name `{name}` (expected one of: {})",
            ALLOW_NAMES.join(", ")
        );
        if let Some(near) = nearest_allow_name(name) {
            msg.push_str(&format!("; did you mean `{near}`?"));
        }
        return Err(msg);
    }
    let rest = rest.trim();
    let (key, value) = rest
        .split_once('=')
        .ok_or_else(|| "audit: allow(...) reason must be `reason = \"...\"`".to_string())?;
    let key = key.trim();
    if key != "reason" {
        return Err(format!(
            "unexpected key `{key}` in audit: allow(...); the only valid key is `reason`"
        ));
    }
    let value = value.trim();
    let reason = value
        .strip_prefix('"')
        .and_then(|r| r.rfind('"').map(|q| &r[..q]))
        .ok_or_else(|| {
            "audit: allow(...) reason must be a quoted string: `reason = \"...\"`".to_string()
        })?;
    if reason.trim().is_empty() {
        return Err("audit: allow(...) has an empty reason".to_string());
    }
    Ok(name.to_string())
}

/// The valid allow name closest to `name` by edit distance, when it is
/// close enough to be a plausible typo (distance ≤ half its length).
fn nearest_allow_name(name: &str) -> Option<&'static str> {
    ALLOW_NAMES
        .iter()
        .map(|&cand| (edit_distance(name, cand), cand))
        .min()
        .filter(|&(d, cand)| d <= cand.len().max(name.len()) / 2)
        .map(|(_, cand)| cand)
}

/// Classic Levenshtein distance over bytes (the vocabulary is ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// What an `audit: secret` annotation attached itself to.
pub(crate) enum SecretTarget {
    /// A struct/enum; named fields (if any) listed.
    Type { name: String, fields: Vec<String> },
    /// A single struct field.
    Field(String),
    /// A `let` binding at token index.
    Let { name: String, tok: usize },
    /// A `static`/`const` item (file-wide scope).
    Static(String),
    /// A `fn` — invalid target for the bare form.
    Fn,
    /// Unrecognized declaration.
    Unknown,
}

/// Classifies the declaration following the annotation at token `ann`.
pub(crate) fn classify_secret_decl(toks: &[Token], ann: usize) -> SecretTarget {
    let mut i = next_code(toks, ann + 1);
    // Skip attributes.
    while i < toks.len() && toks[i].is_punct('#') {
        let j = next_code(toks, i + 1);
        if j < toks.len() && toks[j].is_punct('[') {
            i = next_code(toks, matching(toks, j) + 1);
        } else {
            break;
        }
    }
    // Skip visibility.
    if i < toks.len() && toks[i].is_ident("pub") {
        i = next_code(toks, i + 1);
        if i < toks.len() && toks[i].is_punct('(') {
            i = next_code(toks, matching(toks, i) + 1);
        }
    }
    if i >= toks.len() {
        return SecretTarget::Unknown;
    }
    let kw = &toks[i];
    if kw.is_ident("struct") || kw.is_ident("enum") {
        let is_struct = kw.is_ident("struct");
        let n = next_code(toks, i + 1);
        let name = toks.get(n).map_or(String::new(), |t| t.text.clone());
        let mut fields = Vec::new();
        if is_struct {
            // Find the field block (skip generics — `<`/`>` are plain
            // puncts, but `{` only appears at the body).
            let mut j = n + 1;
            let mut depth = 0i64;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind != TokKind::Comment {
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(';') {
                        break; // tuple/unit struct
                    } else if depth == 0 && t.is_punct('{') {
                        fields = struct_fields(toks, j);
                        break;
                    }
                }
                j += 1;
            }
        }
        return SecretTarget::Type { name, fields };
    }
    if kw.is_ident("let") {
        let mut n = next_code(toks, i + 1);
        if n < toks.len() && toks[n].is_ident("mut") {
            n = next_code(toks, n + 1);
        }
        if n < toks.len() && toks[n].kind == TokKind::Ident {
            return SecretTarget::Let {
                name: toks[n].text.clone(),
                tok: n,
            };
        }
        return SecretTarget::Unknown;
    }
    if kw.is_ident("static") || kw.is_ident("const") {
        let mut n = next_code(toks, i + 1);
        if n < toks.len() && toks[n].is_ident("mut") {
            n = next_code(toks, n + 1);
        }
        if n < toks.len() && toks[n].kind == TokKind::Ident {
            return SecretTarget::Static(toks[n].text.clone());
        }
        return SecretTarget::Unknown;
    }
    if kw.is_ident("fn") {
        return SecretTarget::Fn;
    }
    // A lone `name: Type` pair is a struct field.
    if kw.kind == TokKind::Ident {
        let c = next_code(toks, i + 1);
        if c < toks.len() && toks[c].is_punct(':') {
            return SecretTarget::Field(kw.text.clone());
        }
    }
    SecretTarget::Unknown
}

/// Collects named fields at brace depth 1 of the struct body opening at
/// `open`: identifiers directly followed by a single `:` (skipping
/// `pub` and path segments).
fn struct_fields(toks: &[Token], open: usize) -> Vec<String> {
    let close = matching(toks, open);
    let mut fields = Vec::new();
    let mut brace = 0i64;
    let mut other = 0i64;
    for j in open..close {
        let t = &toks[j];
        if t.kind == TokKind::Comment {
            continue;
        }
        if t.is_punct('{') {
            brace += 1;
            continue;
        }
        if t.is_punct('}') {
            brace -= 1;
            continue;
        }
        if t.is_punct('(') || t.is_punct('[') {
            other += 1;
            continue;
        }
        if t.is_punct(')') || t.is_punct(']') {
            other -= 1;
            continue;
        }
        if brace == 1 && other == 0 && t.kind == TokKind::Ident && !t.is_ident("pub") {
            let c = next_code(toks, j + 1);
            let cc = next_code(toks, c + 1);
            if c < close && toks[c].is_punct(':') && !(cc < close && toks[cc].is_punct(':')) {
                fields.push(t.text.clone());
            }
        }
    }
    fields
}

/// Gathers the global secret vocabulary from the [`SECRET_CRATES`]
/// files: type names and (dot-accessed) field names.
pub fn collect_secrets<'a, I: IntoIterator<Item = &'a SourceFile>>(files: I) -> Secrets {
    let mut secrets = Secrets::default();
    for sf in files {
        for ann in &sf.anns {
            let Ann::SecretDecl { tok } = ann else {
                continue;
            };
            match classify_secret_decl(&sf.toks, *tok) {
                SecretTarget::Type { name, fields } => {
                    secrets.types.insert(name);
                    secrets.fields.extend(fields);
                }
                SecretTarget::Field(name) => {
                    secrets.fields.insert(name);
                }
                // Locals/statics are resolved per-file in `check_file`;
                // Fn/Unknown misuse is reported there too.
                _ => {}
            }
        }
    }
    secrets
}

/// Runs the per-file lexical checks over one file; suppressions are
/// applied here. The flow-sensitive checks (taint, ordering, unsafe
/// preconditions) run in the workspace pass — see
/// [`crate::workspace_checks`].
#[must_use]
pub fn check_file(sf: &SourceFile) -> Vec<Finding> {
    let mut out = sf.ann_findings.clone();
    let mut raw: Vec<Finding> = Vec::new();
    let toks = &sf.toks;
    let crate_name = sf.crate_name.as_str();
    let kernel = KERNEL_CRATES.contains(&crate_name);
    let determinism = DETERMINISM_CRATES.contains(&crate_name);
    let cast_scope = crate_name == "math" || CAST_FILES.contains(&sf.rel.as_str());

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Unsafe hygiene applies everywhere, test code included.
        if t.is_ident("unsafe") {
            let n = next_code(toks, i + 1);
            let is_block = n < toks.len() && (toks[n].is_punct('{') || toks[n].is_ident("impl"));
            if is_block && !sf.safety_near(t.line) {
                raw.push(sf.finding(
                    t.line,
                    Check::Unsafe,
                    "`unsafe` without a `// SAFETY:` comment on the preceding lines".to_string(),
                ));
            }
            continue;
        }
        if sf.tok_is_test(i) {
            continue;
        }
        if kernel {
            let method = PANIC_METHODS.contains(&t.text.as_str())
                && prev_code(toks, i).is_some_and(|p| toks[p].is_punct('.'))
                && toks
                    .get(next_code(toks, i + 1))
                    .is_some_and(|n| n.is_punct('('));
            let mac = PANIC_MACROS.contains(&t.text.as_str())
                && toks
                    .get(next_code(toks, i + 1))
                    .is_some_and(|n| n.is_punct('!'));
            if method || mac {
                let sym = if mac {
                    format!("{}!", t.text)
                } else {
                    format!(".{}()", t.text)
                };
                raw.push(sf.finding(
                    t.line,
                    Check::Panic,
                    format!("`{sym}` in non-test code of kernel crate `pasta-{crate_name}`"),
                ));
            }
        }
        if determinism && DETERMINISM_TOKENS.contains(&t.text.as_str()) {
            raw.push(sf.finding(
                t.line,
                Check::Determinism,
                format!(
                    "`{}` undermines bit-determinism in `pasta-{crate_name}`",
                    t.text
                ),
            ));
        }
        if cast_scope && t.is_ident("as") {
            let n = next_code(toks, i + 1);
            if n < toks.len() && NARROW_CAST_TARGETS.contains(&toks[n].text.as_str()) {
                raw.push(sf.finding(
                    t.line,
                    Check::Cast,
                    format!(
                        "narrowing `as {}` cast in a modular-arithmetic kernel; use `try_from`/`From`",
                        toks[n].text
                    ),
                ));
            }
        }
    }

    if SECRET_CRATES.contains(&crate_name) {
        secret_ann_misuse(sf, &mut raw);
    }

    for f in raw {
        if !sf.allowed(f.check, f.line) {
            out.push(f);
        }
    }
    out
}

/// Reports `audit: secret` annotations that attached to nothing the
/// taint engine can use (a bare `fn`, or no recognizable declaration).
/// The flow analysis itself lives in [`crate::taint`].
fn secret_ann_misuse(sf: &SourceFile, raw: &mut Vec<Finding>) {
    for ann in &sf.anns {
        let Ann::SecretDecl { tok } = ann else {
            continue;
        };
        match classify_secret_decl(&sf.toks, *tok) {
            SecretTarget::Fn => raw.push(
                sf.finding(
                    sf.toks[*tok].line,
                    Check::Annotation,
                    "`audit: secret` on a fn — name the parameters with audit: secret(a, b)"
                        .to_string(),
                ),
            ),
            SecretTarget::Unknown => raw.push(sf.finding(
                sf.toks[*tok].line,
                Check::Annotation,
                "`audit: secret` is not followed by a recognizable declaration".to_string(),
            )),
            _ => {}
        }
    }
}
