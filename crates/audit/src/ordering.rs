//! IR-based checks 6 and 7: atomics ordering and unsafe preconditions.
//!
//! **Ordering** (`pasta-par` plus the atomics-bearing files listed in
//! [`ORDERING_FILES`]): every atomic operation passing
//! `Ordering::Relaxed` must either target a statistics counter from the
//! [`COUNTER_ATOMICS`] allowlist — monotonic counters read only for
//! reporting, where relaxed ordering is categorically fine — or carry a
//! justifying `// audit: allow(ordering, reason = "...")`. Anything
//! else (flags, state words, handshake variables) gets a finding:
//! relaxed loads/stores on those reorder freely and the worker pool's
//! correctness argument must be written down where the code is.
//!
//! **Unsafe preconditions** (`pasta_math::simd`): each `unsafe` block
//! already needs a `// SAFETY:` comment (check 3). This pass goes one
//! step further: when the stated precondition is about data shape —
//! slice lengths, alignment, bounds — the enclosing function or one of
//! its (same-file, ≤ [`CALLER_DEPTH`]-hop) callers must contain an
//! `assert!`/`debug_assert!` family guard, so the comment is backed by
//! an executable check. `SAFETY:` comments that argue CPU capability
//! (the AVX2 feature was runtime-detected before dispatch) are
//! recognized by [`CAPABILITY_WORDS`] and exempt — there is nothing to
//! assert about data in them.

use crate::analyze::{Check, Finding, SourceFile};
use crate::callgraph::{walk_stmts, CallGraph};
use crate::lexer::TokKind;
use crate::parse::{Expr, ExprKind, FileAst};

/// Files outside `crates/par` whose atomics the ordering check covers.
pub const ORDERING_FILES: &[&str] = &[
    "crates/fhe/src/scratch.rs",
    "crates/hhe/src/packed.rs",
    "crates/math/src/simd.rs",
];

/// Statistics counters for which `Ordering::Relaxed` needs no
/// justification. Matched against the receiver's base identifier.
pub const COUNTER_ATOMICS: &[&str] = &[
    "CONTENDED_INLINE",
    "DISPATCHES",
    "EVICTED_BUNDLES",
    "GLOBAL_HITS",
    "GROWN_DISPATCHES",
    "LOCAL_HITS",
    "MISSES",
    "NESTED_INLINE",
    "RESIDENT",
    "SPAWN_EVENTS",
    "TAKES",
    "key_switches",
];

/// The file whose `unsafe` blocks need executable precondition guards.
const UNSAFE_PRECONDITION_FILES: &[&str] = &["crates/math/src/simd.rs"];

/// How many caller hops (same file) the assert search follows.
const CALLER_DEPTH: usize = 3;

/// Words in a `// SAFETY:` comment marking a CPU-capability argument.
const CAPABILITY_WORDS: &[&str] = &[
    "avx2",
    "capabilit",
    "cpuid",
    "detect",
    "dispatch",
    "feature",
    "target_feature",
];

/// Assert-family macro names accepted as precondition guards.
const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Runs the atomics-ordering check over the workspace. Returns raw
/// findings; the caller applies `audit: allow(ordering, ...)`.
#[must_use]
pub fn ordering_pass(files: &[SourceFile], asts: &[FileAst]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        if sf.crate_name != "par" && !ORDERING_FILES.contains(&sf.rel.as_str()) {
            continue;
        }
        for def in &asts[fi].fns {
            if sf.tok_is_test(def.fn_tok) {
                continue;
            }
            walk_stmts(&def.body, &mut |e: &Expr| {
                let ExprKind::MethodCall { recv, name, args } = &e.kind else {
                    return;
                };
                if !args.iter().any(is_relaxed) {
                    return;
                }
                let target = atomic_name(recv).unwrap_or_else(|| "<unknown>".to_string());
                if COUNTER_ATOMICS.contains(&target.as_str()) {
                    return;
                }
                out.push(sf.finding(
                    e.line,
                    Check::Ordering,
                    format!(
                        "`{target}.{name}(Ordering::Relaxed)` on a non-counter atomic needs \
                         `// audit: allow(ordering, ...)` or a stronger ordering"
                    ),
                ));
            });
        }
    }
    out
}

/// Whether an argument expression is the `Relaxed` memory ordering.
fn is_relaxed(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Path(segs) => segs.last().is_some_and(|s| s == "Relaxed"),
        ExprKind::Unary { expr } => is_relaxed(expr),
        _ => false,
    }
}

/// The identifier naming the atomic a method call targets: the last
/// field/path segment of the receiver (`self.hits[w]` → `hits`,
/// `DISPATCHES` → `DISPATCHES`).
fn atomic_name(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) => segs.last().cloned(),
        ExprKind::Field { name, .. } => Some(name.clone()),
        ExprKind::Index { base, .. } | ExprKind::Unary { expr: base } => atomic_name(base),
        ExprKind::MethodCall { recv, .. } => atomic_name(recv),
        ExprKind::Call { callee, .. } => atomic_name(callee),
        _ => None,
    }
}

/// Runs the unsafe-precondition check. Returns raw findings; the
/// caller applies `audit: allow(unsafe-precondition, ...)`.
#[must_use]
pub fn unsafe_precondition_pass(
    files: &[SourceFile],
    asts: &[FileAst],
    cg: &CallGraph,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        if !UNSAFE_PRECONDITION_FILES.contains(&sf.rel.as_str()) {
            continue;
        }
        // Global ids of this file's fns, aligned with the AST order.
        let ids: Vec<usize> = (0..cg.fns.len())
            .filter(|&id| cg.fns[id].file == fi)
            .collect();
        for (ti, t) in sf.toks.iter().enumerate() {
            if t.kind != TokKind::Ident || !t.is_ident("unsafe") || sf.tok_is_test(ti) {
                continue;
            }
            // Only `unsafe {` blocks with a SAFETY comment: blocks
            // without one are already findings of check 3.
            let next = (ti + 1..sf.toks.len()).find(|&j| sf.toks[j].kind != TokKind::Comment);
            if !next.is_some_and(|j| sf.toks[j].is_punct('{')) || !sf.safety_near(t.line) {
                continue;
            }
            if capability_safety(sf, t.line) {
                continue;
            }
            // The innermost enclosing fn, by body span.
            let encl = ids
                .iter()
                .map(|&id| (id, asts[fi].fns[cg.fns[id].idx].body_span))
                .filter(|&(_, (o, c))| o <= ti && ti <= c)
                .min_by_key(|&(_, (o, c))| c - o);
            let Some((fn_id, _)) = encl else {
                // Module-level unsafe (e.g. inside a macro definition)
                // has no function to carry an assert; only a
                // capability-class SAFETY argument can justify it.
                out.push(
                    sf.finding(
                        t.line,
                        Check::UnsafePrecondition,
                        "`unsafe` outside any fn states a data precondition that nothing asserts"
                            .to_string(),
                    ),
                );
                continue;
            };
            let guarded = cg
                .callers_within_file(fn_id, CALLER_DEPTH)
                .into_iter()
                .any(|id| fn_has_assert(sf, asts, cg, id));
            if !guarded {
                let def = &asts[fi].fns[cg.fns[fn_id].idx];
                out.push(sf.finding(
                    t.line,
                    Check::UnsafePrecondition,
                    format!(
                        "`unsafe` block's `// SAFETY:` precondition is not guarded by an \
                         assert/debug_assert in `{}` or its callers",
                        def.name
                    ),
                ));
            }
        }
    }
    out
}

/// Whether the comment block ending at `line` (the `unsafe` line and
/// the contiguous comment/blank lines above it) argues CPU capability.
fn capability_safety(sf: &SourceFile, line: usize) -> bool {
    let mut text = String::new();
    let mut l = line;
    while l >= 1 {
        let raw = sf.lines.get(l - 1).map_or("", |s| s.trim());
        if l != line && !(raw.is_empty() || raw.starts_with("//")) {
            break;
        }
        text.push_str(&raw.to_lowercase());
        text.push('\n');
        if l == 1 {
            break;
        }
        l -= 1;
    }
    CAPABILITY_WORDS.iter().any(|w| text.contains(w))
}

/// Whether the fn's token span contains an assert-family macro call.
fn fn_has_assert(sf: &SourceFile, asts: &[FileAst], cg: &CallGraph, id: usize) -> bool {
    let key = cg.fns[id];
    let def = &asts[key.file].fns[key.idx];
    let (open, close) = def.body_span;
    (open..=close.min(sf.toks.len().saturating_sub(1))).any(|j| {
        let t = &sf.toks[j];
        t.kind == TokKind::Ident
            && ASSERT_MACROS.contains(&t.text.as_str())
            && sf.toks.get(j + 1).is_some_and(|n| n.is_punct('!'))
    })
}
