//! A lightweight recursive-descent parser over the [`crate::lexer`]
//! token stream.
//!
//! The parser produces, per file, a list of function definitions with
//! parameter names and statement/expression trees — just enough
//! structure for the interprocedural taint pass ([`crate::taint`]) and
//! the IR-based checks ([`crate::ordering`]): `let` bindings,
//! assignments, calls and method calls (macro invocations included),
//! field projections, indexing, conditions/scrutinees with their
//! pattern bindings, closures, and binary operators classified into the
//! sink-relevant groups (`/`/`%`, comparisons, short-circuit).
//!
//! It is deliberately *not* a full Rust grammar: types, generics,
//! attributes, lifetimes and patterns are skipped or reduced to their
//! binding names, operator precedence is collapsed to three levels
//! (short-circuit < comparison < everything else — all the taint pass
//! distinguishes), and any construct the parser does not recognize
//! degrades to [`ExprKind::Unknown`] while guaranteeing forward
//! progress. Multi-character operators are joined exactly using the
//! lexer's byte offsets, so `a == b` and `a = = b` (never valid Rust)
//! cannot be confused, and `..=` / `=>` / `::` never masquerade as `=`.

use crate::lexer::{TokKind, Token};

/// Binary operator classes. Only the sink-relevant distinctions are
/// kept; everything arithmetic/bitwise/range is [`BinOp::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `/` or `%` — variable-latency on secret operands.
    DivRem,
    /// `==`, `!=`, `<`, `>`, `<=`, `>=`.
    Cmp,
    /// `&&` or `||` — evaluation order depends on the left value.
    ShortCircuit,
    /// Any other binary operator.
    Other,
}

/// The parse result for one file: every `fn` found anywhere in it
/// (top level, `impl`/`trait` blocks, nested modules, nested fns).
#[derive(Debug, Default)]
pub struct FileAst {
    /// Functions in source order.
    pub fns: Vec<FnDef>,
}

/// One parsed function.
#[derive(Debug)]
pub struct FnDef {
    /// The bare function name.
    pub name: String,
    /// `Type::name` when defined inside `impl Type` / `trait Type`.
    pub qual: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Raw token index of the `fn` keyword (for test-span scoping).
    pub fn_tok: usize,
    /// Raw token indices of the body `{` and `}` (inclusive).
    pub body_span: (usize, usize),
    /// Parameter binding names in order (`self` included when present).
    pub params: Vec<String>,
    /// The body statements.
    pub body: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub struct Stmt {
    /// Line of the statement's first token.
    pub line: usize,
    /// The statement payload.
    pub kind: StmtKind,
}

/// Statement payloads.
#[derive(Debug)]
pub enum StmtKind {
    /// `let <pat> = init;` — `names` are the pattern's bindings.
    Let {
        /// Names bound by the pattern.
        names: Vec<String>,
        /// Initializer, when present.
        init: Option<Expr>,
        /// `let ... else { ... }` diverging block.
        else_block: Option<Vec<Stmt>>,
    },
    /// `target = value;` or a compound assignment (`+=`, …).
    Assign {
        /// Assignment target expression.
        target: Expr,
        /// Right-hand side.
        value: Expr,
        /// True for `op=` forms (target keeps its old taint too).
        compound: bool,
    },
    /// An expression statement; `semi == false` marks a tail expression.
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed (tail expressions return the value).
        semi: bool,
    },
    /// `while [let <pat> =] cond { body }`.
    While {
        /// Bindings of a `while let` pattern (empty otherwise).
        bindings: Vec<String>,
        /// The loop condition / scrutinee.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for <pat> in iter { body }`.
    For {
        /// Names bound by the loop pattern.
        names: Vec<String>,
        /// The iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `loop { body }`.
    Loop {
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A nested non-`fn` item (skipped; nested `fn`s are lifted into
    /// [`FileAst::fns`]).
    Item,
}

/// One expression node.
#[derive(Debug)]
pub struct Expr {
    /// Line of the expression's first token.
    pub line: usize,
    /// The expression payload.
    pub kind: ExprKind,
}

/// Expression payloads.
#[derive(Debug)]
pub enum ExprKind {
    /// A (possibly qualified) path: `x`, `mod::f`, `Type::CONST`.
    Path(Vec<String>),
    /// Any literal; the token text is kept so constant-value checks
    /// (e.g. power-of-two divisors) can see it. Empty for synthesized
    /// literals (`()`, bare ranges).
    Lit(String),
    /// `base.name` (numeric tuple fields keep their digits as `name`).
    Field {
        /// The projected-from expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// `callee(args)` where `callee` is an arbitrary expression
    /// (usually a [`ExprKind::Path`]).
    Call {
        /// The called expression.
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `recv.name(args)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments in order (receiver not included).
        args: Vec<Expr>,
    },
    /// `name!(args)` — arguments parsed best-effort as expressions so
    /// taint can see through `assert!`/`vec!`-style macros.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A binary operation (three-level precedence; left-associative).
    Binary {
        /// Operator class.
        op: BinOp,
        /// The operator's source text (for messages).
        op_text: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A prefix operator (`!`, `-`, `*`, `&`, `..`) — taint-transparent.
    Unary {
        /// The operand.
        expr: Box<Expr>,
    },
    /// `if [let <pat> =] cond { then } [else <els>]`.
    If {
        /// Bindings of an `if let` pattern (empty otherwise).
        bindings: Vec<String>,
        /// Condition / scrutinee.
        cond: Box<Expr>,
        /// Then-block statements.
        then: Vec<Stmt>,
        /// `else` branch: a block or a chained `if`.
        els: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// The arms in order.
        arms: Vec<Arm>,
    },
    /// A block (incl. `unsafe { .. }` and loop expressions, wrapped).
    Block(Vec<Stmt>),
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter binding names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `Name { field: expr, .., ..base }`.
    StructLit {
        /// The struct's (last) path segment.
        name: String,
        /// Field initializers (shorthand `x` becomes `(x, Path(x))`).
        fields: Vec<(String, Expr)>,
        /// `..base` functional-update expression.
        base: Option<Box<Expr>>,
    },
    /// A tuple or array literal (`(a, b)`, `[a, b]`, `[x; n]`).
    Tuple(Vec<Expr>),
    /// `return e` / `break e` / `continue` in expression position.
    Ret {
        /// The returned value, when present.
        value: Option<Box<Expr>>,
    },
    /// Anything the parser could not recognize.
    Unknown,
}

/// One `match` arm.
#[derive(Debug)]
pub struct Arm {
    /// Names bound by the arm's pattern.
    pub bindings: Vec<String>,
    /// The `if` guard, when present.
    pub guard: Option<Expr>,
    /// The arm body.
    pub body: Expr,
    /// Line of the pattern's first token.
    pub line: usize,
}

/// Parses one file's token stream (comments included — they are
/// filtered internally) into its function list.
#[must_use]
pub fn parse_file(toks: &[Token]) -> FileAst {
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let mut p = Parser {
        toks,
        code,
        i: 0,
        fns: Vec::new(),
        depth: 0,
    };
    let end = p.code.len();
    p.parse_items(end, None);
    FileAst { fns: p.fns }
}

/// Multi-character operators, longest first so greedy matching is
/// unambiguous (`..=` before `..`, `<<=` before `<<` before `<`).
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "<<", ">>", "..", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Keywords and non-binding identifiers excluded by the pattern-binding
/// collector.
const PAT_KEYWORDS: &[&str] = &[
    "mut", "ref", "box", "move", "if", "else", "match", "return", "break", "continue", "in", "let",
    "as", "dyn", "fn", "impl", "for", "while", "loop", "true", "false", "self", "crate", "super",
    "where", "pub", "use", "mod", "static", "const", "struct", "enum", "trait", "type", "unsafe",
    "await", "async", "_",
];

struct Parser<'a> {
    toks: &'a [Token],
    /// Indices of non-comment tokens.
    code: Vec<usize>,
    /// Cursor into `code`.
    i: usize,
    fns: Vec<FnDef>,
    depth: u32,
}

impl Parser<'_> {
    fn tok(&self, k: usize) -> Option<&Token> {
        self.code.get(k).map(|&r| &self.toks[r])
    }

    fn cur(&self) -> Option<&Token> {
        self.tok(self.i)
    }

    fn line(&self) -> usize {
        self.cur()
            .map_or_else(|| self.toks.last().map_or(1, |t| t.line), |t| t.line)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.cur().is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, c: char) -> bool {
        self.cur().is_some_and(|t| t.is_punct(c))
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// Whether code tokens `a` and `a + 1` are byte-adjacent.
    fn glued(&self, a: usize) -> bool {
        match (self.tok(a), self.tok(a + 1)) {
            (Some(x), Some(y)) => x.pos + x.text.len() == y.pos,
            _ => false,
        }
    }

    /// The longest operator starting at code index `k`, with its token
    /// count. Single punctuation characters match as themselves.
    fn op_at(&self, k: usize) -> Option<(String, usize)> {
        let first = self.tok(k)?;
        if first.kind != TokKind::Punct {
            return None;
        }
        'op: for op in OPS {
            let chars: Vec<char> = op.chars().collect();
            for (j, &c) in chars.iter().enumerate() {
                let Some(t) = self.tok(k + j) else {
                    continue 'op;
                };
                if !t.is_punct(c) || (j + 1 < chars.len() && !self.glued(k + j)) {
                    continue 'op;
                }
            }
            return Some(((*op).to_string(), chars.len()));
        }
        Some((first.text.clone(), 1))
    }

    /// The operator at the cursor.
    fn peek_op(&self) -> Option<(String, usize)> {
        self.op_at(self.i)
    }

    /// Consumes the operator `op` if it is at the cursor.
    fn eat_op(&mut self, op: &str) -> bool {
        if let Some((o, n)) = self.peek_op() {
            if o == op {
                self.i += n;
                return true;
            }
        }
        false
    }

    /// Whether the cursor sits at a token that ends any expression.
    fn at_expr_end(&self) -> bool {
        let Some(t) = self.cur() else {
            return true;
        };
        if t.kind == TokKind::Punct {
            if matches!(t.text.as_bytes()[0], b';' | b',' | b')' | b']' | b'}') {
                return true;
            }
            if let Some((op, _)) = self.peek_op() {
                if op == "=>" {
                    return true;
                }
            }
        }
        false
    }

    /// Skips a balanced `( .. )` / `[ .. ]` / `{ .. }` group whose
    /// opener is at the cursor. Never loops: always advances.
    fn skip_group(&mut self) {
        let Some(t) = self.cur() else {
            return;
        };
        let (o, c) = match t.text.as_bytes().first() {
            Some(b'(') => ('(', ')'),
            Some(b'[') => ('[', ']'),
            Some(b'{') => ('{', '}'),
            _ => {
                self.bump();
                return;
            }
        };
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips a generic-argument group whose `<` is at the cursor,
    /// counting each `<` / `>` character and guarding `->` arrows.
    fn skip_angles(&mut self) {
        let mut depth = 0i64;
        while let Some((op, n)) = self.peek_op() {
            match op.as_str() {
                "<" | "<<" => depth += op.len() as i64,
                ">" | ">>" => depth -= op.len() as i64,
                "->" | "=>" => {}
                "(" | "[" | "{" => {
                    self.skip_group();
                    continue;
                }
                _ => {}
            }
            self.i += n;
            if depth <= 0 {
                return;
            }
            // Idents/literals inside the generics.
            while self.cur().is_some_and(|t| t.kind != TokKind::Punct) {
                self.bump();
            }
        }
    }

    /// Skips one type (after `as`, or a return type): pointers,
    /// references, paths with generics, parenthesized/fn-pointer types.
    fn skip_type(&mut self) {
        loop {
            let Some(t) = self.cur() else {
                return;
            };
            match t.kind {
                TokKind::Punct => match t.text.as_bytes()[0] {
                    b'&' | b'*' => self.bump(),
                    b'(' | b'[' => self.skip_group(),
                    b'<' => self.skip_angles(),
                    _ => return,
                },
                TokKind::Lifetime => self.bump(),
                TokKind::Ident => {
                    if matches!(
                        t.text.as_str(),
                        "mut" | "const" | "dyn" | "impl" | "as" | "fn"
                    ) {
                        self.bump();
                        continue;
                    }
                    // A path segment; `::` continues it, `<` opens
                    // generics attached to it.
                    self.bump();
                    loop {
                        if self.eat_op("::") {
                            if self.at_punct('<') {
                                self.skip_angles();
                            } else {
                                self.bump();
                            }
                            continue;
                        }
                        if self.at_punct('<') {
                            self.skip_angles();
                            continue;
                        }
                        break;
                    }
                    // `Fn(..) -> R` / trait-object `+` continuations.
                    if self.at_punct('(') {
                        self.skip_group();
                    }
                    if self.eat_op("->") {
                        continue;
                    }
                    if self.at_punct('+') {
                        self.bump();
                        continue;
                    }
                    return;
                }
                TokKind::Literal | TokKind::Comment => return,
            }
        }
    }

    /// Collects pattern binding names in code-index range `[a, b)`:
    /// lowercase/underscore-starting identifiers that are not keywords,
    /// path segments, call/struct heads, or struct-pattern field names.
    fn pattern_bindings(&self, a: usize, b: usize) -> Vec<String> {
        let mut out = Vec::new();
        for k in a..b.min(self.code.len()) {
            let Some(t) = self.tok(k) else { continue };
            if t.kind != TokKind::Ident || PAT_KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            let first = t.text.chars().next().unwrap_or('_');
            if !(first.is_ascii_lowercase() || first == '_') {
                continue;
            }
            // Skip path segments (`a::b`), call heads (`f(`), struct
            // heads (`s {`), macro names (`m!`).
            if k > a {
                if let Some((op, _)) = self.op_at(k.wrapping_sub(2)) {
                    if op == "::" {
                        continue;
                    }
                }
            }
            if k + 1 < b {
                if let Some((op, _)) = self.op_at(k + 1) {
                    match op.as_str() {
                        "::" | "(" | "{" | "!" => continue,
                        // Struct-pattern field name `x: pat` — the
                        // binding is the pattern, not the field.
                        ":" => continue,
                        _ => {}
                    }
                }
            }
            out.push(t.text.clone());
        }
        out
    }

    /// Scans from the cursor for the first occurrence of terminator
    /// operator `what` (e.g. `"="`) at bracket depth 0, also stopping at
    /// `;`, `{` (depth 0) or end of input. Returns the code index.
    fn find_at_depth0(&self, what: &[&str]) -> usize {
        let mut k = self.i;
        let mut depth = 0i64;
        while k < self.code.len() {
            let Some((op, n)) = self.op_at(k) else {
                k += 1;
                continue;
            };
            match op.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 && !what.contains(&"{") => return k,
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => return k,
                _ => {}
            }
            if depth == 0 && what.contains(&op.as_str()) {
                return k;
            }
            if depth < 0 {
                return k;
            }
            k += n;
        }
        k
    }

    // ----- items ---------------------------------------------------

    /// Parses items until code index `end`, registering every `fn`.
    /// `self_ty` is the enclosing `impl`/`trait` type name.
    fn parse_items(&mut self, end: usize, self_ty: Option<&str>) {
        while self.i < end {
            let before = self.i;
            self.parse_item(end, self_ty);
            if self.i == before {
                self.bump();
            }
        }
    }

    fn parse_item(&mut self, end: usize, self_ty: Option<&str>) {
        // Attributes.
        while self.at_punct('#') {
            self.bump();
            if self.at_punct('!') {
                self.bump();
            }
            if self.at_punct('[') {
                self.skip_group();
            }
        }
        // Visibility and qualifiers that may precede `fn`/`impl`/...
        while self.cur().is_some_and(|t| {
            t.is_ident("pub")
                || t.is_ident("async")
                || t.is_ident("unsafe")
                || t.is_ident("default")
        }) {
            self.bump();
            if self.at_punct('(') {
                self.skip_group(); // pub(crate)
            }
        }
        if self.at_ident("extern") {
            self.bump();
            if self.cur().is_some_and(|t| t.kind == TokKind::Literal) {
                self.bump(); // "C"
            }
            if self.at_punct('{') {
                self.skip_group(); // extern block
                return;
            }
        }
        if self.at_ident("const") || self.at_ident("static") {
            // `const fn` continues below; `const NAME: ...` is an item.
            if !self.tok(self.i + 1).is_some_and(|t| t.is_ident("fn")) {
                self.skip_to_item_end(end);
                return;
            }
            self.bump();
        }
        let Some(t) = self.cur() else { return };
        if t.is_ident("fn") {
            self.parse_fn(self_ty);
            return;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            let is_impl = t.is_ident("impl");
            self.bump();
            if self.at_punct('<') {
                self.skip_angles();
            }
            // Collect path segments up to `for`, `{` or `where`; the
            // last segment before the body names the implemented type.
            let mut name = String::new();
            while self.i < end {
                let Some(t) = self.cur() else { break };
                if t.is_punct('{') {
                    break;
                }
                if t.kind == TokKind::Ident {
                    if t.is_ident("where") {
                        // Bounds; the name is already decided.
                        while self.i < end && !self.at_punct('{') {
                            if self.at_punct('<') {
                                self.skip_angles();
                            } else if self.at_punct('(') || self.at_punct('[') {
                                self.skip_group();
                            } else {
                                self.bump();
                            }
                        }
                        break;
                    }
                    if t.is_ident("for") {
                        name.clear(); // `impl Trait for Type` — restart
                        self.bump();
                        continue;
                    }
                    name = t.text.clone();
                    self.bump();
                    continue;
                }
                if self.at_punct('<') {
                    self.skip_angles();
                    continue;
                }
                self.bump();
            }
            if self.at_punct('{') {
                let close = self.matching_close();
                self.bump();
                let ty = if is_impl || !name.is_empty() {
                    Some(name)
                } else {
                    None
                };
                self.parse_items(close, ty.as_deref().filter(|s| !s.is_empty()));
                if self.at_punct('}') {
                    self.bump();
                }
            }
            return;
        }
        if t.is_ident("mod") {
            self.bump();
            if self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
                self.bump();
            }
            if self.at_punct('{') {
                let close = self.matching_close();
                self.bump();
                self.parse_items(close, self_ty);
                if self.at_punct('}') {
                    self.bump();
                }
            } else if self.at_punct(';') {
                self.bump();
            }
            return;
        }
        // Any other item: skip to its end.
        self.skip_to_item_end(end);
    }

    /// Code index of the `}` matching the `{` at the cursor.
    fn matching_close(&self) -> usize {
        let mut depth = 0usize;
        let mut k = self.i;
        while k < self.code.len() {
            let t = self.tok(k).expect("bounded");
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            k += 1;
        }
        self.code.len()
    }

    /// Skips to the end of the current item: a top-level `;`, or past
    /// the brace block that forms its body.
    fn skip_to_item_end(&mut self, end: usize) {
        let mut depth = 0i64;
        while self.i < end {
            let Some(t) = self.cur() else { return };
            match t.text.as_bytes().first() {
                Some(b'(' | b'[') if t.kind == TokKind::Punct => depth += 1,
                Some(b')' | b']') if t.kind == TokKind::Punct => depth -= 1,
                Some(b'{') if t.kind == TokKind::Punct && depth == 0 => {
                    self.skip_group();
                    return;
                }
                Some(b';') if t.kind == TokKind::Punct && depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Parses `fn name(params) -> Ret { body }`; the cursor is at `fn`.
    fn parse_fn(&mut self, self_ty: Option<&str>) {
        let fn_tok = self.code[self.i];
        let line = self.toks[fn_tok].line;
        self.bump(); // fn
        let name = match self.cur() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => return,
        };
        if self.at_punct('<') {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.at_punct('(') {
            let close = {
                // Find the matching `)`.
                let mut depth = 0i64;
                let mut k = self.i;
                loop {
                    let Some(t) = self.tok(k) else { break k };
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break k;
                        }
                    }
                    k += 1;
                }
            };
            params = self.parse_params(self.i + 1, close);
            self.i = close + 1;
        }
        // Return type / where clause: skip to the body `{` or a `;`.
        loop {
            let Some(t) = self.cur() else { return };
            if t.is_punct(';') {
                self.bump();
                return; // trait method without a body
            }
            if t.is_punct('{') {
                break;
            }
            if t.is_punct('<') {
                self.skip_angles();
            } else if t.is_punct('(') || t.is_punct('[') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        let open = self.code[self.i];
        let close_code = self.matching_close();
        let close = self
            .code
            .get(close_code)
            .copied()
            .unwrap_or_else(|| self.toks.len().saturating_sub(1));
        let body = self.parse_block();
        self.fns.push(FnDef {
            qual: self_ty.map(|t| format!("{t}::{name}")),
            name,
            line,
            fn_tok,
            body_span: (open, close),
            params,
            body,
        });
    }

    /// Parses parameter names in the code range `(a, close)` (exclusive
    /// of the parens). Tracks angle depth so commas inside generic
    /// types do not split parameters.
    fn parse_params(&self, a: usize, close: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut chunk_start = a;
        let mut depth = 0i64;
        let mut angles = 0i64;
        let mut k = a;
        let flush = |s: usize, e: usize, out: &mut Vec<String>, p: &Self| {
            if e <= s {
                return;
            }
            // Pattern part: before the first top-level single `:`.
            let mut pat_end = e;
            let mut d = 0i64;
            let mut j = s;
            while j < e {
                let Some((op, n)) = p.op_at(j) else {
                    j += 1;
                    continue;
                };
                match op.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    ":" if d == 0 => {
                        pat_end = j;
                        break;
                    }
                    _ => {}
                }
                j += n;
            }
            let has_self = (s..pat_end).any(|j| p.tok(j).is_some_and(|t| t.is_ident("self")));
            if has_self {
                out.push("self".to_string());
                return;
            }
            let mut names = p.pattern_bindings(s, pat_end);
            out.append(&mut names);
        };
        while k < close {
            let Some((op, n)) = self.op_at(k) else {
                k += 1;
                continue;
            };
            match op.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" | "<<" => angles += op.len() as i64,
                ">" | ">>" => angles -= op.len() as i64,
                "->" | "=>" => {}
                "," if depth == 0 && angles <= 0 => {
                    flush(chunk_start, k, &mut out, self);
                    chunk_start = k + 1;
                    if angles < 0 {
                        angles = 0;
                    }
                }
                _ => {}
            }
            k += n;
        }
        flush(chunk_start, close, &mut out, self);
        out
    }

    // ----- statements ----------------------------------------------

    /// Parses `{ stmt* }`; the cursor is at `{`. Consumes the `}`.
    fn parse_block(&mut self) -> Vec<Stmt> {
        let close = self.matching_close();
        self.bump(); // {
        let mut out = Vec::new();
        while self.i < close {
            let before = self.i;
            if let Some(stmt) = self.parse_stmt(close) {
                out.push(stmt);
            }
            if self.i == before {
                self.bump();
            }
        }
        if self.at_punct('}') {
            self.bump();
        }
        out
    }

    #[allow(clippy::too_many_lines)] // one arm per statement form
    fn parse_stmt(&mut self, end: usize) -> Option<Stmt> {
        while self.at_punct('#') {
            self.bump();
            if self.at_punct('!') {
                self.bump();
            }
            if self.at_punct('[') {
                self.skip_group();
            }
        }
        if self.i >= end {
            return None;
        }
        let line = self.line();
        if self.at_punct(';') {
            self.bump();
            return None;
        }
        if self.at_ident("let") {
            self.bump();
            let eq = self.find_at_depth0(&["="]);
            // Pattern ends at the first top-level `:` (type) or the `=`.
            let colon = self.find_at_depth0(&[":", "="]);
            let pat_end = colon.min(eq);
            let names = self.pattern_bindings(self.i, pat_end);
            self.i = eq;
            let mut init = None;
            let mut else_block = None;
            if self.eat_op("=") {
                init = Some(self.parse_expr(false));
                if self.at_ident("else") {
                    self.bump();
                    if self.at_punct('{') {
                        else_block = Some(self.parse_block());
                    }
                }
            }
            if self.at_punct(';') {
                self.bump();
            }
            return Some(Stmt {
                line,
                kind: StmtKind::Let {
                    names,
                    init,
                    else_block,
                },
            });
        }
        if self.at_ident("while") {
            self.bump();
            let mut bindings = Vec::new();
            if self.at_ident("let") {
                self.bump();
                let eq = self.find_at_depth0(&["="]);
                bindings = self.pattern_bindings(self.i, eq);
                self.i = eq;
                self.eat_op("=");
            }
            let cond = self.parse_expr(true);
            let body = if self.at_punct('{') {
                self.parse_block()
            } else {
                Vec::new()
            };
            return Some(Stmt {
                line,
                kind: StmtKind::While {
                    bindings,
                    cond,
                    body,
                },
            });
        }
        if self.at_ident("for") {
            self.bump();
            let in_kw = {
                let mut k = self.i;
                let mut depth = 0i64;
                loop {
                    let Some(t) = self.tok(k) else { break k };
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 0 && t.is_ident("in") {
                        break k;
                    }
                    k += 1;
                }
            };
            let names = self.pattern_bindings(self.i, in_kw);
            self.i = in_kw;
            if self.at_ident("in") {
                self.bump();
            }
            let iter = self.parse_expr(true);
            let body = if self.at_punct('{') {
                self.parse_block()
            } else {
                Vec::new()
            };
            return Some(Stmt {
                line,
                kind: StmtKind::For { names, iter, body },
            });
        }
        if self.at_ident("loop") {
            self.bump();
            let body = if self.at_punct('{') {
                self.parse_block()
            } else {
                Vec::new()
            };
            return Some(Stmt {
                line,
                kind: StmtKind::Loop { body },
            });
        }
        // Loop labels: `'outer: loop { ... }`.
        if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime)
            && self.tok(self.i + 1).is_some_and(|t| t.is_punct(':'))
        {
            self.bump();
            self.bump();
            return self.parse_stmt(end);
        }
        if self.at_ident("return") || self.at_ident("break") || self.at_ident("continue") {
            let keep = self.at_ident("return") || self.at_ident("break");
            self.bump();
            if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                self.bump(); // break 'label
            }
            let value = if keep && !self.at_expr_end() {
                Some(self.parse_expr(false))
            } else {
                None
            };
            if self.at_punct(';') {
                self.bump();
            }
            return Some(Stmt {
                line,
                kind: StmtKind::Expr {
                    expr: Expr {
                        line,
                        kind: ExprKind::Ret {
                            value: value.map(Box::new),
                        },
                    },
                    semi: true,
                },
            });
        }
        // Nested items inside a body.
        if self.at_ident("fn")
            || (self.at_ident("const") && self.tok(self.i + 1).is_some_and(|t| t.is_ident("fn")))
        {
            if self.at_ident("const") {
                self.bump();
            }
            self.parse_fn(None);
            return Some(Stmt {
                line,
                kind: StmtKind::Item,
            });
        }
        if self.at_ident("struct")
            || self.at_ident("enum")
            || self.at_ident("impl")
            || self.at_ident("trait")
            || self.at_ident("mod")
            || self.at_ident("use")
            || self.at_ident("type")
            || self.at_ident("static")
            || self.at_ident("macro_rules")
            || (self.at_ident("const")
                && self
                    .tok(self.i + 1)
                    .is_some_and(|t| t.kind == TokKind::Ident && !t.is_ident("fn")))
        {
            self.skip_to_item_end(end);
            return Some(Stmt {
                line,
                kind: StmtKind::Item,
            });
        }
        // Expression statement, possibly an assignment.
        let expr = self.parse_expr(false);
        if let Some((op, n)) = self.peek_op() {
            let compound = matches!(
                op.as_str(),
                "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
            );
            if op == "=" || compound {
                self.i += n;
                let value = self.parse_expr(false);
                if self.at_punct(';') {
                    self.bump();
                }
                return Some(Stmt {
                    line,
                    kind: StmtKind::Assign {
                        target: expr,
                        value,
                        compound,
                    },
                });
            }
        }
        let semi = self.at_punct(';');
        if semi {
            self.bump();
        }
        Some(Stmt {
            line,
            kind: StmtKind::Expr { expr, semi },
        })
    }

    // ----- expressions ---------------------------------------------

    /// Full expression: short-circuit level (lowest precedence kept).
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        self.depth += 1;
        let e = if self.depth > 200 {
            let line = self.line();
            if !self.at_expr_end() {
                self.bump();
            }
            Expr {
                line,
                kind: ExprKind::Unknown,
            }
        } else {
            self.parse_or(no_struct)
        };
        self.depth -= 1;
        e
    }

    fn parse_or(&mut self, no_struct: bool) -> Expr {
        let mut lhs = self.parse_cmp(no_struct);
        while let Some((op, n)) = self.peek_op() {
            if op != "&&" && op != "||" {
                break;
            }
            self.i += n;
            let rhs = self.parse_cmp(no_struct);
            let line = lhs.line;
            lhs = Expr {
                line,
                kind: ExprKind::Binary {
                    op: BinOp::ShortCircuit,
                    op_text: op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        lhs
    }

    fn parse_cmp(&mut self, no_struct: bool) -> Expr {
        let mut lhs = self.parse_arith(no_struct);
        while let Some((op, n)) = self.peek_op() {
            if !matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=") {
                break;
            }
            self.i += n;
            let rhs = self.parse_arith(no_struct);
            let line = lhs.line;
            lhs = Expr {
                line,
                kind: ExprKind::Binary {
                    op: BinOp::Cmp,
                    op_text: op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        lhs
    }

    fn parse_arith(&mut self, no_struct: bool) -> Expr {
        let mut lhs = self.parse_unary(no_struct);
        loop {
            if self.at_expr_end() {
                break;
            }
            let Some((op, n)) = self.peek_op() else { break };
            let class = match op.as_str() {
                "/" | "%" => BinOp::DivRem,
                "+" | "-" | "*" | "^" | "&" | "|" | "<<" | ">>" | ".." | "..=" => BinOp::Other,
                _ => break,
            };
            self.i += n;
            // `a..` / range with no upper bound.
            if (op == ".." || op == "..=") && (self.at_expr_end() || self.at_punct('{')) {
                let line = lhs.line;
                lhs = Expr {
                    line,
                    kind: ExprKind::Unary {
                        expr: Box::new(lhs),
                    },
                };
                break;
            }
            let rhs = self.parse_unary(no_struct);
            let line = lhs.line;
            lhs = Expr {
                line,
                kind: ExprKind::Binary {
                    op: class,
                    op_text: op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        lhs
    }

    #[allow(clippy::too_many_lines)] // one arm per primary form
    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        self.depth += 1;
        let e = self.parse_unary_inner(no_struct);
        self.depth -= 1;
        e
    }

    fn parse_unary_inner(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        if self.depth > 200 {
            if !self.at_expr_end() {
                self.bump();
            }
            return Expr {
                line,
                kind: ExprKind::Unknown,
            };
        }
        // Prefix operators.
        if let Some((op, n)) = self.peek_op() {
            match op.as_str() {
                "!" | "-" | "*" | "&" | "&&" | ".." | "..=" => {
                    self.i += n;
                    if op == "&" || op == "&&" {
                        if self.at_ident("mut") {
                            self.bump();
                        }
                        if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                            self.bump();
                        }
                    }
                    if (op == ".." || op == "..=") && self.at_expr_end() {
                        return Expr {
                            line,
                            kind: ExprKind::Lit(String::new()),
                        };
                    }
                    let inner = self.parse_unary(no_struct);
                    return Expr {
                        line,
                        kind: ExprKind::Unary {
                            expr: Box::new(inner),
                        },
                    };
                }
                "|" | "||" => return self.parse_closure(),
                _ => {}
            }
        }
        let primary = self.parse_primary(no_struct);
        self.parse_postfix(primary, no_struct)
    }

    fn parse_closure(&mut self) -> Expr {
        let line = self.line();
        let mut params = Vec::new();
        if self.eat_op("||") {
            // Zero-parameter closure.
        } else {
            self.bump(); // opening |
            let close = {
                let mut k = self.i;
                let mut depth = 0i64;
                loop {
                    let Some(t) = self.tok(k) else { break k };
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct('|') {
                        break k;
                    }
                    k += 1;
                }
            };
            params = self.parse_params(self.i, close);
            self.i = close + 1;
        }
        // Optional `-> Type` before a block body.
        if self.eat_op("->") {
            self.skip_type();
        }
        let body = if self.at_punct('{') {
            Expr {
                line: self.line(),
                kind: ExprKind::Block(self.parse_block()),
            }
        } else {
            self.parse_expr(false)
        };
        Expr {
            line,
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        }
    }

    #[allow(clippy::too_many_lines)] // one arm per primary form
    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.cur() else {
            return Expr {
                line,
                kind: ExprKind::Unknown,
            };
        };
        match t.kind {
            TokKind::Literal => {
                let text = t.text.clone();
                self.bump();
                Expr {
                    line,
                    kind: ExprKind::Lit(text),
                }
            }
            TokKind::Lifetime => {
                // Loop label in expression position: `'a: loop { ... }`.
                self.bump();
                if self.at_punct(':') {
                    self.bump();
                }
                self.parse_primary(no_struct)
            }
            TokKind::Punct => match t.text.as_bytes()[0] {
                b'(' => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.at_punct(')') && self.cur().is_some() {
                        let before = self.i;
                        items.push(self.parse_expr(false));
                        if self.at_punct(',') {
                            self.bump();
                        }
                        if self.i == before {
                            self.bump();
                        }
                    }
                    if self.at_punct(')') {
                        self.bump();
                    }
                    match items.len() {
                        0 => Expr {
                            line,
                            kind: ExprKind::Lit(String::new()),
                        },
                        1 => items.pop().expect("len checked"),
                        _ => Expr {
                            line,
                            kind: ExprKind::Tuple(items),
                        },
                    }
                }
                b'[' => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.at_punct(']') && self.cur().is_some() {
                        let before = self.i;
                        items.push(self.parse_expr(false));
                        if self.at_punct(',') || self.at_punct(';') {
                            self.bump();
                        }
                        if self.i == before {
                            self.bump();
                        }
                    }
                    if self.at_punct(']') {
                        self.bump();
                    }
                    Expr {
                        line,
                        kind: ExprKind::Tuple(items),
                    }
                }
                b'{' => Expr {
                    line,
                    kind: ExprKind::Block(self.parse_block()),
                },
                _ => {
                    // Unrecognized punctuation: consume to guarantee
                    // progress.
                    self.bump();
                    Expr {
                        line,
                        kind: ExprKind::Unknown,
                    }
                }
            },
            TokKind::Ident => self.parse_ident_primary(no_struct),
            TokKind::Comment => {
                self.bump();
                Expr {
                    line,
                    kind: ExprKind::Unknown,
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)] // keyword dispatch + path forms
    fn parse_ident_primary(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let t = self.cur().expect("caller checked");
        if t.is_ident("if") {
            return self.parse_if();
        }
        if t.is_ident("match") {
            return self.parse_match();
        }
        if t.is_ident("unsafe") {
            self.bump();
            if self.at_punct('{') {
                return Expr {
                    line,
                    kind: ExprKind::Block(self.parse_block()),
                };
            }
            return Expr {
                line,
                kind: ExprKind::Unknown,
            };
        }
        if t.is_ident("loop") || t.is_ident("while") || t.is_ident("for") {
            // Loop in expression position: reuse the statement parser
            // and wrap the result.
            let end = self.code.len();
            let stmt = self.parse_stmt(end);
            return Expr {
                line,
                kind: ExprKind::Block(stmt.into_iter().collect()),
            };
        }
        if t.is_ident("move") {
            self.bump();
            if self.at_punct('|') || self.peek_op().is_some_and(|(o, _)| o == "||") {
                return self.parse_closure();
            }
            if self.at_punct('{') {
                return Expr {
                    line,
                    kind: ExprKind::Block(self.parse_block()),
                };
            }
            return Expr {
                line,
                kind: ExprKind::Unknown,
            };
        }
        if t.is_ident("return") || t.is_ident("break") {
            self.bump();
            if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                self.bump();
            }
            let value = if self.at_expr_end() || self.at_punct('{') {
                None
            } else {
                Some(Box::new(self.parse_expr(no_struct)))
            };
            return Expr {
                line,
                kind: ExprKind::Ret { value },
            };
        }
        if t.is_ident("continue") {
            self.bump();
            return Expr {
                line,
                kind: ExprKind::Ret { value: None },
            };
        }
        // A path: `seg (:: seg | ::<...>)*`.
        let mut segs = vec![t.text.clone()];
        self.bump();
        while let Some((op, n)) = self.peek_op() {
            if op != "::" {
                break;
            }
            self.i += n;
            if self.at_punct('<') {
                self.skip_angles(); // turbofish
                continue;
            }
            match self.cur() {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    self.bump();
                }
                _ => break,
            }
        }
        // Macro invocation: `name!(...)`, `name![...]`, `name!{...}`.
        if self.at_punct('!')
            && self
                .tok(self.i + 1)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            self.bump(); // !
            let open_char = self.cur().map_or('(', |t| {
                char::from(*t.text.as_bytes().first().unwrap_or(&b'('))
            });
            let close_char = match open_char {
                '[' => ']',
                '{' => '}',
                _ => ')',
            };
            let close = {
                let mut k = self.i;
                let mut depth = 0i64;
                loop {
                    let Some(t) = self.tok(k) else { break k };
                    if t.is_punct(open_char) {
                        depth += 1;
                    } else if t.is_punct(close_char) {
                        depth -= 1;
                        if depth == 0 {
                            break k;
                        }
                    }
                    k += 1;
                }
            };
            self.bump(); // opener
            let mut args = Vec::new();
            while self.i < close {
                let before = self.i;
                args.push(self.parse_expr(false));
                if self.at_punct(',') || self.at_punct(';') {
                    self.bump();
                }
                if self.i == before {
                    self.bump();
                }
            }
            self.i = close + 1;
            return Expr {
                line,
                kind: ExprKind::Macro {
                    name: segs.last().cloned().unwrap_or_default(),
                    args,
                },
            };
        }
        // Struct literal: `Name { field: e, .. }` outside condition
        // position, with an uppercase head segment.
        let head_upper = segs
            .last()
            .and_then(|s| s.chars().next())
            .is_some_and(char::is_uppercase);
        if !no_struct && head_upper && self.at_punct('{') {
            let close = self.matching_close();
            self.bump(); // {
            let mut fields = Vec::new();
            let mut base = None;
            while self.i < close {
                let before = self.i;
                if self.eat_op("..") {
                    base = Some(Box::new(self.parse_expr(false)));
                } else if self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
                    let fname = self.cur().expect("checked").text.clone();
                    let fline = self.line();
                    self.bump();
                    if self.at_punct(':')
                        && !matches!(self.peek_op(), Some((ref o, _)) if o == "::")
                    {
                        self.bump();
                        let value = self.parse_expr(false);
                        fields.push((fname, value));
                    } else {
                        // Shorthand `Name { x }`.
                        let value = Expr {
                            line: fline,
                            kind: ExprKind::Path(vec![fname.clone()]),
                        };
                        fields.push((fname, value));
                    }
                }
                if self.at_punct(',') {
                    self.bump();
                }
                if self.i == before {
                    self.bump();
                }
            }
            if self.at_punct('}') {
                self.bump();
            }
            return Expr {
                line,
                kind: ExprKind::StructLit {
                    name: segs.last().cloned().unwrap_or_default(),
                    fields,
                    base,
                },
            };
        }
        Expr {
            line,
            kind: ExprKind::Path(segs),
        }
    }

    /// Postfix chain: field access, method calls, calls, indexing, `?`,
    /// `as` casts, `.await`.
    fn parse_postfix(&mut self, mut e: Expr, no_struct: bool) -> Expr {
        while let Some(t) = self.cur() {
            if t.is_punct('?') {
                self.bump();
                continue;
            }
            if t.is_ident("as") {
                self.bump();
                self.skip_type();
                continue;
            }
            if t.is_punct('.') {
                // Not `..` — ranges are handled by the binary level.
                if let Some((op, _)) = self.peek_op() {
                    if op == ".." || op == "..=" {
                        break;
                    }
                }
                self.bump();
                let Some(nt) = self.cur() else { break };
                let line = nt.line;
                if nt.kind == TokKind::Literal {
                    let name = nt.text.clone();
                    self.bump();
                    e = Expr {
                        line,
                        kind: ExprKind::Field {
                            base: Box::new(e),
                            name,
                        },
                    };
                    continue;
                }
                if nt.kind == TokKind::Ident {
                    let name = nt.text.clone();
                    self.bump();
                    if name == "await" {
                        continue;
                    }
                    // Optional turbofish between name and `(`.
                    if matches!(self.peek_op(), Some((ref o, _)) if o == "::") {
                        let save = self.i;
                        self.eat_op("::");
                        if self.at_punct('<') {
                            self.skip_angles();
                        } else {
                            self.i = save;
                        }
                    }
                    if self.at_punct('(') {
                        let args = self.parse_call_args();
                        e = Expr {
                            line,
                            kind: ExprKind::MethodCall {
                                recv: Box::new(e),
                                name,
                                args,
                            },
                        };
                    } else {
                        e = Expr {
                            line,
                            kind: ExprKind::Field {
                                base: Box::new(e),
                                name,
                            },
                        };
                    }
                    continue;
                }
                break;
            }
            if t.is_punct('(') {
                let line = e.line;
                let args = self.parse_call_args();
                e = Expr {
                    line,
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                };
                continue;
            }
            if t.is_punct('[') {
                let line = t.line;
                self.bump();
                let index = self.parse_expr(false);
                if self.at_punct(']') {
                    self.bump();
                }
                e = Expr {
                    line,
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                };
                continue;
            }
            let _ = no_struct;
            break;
        }
        e
    }

    /// Parses `( arg, arg, ... )`; the cursor is at `(`.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        self.bump(); // (
        let mut args = Vec::new();
        while !self.at_punct(')') && self.cur().is_some() {
            let before = self.i;
            args.push(self.parse_expr(false));
            if self.at_punct(',') {
                self.bump();
            }
            if self.i == before {
                self.bump();
            }
        }
        if self.at_punct(')') {
            self.bump();
        }
        args
    }

    /// Parses `if [let pat =] cond { then } [else ...]`; cursor at `if`.
    fn parse_if(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // if
        let mut bindings = Vec::new();
        if self.at_ident("let") {
            self.bump();
            let eq = self.find_at_depth0(&["="]);
            bindings = self.pattern_bindings(self.i, eq);
            self.i = eq;
            self.eat_op("=");
        }
        let cond = self.parse_expr(true);
        let then = if self.at_punct('{') {
            self.parse_block()
        } else {
            Vec::new()
        };
        let els = if self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else if self.at_punct('{') {
                Some(Box::new(Expr {
                    line: self.line(),
                    kind: ExprKind::Block(self.parse_block()),
                }))
            } else {
                None
            }
        } else {
            None
        };
        Expr {
            line,
            kind: ExprKind::If {
                bindings,
                cond: Box::new(cond),
                then,
                els,
            },
        }
    }

    /// Parses `match scrutinee { pat [if guard] => body, ... }`.
    fn parse_match(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // match
        let scrutinee = self.parse_expr(true);
        if !self.at_punct('{') {
            return Expr {
                line,
                kind: ExprKind::Match {
                    scrutinee: Box::new(scrutinee),
                    arms: Vec::new(),
                },
            };
        }
        let close = self.matching_close();
        self.bump(); // {
        let mut arms = Vec::new();
        while self.i < close {
            let before = self.i;
            let arm_line = self.line();
            // Pattern: to the first depth-0 `=>` or guard `if`.
            let mut k = self.i;
            let mut depth = 0i64;
            let mut guard_at = None;
            let arrow = loop {
                if k >= close {
                    break k;
                }
                if let Some(t) = self.tok(k) {
                    if depth == 0 && t.is_ident("if") {
                        guard_at = Some(k);
                        // Continue scanning for the `=>`.
                    }
                }
                let Some((op, n)) = self.op_at(k) else {
                    k += 1;
                    continue;
                };
                match op.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break k,
                    _ => {}
                }
                k += n;
            };
            let pat_end = guard_at.unwrap_or(arrow);
            let bindings = self.pattern_bindings(self.i, pat_end);
            let guard = guard_at.map(|g| {
                self.i = g + 1; // past `if`
                self.parse_expr(true)
            });
            self.i = arrow;
            if !self.eat_op("=>") {
                // Malformed arm; skip one token and retry.
                if self.i == before {
                    self.bump();
                }
                continue;
            }
            let body = self.parse_expr(false);
            if self.at_punct(',') {
                self.bump();
            }
            arms.push(Arm {
                bindings,
                guard,
                body,
                line: arm_line,
            });
            if self.i == before {
                self.bump();
            }
        }
        if self.at_punct('}') {
            self.bump();
        }
        Expr {
            line,
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileAst {
        parse_file(&lex(src))
    }

    #[test]
    fn fn_names_params_and_impl_qualification() {
        let ast = parse(
            "fn free(a: u64, b: &mut [u64]) {}\n\
             impl Foo { pub fn method(&self, x: u64) -> u64 { x } }\n\
             impl Bar for Foo { fn trait_method(self) {} }",
        );
        let names: Vec<_> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "method", "trait_method"]);
        assert_eq!(ast.fns[0].params, vec!["a", "b"]);
        assert_eq!(ast.fns[1].params, vec!["self", "x"]);
        assert_eq!(ast.fns[1].qual.as_deref(), Some("Foo::method"));
        assert_eq!(ast.fns[2].qual.as_deref(), Some("Foo::trait_method"));
    }

    #[test]
    fn generic_params_do_not_split_on_inner_commas() {
        let ast = parse("fn f(m: Map<K, V>, n: u32) {}");
        assert_eq!(ast.fns[0].params, vec!["m", "n"]);
    }

    #[test]
    fn let_collects_pattern_bindings() {
        let ast = parse("fn f() { let (a, b) = g(); let Some(x) = h() else { return; }; }");
        let body = &ast.fns[0].body;
        let StmtKind::Let { names, .. } = &body[0].kind else {
            panic!("expected let: {body:?}");
        };
        assert_eq!(names, &["a", "b"]);
        let StmtKind::Let {
            names, else_block, ..
        } = &body[1].kind
        else {
            panic!("expected let-else");
        };
        assert_eq!(names, &["x"]);
        assert!(else_block.is_some());
    }

    #[test]
    fn operators_are_joined_and_classified() {
        let ast = parse("fn f(a: u64, b: u64) -> bool { a / b == a % b && a <= b }");
        let StmtKind::Expr { expr, semi } = &ast.fns[0].body[0].kind else {
            panic!("expected tail expr");
        };
        assert!(!semi);
        let ExprKind::Binary { op, .. } = &expr.kind else {
            panic!("expected binary: {expr:?}");
        };
        assert_eq!(*op, BinOp::ShortCircuit);
    }

    #[test]
    fn if_let_and_match_bindings() {
        let ast = parse(
            "fn f(o: Option<u64>) -> u64 {\n\
               if let Some(v) = o { v } else { 0 };\n\
               match o { Some(w) if w > 1 => w, _ => 0 }\n\
             }",
        );
        let body = &ast.fns[0].body;
        let StmtKind::Expr { expr, .. } = &body[0].kind else {
            panic!("expected if stmt");
        };
        let ExprKind::If { bindings, .. } = &expr.kind else {
            panic!("expected if: {expr:?}");
        };
        assert_eq!(bindings, &["v"]);
        let StmtKind::Expr { expr, .. } = &body[1].kind else {
            panic!("expected match stmt");
        };
        let ExprKind::Match { arms, .. } = &expr.kind else {
            panic!("expected match: {expr:?}");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].bindings, vec!["w"]);
        assert!(arms[0].guard.is_some());
    }

    #[test]
    fn method_chains_calls_and_indexing() {
        let ast =
            parse("fn f(v: Vec<u64>) -> u64 { v.iter().map(|x| x + 1).collect::<Vec<_>>()[0] }");
        let StmtKind::Expr { expr, .. } = &ast.fns[0].body[0].kind else {
            panic!("expected tail");
        };
        let ExprKind::Index { base, .. } = &expr.kind else {
            panic!("expected index: {expr:?}");
        };
        let ExprKind::MethodCall { name, .. } = &base.kind else {
            panic!("expected method call");
        };
        assert_eq!(name, "collect");
    }

    #[test]
    fn struct_literals_and_macros() {
        let ast = parse("fn f(x: u64) -> Foo { assert!(x > 0); Foo { a: x, b } }");
        let body = &ast.fns[0].body;
        let StmtKind::Expr { expr, .. } = &body[0].kind else {
            panic!("expected macro stmt");
        };
        let ExprKind::Macro { name, args } = &expr.kind else {
            panic!("expected macro: {expr:?}");
        };
        assert_eq!(name, "assert");
        assert_eq!(args.len(), 1);
        let StmtKind::Expr { expr, .. } = &body[1].kind else {
            panic!("expected struct lit");
        };
        let ExprKind::StructLit { name, fields, .. } = &expr.kind else {
            panic!("expected struct lit: {expr:?}");
        };
        assert_eq!(name, "Foo");
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[1].0, "b"); // shorthand
    }

    #[test]
    fn condition_position_blocks_struct_literals() {
        // `if x { ... }` — the `{` opens the then-block, not a literal.
        let ast = parse("fn f(x: bool) { if x { g(); } }");
        let StmtKind::Expr { expr, .. } = &ast.fns[0].body[0].kind else {
            panic!("expected if");
        };
        let ExprKind::If { cond, then, .. } = &expr.kind else {
            panic!("expected if: {expr:?}");
        };
        assert!(matches!(cond.kind, ExprKind::Path(_)));
        assert_eq!(then.len(), 1);
    }

    #[test]
    fn nested_fns_are_lifted_and_loops_parse() {
        let ast = parse(
            "fn outer() { fn inner(q: u64) {} for i in 0..4 { inner(i); } while go() { step(); } }",
        );
        let names: Vec<_> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
        let outer = ast.fns.iter().find(|f| f.name == "outer").expect("outer");
        assert!(outer
            .body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::For { .. })));
        assert!(outer
            .body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::While { .. })));
    }

    #[test]
    fn recovery_never_hangs_on_malformed_source() {
        // Unbalanced/garbled input must still terminate.
        for src in [
            "fn f( { ) } ",
            "fn f() { let = ; match { } }",
            "impl { fn g() { if { } } }",
            "fn f() { a.. ; ..b; .. }",
            "fn f() { x | | y; }",
        ] {
            let _ = parse(src);
        }
    }
}
