//! Interprocedural secret-taint dataflow.
//!
//! Taint starts at `// audit: secret` roots — annotated struct fields,
//! `let` bindings, statics, and `// audit: secret(a, b)` function
//! parameters — and propagates through bindings, assignments, call
//! arguments, return values and field projections until fixpoint.
//! The abstract value per expression is a pair of 64-bit sets: bit 0
//! is ROOT ("depends on annotated secret state"), bit `j + 1` is
//! "depends on parameter `j` of the enclosing function". The `direct`
//! set is taint carried by the value itself; the `held` set is taint
//! wrapped inside a struct's fields (a `Keystream` *contains* the key
//! but *is not* the key), built when a struct literal packs tainted
//! values. Only `direct` taint fires sinks: branching on
//! `self.position` of a key-holding struct is fine, while the key
//! itself re-emerges as direct taint through its annotated field
//! projections (`.elements`, `.cache`, …). Function summaries map both
//! sets through call sites, so a secret flowing through two layers of
//! helpers into a branch is still caught; the per-function sets only
//! ever grow, which makes the fixpoint terminate even on call-graph
//! cycles.
//!
//! Sinks — flagged only in non-test code of the [`SECRET_CRATES`] —
//! are the places where a secret-dependent value changes timing or
//! addressing on the paper's edge target: `if`/`while` conditions,
//! `match` scrutinees and guards, slice indices, `/` and `%` operands,
//! and comparisons in early-`return`/tail/short-circuit position.
//! `// audit: sanitizes(x)` on a function declassifies parameter `x`'s
//! contribution to the return value (ciphertext leaving an encryption
//! boundary); `sanitizes(return)` declassifies the whole return value.
//! Rebinding a name to public data (`let key = 0;`) overwrites its
//! taint — shadowing is not a leak.

use crate::analyze::{
    classify_secret_decl, Ann, Check, Finding, SecretTarget, Secrets, SourceFile, SECRET_CRATES,
};
use crate::callgraph::CallGraph;
use crate::parse::{BinOp, Expr, ExprKind, FileAst, FnDef, Stmt, StmtKind};
use std::collections::{BTreeMap, BTreeSet};

/// Bit 0 of a taint set: depends on annotated secret state.
const ROOT: u64 = 1;

/// Methods whose return value is public metadata of any receiver.
const NEUTRAL_METHODS: &[&str] = &["len", "is_empty", "capacity"];

/// Ubiquitous std method names treated as identity passthrough (result =
/// union of receiver and arguments) and never resolved to workspace
/// definitions. A workspace type that happens to define one of these
/// (e.g. a manual `Clone` impl, or a parser with an `expect` method)
/// would otherwise capture every same-name call in the workspace via
/// bare-name resolution — yielding both false param marks and, worse,
/// silently *dropped* taint when the impostor's summary differs from
/// the std semantics.
const PASSTHROUGH_METHODS: &[&str] = &[
    "as_mut",
    "as_ref",
    "as_slice",
    "clone",
    "cloned",
    "copied",
    "expect",
    "into",
    "to_owned",
    "to_vec",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
];

/// Iteration cap for the interprocedural fixpoint — a backstop far
/// above what the monotone lattice (64 bits per function) can need.
const MAX_ITERS: usize = 100;

/// One abstract taint value: `direct` is taint carried by the value
/// itself (fires sinks), `held` is taint wrapped inside the value's
/// struct fields (a container of secrets, not itself a secret), plus a
/// best-effort witness naming the secret source (for messages; never
/// affects the lattice).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Taint {
    direct: u64,
    held: u64,
    wit: Option<String>,
}

impl Taint {
    fn root(wit: String) -> Taint {
        Taint {
            direct: ROOT,
            held: 0,
            wit: Some(wit),
        }
    }

    fn param(j: usize) -> Taint {
        if j < 63 {
            Taint {
                direct: 1 << (j + 1),
                held: 0,
                wit: None,
            }
        } else {
            Taint::default()
        }
    }

    fn union(&mut self, other: &Taint) {
        self.direct |= other.direct;
        self.held |= other.held;
        if self.wit.is_none() {
            self.wit.clone_from(&other.wit);
        }
    }

    /// Folds `other` in as *contents*: whatever `other` is — secret or
    /// container — the receiver merely holds it behind a field.
    fn absorb(&mut self, other: &Taint) {
        self.held |= other.direct | other.held;
        if self.wit.is_none() {
            self.wit.clone_from(&other.wit);
        }
    }
}

/// Sink-position flags threaded through expression evaluation.
#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    /// Inside an `if`/`while`/`match` condition that is flagged as a
    /// whole — suppresses nested comparison findings.
    in_cond: bool,
    /// In return/tail/closure-body position — an early-exit comparison
    /// here is an observable timing signal.
    ret_pos: bool,
    /// Direct operand of `&&`/`||` — evaluation short-circuits.
    under_sc: bool,
}

impl Ctx {
    /// The context for ordinary sub-expressions: position flags do not
    /// survive into arguments/operands, condition membership does.
    fn sub(self) -> Ctx {
        Ctx {
            in_cond: self.in_cond,
            ret_pos: false,
            under_sc: false,
        }
    }
}

/// Per-file taint roots derived from annotations.
#[derive(Default)]
struct FileRoots {
    /// `let` line → bound name, for `// audit: secret` on a local.
    secret_lets: BTreeMap<usize, String>,
    /// Names of `// audit: secret` statics/consts (file scope).
    secret_statics: BTreeSet<String>,
}

/// Per-function evaluation frame.
struct Frame {
    file: usize,
    fn_id: usize,
    self_ty: Option<String>,
    env: BTreeMap<String, Taint>,
    ret: Taint,
    report: bool,
}

struct Engine<'a> {
    files: &'a [SourceFile],
    asts: &'a [FileAst],
    cg: &'a CallGraph,
    secrets: &'a Secrets,
    roots: Vec<FileRoots>,
    /// Whether each file's roots/sinks are live (crate ∈ SECRET_CRATES).
    secret_file: Vec<bool>,
    /// Per-fn return-taint summary.
    summaries: Vec<Taint>,
    /// Per-fn, per-param: is this parameter fed secret data anywhere?
    param_secret: Vec<Vec<bool>>,
    /// Per-fn extra secret names from `secret(...)` that are not
    /// parameters (locals the annotation vouches for).
    extra_secret: BTreeMap<usize, Vec<String>>,
    /// Per-fn declassification list from `sanitizes(...)`.
    sanitize: BTreeMap<usize, Vec<String>>,
    changed: bool,
    findings: Vec<Finding>,
    seen: BTreeSet<(usize, usize, String)>,
}

/// Runs the interprocedural taint analysis over the whole workspace and
/// returns the sink findings (unfiltered — the caller applies
/// `audit: allow` suppression).
#[must_use]
pub fn taint_pass(
    files: &[SourceFile],
    asts: &[FileAst],
    cg: &CallGraph,
    secrets: &Secrets,
) -> Vec<Finding> {
    let mut eng = Engine::new(files, asts, cg, secrets);
    for _ in 0..MAX_ITERS {
        eng.changed = false;
        for id in 0..cg.fns.len() {
            eng.eval_fn(id, false);
        }
        if !eng.changed {
            break;
        }
    }
    for id in 0..cg.fns.len() {
        let key = cg.fns[id];
        let def = &asts[key.file].fns[key.idx];
        if eng.secret_file[key.file] && !files[key.file].tok_is_test(def.fn_tok) {
            eng.eval_fn(id, true);
        }
    }
    eng.findings
}

impl<'a> Engine<'a> {
    fn new(
        files: &'a [SourceFile],
        asts: &'a [FileAst],
        cg: &'a CallGraph,
        secrets: &'a Secrets,
    ) -> Engine<'a> {
        let secret_file: Vec<bool> = files
            .iter()
            .map(|sf| SECRET_CRATES.contains(&sf.crate_name.as_str()))
            .collect();
        let mut roots: Vec<FileRoots> = Vec::with_capacity(files.len());
        let mut param_secret: Vec<Vec<bool>> = cg
            .fns
            .iter()
            .map(|k| vec![false; asts[k.file].fns[k.idx].params.len()])
            .collect();
        let mut extra_secret: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let mut sanitize: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        // Global id of the first fn in `file` whose `fn` token follows
        // the annotation token — the fn an annotation attaches to.
        let fn_after = |file: usize, tok: usize| -> Option<usize> {
            (0..cg.fns.len())
                .filter(|&id| cg.fns[id].file == file)
                .filter(|&id| {
                    let k = cg.fns[id];
                    asts[k.file].fns[k.idx].fn_tok > tok
                })
                .min_by_key(|&id| {
                    let k = cg.fns[id];
                    asts[k.file].fns[k.idx].fn_tok
                })
        };
        for (fi, sf) in files.iter().enumerate() {
            let mut fr = FileRoots::default();
            for ann in &sf.anns {
                match ann {
                    Ann::SecretDecl { tok } if secret_file[fi] => {
                        match classify_secret_decl(&sf.toks, *tok) {
                            SecretTarget::Let { name, tok } => {
                                fr.secret_lets.insert(sf.toks[tok].line, name);
                            }
                            SecretTarget::Static(name) => {
                                fr.secret_statics.insert(name);
                            }
                            _ => {}
                        }
                    }
                    Ann::SecretParams { tok, names } if secret_file[fi] => {
                        if let Some(id) = fn_after(fi, *tok) {
                            let k = cg.fns[id];
                            let def = &asts[k.file].fns[k.idx];
                            for n in names {
                                if let Some(j) = def.params.iter().position(|p| p == n) {
                                    param_secret[id][j] = true;
                                } else {
                                    extra_secret.entry(id).or_default().push(n.clone());
                                }
                            }
                        }
                    }
                    Ann::Sanitizes { tok, names } => {
                        if let Some(id) = fn_after(fi, *tok) {
                            sanitize
                                .entry(id)
                                .or_default()
                                .extend(names.iter().cloned());
                        }
                    }
                    _ => {}
                }
            }
            roots.push(fr);
        }
        Engine {
            files,
            asts,
            cg,
            secrets,
            roots,
            secret_file,
            summaries: vec![Taint::default(); cg.fns.len()],
            param_secret,
            extra_secret,
            sanitize,
            changed: false,
            findings: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    fn def(&self, id: usize) -> &'a FnDef {
        let k = self.cg.fns[id];
        &self.asts[k.file].fns[k.idx]
    }

    /// Evaluates one function body; updates its summary and, when
    /// `report` is set, emits sink findings.
    fn eval_fn(&mut self, id: usize, report: bool) {
        let key = self.cg.fns[id];
        let def = self.def(id);
        let mut fr = Frame {
            file: key.file,
            fn_id: id,
            self_ty: def
                .qual
                .as_deref()
                .and_then(|q| q.split("::").next())
                .map(str::to_string),
            env: BTreeMap::new(),
            ret: Taint::default(),
            report,
        };
        for (j, p) in def.params.iter().enumerate() {
            fr.env.insert(p.clone(), Taint::param(j));
        }
        if let Some(extras) = self.extra_secret.get(&id) {
            for n in extras.clone() {
                fr.env.insert(n.clone(), Taint::root(n));
            }
        }
        // The body's tail is the function's *only* exit, not an early
        // one — a tail `parity == 1` is branchless materialization, so
        // `tail_ret` stays false; explicit `return` and closure bodies
        // (callback-driven early exit in `find`/`position`/`any`) set
        // their own return position.
        let tail = self.eval_stmts(&mut fr, &def.body, false);
        fr.ret.union(&tail);
        let mut sum = fr.ret;
        if let Some(names) = self.sanitize.get(&id) {
            for n in names {
                if n == "return" {
                    sum = Taint::default();
                } else if let Some(j) = def.params.iter().position(|p| p == n) {
                    if j < 63 {
                        sum.direct &= !(1 << (j + 1));
                        sum.held &= !(1 << (j + 1));
                    }
                }
            }
        }
        let old = &self.summaries[id];
        let grew = sum.direct != old.direct || sum.held != old.held;
        if grew {
            self.changed = true;
        }
        if grew || old.wit.is_none() {
            self.summaries[id] = sum;
        }
    }

    /// Whether `t` is directly secret in `fr`'s calling context: ROOT,
    /// or a parameter that phase-2 secrecy marked. Held (container)
    /// taint does not count — branching on a key-holder's public field
    /// is fine.
    fn is_secret(&self, fr: &Frame, t: &Taint) -> bool {
        if t.direct & ROOT != 0 {
            return true;
        }
        let ps = &self.param_secret[fr.fn_id];
        (0..ps.len().min(63)).any(|j| ps[j] && t.direct & (1 << (j + 1)) != 0)
    }

    /// A display name for the secret source behind `t`.
    fn witness(&self, fr: &Frame, t: &Taint) -> String {
        if t.direct & ROOT != 0 {
            if let Some(w) = &t.wit {
                return w.clone();
            }
        }
        let def = self.def(fr.fn_id);
        let ps = &self.param_secret[fr.fn_id];
        for (j, secret) in ps.iter().enumerate().take(63) {
            if *secret && t.direct & (1 << (j + 1)) != 0 {
                return def.params[j].clone();
            }
        }
        t.wit.clone().unwrap_or_else(|| "secret data".to_string())
    }

    /// Emits a sink finding (report mode only, deduplicated).
    fn flag(&mut self, fr: &Frame, line: usize, t: &Taint, desc: &str) {
        if !fr.report {
            return;
        }
        let wit = self.witness(fr, t);
        let noun = if wit.starts_with('.') {
            "secret field"
        } else {
            "secret value"
        };
        let message = format!("{noun} `{wit}` feeds {desc}");
        if self.seen.insert((fr.file, line, message.clone())) {
            self.findings
                .push(self.files[fr.file].finding(line, Check::SecretFlow, message));
        }
    }

    /// At a call site: mark callee parameters that receive concretely
    /// secret arguments (drives the phase-2 fixpoint).
    ///
    /// Only frames inside the audited crates feed parameters. Sinks are
    /// reported in those crates alone, so marks originating elsewhere
    /// can never contribute to a reportable flow — they only amplify
    /// bare-name method conflation (e.g. a bench binary's
    /// `Result::expect` on a key handle marking an unrelated workspace
    /// method that happens to be called `expect`).
    fn feed_params(&mut self, fr: &Frame, callee: usize, actuals: &[Taint]) {
        if !self.secret_file[fr.file] {
            return;
        }
        for (j, a) in actuals.iter().enumerate() {
            if j < self.param_secret[callee].len()
                && !self.param_secret[callee][j]
                && self.is_secret(fr, a)
            {
                self.param_secret[callee][j] = true;
                if std::env::var_os("PASTA_AUDIT_DEBUG").is_some() {
                    eprintln!(
                        "debug: {} (in {}) marks param {j} of {} secret",
                        self.files[fr.file].rel,
                        {
                            let k = &self.cg.fns[fr.fn_id];
                            &self.asts[k.file].fns[k.idx].name
                        },
                        {
                            let k = &self.cg.fns[callee];
                            &self.asts[k.file].fns[k.idx].name
                        }
                    );
                }
                self.changed = true;
            }
        }
    }

    /// Applies `callee`'s return summary to the actual argument taints:
    /// direct summary bits pass the actual through unchanged, held bits
    /// wrap it (the callee packed that argument into a struct).
    fn apply_summary(&self, callee: usize, actuals: &[Taint]) -> Taint {
        let sum = &self.summaries[callee];
        let mut out = Taint::default();
        if sum.direct & ROOT != 0 {
            out.direct |= ROOT;
            out.wit.clone_from(&sum.wit);
        }
        if sum.held & ROOT != 0 {
            out.held |= ROOT;
            if out.wit.is_none() {
                out.wit.clone_from(&sum.wit);
            }
        }
        for (j, a) in actuals.iter().enumerate().take(63) {
            let bit = 1 << (j + 1);
            if sum.direct & bit != 0 {
                out.union(a);
            }
            if sum.held & bit != 0 {
                out.absorb(a);
            }
        }
        out
    }

    /// Evaluates a statement list; returns the tail expression's taint.
    /// `tail_ret` marks the block's tail as return position.
    fn eval_stmts(&mut self, fr: &mut Frame, stmts: &[Stmt], tail_ret: bool) -> Taint {
        let mut val = Taint::default();
        let n = stmts.len();
        for (k, s) in stmts.iter().enumerate() {
            let is_tail = k + 1 == n;
            match &s.kind {
                StmtKind::Let {
                    names,
                    init,
                    else_block,
                } => {
                    let mut t = init
                        .as_ref()
                        .map(|e| self.eval(fr, e, Ctx::default()))
                        .unwrap_or_default();
                    if let Some(name) = self.roots[fr.file].secret_lets.get(&s.line).cloned() {
                        t.union(&Taint::root(name));
                    }
                    // Plain (re)binding overwrites: shadowing a secret
                    // name with public data is not a leak.
                    for name in names {
                        fr.env.insert(name.clone(), t.clone());
                    }
                    if let Some(b) = else_block {
                        self.eval_stmts(fr, b, false);
                    }
                }
                StmtKind::Assign {
                    target,
                    value,
                    compound,
                } => {
                    let v = self.eval(fr, value, Ctx::default());
                    // Evaluate the target too: `table[secret] = x` is an
                    // addressing sink even on the left-hand side.
                    self.eval(fr, target, Ctx::default());
                    if let Some(name) = base_name(target) {
                        let whole = matches!(target.kind, ExprKind::Path(_)) && !compound;
                        if whole {
                            fr.env.insert(name, v);
                        } else {
                            fr.env.entry(name).or_default().union(&v);
                        }
                    }
                }
                StmtKind::Expr { expr, semi } => {
                    let ctx = if is_tail && !semi {
                        Ctx {
                            ret_pos: tail_ret,
                            ..Ctx::default()
                        }
                    } else {
                        Ctx::default()
                    };
                    let t = self.eval(fr, expr, ctx);
                    if is_tail && !semi {
                        val = t;
                    }
                }
                StmtKind::While {
                    bindings,
                    cond,
                    body,
                } => {
                    // Two passes so taint assigned late in the body
                    // reaches uses earlier in it.
                    for _ in 0..2 {
                        let ct = self.eval_cond(fr, cond, "a `while` condition");
                        for b in bindings {
                            fr.env.insert(b.clone(), ct.clone());
                        }
                        self.eval_stmts(fr, body, false);
                    }
                }
                StmtKind::For { names, iter, body } => {
                    // `for (i, x) in xs.iter().enumerate()` — the
                    // position counter is public regardless of what the
                    // iterator yields.
                    let enumerated = names.len() >= 2
                        && matches!(&iter.kind,
                            ExprKind::MethodCall { name, .. } if name == "enumerate");
                    for _ in 0..2 {
                        let it = self.eval(fr, iter, Ctx::default());
                        for (k, name) in names.iter().enumerate() {
                            let t = if enumerated && k == 0 {
                                Taint::default()
                            } else {
                                it.clone()
                            };
                            fr.env.insert(name.clone(), t);
                        }
                        self.eval_stmts(fr, body, false);
                    }
                }
                StmtKind::Loop { body } => {
                    for _ in 0..2 {
                        self.eval_stmts(fr, body, false);
                    }
                }
                StmtKind::Item => {}
            }
        }
        val
    }

    /// Evaluates a condition/scrutinee, flagging it when secret.
    fn eval_cond(&mut self, fr: &mut Frame, cond: &Expr, desc: &str) -> Taint {
        let t = self.eval(
            fr,
            cond,
            Ctx {
                in_cond: true,
                ret_pos: false,
                under_sc: false,
            },
        );
        if self.is_secret(fr, &t) {
            self.flag(fr, cond.line, &t, desc);
        }
        t
    }

    #[allow(clippy::too_many_lines)] // one arm per expression form
    fn eval(&mut self, fr: &mut Frame, e: &Expr, ctx: Ctx) -> Taint {
        match &e.kind {
            ExprKind::Lit(_) | ExprKind::Unknown => Taint::default(),
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    let name = &segs[0];
                    if let Some(t) = fr.env.get(name) {
                        return t.clone();
                    }
                    if self.roots[fr.file].secret_statics.contains(name) {
                        return Taint::root(name.clone());
                    }
                }
                Taint::default()
            }
            ExprKind::Field { base, name } => {
                let mut t = self.eval(fr, base, ctx.sub());
                if self.secret_file[fr.file] && self.secrets.fields.contains(name) {
                    t.union(&Taint::root(format!(".{name}")));
                }
                t
            }
            ExprKind::Index { base, index } => {
                let it = self.eval(fr, index, ctx.sub());
                if self.is_secret(fr, &it) {
                    self.flag(fr, index.line, &it, "a slice index");
                }
                let mut t = self.eval(fr, base, ctx.sub());
                t.union(&it);
                t
            }
            ExprKind::Binary {
                op,
                op_text,
                lhs,
                rhs,
            } => match op {
                BinOp::ShortCircuit => {
                    let sc = Ctx {
                        in_cond: ctx.in_cond,
                        ret_pos: false,
                        under_sc: true,
                    };
                    let mut t = self.eval(fr, lhs, sc);
                    t.union(&self.eval(fr, rhs, sc));
                    t
                }
                BinOp::Cmp => {
                    let mut t = self.eval(fr, lhs, ctx.sub());
                    t.union(&self.eval(fr, rhs, ctx.sub()));
                    if (ctx.ret_pos || ctx.under_sc) && !ctx.in_cond && self.is_secret(fr, &t) {
                        self.flag(
                            fr,
                            e.line,
                            &t,
                            &format!("an early-exit `{op_text}` comparison"),
                        );
                    }
                    t
                }
                BinOp::DivRem => {
                    let lt = self.eval(fr, lhs, ctx.sub());
                    let rt = self.eval(fr, rhs, ctx.sub());
                    let mut t = lt.clone();
                    t.union(&rt);
                    // `x / 64`, `x % 8`: a power-of-two literal divisor
                    // compiles to a shift/mask — constant latency.
                    if !lit_pow2(rhs) && self.is_secret(fr, &t) {
                        self.flag(
                            fr,
                            e.line,
                            &t,
                            &format!("a variable-latency `{op_text}` operand"),
                        );
                    }
                    t
                }
                BinOp::Other => {
                    let mut t = self.eval(fr, lhs, ctx.sub());
                    t.union(&self.eval(fr, rhs, ctx.sub()));
                    t
                }
            },
            ExprKind::Unary { expr } => self.eval(fr, expr, ctx),
            ExprKind::If {
                bindings,
                cond,
                then,
                els,
            } => {
                let ct = self.eval_cond(fr, cond, "an `if` condition");
                for b in bindings {
                    fr.env.insert(b.clone(), ct.clone());
                }
                let mut t = self.eval_stmts(fr, then, ctx.ret_pos);
                if let Some(els) = els {
                    t.union(&self.eval(fr, els, ctx));
                }
                t
            }
            ExprKind::Match { scrutinee, arms } => {
                let st = self.eval_cond(fr, scrutinee, "a `match` scrutinee");
                let mut t = Taint::default();
                for arm in arms {
                    for b in &arm.bindings {
                        fr.env.insert(b.clone(), st.clone());
                    }
                    if let Some(g) = &arm.guard {
                        let gt = self.eval(
                            fr,
                            g,
                            Ctx {
                                in_cond: true,
                                ret_pos: false,
                                under_sc: false,
                            },
                        );
                        if self.is_secret(fr, &gt) {
                            self.flag(fr, g.line, &gt, "a `match` guard");
                        }
                    }
                    t.union(&self.eval(
                        fr,
                        &arm.body,
                        Ctx {
                            ret_pos: ctx.ret_pos,
                            ..Ctx::default()
                        },
                    ));
                }
                t
            }
            ExprKind::Call { callee, args } => {
                let actuals: Vec<Taint> =
                    args.iter().map(|a| self.eval(fr, a, ctx.sub())).collect();
                let ids = if let ExprKind::Path(segs) = &callee.kind {
                    self.cg.resolve_path(segs, fr.self_ty.as_deref())
                } else {
                    self.eval(fr, callee, ctx.sub());
                    Vec::new()
                };
                self.call_result(fr, &ids, &actuals, None)
            }
            ExprKind::MethodCall { recv, name, args } => {
                let rt = self.eval(fr, recv, ctx.sub());
                let actuals: Vec<Taint> =
                    args.iter().map(|a| self.eval(fr, a, ctx.sub())).collect();
                if NEUTRAL_METHODS.contains(&name.as_str()) {
                    return Taint::default();
                }
                if PASSTHROUGH_METHODS.contains(&name.as_str()) {
                    let mut t = rt;
                    for a in &actuals {
                        t.union(a);
                    }
                    return t;
                }
                let ids = self.cg.resolve_method(name);
                self.call_result(fr, &ids, &actuals, Some(&rt))
            }
            ExprKind::Macro { args, .. } => {
                let mut t = Taint::default();
                for a in args {
                    t.union(&self.eval(fr, a, ctx.sub()));
                }
                t
            }
            ExprKind::Block(stmts) => self.eval_stmts(fr, stmts, ctx.ret_pos),
            ExprKind::Closure { params, body } => {
                for p in params {
                    fr.env.insert(p.clone(), Taint::default());
                }
                // The body's taint IS what the closure produces per
                // element, so combinators like `.map(|i| secret_bit(i))`
                // see it through the argument union at the call site.
                self.eval(
                    fr,
                    body,
                    Ctx {
                        ret_pos: true,
                        ..Ctx::default()
                    },
                )
            }
            ExprKind::StructLit { fields, base, .. } => {
                // Packing values behind named fields builds a container:
                // the literal *holds* its fields' taint, it is not itself
                // the secret. A `..base` of the same struct type keeps
                // its layout as-is.
                let mut t = Taint::default();
                for (_, v) in fields {
                    let ft = self.eval(fr, v, ctx.sub());
                    t.absorb(&ft);
                }
                if let Some(b) = base {
                    t.union(&self.eval(fr, b, ctx.sub()));
                }
                t
            }
            ExprKind::Tuple(items) => {
                let mut t = Taint::default();
                for it in items {
                    t.union(&self.eval(fr, it, ctx.sub()));
                }
                t
            }
            ExprKind::Ret { value } => {
                if let Some(v) = value {
                    let t = self.eval(
                        fr,
                        v,
                        Ctx {
                            ret_pos: true,
                            ..Ctx::default()
                        },
                    );
                    fr.ret.union(&t);
                }
                Taint::default()
            }
        }
    }

    /// The taint of a call's result: summaries applied over every
    /// resolved callee, or the union of the inputs for unknown callees.
    fn call_result(
        &mut self,
        fr: &Frame,
        ids: &[usize],
        args: &[Taint],
        recv: Option<&Taint>,
    ) -> Taint {
        let mut t = Taint::default();
        let mut matched = false;
        for &id in ids {
            let def = self.def(id);
            let takes_self = def.params.first().is_some_and(|p| p == "self");
            let mut actuals: Vec<Taint> = Vec::with_capacity(args.len() + 1);
            if takes_self {
                actuals.push(recv.cloned().unwrap_or_default());
            }
            actuals.extend(args.iter().cloned());
            // Arity is the cheapest type proxy we have: same-named
            // methods on different types (`get`, `new`, `keystream_block`)
            // almost always differ in parameter count, and feeding a
            // wrong-arity candidate poisons an unrelated type's params.
            if actuals.len() != def.params.len() {
                continue;
            }
            matched = true;
            self.feed_params(fr, id, &actuals);
            t.union(&self.apply_summary(id, &actuals));
        }
        if !matched {
            // Unknown (or only wrong-arity) callee: assume the result
            // unions whatever went in.
            t = recv.cloned().unwrap_or_default();
            for a in args {
                t.union(a);
            }
        }
        t
    }
}

/// Whether `e` is an integer literal whose value is a power of two
/// (`64`, `0x40`, `1_024`, with or without a type suffix).
fn lit_pow2(e: &Expr) -> bool {
    let ExprKind::Lit(text) = &e.kind else {
        return false;
    };
    let raw: String = text.chars().filter(|c| *c != '_').collect();
    let digits = raw
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .trim_end_matches(['u', 'i'])
        .to_string();
    let v = if let Some(hex) = digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = digits
        .strip_prefix("0b")
        .or_else(|| digits.strip_prefix("0B"))
    {
        u64::from_str_radix(bin, 2).ok()
    } else {
        digits.parse::<u64>().ok()
    };
    v.is_some_and(|v| v != 0 && v & (v - 1) == 0)
}

/// The root identifier a place expression writes through (`x`, `x.f`,
/// `x[i]`, `*x`, `x.f[i].g` all root at `x`).
fn base_name(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) if segs.len() == 1 => Some(segs[0].clone()),
        ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => base_name(base),
        ExprKind::Unary { expr } => base_name(expr),
        _ => None,
    }
}
