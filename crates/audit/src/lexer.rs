//! A hand-rolled Rust lexer, sufficient for line-accurate static checks.
//!
//! The tokenizer understands every construct that would otherwise corrupt
//! a text-level scan of Rust source:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), kept as tokens so annotation comments
//!   (`// audit: ...`, `// SAFETY: ...`) can be inspected;
//! - string literals with escapes, byte strings, C strings, and raw
//!   strings with arbitrary `#` fencing (`r#"..."#`, `br##"..."##`);
//! - char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`) and byte chars (`b'x'`);
//! - numeric literals with underscores, type suffixes and float
//!   exponents (`1_000u64`, `2.5e-3`), without swallowing range `..`;
//! - raw identifiers (`r#match`).
//!
//! It does **not** build a syntax tree; the checks in
//! [`crate::analyze`] work on the token stream plus light structural
//! passes (brace matching, `#[cfg(test)]` spans, `fn` signatures).

/// The kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `if`, `r#match`, …).
    Ident,
    /// A `//` or `/* */` comment (text retained, including markers).
    Comment,
    /// A string, char, byte or numeric literal.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`{`, `.`, `!`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// The token text. For comments this is the full comment including
    /// the `//` / `/* */` markers; for raw identifiers the `r#` prefix
    /// is stripped.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// Byte offset of the token's first character in the source. Lets
    /// the parser join multi-character operators (`==`, `::`, `&&`, …)
    /// exactly: two puncts form one operator iff they are adjacent.
    pub pos: usize,
}

impl Token {
    /// Whether this is an identifier equal to `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// Tokenizes `src`. Unterminated constructs (strings, block comments)
/// consume the rest of the input rather than erroring: the audit must
/// keep scanning the remaining files regardless.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    toks: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn push(&mut self, kind: TokKind, start: usize, line: usize) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.toks.push(Token {
            kind,
            text,
            line,
            pos: start,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let line = self.line;
            let start = self.pos;
            let b = self.peek(0);
            match b {
                b if b.is_ascii_whitespace() => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokKind::Comment, start, line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.push(TokKind::Comment, start, line);
                }
                b'r' | b'b' | b'c' if self.raw_or_prefixed(start, line) => {}
                b'b' if self.peek(1) == b'\'' => {
                    self.bump(); // b
                    self.char_literal();
                    self.push(TokKind::Literal, start, line);
                }
                b'\'' => {
                    if self.lifetime_or_char() {
                        self.push(TokKind::Literal, start, line);
                    } else {
                        self.push(TokKind::Lifetime, start, line);
                    }
                }
                b'"' => {
                    self.string_literal();
                    self.push(TokKind::Literal, start, line);
                }
                b if b.is_ascii_digit() => {
                    self.number();
                    self.push(TokKind::Literal, start, line);
                }
                b if is_ident_start(b) => {
                    while is_ident_cont(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokKind::Ident, start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        self.toks
    }

    /// Consumes a `/* ... */` comment with nesting. The leading `/*` has
    /// not been consumed yet.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.src.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `br…`, `b"…"`, `c"…"`, `cr#"…"#` and the
    /// raw-identifier prefix `r#ident`, pushing the resulting token
    /// itself. Returns true if anything was consumed; false (nothing
    /// consumed) when the position is an ordinary identifier starting
    /// with `r`/`b`/`c` — the caller then lexes it as an ident.
    fn raw_or_prefixed(&mut self, start: usize, line: usize) -> bool {
        let save = (self.pos, self.line);
        let first = self.bump(); // r, b or c
        let mut is_raw = first == b'r';
        // br / cr two-byte prefixes.
        if (first == b'b' || first == b'c') && self.peek(0) == b'r' {
            self.bump();
            is_raw = true;
        }
        if self.peek(0) == b'"' {
            if is_raw {
                self.raw_string_body(0);
            } else {
                self.string_literal();
            }
            self.push(TokKind::Literal, start, line);
            return true;
        }
        if is_raw && self.peek(0) == b'#' {
            // Count fence hashes; `#…#"` starts a raw string, a single
            // `#` + ident is a raw identifier.
            let mut hashes = 0usize;
            while self.peek(hashes) == b'#' {
                hashes += 1;
            }
            if self.peek(hashes) == b'"' {
                self.raw_string_body(hashes);
                self.push(TokKind::Literal, start, line);
                return true;
            }
            if first == b'r' && hashes == 1 && is_ident_start(self.peek(1)) {
                // Raw identifier: emit as Ident with the `r#` stripped so
                // `r#match` compares equal to the keyword text it shadows
                // — checks treat it like any other name.
                self.bump(); // '#'
                let id_start = self.pos;
                while is_ident_cont(self.peek(0)) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[id_start..self.pos]).into_owned();
                self.toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                    pos: start,
                });
                return true;
            }
        }
        // Plain identifier starting with r/b/c.
        (self.pos, self.line) = save;
        false
    }

    /// Consumes the body of a raw string; `hashes` fence characters and
    /// the opening quote have not been consumed yet.
    fn raw_string_body(&mut self, hashes: usize) {
        for _ in 0..hashes {
            self.bump(); // '#'
        }
        self.bump(); // opening '"'
        loop {
            if self.pos >= self.src.len() {
                return;
            }
            if self.bump() == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            }
        }
    }

    /// Consumes a `"…"` string with escape handling; opening quote not
    /// yet consumed.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a char literal whose opening `'` has not been consumed.
    fn char_literal(&mut self) {
        self.bump(); // '
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => return,
                _ => {}
            }
        }
    }

    /// Distinguishes `'a'` (char, returns true) from `'a` (lifetime,
    /// returns false) and consumes whichever it is.
    fn lifetime_or_char(&mut self) -> bool {
        // An escape or a non-identifier char after the quote is always a
        // char literal ('\n', '(' …).
        if self.peek(1) == b'\\' || !is_ident_cont(self.peek(1)) {
            self.char_literal();
            return true;
        }
        // Identifier-ish after the quote: scan the identifier run. A
        // closing quote right after makes it a char ('a', 'q'); anything
        // else is a lifetime ('a, 'static).
        let mut i = 1;
        while is_ident_cont(self.peek(i)) {
            i += 1;
        }
        if self.peek(i) == b'\'' && i == 2 {
            self.char_literal();
            true
        } else {
            self.bump(); // '
            while is_ident_cont(self.peek(0)) {
                self.bump();
            }
            false
        }
    }

    /// Consumes a numeric literal (loose: digits, `_`, suffixes, hex,
    /// floats with exponents). Stops before `..` so ranges lex cleanly.
    fn number(&mut self) {
        self.bump();
        loop {
            let b = self.peek(0);
            if b == b'.' {
                // `1..n` → stop; `1.5` → continue.
                if self.peek(1).is_ascii_digit() {
                    self.bump();
                    continue;
                }
                return;
            }
            if b == b'e' || b == b'E' {
                if self.peek(1) == b'+' || self.peek(1) == b'-' {
                    if self.peek(2).is_ascii_digit() {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    return;
                }
                if self.peek(1).is_ascii_digit() || is_ident_cont(self.peek(1)) {
                    self.bump();
                    continue;
                }
                return;
            }
            if is_ident_cont(b) {
                self.bump();
                continue;
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn texts_of(src: &str, kind: TokKind) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.b(c);");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "a".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "b".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Ident, "c".into()),
                (TokKind::Punct, ")".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_are_one_based() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<(String, usize)> = toks.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4)]
        );
    }

    #[test]
    fn line_comment_is_one_token() {
        let toks = kinds("x // trailing if unwrap\ny");
        assert_eq!(toks[0], (TokKind::Ident, "x".into()));
        assert_eq!(toks[1], (TokKind::Comment, "// trailing if unwrap".into()));
        assert_eq!(toks[2], (TokKind::Ident, "y".into()));
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::Comment);
        assert!(toks[1].1.ends_with("still */"), "{}", toks[1].1);
    }

    #[test]
    fn strings_swallow_keywords() {
        // `if` and `unwrap` inside the literal must not become idents.
        let toks = kinds(r#"let s = "if x.unwrap()";"#);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let lits = texts_of(r#"let s = "a\"b";"#, TokKind::Literal);
        assert_eq!(lits, vec![r#""a\"b""#]);
    }

    #[test]
    fn raw_strings_with_hash_fencing() {
        let src = "let s = r#\"embedded \" quote\"#; done";
        let lits = texts_of(src, TokKind::Literal);
        assert_eq!(lits, vec!["r#\"embedded \" quote\"#"]);
        assert!(lex(src).iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        for src in ["b\"bytes\"", "br#\"raw bytes\"#", "c\"cstr\"", "b'x'"] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].0, TokKind::Literal, "{src}");
        }
    }

    #[test]
    fn raw_identifier_is_ident_with_prefix_stripped() {
        let toks = kinds("let r#match = 1;");
        assert_eq!(toks[1], (TokKind::Ident, "match".into()));
    }

    #[test]
    fn plain_r_and_b_stay_idents() {
        let toks = kinds("r + b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "r".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'")[0].0, TokKind::Literal);
        assert_eq!(kinds("'\\n'")[0].0, TokKind::Literal);
        let toks = kinds("&'a str");
        assert_eq!(toks[1], (TokKind::Lifetime, "'a".into()));
        assert_eq!(kinds("'static")[0].0, TokKind::Lifetime);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = kinds("0..32");
        assert_eq!(
            toks,
            vec![
                (TokKind::Literal, "0".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Literal, "32".into()),
            ]
        );
    }

    #[test]
    fn float_and_suffixed_numbers() {
        assert_eq!(kinds("1.5e3")[0], (TokKind::Literal, "1.5e3".into()));
        assert_eq!(kinds("0xFF_u64")[0], (TokKind::Literal, "0xFF_u64".into()));
        assert_eq!(kinds("12.0")[0], (TokKind::Literal, "12.0".into()));
    }

    #[test]
    fn method_named_like_field_access() {
        // `tuple.0` must lex as ident, dot, number.
        let toks = kinds("t.0");
        assert_eq!(toks[2], (TokKind::Literal, "0".into()));
    }
}
