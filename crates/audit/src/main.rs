//! CLI driver: `cargo run -p pasta-audit -- check [options]`.

use pasta_audit::baseline::{render_baseline, render_report, Baseline};
use pasta_audit::sarif::{render_github, render_sarif};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
pasta-audit — workspace static analysis (interprocedural secret taint,
panic-freedom, unsafe hygiene, lossy casts, determinism, atomics
ordering, unsafe preconditions)

USAGE:
    cargo run -p pasta-audit -- check [OPTIONS]

OPTIONS:
    --root <PATH>        workspace root (default: the workspace this
                         binary was built from)
    --format <FORMAT>    text | json | sarif | github (default: text)
    --baseline <PATH>    baseline file (default: <root>/audit-baseline.json
                         when it exists)
    --write-baseline     rewrite the baseline from the current findings
                         and exit 0
    -h, --help           show this help

EXIT CODES:
    0  no unsuppressed findings beyond the baseline
    1  new findings
    2  usage or I/O error";

struct Options {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
    Github,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pasta-audit: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut command = None;
    let mut root = None;
    let mut format = Format::Text;
    let mut baseline = None;
    let mut write_baseline = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--root" => root = Some(PathBuf::from(next_value(&mut args, "--root")?)),
            "--format" => {
                format = match next_value(&mut args, "--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    "github" => Format::Github,
                    other => {
                        return Err(format!("unknown format `{other}` (text|json|sarif|github)"))
                    }
                }
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(next_value(&mut args, "--baseline")?));
            }
            "--write-baseline" => write_baseline = true,
            "check" if command.is_none() => command = Some("check"),
            other => return Err(format!("unexpected argument `{other}`\n\n{USAGE}")),
        }
    }
    if command != Some("check") {
        return Err(format!("expected the `check` subcommand\n\n{USAGE}"));
    }
    // Default root: the workspace that built this binary, so plain
    // `cargo run -p pasta-audit -- check` audits the right tree from
    // any working directory.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(std::path::Path::parent)
            .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
    });
    Ok(Options {
        root,
        format,
        baseline,
        write_baseline,
    })
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let findings = pasta_audit::analyze_tree(&opts.root)?;
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("audit-baseline.json"));

    if opts.write_baseline {
        std::fs::write(&baseline_path, render_baseline(&findings))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "pasta-audit: wrote baseline with {} finding(s) to {}",
            findings.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = if baseline_path.exists() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text)
            .map_err(|e| format!("invalid baseline {}: {e}", baseline_path.display()))?
    } else {
        Baseline::default()
    };
    let (new, baselined) = baseline.filter(findings);

    match opts.format {
        Format::Json => print!("{}", render_report(&new, baselined)),
        Format::Sarif => print!("{}", render_sarif(&new)),
        Format::Github => print!("{}", render_github(&new)),
        Format::Text => {
            for f in &new {
                println!("{}", f.render());
            }
            println!(
                "pasta-audit: {} new finding(s), {} baselined",
                new.len(),
                baselined
            );
        }
    }
    Ok(if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
