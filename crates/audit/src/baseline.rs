//! Baseline handling (`-D new` semantics) and the minimal JSON
//! emitter/parser it needs.
//!
//! A committed `audit-baseline.json` records pre-existing findings so
//! the CI gate only fails on *new* ones. Entries are keyed on
//! `(file, check, trimmed line text)` with a count, not on line
//! numbers, so unrelated edits above a baselined site do not break the
//! match. The shipped baseline is kept (near-)empty — the audit PR
//! fixes or annotates the real findings instead of grandfathering them
//! — but the mechanism lets future refactors land incrementally.

use crate::analyze::Finding;
use std::collections::BTreeMap;

/// A loaded baseline: `(file, check-label, line text) -> count`.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parses a baseline from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON is malformed or not the expected
    /// shape.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        let findings = obj
            .iter()
            .find(|(k, _)| k == "findings")
            .map(|(_, v)| v)
            .ok_or("baseline is missing the \"findings\" array")?;
        let arr = findings
            .as_array()
            .ok_or("baseline \"findings\" must be an array")?;
        let mut entries = BTreeMap::new();
        for entry in arr {
            let e = entry
                .as_object()
                .ok_or("baseline finding entries must be objects")?;
            let field = |name: &str| -> Result<String, String> {
                e.iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry is missing string field \"{name}\""))
            };
            let count = e
                .iter()
                .find(|(k, _)| k == "count")
                .and_then(|(_, v)| v.as_usize())
                .unwrap_or(1);
            *entries
                .entry((field("file")?, field("check")?, field("text")?))
                .or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Splits `findings` into (new, baselined-count), consuming baseline
    /// counts in order.
    #[must_use]
    pub fn filter(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut remaining = self.entries.clone();
        let mut new = Vec::new();
        let mut baselined = 0usize;
        for f in findings {
            let key = (f.file.clone(), f.check.label().to_string(), f.text.clone());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined += 1;
                }
                _ => new.push(f),
            }
        }
        (new, baselined)
    }
}

/// Renders `findings` as baseline JSON (aggregated by key).
#[must_use]
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.file.clone(), f.check.label().to_string(), f.text.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    let mut first = true;
    for ((file, check, text), count) in &counts {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"check\": {}, \"text\": {}, \"count\": {count}}}",
            escape(file),
            escape(check),
            escape(text)
        ));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the findings report as JSON (`--format json`).
#[must_use]
pub fn render_report(new: &[Finding], baselined: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"new_findings\": {},\n", new.len()));
    out.push_str(&format!("  \"baselined\": {baselined},\n"));
    out.push_str("  \"findings\": [");
    let mut first = true;
    for f in new {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"check\": {}, \"message\": {}}}",
            escape(&f.file),
            f.line,
            escape(f.check.label()),
            escape(&f.message)
        ));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping (control characters, quotes, backslashes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — just enough to read baselines.
enum Json {
    Null,
    Bool(#[allow(dead_code)] bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            src: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing JSON content at byte {}", p.pos));
        }
        Ok(v)
    }

    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos,
                self.peek() as char
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid JSON literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Ok(Json::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            out.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(out));
                }
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos, c as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.pos, c as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                0 => return Err("unterminated JSON string".to_string()),
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek();
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for
                            // baseline content; map them to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("invalid escape '\\{}'", c as char)),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting here.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.src.len() && (self.src[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.src[start..self.pos]));
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == b'-' {
            self.pos += 1;
        }
        while self.peek().is_ascii_digit()
            || matches!(self.peek(), b'.' | b'e' | b'E' | b'+' | b'-')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("invalid JSON number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::Check;

    fn finding(file: &str, line: usize, text: &str) -> Finding {
        Finding {
            file: file.into(),
            line,
            check: Check::Panic,
            message: "test".into(),
            text: text.into(),
        }
    }

    #[test]
    fn roundtrip_render_parse_filter() {
        let findings = vec![
            finding("crates/a.rs", 3, "x.unwrap()"),
            finding("crates/a.rs", 9, "x.unwrap()"),
            finding("crates/b.rs", 1, "y.expect(\"quoted \\\"text\\\"\")"),
        ];
        let json = render_baseline(&findings);
        let baseline = Baseline::parse(&json).unwrap();
        // Everything in the baseline is filtered out...
        let (new, baselined) = baseline.filter(findings.clone());
        assert!(new.is_empty(), "{new:?}");
        assert_eq!(baselined, 3);
        // ...but a third occurrence of a twice-baselined line is new,
        // and moved lines still match (keys ignore line numbers).
        let mut more = findings;
        more.push(finding("crates/a.rs", 40, "x.unwrap()"));
        let (new, baselined) = baseline.filter(more);
        assert_eq!(baselined, 3);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 40);
    }

    #[test]
    fn empty_baseline_passes_everything_through() {
        let baseline = Baseline::parse("{\"version\": 1, \"findings\": []}").unwrap();
        let (new, baselined) = baseline.filter(vec![finding("f.rs", 1, "t")]);
        assert_eq!((new.len(), baselined), (1, 0));
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
        assert!(Baseline::parse("{unquoted: true}").is_err());
    }
}
