//! End-to-end Hybrid Homomorphic Encryption (paper Fig. 1).
//!
//! Ties the PASTA client cipher (`pasta-core`) to the BFV server
//! substrate (`pasta-fhe`):
//!
//! - [`client`]: key provisioning (FHE-encrypt the PASTA key once),
//!   symmetric data encryption, and FHE result retrieval;
//! - [`server`]: homomorphic evaluation of the PASTA decryption circuit —
//!   the *transciphering* step that turns compact symmetric ciphertexts
//!   into FHE ciphertexts the cloud can compute on;
//! - [`batched`]: the SIMD throughput mode (`N` blocks per ciphertext);
//! - [`mux`]: cross-tenant slot multiplexing — blocks from *different*
//!   sessions packed into one shared batched pass via slot-masked key
//!   composition;
//! - [`packed`]: the latency mode (one block per ciphertext via the
//!   rotation/diagonal method);
//! - [`link`]: the §V communication model (ciphertext sizes, 5G
//!   bandwidths, video frames/s) regenerating Fig. 8;
//! - [`cache`]: the shared plaintext-material cache memoizing derived
//!   matrices, round constants and their NTT-prepared encodings across
//!   transciphering calls.
//!
//! # Examples
//!
//! A complete HHE round trip with a scaled-down PASTA instance:
//!
//! ```
//! use pasta_core::PastaParams;
//! use pasta_fhe::{BfvContext, BfvParams};
//! use pasta_hhe::{HheClient, HheServer};
//! use pasta_math::Modulus;
//! use rand::SeedableRng;
//!
//! let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT)?;
//! let ctx = BfvContext::new(BfvParams::test_tiny())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let fhe_sk = ctx.generate_secret_key(&mut rng);
//! let fhe_pk = ctx.generate_public_key(&fhe_sk, &mut rng);
//! let relin = ctx.generate_relin_key(&fhe_sk, &mut rng);
//!
//! let client = HheClient::new(params, b"seed");
//! let server = HheServer::new(params, relin, client.provision_key(&ctx, &fhe_pk, &mut rng))?;
//!
//! let message = vec![1u64, 2, 3, 4];
//! let pasta_ct = client.encrypt(42, &message)?;          // tiny, fast
//! let fhe_cts = server.transcipher(&ctx, &pasta_ct)?;    // heavy, on the server
//! assert_eq!(client.retrieve(&ctx, &fhe_sk, &fhe_cts), message);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batched;
pub mod cache;
pub mod client;
pub mod link;
pub mod mux;
pub mod packed;
pub mod server;

pub use batched::{provision_batched_key, BatchedHheServer};
pub use cache::{
    approx_batched_entry_bytes, approx_block_entry_bytes, approx_composed_key_bytes,
    approx_packed_entry_bytes, MaterialCache, PackedStrategy, ShardedCache, ShardedCacheConfig,
};
pub use client::{EncryptedPastaKey, HheClient};
pub use link::{figure8, Fig8Point, PastaLink, Resolution, RiseReference};
pub use mux::{retrieve_muxed, MuxHheServer, MuxMember, MuxedBlocks, SlotRange};
pub use packed::{required_shifts, BsgsPlan, PackedHheServer};
pub use server::HheServer;
