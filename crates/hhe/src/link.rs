//! Communication/link model for the §V application benchmark (Fig. 8).
//!
//! The paper's application is video-surveillance frame encryption: frames
//! are encrypted on the edge device and streamed to the cloud over a
//! mid-band 5G link (12.5–112.5 MB/s). HHE's whole advantage is that the
//! PASTA ciphertext has *no expansion* beyond the `⌈log2 p⌉/8` bits per
//! pixel, while the FHE client baseline (RISE \[19\]) ships 1.5 MB
//! RLWE ciphertexts. Frames-per-second here is bandwidth-limited, exactly
//! as in the paper's analysis.

use pasta_core::PastaParams;

/// Video resolutions of the §V benchmark (8-bit grayscale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 160 × 120.
    Qqvga,
    /// 320 × 240.
    Qvga,
    /// 640 × 480.
    Vga,
}

impl Resolution {
    /// All benchmark resolutions, smallest first.
    pub const ALL: [Resolution; 3] = [Resolution::Qqvga, Resolution::Qvga, Resolution::Vga];

    /// Pixels per frame.
    #[must_use]
    pub fn pixels(&self) -> usize {
        match self {
            Resolution::Qqvga => 160 * 120,
            Resolution::Qvga => 320 * 240,
            Resolution::Vga => 640 * 480,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Resolution::Qqvga => "QQVGA",
            Resolution::Qvga => "QVGA",
            Resolution::Vga => "VGA",
        }
    }

    /// The next lower resolution, if any — the graceful-degradation
    /// ladder (VGA → QVGA → QQVGA) the resilient pipeline walks when
    /// effective goodput can no longer carry the frame deadline.
    #[must_use]
    pub fn downshift(&self) -> Option<Resolution> {
        match self {
            Resolution::Vga => Some(Resolution::Qvga),
            Resolution::Qvga => Some(Resolution::Qqvga),
            Resolution::Qqvga => None,
        }
    }

    /// Parses a resolution name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns an error listing the valid names.
    pub fn parse(name: &str) -> Result<Resolution, String> {
        match name.to_ascii_lowercase().as_str() {
            "qqvga" => Ok(Resolution::Qqvga),
            "qvga" => Ok(Resolution::Qvga),
            "vga" => Ok(Resolution::Vga),
            other => Err(format!(
                "unknown resolution '{other}' (use qqvga, qvga, vga)"
            )),
        }
    }
}

/// Minimum mid-band 5G bandwidth (§V), bytes per second.
pub const MIN_5G_BPS: f64 = 12.5e6;
/// Maximum mid-band 5G bandwidth (§V), bytes per second.
pub const MAX_5G_BPS: f64 = 112.5e6;

/// Link model for a PASTA-encrypted video stream.
#[derive(Debug, Clone, Copy)]
pub struct PastaLink {
    params: PastaParams,
}

impl PastaLink {
    /// Creates a link model for a PASTA parameter set.
    #[must_use]
    pub fn new(params: PastaParams) -> Self {
        PastaLink { params }
    }

    /// Ciphertext bytes for one frame: `⌈pixels/t⌉` blocks of
    /// `⌈t·ω/8⌉` bytes (e.g. 132 B per block for `t = 32`, `ω = 33`).
    #[must_use]
    pub fn bytes_per_frame(&self, res: Resolution) -> usize {
        let blocks = res.pixels().div_ceil(self.params.t());
        blocks * self.params.ciphertext_block_bytes()
    }

    /// Bandwidth-limited frames per second.
    #[must_use]
    pub fn frames_per_second(&self, res: Resolution, bandwidth_bps: f64) -> f64 {
        bandwidth_bps / self.bytes_per_frame(res) as f64
    }

    /// Ciphertext expansion over the 8-bit raw frame.
    #[must_use]
    pub fn expansion_factor(&self, res: Resolution) -> f64 {
        self.bytes_per_frame(res) as f64 / res.pixels() as f64
    }
}

/// The RISE \[19\] FHE-client baseline as described in §V: one RLWE
/// ciphertext of `2 · 2^14 · 390` bits (1.5 MB) per QQVGA frame, three per
/// QVGA frame (and proportionally 12 per VGA frame).
#[derive(Debug, Clone, Copy, Default)]
pub struct RiseReference;

impl RiseReference {
    /// Ciphertext size in bytes (`2 · 2^14 · 390 / 8`).
    #[must_use]
    pub fn ciphertext_bytes(&self) -> usize {
        2 * (1 << 14) * 390 / 8
    }

    /// Ciphertexts needed per frame (§V: 1 for QQVGA, 3 for QVGA).
    #[must_use]
    pub fn ciphertexts_per_frame(&self, res: Resolution) -> usize {
        match res {
            Resolution::Qqvga => 1,
            Resolution::Qvga => 3,
            Resolution::Vga => 12,
        }
    }

    /// Bytes per frame.
    #[must_use]
    pub fn bytes_per_frame(&self, res: Resolution) -> usize {
        self.ciphertexts_per_frame(res) * self.ciphertext_bytes()
    }

    /// Bandwidth-limited frames per second.
    #[must_use]
    pub fn frames_per_second(&self, res: Resolution, bandwidth_bps: f64) -> f64 {
        bandwidth_bps / self.bytes_per_frame(res) as f64
    }
}

/// One Fig. 8 data point: ours vs RISE at a bandwidth/resolution.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Point {
    /// Resolution of the frame.
    pub resolution: Resolution,
    /// Link bandwidth in bytes/s.
    pub bandwidth_bps: f64,
    /// Our frames/s.
    pub pasta_fps: f64,
    /// RISE frames/s.
    pub rise_fps: f64,
}

impl Fig8Point {
    /// The frames/s advantage of PASTA-based HHE.
    #[must_use]
    pub fn advantage(&self) -> f64 {
        self.pasta_fps / self.rise_fps
    }
}

/// Computes the full Fig. 8 grid (both bandwidths × three resolutions).
#[must_use]
pub fn figure8(params: PastaParams) -> Vec<Fig8Point> {
    let ours = PastaLink::new(params);
    let rise = RiseReference;
    let mut out = Vec::new();
    for &bw in &[MAX_5G_BPS, MIN_5G_BPS] {
        for res in Resolution::ALL {
            out.push(Fig8Point {
                resolution: res,
                bandwidth_bps: bw,
                pasta_fps: ours.frames_per_second(res, bw),
                rise_fps: rise.frames_per_second(res, bw),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_bytes_match_section_v() {
        // §V: "our ciphertext ... is only 132 Bytes in size" for the
        // 33-bit PASTA-4 block.
        let link = PastaLink::new(PastaParams::pasta4_33bit());
        assert_eq!(PastaParams::pasta4_33bit().ciphertext_block_bytes(), 132);
        // One QQVGA frame = 600 blocks.
        assert_eq!(link.bytes_per_frame(Resolution::Qqvga), 600 * 132);
    }

    #[test]
    fn rise_reference_matches_section_v() {
        let rise = RiseReference;
        // "One ciphertext size is 1.5MB (2^14 · 2 · 390)".
        assert_eq!(rise.ciphertext_bytes(), 1_597_440);
        // "they can send 70 QQVGA frames per second at the maximum 5G
        // bandwidth".
        let fps = rise.frames_per_second(Resolution::Qqvga, MAX_5G_BPS);
        assert!((fps - 70.4).abs() < 1.0, "RISE QQVGA fps = {fps}");
    }

    #[test]
    fn rise_cannot_send_vga_at_min_bandwidth() {
        // §V: "[19] cannot send a VGA frame at minimum bandwidth" —
        // i.e. under one frame per second.
        let rise = RiseReference;
        assert!(rise.frames_per_second(Resolution::Vga, MIN_5G_BPS) < 1.0);
        // While our link still sustains full-motion VGA video.
        let ours = PastaLink::new(PastaParams::pasta4_33bit());
        assert!(ours.frames_per_second(Resolution::Vga, MIN_5G_BPS) > 9.0);
    }

    #[test]
    fn pasta_advantage_is_large_everywhere() {
        for point in figure8(PastaParams::pasta4_33bit()) {
            let adv = point.advantage();
            assert!(
                adv > 10.0,
                "{} at {:.1} MB/s: advantage only {adv:.1}×",
                point.resolution.name(),
                point.bandwidth_bps / 1e6
            );
        }
    }

    #[test]
    fn expansion_factors() {
        // PASTA at 33 bits: 132/32 = 4.125 bytes per 1-byte pixel.
        let ours = PastaLink::new(PastaParams::pasta4_33bit());
        let e = ours.expansion_factor(Resolution::Qqvga);
        assert!((e - 4.125).abs() < 0.01, "expansion = {e}");
        // 17-bit variant: 68/32 = 2.125×.
        let small = PastaLink::new(PastaParams::pasta4_17bit());
        assert!((small.expansion_factor(Resolution::Qqvga) - 2.125).abs() < 0.01);
        // RISE QQVGA: ≈83× expansion — the 10,000–100,000× story of §I is
        // tamed by packing, but still two orders worse than HHE.
        let rise = RiseReference;
        let re = rise.bytes_per_frame(Resolution::Qqvga) as f64 / Resolution::Qqvga.pixels() as f64;
        assert!(re > 80.0 && re < 86.0, "RISE expansion = {re}");
    }

    #[test]
    fn fps_scales_linearly_with_bandwidth() {
        let ours = PastaLink::new(PastaParams::pasta4_33bit());
        let hi = ours.frames_per_second(Resolution::Qvga, MAX_5G_BPS);
        let lo = ours.frames_per_second(Resolution::Qvga, MIN_5G_BPS);
        assert!((hi / lo - 9.0).abs() < 1e-9, "112.5/12.5 = 9×");
    }

    #[test]
    fn figure8_has_six_points() {
        let grid = figure8(PastaParams::pasta4_33bit());
        assert_eq!(grid.len(), 6);
    }
}
