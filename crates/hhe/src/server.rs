//! The HHE server: homomorphic PASTA decryption (paper Fig. 1, right).
//!
//! Given the FHE-encrypted PASTA key and a symmetric PASTA ciphertext,
//! the server recomputes the *public* per-block randomness (matrices and
//! round constants are functions of the nonce/counter only) and evaluates
//! the PASTA decryption circuit under FHE:
//!
//! - affine layers become plaintext-scalar multiplications and additions
//!   on key ciphertexts;
//! - Mix is additions;
//! - the Feistel/cube S-boxes are the expensive part — each squaring is a
//!   ciphertext–ciphertext multiplication plus relinearization;
//! - finally `Enc(m) = Δ·c − Enc(KS)`: the symmetric ciphertext enters as
//!   a public constant.
//!
//! The result is a vector of FHE ciphertexts of the client's message —
//! the transciphering step that lets the client avoid FHE encryption
//! entirely.

use crate::client::EncryptedPastaKey;
use pasta_core::matrix::RowGenerator;
use pasta_core::permutation::{derive_block_material, AffineMaterial};
use pasta_core::{Ciphertext as PastaCiphertext, PastaParams};
use pasta_fhe::{BfvContext, BfvRelinKey, Ciphertext as FheCiphertext, FheError};

/// The HHE server state: FHE context, relinearization key, and the
/// client's encrypted PASTA key.
#[derive(Debug)]
pub struct HheServer {
    params: PastaParams,
    relin_key: BfvRelinKey,
    encrypted_key: EncryptedPastaKey,
}

impl HheServer {
    /// Sets up a server for one client.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if the encrypted key length is
    /// not `2t`.
    pub fn new(
        params: PastaParams,
        relin_key: BfvRelinKey,
        encrypted_key: EncryptedPastaKey,
    ) -> Result<Self, FheError> {
        if encrypted_key.elements.len() != params.state_size() {
            return Err(FheError::Incompatible(format!(
                "encrypted key has {} elements, expected {}",
                encrypted_key.elements.len(),
                params.state_size()
            )));
        }
        Ok(HheServer { params, relin_key, encrypted_key })
    }

    /// Homomorphically computes the keystream block for
    /// `(nonce, counter)`: FHE ciphertexts of `KS_0 … KS_{t-1}`.
    ///
    /// # Errors
    ///
    /// Propagates FHE errors (relinearization on malformed keys).
    pub fn keystream_encrypted(
        &self,
        ctx: &BfvContext,
        nonce: u128,
        counter: u64,
    ) -> Result<Vec<FheCiphertext>, FheError> {
        let t = self.params.t();
        let r = self.params.rounds();
        let material = derive_block_material(&self.params, nonce, counter);
        let mut left = self.encrypted_key.elements[..t].to_vec();
        let mut right = self.encrypted_key.elements[t..].to_vec();
        for (i, layer) in material.layers.iter().enumerate() {
            left = self.affine_half(ctx, &left, layer, true)?;
            right = self.affine_half(ctx, &right, layer, false)?;
            if i < r {
                self.mix(ctx, &mut left, &mut right)?;
                let is_final_round = i == r - 1;
                self.sbox(ctx, &mut left, &mut right, is_final_round)?;
            }
        }
        Ok(left) // truncation
    }

    /// Transciphers one PASTA ciphertext into FHE ciphertexts of the
    /// message: `Enc(m_i) = Δ·c_i − Enc(KS_i)`.
    ///
    /// # Errors
    ///
    /// Propagates FHE errors from the keystream evaluation.
    pub fn transcipher(
        &self,
        ctx: &BfvContext,
        pasta_ct: &PastaCiphertext,
    ) -> Result<Vec<FheCiphertext>, FheError> {
        let t = self.params.t();
        let mut out = Vec::with_capacity(pasta_ct.len());
        for (counter, block) in pasta_ct.elements().chunks(t).enumerate() {
            let ks = self.keystream_encrypted(ctx, pasta_ct.nonce(), counter as u64)?;
            for (c_elem, ks_ct) in block.iter().zip(ks.iter()) {
                let c_trivial = ctx.encrypt_trivial(&ctx.encode_scalar(*c_elem));
                out.push(ctx.sub(&c_trivial, ks_ct)?);
            }
        }
        Ok(out)
    }

    /// One affine layer on one half: `out_i = Σ_j M_ij·ct_j + rc_i`.
    fn affine_half(
        &self,
        ctx: &BfvContext,
        half: &[FheCiphertext],
        layer: &AffineMaterial,
        is_left: bool,
    ) -> Result<Vec<FheCiphertext>, FheError> {
        let zp = self.params.field();
        let (seed, rc) = if is_left {
            (&layer.seed_left, &layer.rc_left)
        } else {
            (&layer.seed_right, &layer.rc_right)
        };
        let matrix = RowGenerator::new(zp, seed.clone()).into_matrix();
        let t = half.len();
        let Some(first) = half.first() else {
            return Err(FheError::Incompatible("affine layer applied to an empty state half".into()));
        };
        let mut out = Vec::with_capacity(t);
        for (i, &rc_i) in rc.iter().enumerate().take(t) {
            let row = matrix.row(i);
            let mut acc = ctx.mul_scalar(first, row[0]);
            for (j, ct) in half.iter().enumerate().skip(1) {
                acc = ctx.add(&acc, &ctx.mul_scalar(ct, row[j]))?;
            }
            out.push(ctx.add_plain(&acc, &ctx.encode_scalar(rc_i)));
        }
        Ok(out)
    }

    /// Mix: `(2L + R, 2R + L)` element-wise with additions only.
    fn mix(
        &self,
        ctx: &BfvContext,
        left: &mut [FheCiphertext],
        right: &mut [FheCiphertext],
    ) -> Result<(), FheError> {
        for (l, r) in left.iter_mut().zip(right.iter_mut()) {
            let sum = ctx.add(l, r)?;
            let new_l = ctx.add(l, &sum)?;
            let new_r = ctx.add(r, &sum)?;
            *l = new_l;
            *r = new_r;
        }
        Ok(())
    }

    /// S-box over the concatenated state.
    fn sbox(
        &self,
        ctx: &BfvContext,
        left: &mut [FheCiphertext],
        right: &mut [FheCiphertext],
        is_final_round: bool,
    ) -> Result<(), FheError> {
        let t = left.len();
        let mut full: Vec<FheCiphertext> = left.iter().chain(right.iter()).cloned().collect();
        if is_final_round {
            // Cube: x³ = relin(x²)·x, relinearized again.
            for x in full.iter_mut() {
                let sq = ctx.square_relin(x, &self.relin_key)?;
                *x = ctx.mul_relin(&sq, x, &self.relin_key)?;
            }
        } else {
            // Feistel: y_0 = x_0, y_j = x_j + x_{j-1}² on input values.
            let squares: Vec<FheCiphertext> = full[..2 * t - 1]
                .iter()
                .map(|x| ctx.square_relin(x, &self.relin_key))
                .collect::<Result<_, _>>()?;
            for j in (1..2 * t).rev() {
                full[j] = ctx.add(&full[j], &squares[j - 1])?;
            }
        }
        left.clone_from_slice(&full[..t]);
        right.clone_from_slice(&full[t..]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HheClient;
    use pasta_fhe::{BfvParams, BfvSecretKey};
    use pasta_math::Modulus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        ctx: BfvContext,
        fhe_sk: BfvSecretKey,
        client: HheClient,
        server: HheServer,
    }

    fn setup() -> World {
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let fhe_sk = ctx.generate_secret_key(&mut rng);
        let fhe_pk = ctx.generate_public_key(&fhe_sk, &mut rng);
        let relin = ctx.generate_relin_key(&fhe_sk, &mut rng);
        let client = HheClient::new(params, b"hhe test");
        let encrypted_key = client.provision_key(&ctx, &fhe_pk, &mut rng);
        let server = HheServer::new(params, relin, encrypted_key).unwrap();
        World { ctx, fhe_sk, client, server }
    }

    #[test]
    fn homomorphic_keystream_matches_plain_keystream() {
        let w = setup();
        let expected = w.client.cipher().keystream_block(99, 0).unwrap();
        let encrypted = w.server.keystream_encrypted(&w.ctx, 99, 0).unwrap();
        let decrypted: Vec<u64> =
            encrypted.iter().map(|ct| w.ctx.decrypt(&w.fhe_sk, ct).scalar()).collect();
        assert_eq!(decrypted, expected, "server must reproduce KS under encryption");
    }

    #[test]
    fn transciphering_recovers_the_message() {
        let w = setup();
        let message = vec![11u64, 22, 33, 44];
        let pasta_ct = w.client.encrypt(1234, &message).unwrap();
        let fhe_cts = w.server.transcipher(&w.ctx, &pasta_ct).unwrap();
        let recovered = w.client.retrieve(&w.ctx, &w.fhe_sk, &fhe_cts);
        assert_eq!(recovered, message);
    }

    #[test]
    fn transciphering_multi_block() {
        let w = setup();
        let message: Vec<u64> = (0..10u64).map(|i| i * 1000 + 7).collect();
        let pasta_ct = w.client.encrypt(5, &message).unwrap();
        let fhe_cts = w.server.transcipher(&w.ctx, &pasta_ct).unwrap();
        assert_eq!(fhe_cts.len(), 10);
        assert_eq!(w.client.retrieve(&w.ctx, &w.fhe_sk, &fhe_cts), message);
    }

    #[test]
    fn noise_budget_survives_the_whole_circuit() {
        let w = setup();
        let encrypted = w.server.keystream_encrypted(&w.ctx, 3, 0).unwrap();
        for (i, ct) in encrypted.iter().enumerate() {
            let budget = w.ctx.noise_budget(&w.fhe_sk, ct);
            assert!(budget > 5, "keystream ct {i} nearly exhausted: {budget} bits");
        }
    }

    #[test]
    fn server_can_compute_on_transciphered_data() {
        // The whole point of HHE: after transciphering the server holds
        // ordinary FHE ciphertexts it can compute on.
        let w = setup();
        let message = vec![100u64, 200, 300, 400];
        let pasta_ct = w.client.encrypt(8, &message).unwrap();
        let fhe_cts = w.server.transcipher(&w.ctx, &pasta_ct).unwrap();
        // Server-side: sum all elements homomorphically.
        let mut acc = fhe_cts[0].clone();
        for ct in &fhe_cts[1..] {
            acc = w.ctx.add(&acc, ct).unwrap();
        }
        assert_eq!(w.ctx.decrypt(&w.fhe_sk, &acc).scalar(), 1_000);
    }

    #[test]
    fn wrong_key_length_rejected() {
        let w = setup();
        let short = EncryptedPastaKey {
            elements: w.server.encrypted_key.elements[..3].to_vec(),
        };
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let sk = w.ctx.generate_secret_key(&mut rng);
        let rk = w.ctx.generate_relin_key(&sk, &mut rng);
        assert!(matches!(HheServer::new(params, rk, short), Err(FheError::Incompatible(_))));
    }
}
