//! The HHE server: homomorphic PASTA decryption (paper Fig. 1, right).
//!
//! Given the FHE-encrypted PASTA key and a symmetric PASTA ciphertext,
//! the server recomputes the *public* per-block randomness (matrices and
//! round constants are functions of the nonce/counter only) and evaluates
//! the PASTA decryption circuit under FHE:
//!
//! - affine layers become plaintext-scalar multiplications and additions
//!   on key ciphertexts;
//! - Mix is additions;
//! - the Feistel/cube S-boxes are the expensive part — each squaring is a
//!   ciphertext–ciphertext multiplication plus relinearization, riding
//!   the full-RNS path of [`pasta_fhe::rns_mul`] (`PASTA_MUL=bigint`
//!   swaps in the exact bigint oracle);
//! - finally `Enc(m) = Δ·c − Enc(KS)`: the symmetric ciphertext enters as
//!   a public constant.
//!
//! The result is a vector of FHE ciphertexts of the client's message —
//! the transciphering step that lets the client avoid FHE encryption
//! entirely.
//!
//! Provisioning footprint across the three server modes: this scalar
//! server ships `2t` key ciphertexts and zero rotation keys; the batched
//! server ships `2t` (slot-replicated) key ciphertexts and zero rotation
//! keys; the packed server ships ONE key ciphertext plus its rotation
//! keys — `2t` of them naive, O(√t) under the default hoisted-BSGS
//! strategy (see [`crate::packed::required_shifts`]).

use crate::cache::MaterialCache;
use crate::client::EncryptedPastaKey;
use pasta_core::{Ciphertext as PastaCiphertext, PastaParams};
use pasta_fhe::{BfvContext, BfvRelinKey, Ciphertext as FheCiphertext, FheError};
use pasta_math::linalg::Matrix;
use std::sync::Arc;

/// The HHE server state: FHE context, relinearization key, the client's
/// encrypted PASTA key, and the shared material cache.
#[derive(Debug)]
pub struct HheServer {
    params: PastaParams,
    relin_key: BfvRelinKey,
    encrypted_key: EncryptedPastaKey,
    cache: Arc<MaterialCache>,
}

impl HheServer {
    /// Sets up a server for one client (with a private material cache;
    /// use [`HheServer::with_cache`] to share one across servers).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if the encrypted key length is
    /// not `2t`.
    pub fn new(
        params: PastaParams,
        relin_key: BfvRelinKey,
        encrypted_key: EncryptedPastaKey,
    ) -> Result<Self, FheError> {
        if encrypted_key.elements.len() != params.state_size() {
            return Err(FheError::Incompatible(format!(
                "encrypted key has {} elements, expected {}",
                encrypted_key.elements.len(),
                params.state_size()
            )));
        }
        Ok(HheServer {
            params,
            relin_key,
            encrypted_key,
            cache: Arc::new(MaterialCache::new()),
        })
    }

    /// Replaces the material cache (e.g. with one shared by several
    /// servers or server modes).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<MaterialCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Swaps the material cache in place. The multi-tenant service layer
    /// re-attaches a tenant's shard before each scheduling round, so that
    /// shard eviction in [`crate::cache::ShardedCache`] actually releases
    /// the memory instead of keeping it alive through the server handle.
    pub fn set_cache(&mut self, cache: Arc<MaterialCache>) {
        self.cache = cache;
    }

    /// The material cache in use (shareable via [`Arc::clone`]).
    #[must_use]
    pub fn cache(&self) -> &Arc<MaterialCache> {
        &self.cache
    }

    /// The provisioned encrypted PASTA key. The multiplexing layer reads
    /// it to slot-mask tenants' keys into a shared bucket key (a scalar
    /// provisioned key already holds its element in every slot — the
    /// constant polynomial evaluates equally at every root).
    #[must_use]
    pub fn encrypted_key(&self) -> &EncryptedPastaKey {
        &self.encrypted_key
    }

    /// Homomorphically computes the keystream block for
    /// `(nonce, counter)`: FHE ciphertexts of `KS_0 … KS_{t-1}`.
    ///
    /// # Errors
    ///
    /// Propagates FHE errors (relinearization on malformed keys).
    pub fn keystream_encrypted(
        &self,
        ctx: &BfvContext,
        nonce: u128,
        counter: u64,
    ) -> Result<Vec<FheCiphertext>, FheError> {
        let t = self.params.t();
        let r = self.params.rounds();
        let entry = self.cache.block(&self.params, nonce, counter);
        let mut left = self.encrypted_key.elements[..t].to_vec();
        let mut right = self.encrypted_key.elements[t..].to_vec();
        for (i, (layer, mats)) in entry
            .material
            .layers
            .iter()
            .zip(entry.matrices.iter())
            .enumerate()
        {
            left = Self::affine_half(ctx, &left, &mats.left, &layer.rc_left)?;
            right = Self::affine_half(ctx, &right, &mats.right, &layer.rc_right)?;
            if i < r {
                Self::mix(ctx, &mut left, &mut right)?;
                let is_final_round = i == r - 1;
                self.sbox(ctx, &mut left, &mut right, is_final_round)?;
            }
        }
        Ok(left) // truncation
    }

    /// Transciphers one PASTA ciphertext into FHE ciphertexts of the
    /// message: `Enc(m_i) = Δ·c_i − Enc(KS_i)`.
    ///
    /// # Errors
    ///
    /// Propagates FHE errors from the keystream evaluation.
    pub fn transcipher(
        &self,
        ctx: &BfvContext,
        pasta_ct: &PastaCiphertext,
    ) -> Result<Vec<FheCiphertext>, FheError> {
        let t = self.params.t();
        let mut out = Vec::with_capacity(pasta_ct.len());
        for (counter, block) in pasta_ct.elements().chunks(t).enumerate() {
            let mut ks = self.keystream_encrypted(ctx, pasta_ct.nonce(), counter as u64)?;
            // `Δ·c − Enc(KS)` without re-encoding c: consume the
            // keystream ciphertext, negate it in place, and inject the
            // public symmetric element as a constant coefficient.
            ks.truncate(block.len());
            for (ks_ct, &c_elem) in ks.iter_mut().zip(block.iter()) {
                ctx.neg_assign(ks_ct);
                ctx.add_scalar_assign(ks_ct, c_elem);
            }
            out.append(&mut ks);
        }
        Ok(out)
    }

    /// One affine layer on one half: `out_i = Σ_j M_ij·ct_j + rc_i`.
    ///
    /// The matrix comes from the material cache; output rows are
    /// independent, so the `t`-ciphertext fan-out runs on the worker
    /// pool (`PASTA_THREADS`) — bit-exact for any thread count.
    fn affine_half(
        ctx: &BfvContext,
        half: &[FheCiphertext],
        matrix: &Matrix,
        rc: &[u64],
    ) -> Result<Vec<FheCiphertext>, FheError> {
        let t = half.len();
        if half.is_empty() {
            return Err(FheError::Incompatible(
                "affine layer applied to an empty state half".into(),
            ));
        }
        let rows: Vec<usize> = (0..t.min(rc.len())).collect();
        pasta_par::parallel_map(&rows, |_, &i| {
            let row = matrix.row(i);
            let mut acc = ctx.mul_scalar(&half[0], row[0]);
            for (j, ct) in half.iter().enumerate().skip(1) {
                let term = ctx.mul_scalar(ct, row[j]);
                ctx.add_assign(&mut acc, &term)?;
            }
            ctx.add_scalar_assign(&mut acc, rc[i]);
            Ok(acc)
        })
        .into_iter()
        .collect()
    }

    /// Mix: `(2L + R, 2R + L)` element-wise with additions only.
    fn mix(
        ctx: &BfvContext,
        left: &mut [FheCiphertext],
        right: &mut [FheCiphertext],
    ) -> Result<(), FheError> {
        for (l, r) in left.iter_mut().zip(right.iter_mut()) {
            let mut sum = l.clone();
            ctx.add_assign(&mut sum, r)?;
            ctx.add_assign(l, &sum)?;
            ctx.add_assign(r, &sum)?;
        }
        Ok(())
    }

    /// S-box over the concatenated state. The squarings (ciphertext ×
    /// ciphertext multiplications — the expensive part of the circuit)
    /// fan out across the worker pool.
    fn sbox(
        &self,
        ctx: &BfvContext,
        left: &mut [FheCiphertext],
        right: &mut [FheCiphertext],
        is_final_round: bool,
    ) -> Result<(), FheError> {
        let t = left.len();
        let mut full: Vec<FheCiphertext> = left.iter().chain(right.iter()).cloned().collect();
        if is_final_round {
            // Cube: x³ = relin(x²)·x, relinearized again.
            full = pasta_par::parallel_map(&full, |_, x| {
                let sq = ctx.square_relin(x, &self.relin_key)?;
                ctx.mul_relin(&sq, x, &self.relin_key)
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        } else {
            // Feistel: y_0 = x_0, y_j = x_j + x_{j-1}² on input values.
            let squares: Vec<FheCiphertext> =
                pasta_par::parallel_map(&full[..2 * t - 1], |_, x| {
                    ctx.square_relin(x, &self.relin_key)
                })
                .into_iter()
                .collect::<Result<_, _>>()?;
            for j in (1..2 * t).rev() {
                ctx.add_assign(&mut full[j], &squares[j - 1])?;
            }
        }
        left.clone_from_slice(&full[..t]);
        right.clone_from_slice(&full[t..]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HheClient;
    use pasta_fhe::{BfvParams, BfvSecretKey};
    use pasta_math::Modulus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        ctx: BfvContext,
        fhe_sk: BfvSecretKey,
        client: HheClient,
        server: HheServer,
    }

    fn setup() -> World {
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let fhe_sk = ctx.generate_secret_key(&mut rng);
        let fhe_pk = ctx.generate_public_key(&fhe_sk, &mut rng);
        let relin = ctx.generate_relin_key(&fhe_sk, &mut rng);
        let client = HheClient::new(params, b"hhe test");
        let encrypted_key = client.provision_key(&ctx, &fhe_pk, &mut rng);
        let server = HheServer::new(params, relin, encrypted_key).unwrap();
        World {
            ctx,
            fhe_sk,
            client,
            server,
        }
    }

    #[test]
    fn homomorphic_keystream_matches_plain_keystream() {
        let w = setup();
        let expected = w.client.cipher().keystream_block(99, 0).unwrap();
        let encrypted = w.server.keystream_encrypted(&w.ctx, 99, 0).unwrap();
        let decrypted: Vec<u64> = encrypted
            .iter()
            .map(|ct| w.ctx.decrypt(&w.fhe_sk, ct).scalar())
            .collect();
        assert_eq!(
            decrypted, expected,
            "server must reproduce KS under encryption"
        );
    }

    #[test]
    fn transciphering_recovers_the_message() {
        let w = setup();
        let message = vec![11u64, 22, 33, 44];
        let pasta_ct = w.client.encrypt(1234, &message).unwrap();
        let fhe_cts = w.server.transcipher(&w.ctx, &pasta_ct).unwrap();
        let recovered = w.client.retrieve(&w.ctx, &w.fhe_sk, &fhe_cts);
        assert_eq!(recovered, message);
    }

    #[test]
    fn transciphering_multi_block() {
        let w = setup();
        let message: Vec<u64> = (0..10u64).map(|i| i * 1000 + 7).collect();
        let pasta_ct = w.client.encrypt(5, &message).unwrap();
        let fhe_cts = w.server.transcipher(&w.ctx, &pasta_ct).unwrap();
        assert_eq!(fhe_cts.len(), 10);
        assert_eq!(w.client.retrieve(&w.ctx, &w.fhe_sk, &fhe_cts), message);
    }

    #[test]
    fn warm_cache_pass_is_bit_exact() {
        let w = setup();
        let cold = w.server.keystream_encrypted(&w.ctx, 4242, 1).unwrap();
        let misses_after_cold = w.server.cache().stats().misses;
        let warm = w.server.keystream_encrypted(&w.ctx, 4242, 1).unwrap();
        assert_eq!(
            cold, warm,
            "cached material must not change the ciphertexts"
        );
        let stats = w.server.cache().stats();
        assert_eq!(
            stats.misses, misses_after_cold,
            "warm pass must not re-derive"
        );
        assert!(stats.hits >= 1, "warm pass must hit the cache");
    }

    #[test]
    fn servers_can_share_one_cache() {
        let w = setup();
        let shared = std::sync::Arc::clone(w.server.cache());
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let fhe_pk = w.ctx.generate_public_key(&w.fhe_sk, &mut rng);
        let relin = w.ctx.generate_relin_key(&w.fhe_sk, &mut rng);
        let ek = w.client.provision_key(&w.ctx, &fhe_pk, &mut rng);
        let second = HheServer::new(params, relin, ek)
            .unwrap()
            .with_cache(shared);
        let _ = w.server.keystream_encrypted(&w.ctx, 99, 0).unwrap();
        let misses = second.cache().stats().misses;
        let _ = second.keystream_encrypted(&w.ctx, 99, 0).unwrap();
        assert_eq!(
            second.cache().stats().misses,
            misses,
            "shared entry must be reused"
        );
    }

    #[test]
    fn noise_budget_survives_the_whole_circuit() {
        let w = setup();
        let encrypted = w.server.keystream_encrypted(&w.ctx, 3, 0).unwrap();
        for (i, ct) in encrypted.iter().enumerate() {
            let budget = w.ctx.noise_budget(&w.fhe_sk, ct);
            assert!(
                budget > 5,
                "keystream ct {i} nearly exhausted: {budget} bits"
            );
        }
    }

    #[test]
    fn server_can_compute_on_transciphered_data() {
        // The whole point of HHE: after transciphering the server holds
        // ordinary FHE ciphertexts it can compute on.
        let w = setup();
        let message = vec![100u64, 200, 300, 400];
        let pasta_ct = w.client.encrypt(8, &message).unwrap();
        let fhe_cts = w.server.transcipher(&w.ctx, &pasta_ct).unwrap();
        // Server-side: sum all elements homomorphically.
        let mut acc = fhe_cts[0].clone();
        for ct in &fhe_cts[1..] {
            acc = w.ctx.add(&acc, ct).unwrap();
        }
        assert_eq!(w.ctx.decrypt(&w.fhe_sk, &acc).scalar(), 1_000);
    }

    #[test]
    fn wrong_key_length_rejected() {
        let w = setup();
        let short = EncryptedPastaKey {
            elements: w.server.encrypted_key.elements[..3].to_vec(),
        };
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let sk = w.ctx.generate_secret_key(&mut rng);
        let rk = w.ctx.generate_relin_key(&sk, &mut rng);
        assert!(matches!(
            HheServer::new(params, rk, short),
            Err(FheError::Incompatible(_))
        ));
    }
}
