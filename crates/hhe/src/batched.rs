//! SIMD-batched transciphering: `N` PASTA blocks per BFV ciphertext.
//!
//! The scalar server ([`crate::server::HheServer`]) spends one BFV
//! ciphertext per PASTA state element and transciphers one block at a
//! time. The original PASTA software instead exploits BFV *batching*
//! (SEAL's `BatchEncoder`): with `t_plain = 65537` and `2N | t_plain − 1`,
//! one ciphertext holds `N` independent `F_p` slots, and all ring
//! operations act slot-wise.
//!
//! The key observation that makes PASTA batching work: the secret key is
//! the *same* for every block, while the affine material differs per
//! block — but the material is *public*. So:
//!
//! - key ciphertext `j` encrypts the vector `(K_j, K_j, …, K_j)` (all
//!   slots equal);
//! - slot `s` of the evaluation processes block `counter₀ + s`;
//! - the affine layer's matrix entry for position `(i, j)` becomes a
//!   *batched plaintext* whose slot `s` holds `M^{(s)}_{i,j}` — one
//!   plaintext–ciphertext multiplication handles that entry for all `N`
//!   blocks at once;
//! - Mix and the S-boxes are slot-wise by construction; the S-box
//!   squarings use the same full-RNS ciphertext multiplication as every
//!   server mode (see [`pasta_fhe::rns_mul`]).
//!
//! Per-ciphertext work rises (full `N log N` plaintext multiplications
//! instead of scalar ones) but is amortized over `N` blocks — the
//! throughput play of the original software, reproduced here.
//!
//! Unlike [`crate::packed`], this layout is *rotation-free*: state
//! position `(i)` lives in its own ciphertext and slots only ever meet
//! slot-wise, so there are no Galois key-switches for the hoisted-BSGS
//! optimization to save, and no rotation keys to provision at all. The
//! baby-step/giant-step machinery therefore applies only to the packed
//! (position-in-lane) mode.

use crate::cache::{BatchKey, BatchedEntry, BatchedHalf, BatchedLayer, BlockEntry, MaterialCache};
use crate::client::EncryptedPastaKey;
use pasta_core::{Ciphertext as PastaCiphertext, PastaParams};
use pasta_fhe::{BatchEncoder, BfvContext, BfvRelinKey, Ciphertext as FheCiphertext, FheError};
use std::sync::Arc;

/// A transciphering server that processes up to `N` blocks per pass.
#[derive(Debug)]
pub struct BatchedHheServer {
    params: PastaParams,
    relin_key: BfvRelinKey,
    encrypted_key: EncryptedPastaKey,
    encoder: BatchEncoder,
    cache: Arc<MaterialCache>,
}

/// The result of one batched pass: `t` ciphertexts whose slot `s` holds
/// the keystream (or message) element for block `first_counter + s`.
#[derive(Debug)]
pub struct BatchedBlocks {
    /// Position-major ciphertexts: index `i` covers state position `i`
    /// across all batched blocks.
    pub positions: Vec<FheCiphertext>,
    /// Counter of the first block in the batch.
    pub first_counter: u64,
    /// Number of blocks batched (`≤ N` slots).
    pub blocks: usize,
}

impl BatchedHheServer {
    /// Builds a batched server. The encrypted key must have been
    /// provisioned with *batched* key ciphertexts — every slot equal to
    /// the key element (see [`provision_batched_key`]).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] on a key-length mismatch, or
    /// propagates encoder construction errors (`2N ∤ t_plain − 1`).
    pub fn new(
        params: PastaParams,
        ctx: &BfvContext,
        relin_key: BfvRelinKey,
        encrypted_key: EncryptedPastaKey,
    ) -> Result<Self, FheError> {
        if encrypted_key.elements.len() != params.state_size() {
            return Err(FheError::Incompatible(format!(
                "encrypted key has {} elements, expected {}",
                encrypted_key.elements.len(),
                params.state_size()
            )));
        }
        let encoder = BatchEncoder::new(ctx.params().plain_modulus, ctx.params().n)
            .map_err(FheError::from)?;
        Ok(BatchedHheServer {
            params,
            relin_key,
            encrypted_key,
            encoder,
            cache: Arc::new(MaterialCache::new()),
        })
    }

    /// Replaces the material cache (e.g. with one shared by several
    /// servers or server modes).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<MaterialCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The material cache in use (shareable via [`Arc::clone`]).
    #[must_use]
    pub fn cache(&self) -> &Arc<MaterialCache> {
        &self.cache
    }

    /// The number of blocks one pass can carry (`N` slots).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.encoder.slots()
    }

    /// Builds the prepared plaintext material for one batch window:
    /// per layer and half, the `t × t` slot-vector weights and `t`
    /// round constants, batch-encoded and NTT-prepared once. The
    /// `t × t` fan-out runs on the worker pool.
    fn prepare_batch(
        &self,
        ctx: &BfvContext,
        nonce: u128,
        first_counter: u64,
        blocks: usize,
    ) -> BatchedEntry {
        // Raw material and matrices come from the shared block section —
        // the scalar and packed servers reuse the same entries.
        let per_block: Vec<Arc<BlockEntry>> = (0..blocks)
            .map(|s| {
                self.cache
                    .block(&self.params, nonce, first_counter + s as u64)
            })
            .collect();
        prepare_slotted_material(ctx, &self.params, &self.encoder, &per_block)
    }

    /// Homomorphically computes keystream blocks `first_counter ..
    /// first_counter + blocks` in one SIMD pass.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if `blocks` exceeds the slot
    /// capacity (or is zero); propagates FHE errors.
    pub fn keystream_batch(
        &self,
        ctx: &BfvContext,
        nonce: u128,
        first_counter: u64,
        blocks: usize,
    ) -> Result<BatchedBlocks, FheError> {
        if blocks == 0 || blocks > self.capacity() {
            return Err(FheError::Incompatible(format!(
                "batch of {blocks} blocks exceeds the {}-slot capacity",
                self.capacity()
            )));
        }
        let t = self.params.t();

        // Prepared plaintext material: encode + forward NTT paid once
        // per (nonce, window), then served from the cache.
        let key = BatchKey {
            pasta: self.params,
            bfv: *ctx.params(),
            nonce,
            first_counter,
            blocks,
        };
        let prepared = self.cache.batched(&key, || {
            self.prepare_batch(ctx, nonce, first_counter, blocks)
        });

        let positions = eval_slotted_circuit(
            ctx,
            &self.params,
            &self.relin_key,
            &prepared,
            &self.encrypted_key.elements[..t],
            &self.encrypted_key.elements[t..],
        )?;
        Ok(BatchedBlocks {
            positions,
            first_counter,
            blocks,
        })
    }

    /// Transciphers a PASTA ciphertext in SIMD fashion: all blocks in one
    /// homomorphic pass (up to the slot capacity).
    ///
    /// Returns `t` position-major ciphertexts; slot `s` of ciphertext `i`
    /// holds message element `s·t + i`.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if the ciphertext has more
    /// blocks than slots; propagates FHE errors.
    pub fn transcipher_batched(
        &self,
        ctx: &BfvContext,
        pasta_ct: &PastaCiphertext,
    ) -> Result<BatchedBlocks, FheError> {
        let t = self.params.t();
        let blocks = pasta_ct.len().div_ceil(t);
        let ks = self.keystream_batch(ctx, pasta_ct.nonce(), 0, blocks)?;
        let mut positions = Vec::with_capacity(t);
        for (i, ks_ct) in ks.positions.iter().enumerate() {
            // Slot s holds ciphertext element s·t + i (0 past the end).
            let c_slots: Vec<u64> = (0..blocks)
                .map(|s| pasta_ct.elements().get(s * t + i).copied().unwrap_or(0))
                .collect();
            let mut out = ctx.encrypt_trivial(&self.encoder.encode(&c_slots));
            ctx.sub_assign(&mut out, ks_ct)?;
            positions.push(out);
        }
        Ok(BatchedBlocks {
            positions,
            first_counter: 0,
            blocks,
        })
    }

    /// Decodes one position-major ciphertext of a batch back into the
    /// per-block values (requires the FHE secret key — client side).
    #[must_use]
    pub fn decode_position(
        &self,
        ctx: &BfvContext,
        sk: &pasta_fhe::BfvSecretKey,
        batch: &BatchedBlocks,
        position: usize,
    ) -> Vec<u64> {
        let pt = ctx.decrypt(sk, &batch.positions[position]);
        self.encoder.decode(&pt)[..batch.blocks].to_vec()
    }
}

/// Builds the prepared plaintext material for a slot-parallel pass over
/// arbitrary per-slot block material: per layer and half, the `t × t`
/// slot-vector weights and `t` round constants, batch-encoded and
/// NTT-prepared once. Slot `s` carries `per_slot[s]`'s matrix entries —
/// the slots need not share a nonce or counter window, which is what
/// lets the cross-tenant multiplexer reuse this builder. The `t × t`
/// fan-out runs on the worker pool.
pub(crate) fn prepare_slotted_material(
    ctx: &BfvContext,
    params: &PastaParams,
    encoder: &BatchEncoder,
    per_slot: &[Arc<BlockEntry>],
) -> BatchedEntry {
    let t = params.t();
    let layers = (0..params.affine_layers())
        .map(|layer| {
            let half = |is_left: bool| -> BatchedHalf {
                let cells: Vec<usize> = (0..t * t).collect();
                let weights = pasta_par::parallel_map(&cells, |_, &cell| {
                    let (i, j) = (cell / t, cell % t);
                    // Slot s carries block s's matrix entry (i, j).
                    let slots: Vec<u64> = per_slot
                        .iter()
                        .map(|b| {
                            let m = &b.matrices[layer];
                            if is_left {
                                m.left.get(i, j)
                            } else {
                                m.right.get(i, j)
                            }
                        })
                        .collect();
                    ctx.prepare_plaintext(&encoder.encode(&slots))
                });
                let rc = (0..t)
                    .map(|i| {
                        let slots: Vec<u64> = per_slot
                            .iter()
                            .map(|b| {
                                let l = &b.material.layers[layer];
                                if is_left {
                                    l.rc_left[i]
                                } else {
                                    l.rc_right[i]
                                }
                            })
                            .collect();
                        ctx.prepare_plaintext(&encoder.encode(&slots))
                    })
                    .collect();
                BatchedHalf { weights, rc }
            };
            BatchedLayer {
                left: half(true),
                right: half(false),
            }
        })
        .collect();
    BatchedEntry { layers }
}

/// Evaluates the slot-parallel PASTA keystream circuit from prepared
/// material and initial key-state halves, returning the `t` left
/// positions after the final affine layer. Shared by the homogeneous
/// batched server and the cross-tenant multiplexer (which feeds a
/// slot-masked composed key instead of one tenant's replicated key).
///
/// # Errors
///
/// Returns [`FheError::Incompatible`] on malformed state halves;
/// propagates FHE errors from the squarings.
pub(crate) fn eval_slotted_circuit(
    ctx: &BfvContext,
    params: &PastaParams,
    relin_key: &BfvRelinKey,
    prepared: &BatchedEntry,
    initial_left: &[FheCiphertext],
    initial_right: &[FheCiphertext],
) -> Result<Vec<FheCiphertext>, FheError> {
    let t = params.t();
    let r = params.rounds();
    let mut left = initial_left.to_vec();
    let mut right = initial_right.to_vec();

    for (layer, layer_prep) in prepared.layers.iter().enumerate() {
        for is_left in [true, false] {
            let half = if is_left { &left } else { &right };
            let half_prep = if is_left {
                &layer_prep.left
            } else {
                &layer_prep.right
            };
            if half.is_empty() {
                return Err(FheError::Incompatible(
                    "affine layer applied to an empty state half".into(),
                ));
            }
            // Hoist the NTTs: each input ciphertext is converted
            // once per layer instead of once per matrix entry.
            let mut half_ntt = half.clone();
            for ct in &mut half_ntt {
                ctx.to_ntt_ct(ct);
            }
            let rows: Vec<usize> = (0..t).collect();
            let out: Vec<FheCiphertext> =
                pasta_par::parallel_map(&rows, |_, &i| -> Result<FheCiphertext, FheError> {
                    let mut acc =
                        ctx.mul_plain_prepared_ntt(&half_ntt[0], half_prep.weight(t, i, 0));
                    for (j, ct) in half_ntt.iter().enumerate().skip(1) {
                        ctx.add_mul_plain_ntt_assign(&mut acc, ct, half_prep.weight(t, i, j))?;
                    }
                    ctx.to_coeff_ct(&mut acc);
                    // Batched round constant.
                    ctx.add_plain_prepared_assign(&mut acc, &half_prep.rc[i]);
                    Ok(acc)
                })
                .into_iter()
                .collect::<Result<_, _>>()?;
            if is_left {
                left = out;
            } else {
                right = out;
            }
        }

        if layer < r {
            // Mix (slot-wise adds).
            for (l, rgt) in left.iter_mut().zip(right.iter_mut()) {
                let mut sum = l.clone();
                ctx.add_assign(&mut sum, rgt)?;
                ctx.add_assign(l, &sum)?;
                ctx.add_assign(rgt, &sum)?;
            }
            // S-box over the concatenated state; the squarings fan
            // out across the worker pool.
            let mut full: Vec<FheCiphertext> = left.iter().chain(right.iter()).cloned().collect();
            if layer == r - 1 {
                full = pasta_par::parallel_map(&full, |_, x| {
                    let sq = ctx.square_relin(x, relin_key)?;
                    ctx.mul_relin(&sq, x, relin_key)
                })
                .into_iter()
                .collect::<Result<_, _>>()?;
            } else {
                let squares: Vec<FheCiphertext> =
                    pasta_par::parallel_map(&full[..2 * t - 1], |_, x| {
                        ctx.square_relin(x, relin_key)
                    })
                    .into_iter()
                    .collect::<Result<_, _>>()?;
                for j in (1..2 * t).rev() {
                    ctx.add_assign(&mut full[j], &squares[j - 1])?;
                }
            }
            left.clone_from_slice(&full[..t]);
            right.clone_from_slice(&full[t..]);
        }
    }
    Ok(left)
}

/// Provisions the PASTA key for the batched server: each key ciphertext
/// encrypts the key element replicated into every slot.
///
/// # Errors
///
/// Propagates encoder construction errors when the context parameters do
/// not support batching (`2N ∤ t_plain − 1`).
pub fn provision_batched_key<R: rand::Rng>(
    key_elements: &[u64],
    ctx: &BfvContext,
    pk: &pasta_fhe::BfvPublicKey,
    rng: &mut R,
) -> Result<EncryptedPastaKey, FheError> {
    let encoder =
        BatchEncoder::new(ctx.params().plain_modulus, ctx.params().n).map_err(FheError::from)?;
    let elements = key_elements
        .iter()
        .map(|&k| {
            let slots = vec![k; encoder.slots()];
            ctx.encrypt(pk, &encoder.encode(&slots), rng)
        })
        .collect();
    Ok(EncryptedPastaKey { elements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HheClient;
    use pasta_fhe::{BfvParams, BfvSecretKey};
    use pasta_math::Modulus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        ctx: BfvContext,
        sk: BfvSecretKey,
        client: HheClient,
        server: BatchedHheServer,
    }

    fn setup() -> World {
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        // One extra prime vs test_tiny: the batched plaintext
        // multiplications grow noise by an extra log2(N) per layer.
        let bfv = BfvParams {
            prime_count: 5,
            ..BfvParams::test_tiny()
        };
        let ctx = BfvContext::new(bfv).unwrap();
        let mut rng = StdRng::seed_from_u64(808);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let relin = ctx.generate_relin_key(&sk, &mut rng);
        let client = HheClient::new(params, b"batched");
        let ek =
            provision_batched_key(client.cipher().key().expose_elements(), &ctx, &pk, &mut rng)
                .unwrap();
        let server = BatchedHheServer::new(params, &ctx, relin, ek).unwrap();
        World {
            ctx,
            sk,
            client,
            server,
        }
    }

    #[test]
    fn batched_keystream_matches_plain_for_each_block() {
        let w = setup();
        let blocks = 5;
        let batch = w.server.keystream_batch(&w.ctx, 0xAA, 0, blocks).unwrap();
        for position in 0..4 {
            let values = w.server.decode_position(&w.ctx, &w.sk, &batch, position);
            for (s, &v) in values.iter().enumerate() {
                let expect = w.client.cipher().keystream_block(0xAA, s as u64).unwrap();
                assert_eq!(v, expect[position], "block {s} position {position}");
            }
        }
    }

    #[test]
    fn batched_transcipher_recovers_multi_block_message() {
        let w = setup();
        let message: Vec<u64> = (0..12u64).map(|i| (i * 4_321 + 9) % 65_537).collect();
        let pasta_ct = w.client.encrypt(0xBB, &message).unwrap();
        let batch = w.server.transcipher_batched(&w.ctx, &pasta_ct).unwrap();
        assert_eq!(batch.blocks, 3);
        let mut recovered = vec![0u64; message.len()];
        for position in 0..4 {
            let vals = w.server.decode_position(&w.ctx, &w.sk, &batch, position);
            for (s, &v) in vals.iter().enumerate() {
                let idx = s * 4 + position;
                if idx < recovered.len() {
                    recovered[idx] = v;
                }
            }
        }
        assert_eq!(recovered, message);
    }

    #[test]
    fn warm_cache_pass_is_bit_exact() {
        let w = setup();
        let cold = w.server.keystream_batch(&w.ctx, 0xDD, 2, 3).unwrap();
        let misses_after_cold = w.server.cache().stats().misses;
        let warm = w.server.keystream_batch(&w.ctx, 0xDD, 2, 3).unwrap();
        assert_eq!(
            cold.positions, warm.positions,
            "cached plaintexts must be bit-exact"
        );
        let stats = w.server.cache().stats();
        assert_eq!(
            stats.misses, misses_after_cold,
            "warm pass must not re-prepare"
        );
        assert!(stats.hits >= 1, "warm pass must hit the cache");
    }

    #[test]
    fn batch_capacity_enforced() {
        let w = setup();
        let cap = w.server.capacity();
        assert_eq!(cap, 256);
        assert!(matches!(
            w.server.keystream_batch(&w.ctx, 0, 0, cap + 1),
            Err(FheError::Incompatible(_))
        ));
        assert!(matches!(
            w.server.keystream_batch(&w.ctx, 0, 0, 0),
            Err(FheError::Incompatible(_))
        ));
    }

    #[test]
    fn nonzero_first_counter() {
        let w = setup();
        let batch = w.server.keystream_batch(&w.ctx, 0xCC, 7, 2).unwrap();
        let values = w.server.decode_position(&w.ctx, &w.sk, &batch, 0);
        for (s, &v) in values.iter().enumerate() {
            let expect = w
                .client
                .cipher()
                .keystream_block(0xCC, 7 + s as u64)
                .unwrap();
            assert_eq!(v, expect[0]);
        }
    }

    #[test]
    fn noise_budget_survives_batched_circuit() {
        let w = setup();
        let batch = w.server.keystream_batch(&w.ctx, 1, 0, 3).unwrap();
        for (i, ct) in batch.positions.iter().enumerate() {
            let budget = w.ctx.noise_budget(&w.sk, ct);
            assert!(budget > 5, "position {i}: {budget} bits left");
        }
    }

    #[test]
    fn amortized_cost_beats_scalar_server() {
        // The point of batching: one pass of the batched server covers
        // `capacity()` blocks with the same number of homomorphic
        // multiplications as ~one scalar pass (a throughput argument, not
        // measured here — assert the structural count).
        let w = setup();
        // Scalar server: muls per block = affine (t² per half per layer
        // is scalar muls, cheap) + (2t-1)(r-1) + 2·2t relins.
        // Batched: identical counts per *pass*, amortized over capacity.
        let per_pass_relins = (2 * 4 - 1) + 2 * 2 * 4;
        let scalar_total = per_pass_relins * w.server.capacity();
        let batched_total = per_pass_relins;
        assert!(
            batched_total * 100 < scalar_total,
            "amortization factor >= 100x"
        );
    }
}
