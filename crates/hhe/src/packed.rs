//! Packed transciphering: one PASTA block in a *single* BFV ciphertext,
//! with the affine layers evaluated by the rotation/diagonal method.
//!
//! Where [`crate::batched`] spreads `N` blocks across the slots
//! (throughput), this module packs the `2t` state elements of **one**
//! block into `2t` *lanes* of one ciphertext (latency/minimum ciphertext
//! count — the original PASTA-SEAL evaluation strategy):
//!
//! - lanes are consecutive positions along one orbit of the Galois
//!   element `g = 3` on the batching slots, so `σ_{3^k}` acts as a
//!   cyclic lane shift by `k`;
//! - a matrix–vector product becomes the **diagonal method**:
//!   `M·v = Σ_k diag_k ⊙ rot_k(v)` — `2t` plaintext multiplications and
//!   `2t − 1` rotations per affine layer (vs `(2t)²` scalar
//!   multiplications in scalar mode);
//! - Mix and the Feistel shift are lane rotations against a maintained
//!   *duplicate* copy of the state at lanes `2t..4t`;
//! - the Feistel S-box masks lane 0 with an indicator plaintext.
//!
//! Correctness leans on one invariant: after every affine layer the
//! state is **masked** (zero outside lanes `0..2t`), so the garbage that
//! rotations drag in from other lanes/orbits is always cleared before it
//! can reach the output.

use crate::cache::{MaterialCache, PackedEntry, PackedKey, PackedLayer};
use crate::client::EncryptedPastaKey;
use pasta_core::{Ciphertext as PastaCiphertext, PastaParams};
use pasta_fhe::{
    BatchEncoder, BfvContext, BfvGaloisKey, BfvRelinKey, BfvSecretKey, Ciphertext as FheCiphertext,
    FheError, Plaintext, PreparedPlaintext,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The lane coordinate system: consecutive positions along the orbit of
/// slot 0 under `σ_3`.
#[derive(Debug, Clone)]
pub struct LaneLayout {
    /// `order[j]` = slot index of lane `j`.
    order: Vec<usize>,
    orbit_len: usize,
}

impl LaneLayout {
    /// Builds the layout from the encoder's `σ_3` slot permutation.
    #[must_use]
    pub fn new(encoder: &BatchEncoder) -> Self {
        let pi = encoder.automorphism_permutation(3);
        let mut order = vec![0usize];
        let mut pos = pi[0];
        while pos != 0 {
            order.push(pos);
            pos = pi[pos];
        }
        let orbit_len = order.len();
        LaneLayout { order, orbit_len }
    }

    /// Number of usable lanes (the orbit length).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.orbit_len
    }

    /// Encodes values into lanes `offset..offset+values.len()`
    /// (all other slots zero).
    ///
    /// # Panics
    ///
    /// Panics if the values run past the orbit.
    #[must_use]
    pub fn encode_lanes(&self, encoder: &BatchEncoder, values: &[u64], offset: usize) -> Plaintext {
        assert!(
            offset + values.len() <= self.orbit_len,
            "values exceed the lane orbit"
        );
        let mut slots = vec![0u64; encoder.slots()];
        for (j, &v) in values.iter().enumerate() {
            slots[self.order[offset + j]] = v;
        }
        encoder.encode(&slots)
    }

    /// Reads lanes `0..n` out of decoded slot values.
    #[must_use]
    pub fn decode_lanes(&self, slots: &[u64], n: usize) -> Vec<u64> {
        (0..n).map(|j| slots[self.order[j]]).collect()
    }
}

/// A transciphering server evaluating one block per ciphertext via
/// rotations.
#[derive(Debug)]
pub struct PackedHheServer {
    params: PastaParams,
    relin_key: BfvRelinKey,
    rot_keys: HashMap<usize, BfvGaloisKey>,
    encrypted_key: FheCiphertext,
    layout: LaneLayout,
    encoder: BatchEncoder,
    /// Indicator plaintexts for the fixed mask windows the evaluation
    /// uses, NTT-prepared once at setup.
    masks: HashMap<(usize, usize), PreparedPlaintext>,
    cache: Arc<MaterialCache>,
}

/// The Galois elements (`3^k mod 2N`) the packed evaluation needs for a
/// block size `t` on an orbit of `orbit_len` lanes: shifts `1..2t` plus
/// the duplicate-refresh shift `orbit_len − 2t`.
#[must_use]
pub fn required_shifts(t: usize, orbit_len: usize) -> Vec<usize> {
    let mut shifts: Vec<usize> = (1..2 * t).collect();
    shifts.push(orbit_len - 2 * t);
    shifts.sort_unstable();
    shifts.dedup();
    shifts
}

impl PackedHheServer {
    /// Sets up the packed server: provisions the packed key ciphertext
    /// and generates the rotation key set.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if `4t` exceeds the lane orbit
    /// (the duplicate would not fit), or propagates key errors.
    pub fn new<R: rand::Rng>(
        params: PastaParams,
        ctx: &BfvContext,
        fhe_sk: &BfvSecretKey,
        key_elements: &[u64],
        rng: &mut R,
    ) -> Result<Self, FheError> {
        let encoder = BatchEncoder::new(ctx.params().plain_modulus, ctx.params().n)
            .map_err(FheError::from)?;
        let layout = LaneLayout::new(&encoder);
        let t = params.t();
        if 4 * t > layout.lanes() {
            return Err(FheError::Incompatible(format!(
                "state 2t = {} needs 4t lanes but the orbit has only {}",
                2 * t,
                layout.lanes()
            )));
        }
        if key_elements.len() != params.state_size() {
            return Err(FheError::Incompatible("key length mismatch".into()));
        }
        let relin_key = ctx.generate_relin_key(fhe_sk, rng);
        let pk = ctx.generate_public_key(fhe_sk, rng);
        let packed = layout.encode_lanes(&encoder, key_elements, 0);
        let encrypted_key = ctx.encrypt(&pk, &packed, rng);
        let two_n = 2 * ctx.params().n;
        let mut rot_keys = HashMap::new();
        for k in required_shifts(t, layout.lanes()) {
            let mut g = 1usize;
            for _ in 0..k {
                g = (g * 3) % two_n;
            }
            rot_keys.insert(k, ctx.generate_galois_key(fhe_sk, g, rng)?);
        }
        // The evaluation masks only ever these three windows; prepare
        // their indicator plaintexts once.
        let mut masks = HashMap::new();
        for (from, range) in [(0, 2 * t), (1, 2 * t), (0, t)] {
            let ones = vec![1u64; range - from];
            let pt = layout.encode_lanes(&encoder, &ones, from);
            masks.insert((from, range), ctx.prepare_plaintext(&pt));
        }
        Ok(PackedHheServer {
            params,
            relin_key,
            rot_keys,
            encrypted_key,
            layout,
            encoder,
            masks,
            cache: Arc::new(MaterialCache::new()),
        })
    }

    /// Replaces the material cache (e.g. with one shared by several
    /// servers or server modes).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<MaterialCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The material cache in use (shareable via [`Arc::clone`]).
    #[must_use]
    pub fn cache(&self) -> &Arc<MaterialCache> {
        &self.cache
    }

    /// The packed, FHE-encrypted key as shipped by the client (exposed
    /// for size accounting: it is ONE ciphertext, vs `2t` in scalar
    /// mode).
    #[must_use]
    pub fn encrypted_key_size_bytes(&self, ctx: &BfvContext) -> usize {
        self.encrypted_key.size_bytes(ctx)
    }

    fn rotate(
        &self,
        ctx: &BfvContext,
        ct: &FheCiphertext,
        k: usize,
    ) -> Result<FheCiphertext, FheError> {
        if k == 0 {
            return Ok(ct.clone());
        }
        let key = self
            .rot_keys
            .get(&k)
            .ok_or_else(|| FheError::Incompatible(format!("no rotation key for shift {k}")))?;
        ctx.apply_galois(ct, key)
    }

    /// Mask to lanes `from..range` (indicator plaintext, prepared at
    /// setup for the windows the evaluation uses).
    fn mask(
        &self,
        ctx: &BfvContext,
        ct: &FheCiphertext,
        from: usize,
        range: usize,
    ) -> FheCiphertext {
        if let Some(prep) = self.masks.get(&(from, range)) {
            return ctx.mul_plain_prepared(ct, prep);
        }
        let ones = vec![1u64; range - from];
        let pt = self.layout.encode_lanes(&self.encoder, &ones, from);
        ctx.mul_plain(ct, &pt)
    }

    /// Builds the prepared diagonal material for one packed block: per
    /// layer, the nonzero diagonals of `diag(M_L, M_R)` and the
    /// concatenated round constant, lane-encoded and NTT-prepared. The
    /// `2t`-diagonal fan-out runs on the worker pool.
    fn prepare_packed(&self, ctx: &BfvContext, nonce: u128, counter: u64) -> PackedEntry {
        let t = self.params.t();
        let block = self.cache.block(&self.params, nonce, counter);
        let layers = block
            .material
            .layers
            .iter()
            .zip(block.matrices.iter())
            .map(|(layer, mats)| {
                // Block-diagonal matrix BD = diag(M_L, M_R).
                let bd = |row: usize, col: usize| -> u64 {
                    if row < t && col < t {
                        mats.left.get(row, col)
                    } else if row >= t && col >= t {
                        mats.right.get(row - t, col - t)
                    } else {
                        0
                    }
                };
                let shifts: Vec<usize> = (0..2 * t).collect();
                let diagonals = pasta_par::parallel_map(&shifts, |_, &k| {
                    // diag_k[lane j] = BD[j][(j + k) mod 2t].
                    let diag: Vec<u64> = (0..2 * t).map(|j| bd(j, (j + k) % (2 * t))).collect();
                    if diag.iter().all(|&d| d == 0) {
                        None
                    } else {
                        let pt = self.layout.encode_lanes(&self.encoder, &diag, 0);
                        Some(ctx.prepare_plaintext(&pt))
                    }
                });
                let mut rc = layer.rc_left.clone();
                rc.extend_from_slice(&layer.rc_right);
                let rc = ctx.prepare_plaintext(&self.layout.encode_lanes(&self.encoder, &rc, 0));
                PackedLayer { diagonals, rc }
            })
            .collect();
        PackedEntry { layers }
    }

    /// `state + rot_{-(2t)}(state)`: refresh the duplicate copy at lanes
    /// `2t..4t` (valid only for a masked state).
    fn with_duplicate(
        &self,
        ctx: &BfvContext,
        masked: &FheCiphertext,
    ) -> Result<FheCiphertext, FheError> {
        let neg = self.layout.lanes() - 2 * self.params.t();
        ctx.add(masked, &self.rotate(ctx, masked, neg)?)
    }

    /// Homomorphically computes the keystream of one block, packed into
    /// lanes `0..t` of a single ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates FHE errors.
    #[allow(clippy::too_many_lines)]
    pub fn keystream_packed(
        &self,
        ctx: &BfvContext,
        nonce: u128,
        counter: u64,
    ) -> Result<FheCiphertext, FheError> {
        let t = self.params.t();
        let r = self.params.rounds();
        let key = PackedKey {
            pasta: self.params,
            bfv: *ctx.params(),
            nonce,
            counter,
        };
        let prepared = self
            .cache
            .packed(&key, || self.prepare_packed(ctx, nonce, counter));

        // The provisioned key ciphertext is already masked to lanes 0..2t.
        let mut state = self.encrypted_key.clone();
        for (i, layer) in prepared.layers.iter().enumerate() {
            // Block-diagonal matrix BD = diag(M_L, M_R) evaluated by the
            // diagonal method over a window of 2t lanes, with prepared
            // diagonals and an NTT-domain accumulator (each rotation is
            // converted once, the inverse NTT runs once per layer).
            let dup = self.with_duplicate(ctx, &state)?;
            let mut acc: Option<FheCiphertext> = None;
            for (k, diag) in layer.diagonals.iter().enumerate() {
                let Some(diag) = diag else { continue };
                let mut rotated = self.rotate(ctx, &dup, k)?;
                ctx.to_ntt_ct(&mut rotated);
                match acc.as_mut() {
                    None => acc = Some(ctx.mul_plain_prepared_ntt(&rotated, diag)),
                    Some(a) => ctx.add_mul_plain_ntt_assign(a, &rotated, diag)?,
                }
            }
            let mut acc = acc.ok_or_else(|| {
                // Unreachable for the invertible matrices Eq. 1 generates,
                // but an all-zero layer must not panic the server.
                FheError::Incompatible("affine layer matrix has no nonzero diagonal".into())
            })?;
            ctx.to_coeff_ct(&mut acc);
            ctx.add_plain_prepared_assign(&mut acc, &layer.rc);
            state = acc;
            // state is masked here: every diagonal plaintext is zero
            // outside lanes 0..2t.

            if i < r {
                // Mix: (2L + R, 2R + L) = 2·state + rot_t(dup(state)).
                let dup = self.with_duplicate(ctx, &state)?;
                let swapped = self.rotate(ctx, &dup, t)?;
                let doubled = state.clone();
                ctx.add_assign(&mut state, &doubled)?;
                ctx.add_assign(&mut state, &swapped)?;
                // Mix dragged garbage into lanes >= 2t: re-mask before
                // the shift-dependent S-box.
                state = self.mask(ctx, &state, 0, 2 * t);
                if i < r - 1 {
                    // Feistel: y_j = x_j + x_{j-1}² (y_0 = x_0): shift
                    // the duplicate by 2t - 1 so lane j holds x_{j-1},
                    // square it, mask off lane 0, add.
                    let dup = self.with_duplicate(ctx, &state)?;
                    let shifted = self.rotate(ctx, &dup, 2 * t - 1)?;
                    let squared = ctx.square_relin(&shifted, &self.relin_key)?;
                    let masked_sq = self.mask(ctx, &squared, 1, 2 * t);
                    ctx.add_assign(&mut state, &masked_sq)?;
                } else {
                    // Cube on all lanes (garbage outside 0..2t is
                    // cleared by the next affine layer's diagonals).
                    let sq = ctx.square_relin(&state, &self.relin_key)?;
                    state = ctx.mul_relin(&sq, &state, &self.relin_key)?;
                }
            }
        }
        // Truncation: keep lanes 0..t.
        Ok(self.mask(ctx, &state, 0, t))
    }

    /// Transciphers one PASTA block: returns a single FHE ciphertext
    /// whose lanes `0..len` hold the message elements.
    ///
    /// # Errors
    ///
    /// Propagates FHE errors.
    pub fn transcipher_packed(
        &self,
        ctx: &BfvContext,
        pasta_ct: &PastaCiphertext,
        counter: u64,
    ) -> Result<FheCiphertext, FheError> {
        let t = self.params.t();
        let start = counter as usize * t;
        let block: Vec<u64> = pasta_ct.elements()[start..(start + t).min(pasta_ct.len())].to_vec();
        let ks = self.keystream_packed(ctx, pasta_ct.nonce(), counter)?;
        let mut out = ctx.encrypt_trivial(&self.layout.encode_lanes(&self.encoder, &block, 0));
        ctx.sub_assign(&mut out, &ks)?;
        Ok(out)
    }

    /// Client-side: decode lanes `0..n` of a packed result.
    #[must_use]
    pub fn decode(
        &self,
        ctx: &BfvContext,
        sk: &BfvSecretKey,
        ct: &FheCiphertext,
        n: usize,
    ) -> Vec<u64> {
        let slots = self.encoder.decode(&ctx.decrypt(sk, ct));
        self.layout.decode_lanes(&slots, n)
    }

    /// Rotation-key count (the setup cost this mode trades for its
    /// single-ciphertext states).
    #[must_use]
    pub fn rotation_key_count(&self) -> usize {
        self.rot_keys.len()
    }
}

/// Provisions nothing extra: the packed server carries its own key
/// ciphertext. This helper exists so callers can compare provisioning
/// sizes against the scalar mode's `2t` ciphertexts.
#[must_use]
pub fn scalar_provisioning_size(ctx: &BfvContext, key: &EncryptedPastaKey) -> usize {
    key.size_bytes(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HheClient;
    use pasta_fhe::BfvParams;
    use pasta_math::Modulus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct World {
        ctx: BfvContext,
        sk: BfvSecretKey,
        client: HheClient,
        server: PackedHheServer,
    }

    fn setup() -> World {
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        // Generous modulus: rotations add key-switch noise and the
        // packed S-boxes spend extra plaintext masks.
        let bfv = BfvParams {
            prime_count: 8,
            ..BfvParams::test_tiny()
        };
        let ctx = BfvContext::new(bfv).unwrap();
        let mut rng = StdRng::seed_from_u64(0xACED);
        let sk = ctx.generate_secret_key(&mut rng);
        let client = HheClient::new(params, b"packed");
        let server = PackedHheServer::new(
            params,
            &ctx,
            &sk,
            client.cipher().key().elements(),
            &mut rng,
        )
        .unwrap();
        World {
            ctx,
            sk,
            client,
            server,
        }
    }

    #[test]
    fn lane_layout_walks_one_orbit() {
        let encoder = BatchEncoder::new(Modulus::PASTA_17_BIT, 256).unwrap();
        let layout = LaneLayout::new(&encoder);
        assert!(layout.lanes() >= 16, "orbit of 3 must be large enough");
        // Lanes are distinct slots.
        let mut sorted = layout.order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), layout.lanes());
        // encode/decode round-trip through lanes.
        let values = vec![5u64, 6, 7, 8];
        let pt = layout.encode_lanes(&encoder, &values, 2);
        let decoded = encoder.decode(&pt);
        assert_eq!(layout.decode_lanes(&decoded, 2), vec![0, 0]);
        let got: Vec<u64> = (2..6).map(|j| decoded[layout.order[j]]).collect();
        assert_eq!(got, values);
    }

    #[test]
    fn rotation_is_a_lane_shift() {
        let w = setup();
        let values = vec![10u64, 20, 30, 40, 50, 60, 70, 80];
        let pt = w.server.layout.encode_lanes(&w.server.encoder, &values, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let pk = w.ctx.generate_public_key(&w.sk, &mut rng);
        let ct = w.ctx.encrypt(&pk, &pt, &mut rng);
        let rotated = w.server.rotate(&w.ctx, &ct, 3).unwrap();
        let lanes = w.server.decode(&w.ctx, &w.sk, &rotated, 5);
        // Lane j now holds the old lane j+3.
        assert_eq!(lanes, vec![40, 50, 60, 70, 80]);
    }

    #[test]
    fn packed_keystream_matches_plain() {
        let w = setup();
        let ks = w.server.keystream_packed(&w.ctx, 0xFEED, 0).unwrap();
        let decoded = w.server.decode(&w.ctx, &w.sk, &ks, 4);
        let expect = w.client.cipher().keystream_block(0xFEED, 0).unwrap();
        assert_eq!(
            decoded, expect,
            "packed evaluation must equal the plain keystream"
        );
        let budget = w.ctx.noise_budget(&w.sk, &ks);
        assert!(budget > 5, "noise budget after packed evaluation: {budget}");
    }

    #[test]
    fn packed_transcipher_roundtrip() {
        let w = setup();
        let message = vec![101u64, 202, 303, 404];
        let pasta_ct = w.client.encrypt(0xBEAD, &message).unwrap();
        let fhe_ct = w.server.transcipher_packed(&w.ctx, &pasta_ct, 0).unwrap();
        assert_eq!(w.server.decode(&w.ctx, &w.sk, &fhe_ct, 4), message);
        // The whole block is ONE ciphertext (vs t in scalar mode).
        assert_eq!(fhe_ct.components(), 2);
    }

    #[test]
    fn warm_cache_pass_is_bit_exact() {
        let w = setup();
        let cold = w.server.keystream_packed(&w.ctx, 0xF00D, 0).unwrap();
        let misses_after_cold = w.server.cache().stats().misses;
        let warm = w.server.keystream_packed(&w.ctx, 0xF00D, 0).unwrap();
        assert_eq!(cold, warm, "cached diagonals must be bit-exact");
        let stats = w.server.cache().stats();
        assert_eq!(
            stats.misses, misses_after_cold,
            "warm pass must not re-prepare"
        );
        assert!(stats.hits >= 1, "warm pass must hit the cache");
    }

    #[test]
    fn setup_validates_capacity() {
        // The orbit of 3 in (Z/2N)* has length 2^(log2(2N) - 2) = N/2,
        // so N = 256 gives 128 lanes: t = 64 (needs 4t = 256) must be
        // rejected, while PASTA-4's t = 32 (exactly 128) just fits.
        let bfv = BfvParams {
            prime_count: 4,
            ..BfvParams::test_tiny()
        }; // N = 256
        let ctx = BfvContext::new(bfv).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sk = ctx.generate_secret_key(&mut rng);
        let too_big = PastaParams::custom(64, 4, Modulus::PASTA_17_BIT).unwrap();
        let key = vec![0u64; too_big.state_size()];
        assert!(matches!(
            PackedHheServer::new(too_big, &ctx, &sk, &key, &mut rng),
            Err(FheError::Incompatible(_))
        ));
        // And a key-length mismatch is caught too.
        let ok_params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        assert!(matches!(
            PackedHheServer::new(ok_params, &ctx, &sk, &[1, 2, 3], &mut rng),
            Err(FheError::Incompatible(_))
        ));
    }

    #[test]
    fn rotation_key_budget() {
        let w = setup();
        // shifts 1..2t plus the duplicate refresh = 2t keys.
        assert_eq!(w.server.rotation_key_count(), 2 * 4);
    }
}
