//! Packed transciphering: one PASTA block in a *single* BFV ciphertext,
//! with the affine layers evaluated by the rotation/diagonal method.
//!
//! Where [`crate::batched`] spreads `N` blocks across the slots
//! (throughput), this module packs the `2t` state elements of **one**
//! block into `2t` *lanes* of one ciphertext (latency/minimum ciphertext
//! count — the original PASTA-SEAL evaluation strategy):
//!
//! - lanes are consecutive positions along one orbit of the Galois
//!   element `g = 3` on the batching slots, so `σ_{3^k}` acts as a
//!   cyclic lane shift by `k`;
//! - a matrix–vector product becomes the **diagonal method**:
//!   `M·v = Σ_k diag_k ⊙ rot_k(v)` — `2t` plaintext multiplications per
//!   affine layer (vs `(2t)²` scalar multiplications in scalar mode);
//! - Mix and the Feistel shift are lane rotations against a maintained
//!   *duplicate* copy of the state at lanes `2t..4t`;
//! - the Feistel S-box masks lane 0 with an indicator plaintext; its
//!   squarings ride the full-RNS multiplication of
//!   [`pasta_fhe::rns_mul`] like every server mode.
//!
//! The rotations are where the server time goes, and the default
//! [`PackedStrategy::Bsgs`] evaluation restructures them twice over:
//!
//! - **baby-step/giant-step**: writing `k = g·B + b` with
//!   `B = ⌈√(2t)⌉`, `M·v = Σ_g rot_{gB}(Σ_b E_{g,b} ⊙ rot_b(dup))`
//!   where `E_{g,b}` is diagonal `gB + b` pre-rotated *in plaintext* by
//!   `gB` (prepared once per block in [`MaterialCache`]) — so a layer
//!   needs `B − 1` baby plus `⌈2t/B⌉ − 1` giant rotations, O(√t)
//!   key-switches instead of `2t − 1`;
//! - **hoisting**: the baby rotations all act on the *same* input, so
//!   its key-switch digit decomposition and forward NTTs are computed
//!   once ([`BfvContext::hoist`]) and each baby rotation degenerates to
//!   a slot permutation plus multiply–accumulate
//!   ([`BfvContext::apply_galois_hoisted`]).
//!
//! [`PackedStrategy::Naive`] keeps the one-rotation-per-diagonal path as
//! the reference (and benchmark baseline); both strategies produce
//! ciphertexts that decrypt identically, and each is bit-deterministic
//! for any `PASTA_THREADS` and any cache state.
//!
//! Correctness leans on one invariant: after every affine layer the
//! state is **masked** (zero outside lanes `0..2t`), so the garbage that
//! rotations drag in from other lanes/orbits is always cleared before it
//! can reach the output. The BSGS regrouping preserves it: `E_{g,b}` is
//! zero outside lanes `gB..gB+2t`, so each group's term is zero outside
//! lanes `0..2t` after its giant rotation.

use crate::cache::{
    BsgsGroup, MaterialCache, PackedAffine, PackedEntry, PackedKey, PackedLayer, PackedStrategy,
};
use crate::client::EncryptedPastaKey;
use pasta_core::{Ciphertext as PastaCiphertext, PastaParams};
use pasta_fhe::{
    BatchEncoder, BfvContext, BfvGaloisKey, BfvRelinKey, BfvSecretKey, Ciphertext as FheCiphertext,
    FheError, Plaintext, PreparedPlaintext,
};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The lane coordinate system: consecutive positions along the orbit of
/// slot 0 under `σ_3`.
#[derive(Debug, Clone)]
pub struct LaneLayout {
    /// `order[j]` = slot index of lane `j`.
    order: Vec<usize>,
    orbit_len: usize,
}

impl LaneLayout {
    /// Builds the layout from the encoder's `σ_3` slot permutation.
    #[must_use]
    pub fn new(encoder: &BatchEncoder) -> Self {
        let pi = encoder.automorphism_permutation(3);
        let mut order = vec![0usize];
        let mut pos = pi[0];
        while pos != 0 {
            order.push(pos);
            pos = pi[pos];
        }
        let orbit_len = order.len();
        LaneLayout { order, orbit_len }
    }

    /// Number of usable lanes (the orbit length).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.orbit_len
    }

    /// Encodes values into lanes `offset..offset+values.len()`
    /// (all other slots zero).
    ///
    /// # Panics
    ///
    /// Panics if the values run past the orbit.
    #[must_use]
    pub fn encode_lanes(&self, encoder: &BatchEncoder, values: &[u64], offset: usize) -> Plaintext {
        assert!(
            offset + values.len() <= self.orbit_len,
            "values exceed the lane orbit"
        );
        let mut slots = vec![0u64; encoder.slots()];
        for (j, &v) in values.iter().enumerate() {
            slots[self.order[offset + j]] = v;
        }
        encoder.encode(&slots)
    }

    /// Reads lanes `0..n` out of decoded slot values.
    #[must_use]
    pub fn decode_lanes(&self, slots: &[u64], n: usize) -> Vec<u64> {
        (0..n).map(|j| slots[self.order[j]]).collect()
    }
}

/// A transciphering server evaluating one block per ciphertext via
/// rotations.
#[derive(Debug)]
pub struct PackedHheServer {
    params: PastaParams,
    strategy: PackedStrategy,
    relin_key: BfvRelinKey,
    rot_keys: HashMap<usize, BfvGaloisKey>,
    encrypted_key: FheCiphertext,
    layout: LaneLayout,
    encoder: BatchEncoder,
    /// Indicator plaintexts for the fixed mask windows the evaluation
    /// uses, NTT-prepared once at setup.
    masks: HashMap<(usize, usize), PreparedPlaintext>,
    cache: Arc<MaterialCache>,
    /// Key-switches performed since construction (or the last
    /// [`PackedHheServer::reset_key_switch_count`]) — every
    /// [`BfvContext::apply_galois`] / hoisted rotation counts one.
    key_switches: AtomicU64,
}

/// The baby-step/giant-step split of a `2t`-diagonal matrix–vector
/// product: diagonal `k = g·B + b` with `b < B` (baby, hoisted) and
/// `g < G` (giant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BsgsPlan {
    /// Diagonal count `2t`.
    pub width: usize,
    /// Baby-step count `B = ⌈√(2t)⌉`.
    pub baby: usize,
    /// Giant-step count `G = ⌈2t / B⌉`.
    pub giant: usize,
}

impl BsgsPlan {
    /// The plan for block size `t`.
    ///
    /// # Panics
    ///
    /// Panics for `t = 0`.
    #[must_use]
    pub fn new(t: usize) -> Self {
        assert!(t > 0, "block size must be positive");
        let width = 2 * t;
        let mut baby = 1usize;
        while baby * baby < width {
            baby += 1;
        }
        BsgsPlan {
            width,
            baby,
            giant: width.div_ceil(baby),
        }
    }

    /// Worst-case key-switch count per affine layer under this plan:
    /// `B − 1` hoisted baby rotations plus `G − 1` giant rotations
    /// (rotation 0 of each kind is free).
    #[must_use]
    pub fn key_switches_per_layer(&self) -> usize {
        (self.baby - 1) + (self.giant - 1)
    }
}

/// The lane shifts (realized as Galois elements `3^k mod 2N`) the packed
/// evaluation needs for block size `t` on an orbit of `orbit_len` lanes.
///
/// Every strategy needs the Mix shift `t`, the Feistel shift `2t − 1`
/// and the duplicate-refresh shift `orbit_len − 2t`. On top of those,
/// [`PackedStrategy::Naive`] needs every diagonal shift `1..2t`, while
/// [`PackedStrategy::Bsgs`] needs only the baby shifts `1..B` and the
/// giant shifts `{g·B : 0 < g < G}` — the provisioned rotation-key set
/// shrinks from `2t` keys to O(√t).
#[must_use]
pub fn required_shifts(t: usize, orbit_len: usize, strategy: PackedStrategy) -> Vec<usize> {
    let mut shifts: Vec<usize> = match strategy {
        PackedStrategy::Naive => (1..2 * t).collect(),
        PackedStrategy::Bsgs => {
            let plan = BsgsPlan::new(t);
            (1..plan.baby.min(plan.width))
                .chain((1..plan.giant).map(|g| g * plan.baby))
                .chain([t, 2 * t - 1])
                .collect()
        }
    };
    shifts.push(orbit_len - 2 * t);
    shifts.sort_unstable();
    shifts.dedup();
    shifts
}

impl PackedHheServer {
    /// Sets up the packed server with the default (BSGS) evaluation
    /// strategy: provisions the packed key ciphertext and generates the
    /// O(√t) rotation key set.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if `4t` exceeds the lane orbit
    /// (the duplicate would not fit), or propagates key errors.
    pub fn new<R: rand::Rng>(
        params: PastaParams,
        ctx: &BfvContext,
        fhe_sk: &BfvSecretKey,
        key_elements: &[u64],
        rng: &mut R,
    ) -> Result<Self, FheError> {
        Self::new_with_strategy(
            params,
            ctx,
            fhe_sk,
            key_elements,
            PackedStrategy::default(),
            rng,
        )
    }

    /// Sets up the packed server with an explicit affine-layer
    /// evaluation strategy. The rotation-key set provisioned here is
    /// exactly [`required_shifts`] for that strategy, so a
    /// [`PackedStrategy::Naive`] server carries `2t` keys where a
    /// [`PackedStrategy::Bsgs`] one carries O(√t).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if `4t` exceeds the lane orbit
    /// (the duplicate would not fit), or propagates key errors.
    pub fn new_with_strategy<R: rand::Rng>(
        params: PastaParams,
        ctx: &BfvContext,
        fhe_sk: &BfvSecretKey,
        key_elements: &[u64],
        strategy: PackedStrategy,
        rng: &mut R,
    ) -> Result<Self, FheError> {
        let encoder = BatchEncoder::new(ctx.params().plain_modulus, ctx.params().n)
            .map_err(FheError::from)?;
        let layout = LaneLayout::new(&encoder);
        let t = params.t();
        if 4 * t > layout.lanes() {
            return Err(FheError::Incompatible(format!(
                "state 2t = {} needs 4t lanes but the orbit has only {}",
                2 * t,
                layout.lanes()
            )));
        }
        if key_elements.len() != params.state_size() {
            return Err(FheError::Incompatible("key length mismatch".into()));
        }
        let relin_key = ctx.generate_relin_key(fhe_sk, rng);
        let pk = ctx.generate_public_key(fhe_sk, rng);
        let packed = layout.encode_lanes(&encoder, key_elements, 0);
        let encrypted_key = ctx.encrypt(&pk, &packed, rng);
        let two_n = 2 * ctx.params().n;
        let mut rot_keys = HashMap::new();
        for k in required_shifts(t, layout.lanes(), strategy) {
            let mut g = 1usize;
            for _ in 0..k {
                g = (g * 3) % two_n;
            }
            rot_keys.insert(k, ctx.generate_galois_key(fhe_sk, g, rng)?);
        }
        // The evaluation masks only ever these three windows; prepare
        // their indicator plaintexts once.
        let mut masks = HashMap::new();
        for (from, range) in [(0, 2 * t), (1, 2 * t), (0, t)] {
            let ones = vec![1u64; range - from];
            let pt = layout.encode_lanes(&encoder, &ones, from);
            masks.insert((from, range), ctx.prepare_plaintext(&pt));
        }
        Ok(PackedHheServer {
            params,
            strategy,
            relin_key,
            rot_keys,
            encrypted_key,
            layout,
            encoder,
            masks,
            cache: Arc::new(MaterialCache::new()),
            key_switches: AtomicU64::new(0),
        })
    }

    /// Replaces the material cache (e.g. with one shared by several
    /// servers or server modes).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<MaterialCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The material cache in use (shareable via [`Arc::clone`]).
    #[must_use]
    pub fn cache(&self) -> &Arc<MaterialCache> {
        &self.cache
    }

    /// The packed, FHE-encrypted key as shipped by the client (exposed
    /// for size accounting: it is ONE ciphertext, vs `2t` in scalar
    /// mode).
    #[must_use]
    pub fn encrypted_key_size_bytes(&self, ctx: &BfvContext) -> usize {
        self.encrypted_key.size_bytes(ctx)
    }

    fn rot_key(&self, k: usize) -> Result<&BfvGaloisKey, FheError> {
        self.rot_keys
            .get(&k)
            .ok_or_else(|| FheError::Incompatible(format!("no rotation key for shift {k}")))
    }

    /// Lane rotation by `k`. The identity rotation is free: it returns a
    /// borrowed handle instead of cloning the `2·k·N` residue words of
    /// the ciphertext, so `rot_0` call sites cost nothing.
    fn rotate<'a>(
        &self,
        ctx: &BfvContext,
        ct: &'a FheCiphertext,
        k: usize,
    ) -> Result<Cow<'a, FheCiphertext>, FheError> {
        if k == 0 {
            return Ok(Cow::Borrowed(ct));
        }
        self.key_switches.fetch_add(1, Ordering::Relaxed);
        ctx.apply_galois(ct, self.rot_key(k)?).map(Cow::Owned)
    }

    /// Key-switches (classic and hoisted rotations) performed since
    /// construction or the last [`PackedHheServer::reset_key_switch_count`].
    #[must_use]
    pub fn key_switch_count(&self) -> u64 {
        self.key_switches.load(Ordering::Relaxed)
    }

    /// Resets the key-switch counter (instrumentation for tests and
    /// benches).
    pub fn reset_key_switch_count(&self) {
        self.key_switches.store(0, Ordering::Relaxed);
    }

    /// The affine-layer evaluation strategy this server was provisioned
    /// for.
    #[must_use]
    pub fn strategy(&self) -> PackedStrategy {
        self.strategy
    }

    /// Mask to lanes `from..range` (indicator plaintext, prepared at
    /// setup for the windows the evaluation uses).
    fn mask(
        &self,
        ctx: &BfvContext,
        ct: &FheCiphertext,
        from: usize,
        range: usize,
    ) -> FheCiphertext {
        if let Some(prep) = self.masks.get(&(from, range)) {
            return ctx.mul_plain_prepared(ct, prep);
        }
        let ones = vec![1u64; range - from];
        let pt = self.layout.encode_lanes(&self.encoder, &ones, from);
        ctx.mul_plain(ct, &pt)
    }

    /// Prepares the diagonal operands of one affine layer for the given
    /// strategy. `bd(row, col)` is the `2t × 2t` layer matrix.
    ///
    /// Diagonal `k` is `diag_k[j] = bd(j, (j + k) mod 2t)`. The naive
    /// shape encodes each at lane offset 0; the BSGS shape encodes
    /// diagonal `k = g·B + b` at lane offset `g·B` — the plaintext
    /// pre-rotation that lets one giant rotation serve the whole group.
    /// The per-diagonal fan-out runs on the worker pool.
    fn prepare_affine(
        &self,
        ctx: &BfvContext,
        bd: &(dyn Fn(usize, usize) -> u64 + Sync),
        strategy: PackedStrategy,
    ) -> PackedAffine {
        let width = 2 * self.params.t();
        let diag_values =
            |k: usize| -> Vec<u64> { (0..width).map(|j| bd(j, (j + k) % width)).collect() };
        let prepare = |diag: &[u64], offset: usize| -> Option<PreparedPlaintext> {
            if diag.iter().all(|&d| d == 0) {
                None
            } else {
                let pt = self.layout.encode_lanes(&self.encoder, diag, offset);
                Some(ctx.prepare_plaintext(&pt))
            }
        };
        match strategy {
            PackedStrategy::Naive => {
                let shifts: Vec<usize> = (0..width).collect();
                PackedAffine::Naive(pasta_par::parallel_map(&shifts, |_, &k| {
                    prepare(&diag_values(k), 0)
                }))
            }
            PackedStrategy::Bsgs => {
                let plan = BsgsPlan::new(self.params.t());
                let giants: Vec<usize> = (0..plan.giant).collect();
                let groups = pasta_par::parallel_map(&giants, |_, &g| {
                    let shift = g * plan.baby;
                    let diagonals = (0..plan.baby)
                        .map(|b| {
                            let k = shift + b;
                            if k >= width {
                                None
                            } else {
                                prepare(&diag_values(k), shift)
                            }
                        })
                        .collect();
                    BsgsGroup { shift, diagonals }
                });
                PackedAffine::Bsgs {
                    baby_count: plan.baby,
                    groups,
                }
            }
        }
    }

    /// Builds the prepared diagonal material for one packed block: per
    /// layer, the (strategy-shaped) diagonals of `diag(M_L, M_R)` and
    /// the concatenated round constant, lane-encoded and NTT-prepared.
    fn prepare_packed(&self, ctx: &BfvContext, nonce: u128, counter: u64) -> PackedEntry {
        let t = self.params.t();
        let block = self.cache.block(&self.params, nonce, counter);
        let layers = block
            .material
            .layers
            .iter()
            .zip(block.matrices.iter())
            .map(|(layer, mats)| {
                // Block-diagonal matrix BD = diag(M_L, M_R).
                let bd = |row: usize, col: usize| -> u64 {
                    if row < t && col < t {
                        mats.left.get(row, col)
                    } else if row >= t && col >= t {
                        mats.right.get(row - t, col - t)
                    } else {
                        0
                    }
                };
                let affine = self.prepare_affine(ctx, &bd, self.strategy);
                let mut rc = layer.rc_left.clone();
                rc.extend_from_slice(&layer.rc_right);
                let rc = ctx.prepare_plaintext(&self.layout.encode_lanes(&self.encoder, &rc, 0));
                PackedLayer { affine, rc }
            })
            .collect();
        PackedEntry { layers }
    }

    /// Evaluates one affine layer the pre-BSGS way: one key-switch per
    /// nonzero diagonal. Returns the coefficient-domain accumulator, or
    /// `None` if every diagonal was zero.
    fn eval_affine_naive(
        &self,
        ctx: &BfvContext,
        diagonals: &[Option<PreparedPlaintext>],
        dup: &FheCiphertext,
    ) -> Result<Option<FheCiphertext>, FheError> {
        let mut acc: Option<FheCiphertext> = None;
        for (k, diag) in diagonals.iter().enumerate() {
            let Some(diag) = diag else { continue };
            let mut rotated = self.rotate(ctx, dup, k)?.into_owned();
            ctx.to_ntt_ct(&mut rotated);
            match acc.as_mut() {
                None => acc = Some(ctx.mul_plain_prepared_ntt(&rotated, diag)),
                Some(a) => ctx.add_mul_plain_ntt_assign(a, &rotated, diag)?,
            }
        }
        if let Some(a) = acc.as_mut() {
            ctx.to_coeff_ct(a);
        }
        Ok(acc)
    }

    /// Evaluates one affine layer by hoisted baby-step/giant-step:
    ///
    /// 1. hoist `dup` once (one digit decomposition + forward NTTs);
    /// 2. produce the `B` baby rotations from it (fanned over the worker
    ///    pool; each is a slot permutation + multiply–accumulate);
    /// 3. per giant group, multiply–accumulate the pre-rotated diagonal
    ///    plaintexts against the babies and apply one giant rotation
    ///    (groups fanned over the worker pool);
    /// 4. sum the group terms serially in ascending group order, so the
    ///    result is bit-identical for any `PASTA_THREADS`.
    fn eval_affine_bsgs(
        &self,
        ctx: &BfvContext,
        baby_count: usize,
        groups: &[BsgsGroup],
        dup: &FheCiphertext,
    ) -> Result<Option<FheCiphertext>, FheError> {
        // A baby rotation is only worth computing if some group uses it.
        let needed: Vec<bool> = (0..baby_count)
            .map(|b| groups.iter().any(|grp| grp.diagonals[b].is_some()))
            .collect();
        let hoisted = ctx.hoist(dup)?;
        let baby_shifts: Vec<usize> = (0..baby_count).collect();
        let babies: Vec<Option<FheCiphertext>> =
            pasta_par::parallel_map(&baby_shifts, |_, &b| -> Result<_, FheError> {
                if !needed[b] {
                    return Ok(None);
                }
                if b == 0 {
                    let mut ct = dup.clone();
                    ctx.to_ntt_ct(&mut ct);
                    return Ok(Some(ct));
                }
                self.key_switches.fetch_add(1, Ordering::Relaxed);
                ctx.apply_galois_hoisted(&hoisted, self.rot_key(b)?)
                    .map(Some)
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        let terms: Vec<Option<FheCiphertext>> =
            pasta_par::parallel_map(groups, |_, grp| -> Result<_, FheError> {
                let mut acc: Option<FheCiphertext> = None;
                for (b, diag) in grp.diagonals.iter().enumerate() {
                    let Some(diag) = diag else { continue };
                    let baby = babies[b].as_ref().ok_or_else(|| {
                        FheError::Incompatible(
                            "BSGS baby rotation missing for a used diagonal".into(),
                        )
                    })?;
                    match acc.as_mut() {
                        None => acc = Some(ctx.mul_plain_prepared_ntt(baby, diag)),
                        Some(a) => ctx.add_mul_plain_ntt_assign(a, baby, diag)?,
                    }
                }
                let Some(mut acc) = acc else { return Ok(None) };
                ctx.to_coeff_ct(&mut acc);
                if grp.shift != 0 {
                    acc = self.rotate(ctx, &acc, grp.shift)?.into_owned();
                }
                Ok(Some(acc))
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        let mut total: Option<FheCiphertext> = None;
        for term in terms.into_iter().flatten() {
            total = Some(match total {
                None => term,
                Some(acc) => ctx.add(&acc, &term)?,
            });
        }
        Ok(total)
    }

    /// `state + rot_{-(2t)}(state)`: refresh the duplicate copy at lanes
    /// `2t..4t` (valid only for a masked state).
    fn with_duplicate(
        &self,
        ctx: &BfvContext,
        masked: &FheCiphertext,
    ) -> Result<FheCiphertext, FheError> {
        let neg = self.layout.lanes() - 2 * self.params.t();
        ctx.add(masked, self.rotate(ctx, masked, neg)?.as_ref())
    }

    /// Homomorphically computes the keystream of one block, packed into
    /// lanes `0..t` of a single ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates FHE errors.
    #[allow(clippy::too_many_lines)]
    pub fn keystream_packed(
        &self,
        ctx: &BfvContext,
        nonce: u128,
        counter: u64,
    ) -> Result<FheCiphertext, FheError> {
        let t = self.params.t();
        let r = self.params.rounds();
        let key = PackedKey {
            pasta: self.params,
            bfv: *ctx.params(),
            nonce,
            counter,
            strategy: self.strategy,
        };
        let prepared = self
            .cache
            .packed(&key, || self.prepare_packed(ctx, nonce, counter));

        // The provisioned key ciphertext is already masked to lanes 0..2t.
        let mut state = self.encrypted_key.clone();
        for (i, layer) in prepared.layers.iter().enumerate() {
            // Block-diagonal matrix BD = diag(M_L, M_R) evaluated by the
            // diagonal method over a window of 2t lanes (naive
            // per-diagonal rotations, or hoisted BSGS — see module docs).
            let dup = self.with_duplicate(ctx, &state)?;
            let acc = match &layer.affine {
                PackedAffine::Naive(diagonals) => self.eval_affine_naive(ctx, diagonals, &dup)?,
                PackedAffine::Bsgs { baby_count, groups } => {
                    self.eval_affine_bsgs(ctx, *baby_count, groups, &dup)?
                }
            };
            let mut acc = acc.ok_or_else(|| {
                // Unreachable for the invertible matrices Eq. 1 generates,
                // but an all-zero layer must not panic the server.
                FheError::Incompatible("affine layer matrix has no nonzero diagonal".into())
            })?;
            ctx.add_plain_prepared_assign(&mut acc, &layer.rc);
            state = acc;
            // state is masked here: every diagonal plaintext is zero
            // outside lanes 0..2t.

            if i < r {
                // Mix: (2L + R, 2R + L) = 2·state + rot_t(dup(state)).
                let dup = self.with_duplicate(ctx, &state)?;
                let swapped = self.rotate(ctx, &dup, t)?;
                let doubled = state.clone();
                ctx.add_assign(&mut state, &doubled)?;
                ctx.add_assign(&mut state, &swapped)?;
                // Mix dragged garbage into lanes >= 2t: re-mask before
                // the shift-dependent S-box.
                state = self.mask(ctx, &state, 0, 2 * t);
                if i < r - 1 {
                    // Feistel: y_j = x_j + x_{j-1}² (y_0 = x_0): shift
                    // the duplicate by 2t - 1 so lane j holds x_{j-1},
                    // square it, mask off lane 0, add.
                    let dup = self.with_duplicate(ctx, &state)?;
                    let shifted = self.rotate(ctx, &dup, 2 * t - 1)?;
                    let squared = ctx.square_relin(&shifted, &self.relin_key)?;
                    let masked_sq = self.mask(ctx, &squared, 1, 2 * t);
                    ctx.add_assign(&mut state, &masked_sq)?;
                } else {
                    // Cube on all lanes (garbage outside 0..2t is
                    // cleared by the next affine layer's diagonals).
                    let sq = ctx.square_relin(&state, &self.relin_key)?;
                    state = ctx.mul_relin(&sq, &state, &self.relin_key)?;
                }
            }
        }
        // Truncation: keep lanes 0..t.
        Ok(self.mask(ctx, &state, 0, t))
    }

    /// Transciphers one PASTA block: returns a single FHE ciphertext
    /// whose lanes `0..len` hold the message elements.
    ///
    /// # Errors
    ///
    /// Propagates FHE errors.
    pub fn transcipher_packed(
        &self,
        ctx: &BfvContext,
        pasta_ct: &PastaCiphertext,
        counter: u64,
    ) -> Result<FheCiphertext, FheError> {
        let t = self.params.t();
        let start = counter as usize * t;
        let block: Vec<u64> = pasta_ct.elements()[start..(start + t).min(pasta_ct.len())].to_vec();
        let ks = self.keystream_packed(ctx, pasta_ct.nonce(), counter)?;
        let mut out = ctx.encrypt_trivial(&self.layout.encode_lanes(&self.encoder, &block, 0));
        ctx.sub_assign(&mut out, &ks)?;
        Ok(out)
    }

    /// Client-side: decode lanes `0..n` of a packed result.
    #[must_use]
    pub fn decode(
        &self,
        ctx: &BfvContext,
        sk: &BfvSecretKey,
        ct: &FheCiphertext,
        n: usize,
    ) -> Vec<u64> {
        let slots = self.encoder.decode(&ctx.decrypt(sk, ct));
        self.layout.decode_lanes(&slots, n)
    }

    /// Rotation-key count (the setup cost this mode trades for its
    /// single-ciphertext states).
    #[must_use]
    pub fn rotation_key_count(&self) -> usize {
        self.rot_keys.len()
    }
}

/// Provisions nothing extra: the packed server carries its own key
/// ciphertext. This helper exists so callers can compare provisioning
/// sizes against the scalar mode's `2t` ciphertexts.
#[must_use]
pub fn scalar_provisioning_size(ctx: &BfvContext, key: &EncryptedPastaKey) -> usize {
    key.size_bytes(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HheClient;
    use pasta_fhe::BfvParams;
    use pasta_math::Modulus;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct World {
        ctx: BfvContext,
        sk: BfvSecretKey,
        client: HheClient,
        server: PackedHheServer,
    }

    fn setup() -> World {
        setup_with_strategy(PackedStrategy::default())
    }

    fn setup_with_strategy(strategy: PackedStrategy) -> World {
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        // Generous modulus: rotations add key-switch noise and the
        // packed S-boxes spend extra plaintext masks.
        let bfv = BfvParams {
            prime_count: 8,
            ..BfvParams::test_tiny()
        };
        let ctx = BfvContext::new(bfv).unwrap();
        let mut rng = StdRng::seed_from_u64(0xACED);
        let sk = ctx.generate_secret_key(&mut rng);
        let client = HheClient::new(params, b"packed");
        let server = PackedHheServer::new_with_strategy(
            params,
            &ctx,
            &sk,
            client.cipher().key().expose_elements(),
            strategy,
            &mut rng,
        )
        .unwrap();
        World {
            ctx,
            sk,
            client,
            server,
        }
    }

    #[test]
    fn lane_layout_walks_one_orbit() {
        let encoder = BatchEncoder::new(Modulus::PASTA_17_BIT, 256).unwrap();
        let layout = LaneLayout::new(&encoder);
        assert!(layout.lanes() >= 16, "orbit of 3 must be large enough");
        // Lanes are distinct slots.
        let mut sorted = layout.order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), layout.lanes());
        // encode/decode round-trip through lanes.
        let values = vec![5u64, 6, 7, 8];
        let pt = layout.encode_lanes(&encoder, &values, 2);
        let decoded = encoder.decode(&pt);
        assert_eq!(layout.decode_lanes(&decoded, 2), vec![0, 0]);
        let got: Vec<u64> = (2..6).map(|j| decoded[layout.order[j]]).collect();
        assert_eq!(got, values);
    }

    #[test]
    fn rotation_is_a_lane_shift() {
        let w = setup();
        let values = vec![10u64, 20, 30, 40, 50, 60, 70, 80];
        let pt = w.server.layout.encode_lanes(&w.server.encoder, &values, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let pk = w.ctx.generate_public_key(&w.sk, &mut rng);
        let ct = w.ctx.encrypt(&pk, &pt, &mut rng);
        let rotated = w.server.rotate(&w.ctx, &ct, 3).unwrap();
        let lanes = w.server.decode(&w.ctx, &w.sk, &rotated, 5);
        // Lane j now holds the old lane j+3.
        assert_eq!(lanes, vec![40, 50, 60, 70, 80]);
    }

    #[test]
    fn packed_keystream_matches_plain() {
        let w = setup();
        let ks = w.server.keystream_packed(&w.ctx, 0xFEED, 0).unwrap();
        let decoded = w.server.decode(&w.ctx, &w.sk, &ks, 4);
        let expect = w.client.cipher().keystream_block(0xFEED, 0).unwrap();
        assert_eq!(
            decoded, expect,
            "packed evaluation must equal the plain keystream"
        );
        let budget = w.ctx.noise_budget(&w.sk, &ks);
        assert!(budget > 5, "noise budget after packed evaluation: {budget}");
    }

    #[test]
    fn packed_transcipher_roundtrip() {
        let w = setup();
        let message = vec![101u64, 202, 303, 404];
        let pasta_ct = w.client.encrypt(0xBEAD, &message).unwrap();
        let fhe_ct = w.server.transcipher_packed(&w.ctx, &pasta_ct, 0).unwrap();
        assert_eq!(w.server.decode(&w.ctx, &w.sk, &fhe_ct, 4), message);
        // The whole block is ONE ciphertext (vs t in scalar mode).
        assert_eq!(fhe_ct.components(), 2);
    }

    #[test]
    fn warm_cache_pass_is_bit_exact() {
        let w = setup();
        let cold = w.server.keystream_packed(&w.ctx, 0xF00D, 0).unwrap();
        let misses_after_cold = w.server.cache().stats().misses;
        let warm = w.server.keystream_packed(&w.ctx, 0xF00D, 0).unwrap();
        assert_eq!(cold, warm, "cached diagonals must be bit-exact");
        let stats = w.server.cache().stats();
        assert_eq!(
            stats.misses, misses_after_cold,
            "warm pass must not re-prepare"
        );
        assert!(stats.hits >= 1, "warm pass must hit the cache");
    }

    #[test]
    fn setup_validates_capacity() {
        // The orbit of 3 in (Z/2N)* has length 2^(log2(2N) - 2) = N/2,
        // so N = 256 gives 128 lanes: t = 64 (needs 4t = 256) must be
        // rejected, while PASTA-4's t = 32 (exactly 128) just fits.
        let bfv = BfvParams {
            prime_count: 4,
            ..BfvParams::test_tiny()
        }; // N = 256
        let ctx = BfvContext::new(bfv).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sk = ctx.generate_secret_key(&mut rng);
        let too_big = PastaParams::custom(64, 4, Modulus::PASTA_17_BIT).unwrap();
        let key = vec![0u64; too_big.state_size()];
        assert!(matches!(
            PackedHheServer::new(too_big, &ctx, &sk, &key, &mut rng),
            Err(FheError::Incompatible(_))
        ));
        // And a key-length mismatch is caught too.
        let ok_params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        assert!(matches!(
            PackedHheServer::new(ok_params, &ctx, &sk, &[1, 2, 3], &mut rng),
            Err(FheError::Incompatible(_))
        ));
    }

    #[test]
    fn rotation_key_budget() {
        // BSGS at t = 4 (orbit 128): babies {1, 2}, giants {3, 6}, Mix 4,
        // Feistel 7, duplicate refresh 120 — 7 keys.
        let bsgs = setup();
        assert_eq!(bsgs.server.strategy(), PackedStrategy::Bsgs);
        assert_eq!(bsgs.server.rotation_key_count(), 7);
        // Naive needs every diagonal shift 1..2t plus the refresh = 2t.
        let naive = setup_with_strategy(PackedStrategy::Naive);
        assert_eq!(naive.server.rotation_key_count(), 2 * 4);
    }

    #[test]
    fn bsgs_plan_is_square_root_sized() {
        let p = BsgsPlan::new(4); // width 8
        assert_eq!((p.baby, p.giant), (3, 3));
        assert_eq!(p.key_switches_per_layer(), 4);
        // The paper's PASTA-3 parameter set: t = 128, width 256.
        let p = BsgsPlan::new(128);
        assert_eq!((p.baby, p.giant), (16, 16));
        assert_eq!(p.key_switches_per_layer(), 30); // vs 2t - 1 = 255
                                                    // Every diagonal k < width is reachable as g·B + b.
        for t in [1usize, 2, 3, 4, 7, 32, 100, 128] {
            let p = BsgsPlan::new(t);
            assert!(p.baby * p.giant >= p.width);
            assert!((p.giant - 1) * p.baby < p.width, "empty trailing group");
        }
    }

    #[test]
    fn required_shifts_shrink_under_bsgs() {
        // t = 128 on the N = 1024 orbit (512 lanes): 15 babies + 15
        // giants (128 = 8·16 is already a giant) + Feistel 255 + refresh
        // 256 = 32 keys, vs 256 for the naive strategy.
        let bsgs = required_shifts(128, 512, PackedStrategy::Bsgs);
        let naive = required_shifts(128, 512, PackedStrategy::Naive);
        assert_eq!(bsgs.len(), 32);
        assert_eq!(naive.len(), 256);
        // Everything BSGS needs beyond the shared shifts is O(√t).
        assert!(bsgs.iter().all(|s| naive.contains(s) || *s == 512 - 256));
    }

    /// Evaluates `M·v` through both affine strategies and checks each
    /// against the plaintext product; returns the key-switch counts.
    fn matvec_both_ways(w: &World, m: &[Vec<u64>], v: &[u64]) -> (u64, u64) {
        let zp = pasta_math::Zp::new(Modulus::PASTA_17_BIT).unwrap();
        let width = m.len();
        let expect: Vec<u64> = (0..width)
            .map(|r| (0..width).fold(0u64, |acc, c| zp.add(acc, zp.mul(m[r][c], v[c]))))
            .collect();
        let mut rng = StdRng::seed_from_u64(0x1157);
        let pk = w.ctx.generate_public_key(&w.sk, &mut rng);
        let pt = w.server.layout.encode_lanes(&w.server.encoder, v, 0);
        let ct = w.ctx.encrypt(&pk, &pt, &mut rng);
        let dup = w.server.with_duplicate(&w.ctx, &ct).unwrap();
        let bd = |r: usize, c: usize| m[r][c];

        let naive_m = w.server.prepare_affine(&w.ctx, &bd, PackedStrategy::Naive);
        let bsgs_m = w.server.prepare_affine(&w.ctx, &bd, PackedStrategy::Bsgs);

        w.server.reset_key_switch_count();
        let PackedAffine::Naive(diags) = &naive_m else {
            panic!("naive material shape")
        };
        let got = w
            .server
            .eval_affine_naive(&w.ctx, diags, &dup)
            .unwrap()
            .unwrap();
        let naive_switches = w.server.key_switch_count();
        assert_eq!(
            w.server.decode(&w.ctx, &w.sk, &got, width),
            expect,
            "naive diagonal loop disagrees with the plaintext product"
        );

        w.server.reset_key_switch_count();
        let PackedAffine::Bsgs { baby_count, groups } = &bsgs_m else {
            panic!("bsgs material shape")
        };
        let got = w
            .server
            .eval_affine_bsgs(&w.ctx, *baby_count, groups, &dup)
            .unwrap()
            .unwrap();
        let bsgs_switches = w.server.key_switch_count();
        assert_eq!(
            w.server.decode(&w.ctx, &w.sk, &got, width),
            expect,
            "BSGS evaluation disagrees with the plaintext product"
        );
        w.server.reset_key_switch_count();
        (naive_switches, bsgs_switches)
    }

    #[test]
    fn bsgs_matmul_matches_naive_with_sqrt_key_switches() {
        // A naive server's key set (shifts 1..2t) is a superset of what
        // BSGS needs at t = 4 (babies {1, 2}, giants {3, 6}), so one
        // server can drive both paths.
        let w = setup_with_strategy(PackedStrategy::Naive);
        let width = 2 * w.server.params.t();
        let mut rng = StdRng::seed_from_u64(0xB59);
        let m: Vec<Vec<u64>> = (0..width)
            .map(|_| (0..width).map(|_| rng.gen_range(1..65_537u64)).collect())
            .collect();
        let v: Vec<u64> = (0..width).map(|_| rng.gen_range(0..65_537u64)).collect();
        let (naive_switches, bsgs_switches) = matvec_both_ways(&w, &m, &v);
        // Dense matrix: the naive loop key-switches once per diagonal
        // k = 1..2t, the BSGS path (B - 1) + (G - 1) times.
        assert_eq!(naive_switches, (width - 1) as u64);
        let plan = BsgsPlan::new(w.server.params.t());
        assert_eq!(bsgs_switches, plan.key_switches_per_layer() as u64);
        assert!(bsgs_switches < naive_switches);
    }

    #[test]
    fn bsgs_and_naive_keystreams_agree() {
        let bsgs = setup();
        let naive = setup_with_strategy(PackedStrategy::Naive);
        let expect = bsgs.client.cipher().keystream_block(0xC0DE, 0).unwrap();

        bsgs.server.reset_key_switch_count();
        let ks_b = bsgs.server.keystream_packed(&bsgs.ctx, 0xC0DE, 0).unwrap();
        let bsgs_switches = bsgs.server.key_switch_count();
        assert_eq!(bsgs.server.decode(&bsgs.ctx, &bsgs.sk, &ks_b, 4), expect);

        naive.server.reset_key_switch_count();
        let ks_n = naive
            .server
            .keystream_packed(&naive.ctx, 0xC0DE, 0)
            .unwrap();
        let naive_switches = naive.server.key_switch_count();
        assert_eq!(naive.server.decode(&naive.ctx, &naive.sk, &ks_n, 4), expect);

        // t = 4, r = 2: three affine layers (each with one
        // duplicate-refresh rotation), two Mix (refresh + shift) and one
        // Feistel (refresh + shift). The block-diagonal layer matrix has
        // diag_t ≡ 0, so the naive loop spends 2t - 2 = 6 switches per
        // layer and BSGS (B - 1) + (G - 1) = 4.
        assert_eq!(naive_switches, 3 * (6 + 1) + 2 * 2 + 2);
        assert_eq!(bsgs_switches, 3 * (4 + 1) + 2 * 2 + 2);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// BSGS and naive agree with the plaintext `M·v` on random
        /// matrices — including sparse ones that skip whole diagonals
        /// and BSGS groups.
        #[test]
        fn prop_bsgs_matmul_matches_naive(
            seed in 0u64..1_000_000,
            density in 1usize..=4,
        ) {
            let w = setup_with_strategy(PackedStrategy::Naive);
            let width = 2 * w.server.params.t();
            let mut rng = StdRng::seed_from_u64(seed);
            let m: Vec<Vec<u64>> = (0..width)
                .map(|_| {
                    (0..width)
                        .map(|_| {
                            if rng.gen_range(0..4usize) < density {
                                rng.gen_range(0..65_537u64)
                            } else {
                                0
                            }
                        })
                        .collect()
                })
                .collect();
            let v: Vec<u64> = (0..width).map(|_| rng.gen_range(0..65_537u64)).collect();
            let (_, bsgs_switches) = matvec_both_ways(&w, &m, &v);
            let plan = BsgsPlan::new(w.server.params.t());
            proptest::prop_assert!(
                bsgs_switches <= plan.key_switches_per_layer() as u64
            );
        }
    }
}
