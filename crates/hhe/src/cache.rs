//! Plaintext-material caching for the transciphering hot path.
//!
//! Everything the homomorphic PASTA evaluation consumes besides the
//! encrypted key is *public* and a pure function of
//! `(params, nonce, counter)`: the per-block affine matrices, the round
//! constants, and — for the SIMD servers — their encodings as BFV
//! plaintext polynomials. Deriving that material is not free: Keccak
//! XOF squeezing and rejection sampling, matrix row recurrences, and
//! (worst of all) one batch-encode plus forward NTT per plaintext
//! operand. A server transciphering a stream re-derives identical
//! material for every ciphertext that touches the same
//! `(nonce, counter)` window.
//!
//! [`MaterialCache`] memoizes five shapes of derived material behind
//! small LRU sections:
//!
//! - **blocks** — [`BlockEntry`]: the raw [`BlockMaterial`] plus the
//!   materialized per-layer matrices, keyed by
//!   `(PastaParams, nonce, counter)`. Shared by all three server modes
//!   (the SIMD builders read their matrix entries from here).
//! - **batched** — [`BatchedEntry`]: per-layer, per-half `t × t`
//!   [`PreparedPlaintext`] weights and `t` round-constant plaintexts for
//!   the slot-parallel server, keyed additionally by the [`BfvParams`]
//!   and the `(first_counter, blocks)` window.
//! - **packed** — [`PackedEntry`]: the per-layer diagonal plaintexts
//!   (naive per-diagonal, or plaintext-pre-rotated into baby-step/
//!   giant-step groups — see [`PackedStrategy`]) and the concatenated
//!   round constant for the rotation-based server.
//! - **composed keys** — [`ComposedKeyEntry`]: the slot-masked,
//!   cross-tenant key ciphertexts of one multiplexing bucket
//!   composition, keyed by [`CompositionKey`] (the ordered
//!   `(tenant, blocks)` slot layout).
//! - **slot material** — a [`BatchedEntry`] whose slot `s` carries an
//!   *independent* `(nonce, counter)` coordinate, keyed by
//!   [`SlotMaterialKey`] — the heterogeneous generalization of the
//!   batched section used by the cross-tenant multiplexer.
//!
//! Every section is byte-budgeted: entries carry an approximate resident
//! size (`approx_*_bytes`) and eviction fires on *either* the entry-count
//! cap or the section's byte cap, so large prepared-plaintext shapes
//! cannot evade a memory budget that was sized in block-entry units.
//!
//! Invalidation rules: entries never go stale — the material is a
//! deterministic function of its key, so the only eviction is LRU
//! capacity pressure. Keys embed the full [`PastaParams`] and (for
//! prepared plaintexts) [`BfvParams`], so one cache instance can be
//! shared by servers with different parameter sets, and by all three
//! server modes at once (pass the same [`std::sync::Arc`] to each
//! server's `with_cache`).
//!
//! Concurrency: each section is guarded by a [`Mutex`]; a miss builds
//! the entry while holding the section lock (deliberate — concurrent
//! callers for the same key would otherwise duplicate an expensive
//! derivation). Entries are returned as [`Arc`]s so evaluation proceeds
//! lock-free after lookup.

use pasta_core::matrix::RowGenerator;
use pasta_core::permutation::{derive_block_material, BlockMaterial};
use pasta_core::PastaParams;
use pasta_fhe::{BfvParams, Ciphertext as FheCiphertext, PreparedPlaintext};
use pasta_math::linalg::Matrix;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Cache key for raw block material: the PASTA instance plus the block
/// coordinates. (The material does not depend on any FHE parameter.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockKey {
    /// The PASTA parameter set the material was derived for.
    pub pasta: PastaParams,
    /// Session nonce.
    pub nonce: u128,
    /// Block counter.
    pub counter: u64,
}

/// Cache key for a batched (SIMD) window of prepared plaintexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchKey {
    /// The PASTA parameter set.
    pub pasta: PastaParams,
    /// The BFV parameters the plaintexts were encoded under (the RNS
    /// basis and NTT tables are deterministic functions of these).
    pub bfv: BfvParams,
    /// Session nonce.
    pub nonce: u128,
    /// First block counter of the batch window.
    pub first_counter: u64,
    /// Number of blocks batched into the slots.
    pub blocks: usize,
}

/// How the packed server groups the affine-layer diagonals (the choice
/// changes what plaintext material must be prepared, so it is part of
/// the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackedStrategy {
    /// One key-switch per nonzero diagonal: `2t − 1` rotations per
    /// affine layer. The pre-BSGS reference path.
    Naive,
    /// Hoisted baby-step/giant-step grouping: `⌈√(2t)⌉ − 1` hoisted baby
    /// rotations shared from one decomposition plus `⌈2t/⌈√(2t)⌉⌉ − 1`
    /// giant rotations — O(√t) key-switches per layer.
    #[default]
    Bsgs,
}

/// Cache key for one packed (rotation-mode) block of prepared diagonals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedKey {
    /// The PASTA parameter set.
    pub pasta: PastaParams,
    /// The BFV parameters the diagonals were encoded under.
    pub bfv: BfvParams,
    /// Session nonce.
    pub nonce: u128,
    /// Block counter.
    pub counter: u64,
    /// The diagonal grouping the material was prepared for.
    pub strategy: PackedStrategy,
}

/// The two materialized matrices of one affine layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerMatrices {
    /// Left-half matrix `M_L`.
    pub left: Matrix,
    /// Right-half matrix `M_R`.
    pub right: Matrix,
}

/// Cached per-block public material: the XOF output plus the per-layer
/// matrices materialized from the seed rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// The raw derived material (seeds, round constants, stats).
    pub material: BlockMaterial,
    /// `matrices[layer]` — materialized left/right matrices.
    pub matrices: Vec<LayerMatrices>,
}

impl BlockEntry {
    /// Derives the material and materializes every layer's matrices.
    #[must_use]
    pub fn derive(params: &PastaParams, nonce: u128, counter: u64) -> Self {
        let material = derive_block_material(params, nonce, counter);
        let zp = params.field();
        let matrices = material
            .layers
            .iter()
            .map(|layer| LayerMatrices {
                left: RowGenerator::new(zp, layer.seed_left.clone()).into_matrix(),
                right: RowGenerator::new(zp, layer.seed_right.clone()).into_matrix(),
            })
            .collect();
        BlockEntry { material, matrices }
    }
}

/// One half of a batched affine layer, fully prepared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchedHalf {
    /// Row-major `t × t` weight plaintexts: slot `s` of `weights[i·t+j]`
    /// holds block `s`'s matrix entry `(i, j)`, NTT-prepared.
    pub weights: Vec<PreparedPlaintext>,
    /// `rc[i]`: slot `s` holds block `s`'s round constant for row `i`.
    pub rc: Vec<PreparedPlaintext>,
}

impl BatchedHalf {
    /// The prepared weight for matrix entry `(i, j)` of a `t × t` layer.
    #[must_use]
    pub fn weight(&self, t: usize, i: usize, j: usize) -> &PreparedPlaintext {
        &self.weights[i * t + j]
    }
}

/// One batched affine layer: both halves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchedLayer {
    /// Left-half weights and round constants.
    pub left: BatchedHalf,
    /// Right-half weights and round constants.
    pub right: BatchedHalf,
}

/// All prepared plaintext material of one batched evaluation window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchedEntry {
    /// `layers[l]` — the prepared material for affine layer `l`.
    pub layers: Vec<BatchedLayer>,
}

/// One baby-step/giant-step group: every diagonal `k = shift + b` of
/// the layer matrix, pre-rotated *in plaintext* by the group's giant
/// shift so the homomorphic side applies one rotation for the whole
/// group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsgsGroup {
    /// The giant rotation amount `g·B` applied once after the group's
    /// multiply–accumulate.
    pub shift: usize,
    /// `diagonals[b]` is diagonal `shift + b` of the layer matrix,
    /// lane-encoded at offset `shift` (the plaintext pre-rotation);
    /// `None` marks an all-zero or out-of-range diagonal.
    pub diagonals: Vec<Option<PreparedPlaintext>>,
}

/// The prepared affine-layer operands, shaped per [`PackedStrategy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedAffine {
    /// `diagonals[k]` for rotation amount `k ∈ 0..2t`; `None` marks an
    /// all-zero diagonal (the evaluation skips the rotation entirely).
    Naive(Vec<Option<PreparedPlaintext>>),
    /// Giant-step groups over hoisted baby rotations.
    Bsgs {
        /// Baby-step count `B` (rotations `0..B` of the input are
        /// produced from one hoisted decomposition).
        baby_count: usize,
        /// One group per giant step `g`, in ascending `g` order.
        groups: Vec<BsgsGroup>,
    },
}

/// One packed affine layer: the grouped diagonals of the block-diagonal
/// matrix `diag(M_L, M_R)` plus the concatenated round constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLayer {
    /// The prepared diagonal operands.
    pub affine: PackedAffine,
    /// `rc_left ‖ rc_right` encoded into lanes `0..2t`, prepared.
    pub rc: PreparedPlaintext,
}

/// All prepared diagonal material of one packed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedEntry {
    /// `layers[l]` — the prepared material for affine layer `l`.
    pub layers: Vec<PackedLayer>,
}

/// Cache key for one multiplexing-bucket key composition: the ordered
/// slot layout of the bucket. Member `m` occupies `members[m].1` slots
/// starting at the prefix sum of the earlier members' block counts.
///
/// The tenant id stands in for the tenant's [`crate::EncryptedPastaKey`]
/// in the key: within one cache domain the binding `tenant → key` is
/// stable (a tenant provisions its key once), so two lookups with equal
/// layouts compose bit-identical ciphertexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositionKey {
    /// The PASTA parameter set (fixes the key length `2t`).
    pub pasta: PastaParams,
    /// The BFV parameters the masks were encoded under.
    pub bfv: BfvParams,
    /// `(tenant, blocks)` per member, in ascending slot order.
    pub members: Vec<(u64, usize)>,
}

/// The slot-masked cross-tenant key of one bucket composition: element
/// `j`'s slot `s` holds key element `j` of the member owning slot `s`
/// (and `0` in unassigned slots).
#[derive(Debug, Clone)]
pub struct ComposedKeyEntry {
    /// Composed key ciphertexts `K_0 … K_{2t−1}`.
    pub elements: Vec<FheCiphertext>,
}

/// Cache key for heterogeneous per-slot batched material: slot `s`
/// carries the affine material of coordinate `slots[s]` — unlike
/// [`BatchKey`], the slots need not share a nonce or form a contiguous
/// counter window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMaterialKey {
    /// The PASTA parameter set.
    pub pasta: PastaParams,
    /// The BFV parameters the plaintexts were encoded under.
    pub bfv: BfvParams,
    /// `(nonce, counter)` per occupied slot, in slot order (the
    /// unoccupied tail is implicit).
    pub slots: Vec<(u128, u64)>,
}

/// Hit/miss counters for one cache section (or the aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the entry.
    pub misses: u64,
}

/// A tiny move-to-front LRU over a `Vec` — the working sets here are a
/// handful of entries, so linear scans beat a hash map plus ordering
/// side-structure. Each entry carries its approximate resident size;
/// eviction fires on the entry-count cap *or* the byte cap, always
/// keeping at least the most recent entry so a starved budget still
/// yields a working single-entry cache.
#[derive(Debug)]
struct Lru<K, V> {
    cap: usize,
    cap_bytes: usize,
    entries: Vec<(K, Arc<V>, usize)>,
    bytes: usize,
    hits: u64,
    misses: u64,
}

impl<K: PartialEq + Clone, V> Lru<K, V> {
    fn new(cap: usize, cap_bytes: usize) -> Self {
        Lru {
            cap: cap.max(1),
            cap_bytes: cap_bytes.max(1),
            entries: Vec::new(),
            bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn get_or_insert_with(&mut self, key: &K, bytes: usize, build: impl FnOnce() -> V) -> Arc<V> {
        if let Some(pos) = self.entries.iter().position(|(k, _, _)| k == key) {
            self.hits += 1;
            let entry = self.entries.remove(pos);
            let value = Arc::clone(&entry.1);
            self.entries.insert(0, entry);
            return value;
        }
        self.misses += 1;
        let value = Arc::new(build());
        self.entries
            .insert(0, (key.clone(), Arc::clone(&value), bytes));
        self.bytes += bytes;
        while self.entries.len() > 1
            && (self.entries.len() > self.cap || self.bytes > self.cap_bytes)
        {
            if let Some((_, _, freed)) = self.entries.pop() {
                self.bytes = self.bytes.saturating_sub(freed);
            }
        }
        value
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }
}

/// Default capacity of the raw block-material section.
pub const DEFAULT_BLOCK_CAPACITY: usize = 256;
/// Default capacity of the batched prepared-plaintext section (entries
/// are large: `layers · 2 · (t² + t)` prepared polynomials each).
pub const DEFAULT_BATCHED_CAPACITY: usize = 8;
/// Default capacity of the packed prepared-diagonal section.
pub const DEFAULT_PACKED_CAPACITY: usize = 64;
/// Default capacity of the composed-key section (one entry per live
/// bucket composition; compositions repeat under steady load).
pub const DEFAULT_COMPOSED_CAPACITY: usize = 8;
/// Default capacity of the heterogeneous slot-material section.
pub const DEFAULT_SLOT_MATERIAL_CAPACITY: usize = 8;

/// The shared plaintext-material cache (see the module docs).
#[derive(Debug)]
pub struct MaterialCache {
    blocks: Mutex<Lru<BlockKey, BlockEntry>>,
    batched: Mutex<Lru<BatchKey, BatchedEntry>>,
    packed: Mutex<Lru<PackedKey, PackedEntry>>,
    composed: Mutex<Lru<CompositionKey, ComposedKeyEntry>>,
    slot_material: Mutex<Lru<SlotMaterialKey, BatchedEntry>>,
}

impl Default for MaterialCache {
    fn default() -> Self {
        Self::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The builders cannot panic in normal operation; if one ever does,
    // the cached data is still internally consistent (entries are only
    // inserted whole), so recover the guard instead of poisoning every
    // later transciphering call.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MaterialCache {
    /// A cache with the default per-section capacities.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacities(
            DEFAULT_BLOCK_CAPACITY,
            DEFAULT_BATCHED_CAPACITY,
            DEFAULT_PACKED_CAPACITY,
        )
    }

    /// A cache with explicit per-section entry capacities (each clamped
    /// to at least one entry; byte caps unbounded). The multiplexer
    /// sections get their default capacities.
    #[must_use]
    pub fn with_capacities(blocks: usize, batched: usize, packed: usize) -> Self {
        MaterialCache {
            blocks: Mutex::new(Lru::new(blocks, usize::MAX)),
            batched: Mutex::new(Lru::new(batched, usize::MAX)),
            packed: Mutex::new(Lru::new(packed, usize::MAX)),
            composed: Mutex::new(Lru::new(DEFAULT_COMPOSED_CAPACITY, usize::MAX)),
            slot_material: Mutex::new(Lru::new(DEFAULT_SLOT_MATERIAL_CAPACITY, usize::MAX)),
        }
    }

    /// A cache bounded by an approximate total byte budget, split across
    /// the sections (blocks ¼, batched ¼, packed ¼, composed keys ⅛,
    /// slot material ⅛). Entry counts are generous — the byte caps
    /// govern — and every section keeps at least its most recent entry,
    /// so a starved budget degrades to single-entry memoization instead
    /// of breaking.
    #[must_use]
    pub fn with_budget(budget_bytes: usize) -> Self {
        let budget = budget_bytes.max(1);
        let quarter = (budget / 4).max(1);
        let eighth = (budget / 8).max(1);
        MaterialCache {
            blocks: Mutex::new(Lru::new(4096, quarter)),
            batched: Mutex::new(Lru::new(1024, quarter)),
            packed: Mutex::new(Lru::new(1024, quarter)),
            composed: Mutex::new(Lru::new(1024, eighth)),
            slot_material: Mutex::new(Lru::new(1024, eighth)),
        }
    }

    /// The block material (and materialized matrices) for
    /// `(params, nonce, counter)`, derived on first use.
    #[must_use]
    pub fn block(&self, params: &PastaParams, nonce: u128, counter: u64) -> Arc<BlockEntry> {
        let key = BlockKey {
            pasta: *params,
            nonce,
            counter,
        };
        let bytes = approx_block_entry_bytes(params);
        lock(&self.blocks)
            .get_or_insert_with(&key, bytes, || BlockEntry::derive(params, nonce, counter))
    }

    /// The batched prepared material for `key`, built by `build` on a
    /// miss (the builder runs under the section lock; see module docs).
    #[must_use]
    pub fn batched(
        &self,
        key: &BatchKey,
        build: impl FnOnce() -> BatchedEntry,
    ) -> Arc<BatchedEntry> {
        let bytes = approx_batched_entry_bytes(&key.pasta, &key.bfv);
        lock(&self.batched).get_or_insert_with(key, bytes, build)
    }

    /// The packed prepared material for `key`, built by `build` on a
    /// miss.
    #[must_use]
    pub fn packed(&self, key: &PackedKey, build: impl FnOnce() -> PackedEntry) -> Arc<PackedEntry> {
        let bytes = approx_packed_entry_bytes(&key.pasta, &key.bfv);
        lock(&self.packed).get_or_insert_with(key, bytes, build)
    }

    /// The composed cross-tenant key for one bucket layout, built by
    /// `build` on a miss.
    #[must_use]
    pub fn composed_key(
        &self,
        key: &CompositionKey,
        build: impl FnOnce() -> ComposedKeyEntry,
    ) -> Arc<ComposedKeyEntry> {
        let bytes = approx_composed_key_bytes(&key.pasta, &key.bfv);
        lock(&self.composed).get_or_insert_with(key, bytes, build)
    }

    /// The heterogeneous per-slot batched material for `key`, built by
    /// `build` on a miss.
    #[must_use]
    pub fn slot_material(
        &self,
        key: &SlotMaterialKey,
        build: impl FnOnce() -> BatchedEntry,
    ) -> Arc<BatchedEntry> {
        let bytes = approx_batched_entry_bytes(&key.pasta, &key.bfv);
        lock(&self.slot_material).get_or_insert_with(key, bytes, build)
    }

    /// Aggregate hit/miss counters across all five sections.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let sections = [
            lock(&self.blocks).stats(),
            lock(&self.batched).stats(),
            lock(&self.packed).stats(),
            lock(&self.composed).stats(),
            lock(&self.slot_material).stats(),
        ];
        let mut out = CacheStats::default();
        for s in sections {
            out.hits += s.hits;
            out.misses += s.misses;
        }
        out
    }

    /// Approximate resident bytes across all five sections.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        lock(&self.blocks).bytes
            + lock(&self.batched).bytes
            + lock(&self.packed).bytes
            + lock(&self.composed).bytes
            + lock(&self.slot_material).bytes
    }
}

/// Approximate resident size (bytes) of one cached [`BlockEntry`] for a
/// parameter set: the materialized `2 · t × t` matrix rows per layer
/// dominate; seeds and round constants add `4t` words per layer.
///
/// This is the unit the sharded cache's memory budget is divided by, so
/// it only needs to be proportionally right, not byte-exact.
#[must_use]
pub fn approx_block_entry_bytes(params: &PastaParams) -> usize {
    let t = params.t();
    let layers = params.rounds() + 1;
    layers * (2 * t * t + 4 * t) * 8
}

/// Approximate resident size (bytes) of one [`PreparedPlaintext`]: `N`
/// coefficients across `prime_count` RNS limbs of 8 bytes each, times
/// three resident arrays (the NTT-domain rows, their Shoup companions
/// precomputed for the SIMD multiply kernels, and `Δ·m`).
#[must_use]
pub fn approx_prepared_plaintext_bytes(bfv: &BfvParams) -> usize {
    3 * bfv.n * bfv.prime_count * 8
}

/// Approximate resident size (bytes) of one BFV ciphertext (two ring
/// elements in RNS form).
#[must_use]
pub fn approx_ciphertext_bytes(bfv: &BfvParams) -> usize {
    2 * bfv.n * bfv.prime_count * 8
}

/// Approximate resident size (bytes) of one [`BatchedEntry`] (also the
/// slot-material shape): per layer and half, `t² + t` prepared
/// plaintexts.
#[must_use]
pub fn approx_batched_entry_bytes(params: &PastaParams, bfv: &BfvParams) -> usize {
    let t = params.t();
    let layers = params.rounds() + 1;
    layers * 2 * (t * t + t) * approx_prepared_plaintext_bytes(bfv)
}

/// Approximate resident size (bytes) of one [`PackedEntry`]: per layer,
/// up to `2t` prepared diagonals plus the round-constant plaintext.
#[must_use]
pub fn approx_packed_entry_bytes(params: &PastaParams, bfv: &BfvParams) -> usize {
    let t = params.t();
    let layers = params.rounds() + 1;
    layers * (2 * t + 1) * approx_prepared_plaintext_bytes(bfv)
}

/// Approximate resident size (bytes) of one [`ComposedKeyEntry`]: `2t`
/// composed key ciphertexts.
#[must_use]
pub fn approx_composed_key_bytes(params: &PastaParams, bfv: &BfvParams) -> usize {
    params.state_size() * approx_ciphertext_bytes(bfv)
}

/// Configuration of a [`ShardedCache`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedCacheConfig {
    /// Total memory budget (bytes) across all resident tenant shards.
    /// Each shard is a [`MaterialCache::with_budget`] of the slice
    /// `budget_bytes / max_resident`, so *every* cache shape — raw block
    /// entries, batched/packed prepared plaintexts, and the multiplexer's
    /// composed keys and slot material — counts against the budget.
    pub budget_bytes: usize,
    /// Maximum number of tenant shards kept resident; the least recently
    /// used shard beyond this is evicted whole.
    pub max_resident: usize,
}

impl Default for ShardedCacheConfig {
    fn default() -> Self {
        ShardedCacheConfig {
            budget_bytes: 64 << 20,
            max_resident: 64,
        }
    }
}

/// A per-tenant sharding layer over [`MaterialCache`].
///
/// A multi-tenant transciphering server cannot share one flat LRU: a
/// single tenant streaming fresh `(nonce, counter)` windows would evict
/// everyone else's material. Instead each tenant gets its *own*
/// [`MaterialCache`] shard whose capacity is a fixed slice of the
/// configured memory budget, and whole shards are LRU-evicted when more
/// than [`ShardedCacheConfig::max_resident`] tenants have resident
/// material. A tenant can therefore thrash only its own slice.
///
/// Shards are handed out as [`Arc`]s; an evicted shard's memory is
/// released once its last holder (e.g. an [`crate::HheServer`] that
/// swaps caches via [`crate::HheServer::set_cache`]) drops the `Arc`.
#[derive(Debug)]
pub struct ShardedCache {
    cfg: ShardedCacheConfig,
    shards: Mutex<ShardTable>,
}

/// MRU-ordered `(tenant, shard)` pairs plus the eviction counter.
#[derive(Debug, Default)]
struct ShardTable {
    entries: Vec<(u64, Arc<MaterialCache>)>,
    evictions: u64,
}

impl ShardedCache {
    /// Creates an empty sharded cache (capacities clamped to ≥ 1).
    #[must_use]
    pub fn new(cfg: ShardedCacheConfig) -> Self {
        ShardedCache {
            cfg: ShardedCacheConfig {
                budget_bytes: cfg.budget_bytes.max(1),
                max_resident: cfg.max_resident.max(1),
            },
            shards: Mutex::new(ShardTable::default()),
        }
    }

    /// The configuration the cache was built with.
    #[must_use]
    pub fn config(&self) -> &ShardedCacheConfig {
        &self.cfg
    }

    /// The tenant's shard, created on first use as a byte-budgeted
    /// [`MaterialCache`] over the per-tenant budget slice. Touching a
    /// shard moves it to the front of the eviction order; the least
    /// recently used shard beyond `max_resident` is evicted whole.
    #[must_use]
    pub fn shard(&self, tenant: u64) -> Arc<MaterialCache> {
        let mut guard = lock(&self.shards);
        let table = &mut *guard;
        if let Some(pos) = table.entries.iter().position(|(id, _)| *id == tenant) {
            let entry = table.entries.remove(pos);
            let shard = Arc::clone(&entry.1);
            table.entries.insert(0, entry);
            return shard;
        }
        let per_tenant = (self.cfg.budget_bytes / self.cfg.max_resident).max(1);
        let shard = Arc::new(MaterialCache::with_budget(per_tenant));
        table.entries.insert(0, (tenant, Arc::clone(&shard)));
        if table.entries.len() > self.cfg.max_resident {
            table.entries.truncate(self.cfg.max_resident);
            table.evictions += 1;
        }
        shard
    }

    /// Number of tenant shards currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        lock(&self.shards).entries.len()
    }

    /// Whole-shard evictions since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        lock(&self.shards).evictions
    }

    /// Aggregate hit/miss counters across every *resident* shard
    /// (evicted shards take their counters with them).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let guard = lock(&self.shards);
        let mut out = CacheStats::default();
        for (_, shard) in &guard.entries {
            let s = shard.stats();
            out.hits += s.hits;
            out.misses += s.misses;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_math::Modulus;

    fn params() -> PastaParams {
        PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap()
    }

    #[test]
    fn block_entries_are_memoized_and_bit_exact() {
        let cache = MaterialCache::new();
        let a = cache.block(&params(), 7, 3);
        let b = cache.block(&params(), 7, 3);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the entry");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // A fresh derivation agrees exactly.
        assert_eq!(*a, BlockEntry::derive(&params(), 7, 3));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = MaterialCache::new();
        let a = cache.block(&params(), 7, 3);
        let b = cache.block(&params(), 7, 4);
        let c = cache.block(
            &PastaParams::custom(4, 3, Modulus::PASTA_17_BIT).unwrap(),
            7,
            3,
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(*a, *b);
        assert_ne!(
            a.matrices.len(),
            c.matrices.len(),
            "different rounds, different layers"
        );
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = MaterialCache::with_capacities(2, 1, 1);
        let a0 = cache.block(&params(), 1, 0);
        let _ = cache.block(&params(), 1, 1);
        // Touch counter 0 so counter 1 is the LRU victim.
        let _ = cache.block(&params(), 1, 0);
        let _ = cache.block(&params(), 1, 2); // evicts counter 1
        let a0_again = cache.block(&params(), 1, 0);
        assert!(Arc::ptr_eq(&a0, &a0_again), "survivor must still be cached");
        let before = cache.stats().misses;
        let _ = cache.block(&params(), 1, 1); // was evicted: a miss
        assert_eq!(cache.stats().misses, before + 1);
    }

    #[test]
    fn shards_are_per_tenant_and_reused() {
        let sharded = ShardedCache::new(ShardedCacheConfig {
            budget_bytes: 1 << 20,
            max_resident: 4,
        });
        let a = sharded.shard(1);
        let a_again = sharded.shard(1);
        assert!(Arc::ptr_eq(&a, &a_again), "same tenant, same shard");
        let b = sharded.shard(2);
        assert!(!Arc::ptr_eq(&a, &b), "tenants must not share a shard");
        assert_eq!(sharded.resident(), 2);
        // Entries populated through one tenant's shard stay invisible to
        // the other tenant.
        let _ = a.block(&params(), 9, 0);
        assert_eq!(b.stats(), CacheStats::default());
        assert_eq!(sharded.stats().misses, 1);
    }

    #[test]
    fn lru_shard_eviction_bounds_residency() {
        let sharded = ShardedCache::new(ShardedCacheConfig {
            budget_bytes: 1 << 20,
            max_resident: 2,
        });
        let one = sharded.shard(1);
        let _ = sharded.shard(2);
        let _ = sharded.shard(1); // touch: 2 becomes LRU
        let _ = sharded.shard(3); // evicts tenant 2
        assert_eq!(sharded.resident(), 2);
        assert_eq!(sharded.evictions(), 1);
        let one_again = sharded.shard(1);
        assert!(Arc::ptr_eq(&one, &one_again), "survivor keeps its shard");
        // Tenant 2 comes back as a *fresh* shard.
        let two = sharded.shard(2);
        assert_eq!(two.stats(), CacheStats::default());
    }

    #[test]
    fn shard_capacity_tracks_the_budget_slice() {
        let per_entry = approx_block_entry_bytes(&params());
        // Blocks get ¼ of the per-tenant slice; budget 24 entries across
        // 2 shards → 12 per tenant → cap 3 block entries.
        let sharded = ShardedCache::new(ShardedCacheConfig {
            budget_bytes: per_entry * 24,
            max_resident: 2,
        });
        let shard = sharded.shard(7);
        for counter in 0..4 {
            let _ = shard.block(&params(), 1, counter);
        }
        // Counter 0 must have been evicted by byte pressure (cap 3).
        let before = shard.stats().misses;
        let _ = shard.block(&params(), 1, 0);
        assert_eq!(shard.stats().misses, before + 1, "cap must be 3");
        // A starved budget still yields a working 1-entry shard.
        let tiny = ShardedCache::new(ShardedCacheConfig {
            budget_bytes: 1,
            max_resident: 1,
        });
        let s = tiny.shard(1);
        let _ = s.block(&params(), 1, 0);
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn batched_entries_count_against_the_byte_budget() {
        let p = params();
        let bfv = BfvParams::test_tiny();
        let per_batched = approx_batched_entry_bytes(&p, &bfv);
        // A budget whose batched slice (¼) holds exactly one batched
        // entry: a batched-heavy tenant must evict its older windows
        // instead of accumulating them invisibly.
        let sharded = ShardedCache::new(ShardedCacheConfig {
            budget_bytes: per_batched * 6,
            max_resident: 1,
        });
        let shard = sharded.shard(3);
        let key = |first_counter: u64| BatchKey {
            pasta: p,
            bfv,
            nonce: 5,
            first_counter,
            blocks: 2,
        };
        let entry = || BatchedEntry { layers: Vec::new() };
        let a = shard.batched(&key(0), entry);
        let _ = shard.batched(&key(2), entry); // evicts window 0 (bytes)
        assert!(shard.approx_bytes() <= per_batched * 6);
        let misses = shard.stats().misses;
        let a_again = shard.batched(&key(0), entry);
        assert_eq!(shard.stats().misses, misses + 1, "window 0 was evicted");
        assert!(!Arc::ptr_eq(&a, &a_again));
        // Composed-key entries are sized too.
        let comp = CompositionKey {
            pasta: p,
            bfv,
            members: vec![(1, 2), (2, 3)],
        };
        let _ = shard.composed_key(&comp, || ComposedKeyEntry {
            elements: Vec::new(),
        });
        assert!(shard.approx_bytes() >= approx_composed_key_bytes(&p, &bfv));
    }

    #[test]
    fn matrices_match_a_direct_row_generator() {
        let p = params();
        let entry = BlockEntry::derive(&p, 42, 9);
        let material = derive_block_material(&p, 42, 9);
        for (layer, mats) in material.layers.iter().zip(entry.matrices.iter()) {
            let left = RowGenerator::new(p.field(), layer.seed_left.clone()).into_matrix();
            assert_eq!(mats.left, left);
            let right = RowGenerator::new(p.field(), layer.seed_right.clone()).into_matrix();
            assert_eq!(mats.right, right);
        }
    }
}
