//! Cross-tenant slot multiplexing: blocks from *different* sessions and
//! tenants packed into one SIMD transciphering pass.
//!
//! The batched server ([`crate::batched`]) already amortizes the PASTA
//! decryption circuit over `N` slots — but only for one stream: a
//! request carrying a single block still occupies all `N` slots, so at
//! small payloads the cloud does up to `N×` more slot-work than it
//! sells. This module closes that gap by composing one *shared*
//! evaluation over the slots of many tenants at once:
//!
//! - **Key composition.** The batched circuit consumes `2t` key
//!   ciphertexts whose slot `s` must hold the key of whichever stream
//!   owns slot `s`. Each member's provisioned key encrypts its key
//!   element in *every* slot (a scalar `encode_scalar(k)` is the
//!   constant polynomial `k`, which evaluates to `k` at every root —
//!   so scalar-provisioned and batched-provisioned keys coincide).
//!   Multiplying member `m`'s key ciphertext by the 0/1 *plaintext*
//!   mask of `m`'s slot range and summing over members therefore yields
//!   a composed key with exactly one tenant's key per slot and `0`
//!   elsewhere. Masking is plaintext–ciphertext only — no tenant's key
//!   material ever meets another's except under FHE addition, and a
//!   slot is covered by exactly one mask, so slots cannot mix.
//! - **Per-slot material.** The affine matrices and round constants are
//!   public functions of `(params, nonce, counter)`; the batched
//!   plaintexts are already per-slot, so slot `s` simply takes the
//!   material of the member block assigned to it (heterogeneous nonces
//!   and counters are fine — see
//!   [`crate::cache::SlotMaterialKey`]).
//! - **One pass.** The composed key and heterogeneous material feed the
//!   exact same slot-parallel circuit as the batched server; results
//!   demux back to members by slot range.
//!
//! **Trust prerequisite:** every member's key must be encrypted under
//! the *same* FHE secret key (the analyst's), since their ciphertexts
//! are summed. The service layer enforces this by only multiplexing
//! tenants that registered into the same *FHE domain*.
//!
//! Both the composed key (per bucket layout) and the per-slot material
//! (per slot coordinate vector) are memoized in the shared
//! [`MaterialCache`], so steady-state buckets with recurring
//! compositions pay the masking multiplies and the encode+NTT work
//! once.

use crate::batched::{eval_slotted_circuit, prepare_slotted_material};
use crate::cache::{BlockEntry, ComposedKeyEntry, CompositionKey, MaterialCache, SlotMaterialKey};
use crate::client::EncryptedPastaKey;
use pasta_core::{Ciphertext as PastaCiphertext, PastaParams};
use pasta_fhe::{
    BatchEncoder, BfvContext, BfvRelinKey, BfvSecretKey, Ciphertext as FheCiphertext, FheError,
};
use std::sync::Arc;

/// One member of a multiplexing bucket: a tenant's PASTA ciphertext plus
/// the tenant's (domain-shared-FHE-key) encrypted PASTA key.
#[derive(Debug)]
pub struct MuxMember<'a> {
    /// Stable tenant id (part of the composed-key cache key; the id must
    /// bind one-to-one to `encrypted_key` within a cache domain).
    pub tenant: u64,
    /// The tenant's FHE-encrypted PASTA key (`2t` elements, encrypted
    /// under the domain's analyst key).
    pub encrypted_key: &'a EncryptedPastaKey,
    /// The symmetric ciphertext to transcipher.
    pub ct: &'a PastaCiphertext,
}

/// The contiguous slot range one member occupies inside a muxed pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRange {
    /// First slot of the member.
    pub start: usize,
    /// Number of blocks (slots) the member occupies.
    pub blocks: usize,
    /// Number of message elements the member carries (`≤ blocks · t`).
    pub elements: usize,
}

/// The result of one multiplexed pass: `t` position-major ciphertexts
/// shared by every member, plus each member's slot range for demuxing.
#[derive(Debug)]
pub struct MuxedBlocks {
    /// Position-major ciphertexts: slot `s` of ciphertext `i` holds
    /// message element `(s − start)·t + i` of the member owning slot `s`.
    pub positions: Vec<FheCiphertext>,
    /// `ranges[m]` — member `m`'s slot range, in input order.
    pub ranges: Vec<SlotRange>,
    /// Total slots occupied (`≤ N`).
    pub slots_used: usize,
}

/// A transciphering server that packs blocks from many tenants into the
/// slots of one shared SIMD pass.
#[derive(Debug)]
pub struct MuxHheServer {
    params: PastaParams,
    relin_key: BfvRelinKey,
    encoder: BatchEncoder,
    cache: Arc<MaterialCache>,
}

impl MuxHheServer {
    /// Builds a multiplexing server for one FHE domain (one analyst
    /// keypair; `relin_key` belongs to that keypair).
    ///
    /// # Errors
    ///
    /// Propagates encoder construction errors (`2N ∤ t_plain − 1`).
    pub fn new(
        params: PastaParams,
        ctx: &BfvContext,
        relin_key: BfvRelinKey,
    ) -> Result<Self, FheError> {
        let encoder = BatchEncoder::new(ctx.params().plain_modulus, ctx.params().n)
            .map_err(FheError::from)?;
        Ok(MuxHheServer {
            params,
            relin_key,
            encoder,
            cache: Arc::new(MaterialCache::new()),
        })
    }

    /// Replaces the material cache (e.g. with a domain shard of a
    /// [`crate::cache::ShardedCache`]).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<MaterialCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Swaps the material cache in place (see
    /// [`crate::HheServer::set_cache`]).
    pub fn set_cache(&mut self, cache: Arc<MaterialCache>) {
        self.cache = cache;
    }

    /// The material cache in use.
    #[must_use]
    pub fn cache(&self) -> &Arc<MaterialCache> {
        &self.cache
    }

    /// The number of blocks one pass can carry across all members
    /// (`N` slots).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.encoder.slots()
    }

    /// The slot layout for `members`, assigned greedily in input order.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if the members are empty,
    /// a key has the wrong length, or the total block count exceeds the
    /// slot capacity.
    fn layout(&self, members: &[MuxMember<'_>]) -> Result<Vec<SlotRange>, FheError> {
        if members.is_empty() {
            return Err(FheError::Incompatible("empty multiplexing bucket".into()));
        }
        let t = self.params.t();
        let mut ranges = Vec::with_capacity(members.len());
        let mut next = 0usize;
        for m in members {
            if m.encrypted_key.elements.len() != self.params.state_size() {
                return Err(FheError::Incompatible(format!(
                    "tenant {} key has {} elements, expected {}",
                    m.tenant,
                    m.encrypted_key.elements.len(),
                    self.params.state_size()
                )));
            }
            let elements = m.ct.len();
            if elements == 0 {
                return Err(FheError::Incompatible(format!(
                    "tenant {} submitted an empty ciphertext",
                    m.tenant
                )));
            }
            let blocks = elements.div_ceil(t);
            ranges.push(SlotRange {
                start: next,
                blocks,
                elements,
            });
            next += blocks;
        }
        if next > self.capacity() {
            return Err(FheError::Incompatible(format!(
                "bucket of {next} blocks exceeds the {}-slot capacity",
                self.capacity()
            )));
        }
        Ok(ranges)
    }

    /// The composed cross-tenant key for this bucket layout: element `j`
    /// is `Σ_m mask_m ⊙ key_m[j]` where `mask_m` is the 0/1 plaintext of
    /// member `m`'s slot range. Memoized per `(tenant, blocks)` layout.
    fn composed_key(
        &self,
        ctx: &BfvContext,
        members: &[MuxMember<'_>],
        ranges: &[SlotRange],
        slots_used: usize,
    ) -> Result<Arc<ComposedKeyEntry>, FheError> {
        let state = self.params.state_size();
        // A single-member bucket needs no masking: the member's key
        // already has its key element in every slot, and slots past the
        // member's range are never read.
        if members.len() == 1 {
            return Ok(Arc::new(ComposedKeyEntry {
                elements: members[0].encrypted_key.elements.clone(),
            }));
        }
        let key = CompositionKey {
            pasta: self.params,
            bfv: *ctx.params(),
            members: members
                .iter()
                .zip(ranges)
                .map(|(m, r)| (m.tenant, r.blocks))
                .collect(),
        };
        let entry = self.cache.composed_key(&key, || {
            let masks: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let mut slots = vec![0u64; slots_used];
                    for s in &mut slots[r.start..r.start + r.blocks] {
                        *s = 1;
                    }
                    ctx.prepare_plaintext(&self.encoder.encode(&slots))
                })
                .collect();
            let js: Vec<usize> = (0..state).collect();
            let elements =
                pasta_par::parallel_map(&js, |_, &j| -> Result<FheCiphertext, FheError> {
                    let mut acc =
                        ctx.mul_plain_prepared(&members[0].encrypted_key.elements[j], &masks[0]);
                    for (m, mask) in members.iter().zip(&masks).skip(1) {
                        let masked = ctx.mul_plain_prepared(&m.encrypted_key.elements[j], mask);
                        ctx.add_assign(&mut acc, &masked)?;
                    }
                    Ok(acc)
                })
                .into_iter()
                .collect::<Result<Vec<_>, _>>();
            // The adds can only fail on cross-context dimension
            // mismatches, which domain registration rules out; an empty
            // entry is rejected (and rebuilt) below rather than panicking.
            ComposedKeyEntry {
                elements: elements.unwrap_or_default(),
            }
        });
        if entry.elements.len() != state {
            return Err(FheError::Incompatible(
                "bucket members span incompatible FHE contexts".into(),
            ));
        }
        Ok(entry)
    }

    /// Transciphers a whole bucket in one slot-parallel pass: one shared
    /// keystream evaluation over the composed key and per-slot material,
    /// then one trivial-encrypt + subtract per state position.
    ///
    /// Every member's blocks start at counter `0` within its own
    /// ciphertext (matching [`crate::HheServer::transcipher`] and
    /// [`crate::BatchedHheServer::transcipher_batched`]).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] on an empty bucket, a
    /// key-length mismatch, or slot-capacity overflow; propagates FHE
    /// errors from the circuit.
    pub fn transcipher_mux(
        &self,
        ctx: &BfvContext,
        members: &[MuxMember<'_>],
    ) -> Result<MuxedBlocks, FheError> {
        let t = self.params.t();
        let ranges = self.layout(members)?;
        let slots_used = ranges.last().map_or(0, |r| r.start + r.blocks);

        let composed = self.composed_key(ctx, members, &ranges, slots_used)?;

        // Slot s of the material carries the (nonce, counter) coordinate
        // of the member block assigned to s.
        let mut slots: Vec<(u128, u64)> = Vec::with_capacity(slots_used);
        for (m, r) in members.iter().zip(&ranges) {
            for b in 0..r.blocks {
                slots.push((m.ct.nonce(), b as u64));
            }
        }
        let material_key = SlotMaterialKey {
            pasta: self.params,
            bfv: *ctx.params(),
            slots: slots.clone(),
        };
        let prepared = self.cache.slot_material(&material_key, || {
            let per_slot: Vec<Arc<BlockEntry>> = slots
                .iter()
                .map(|&(nonce, counter)| self.cache.block(&self.params, nonce, counter))
                .collect();
            prepare_slotted_material(ctx, &self.params, &self.encoder, &per_slot)
        });

        let ks = eval_slotted_circuit(
            ctx,
            &self.params,
            &self.relin_key,
            &prepared,
            &composed.elements[..t],
            &composed.elements[t..],
        )?;

        // Demux-side subtraction: slot s of position i carries message
        // element (s − start)·t + i of the member owning slot s (0 where
        // the member's last block is partial or the slot is unowned).
        let mut positions = Vec::with_capacity(t);
        for (i, ks_ct) in ks.iter().enumerate() {
            let mut c_slots = vec![0u64; slots_used];
            for (m, r) in members.iter().zip(&ranges) {
                for b in 0..r.blocks {
                    if let Some(&e) = m.ct.elements().get(b * t + i) {
                        c_slots[r.start + b] = e;
                    }
                }
            }
            let mut out = ctx.encrypt_trivial(&self.encoder.encode(&c_slots));
            ctx.sub_assign(&mut out, ks_ct)?;
            positions.push(out);
        }
        Ok(MuxedBlocks {
            positions,
            ranges,
            slots_used,
        })
    }
}

/// Decrypts one member's message out of a muxed pass (requires the
/// domain's FHE secret key — analyst side): reads slots
/// `range.start .. range.start + range.blocks` of every position
/// ciphertext and reassembles the `range.elements`-element message.
///
/// # Errors
///
/// Propagates encoder construction errors; returns
/// [`FheError::Incompatible`] if `positions` does not cover the range.
pub fn retrieve_muxed(
    ctx: &BfvContext,
    sk: &BfvSecretKey,
    positions: &[FheCiphertext],
    range: SlotRange,
) -> Result<Vec<u64>, FheError> {
    let encoder =
        BatchEncoder::new(ctx.params().plain_modulus, ctx.params().n).map_err(FheError::from)?;
    let t = positions.len();
    if t == 0 || range.elements > range.blocks * t || range.start + range.blocks > encoder.slots() {
        return Err(FheError::Incompatible(
            "slot range does not fit the muxed positions".into(),
        ));
    }
    let mut out = vec![0u64; range.elements];
    for (i, ct) in positions.iter().enumerate() {
        let decoded = encoder.decode(&ctx.decrypt(sk, ct));
        for b in 0..range.blocks {
            let idx = b * t + i;
            if idx < out.len() {
                out[idx] = decoded[range.start + b];
            }
        }
    }
    Ok(out)
}
