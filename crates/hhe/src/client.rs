//! The HHE client (paper §II.A, Fig. 1, left side).
//!
//! The client:
//!
//! 1. FHE-encrypts its PASTA secret key once and ships it to the server
//!    (key provisioning);
//! 2. encrypts its data with plain PASTA (fast, 1:1 ciphertext size —
//!    this is the operation the cryptoprocessor accelerates);
//! 3. later retrieves FHE ciphertexts of computation results and decrypts
//!    them with its FHE secret key.

use pasta_core::{Ciphertext as PastaCiphertext, PastaCipher, PastaError, PastaParams, SecretKey};
use pasta_fhe::{BfvContext, BfvPublicKey, BfvSecretKey, Ciphertext as FheCiphertext};
use rand::Rng;

/// The FHE-encrypted PASTA key: one scalar BFV ciphertext per key element
/// (`2t` in total). Sent to the server once at setup.
#[derive(Debug, Clone)]
pub struct EncryptedPastaKey {
    /// Ciphertexts of `K_0 … K_{2t-1}`.
    pub elements: Vec<FheCiphertext>,
}

impl EncryptedPastaKey {
    /// Total wire size in bytes (the one-time provisioning cost the HHE
    /// deployment amortizes).
    #[must_use]
    pub fn size_bytes(&self, ctx: &BfvContext) -> usize {
        self.elements.iter().map(|c| c.size_bytes(ctx)).sum()
    }
}

/// An HHE client: a PASTA cipher plus the server's FHE public key.
#[derive(Debug)]
pub struct HheClient {
    cipher: PastaCipher,
}

impl HheClient {
    /// Creates a client with a fresh PASTA key derived from `seed`.
    #[must_use]
    pub fn new(params: PastaParams, seed: &[u8]) -> Self {
        let key = SecretKey::from_seed(&params, seed);
        HheClient {
            cipher: PastaCipher::new(params, key),
        }
    }

    /// The PASTA parameter set.
    #[must_use]
    pub fn params(&self) -> &PastaParams {
        self.cipher.params()
    }

    /// The underlying cipher (exposed for benchmarking the client cost).
    #[must_use]
    pub fn cipher(&self) -> &PastaCipher {
        &self.cipher
    }

    /// FHE-encrypts the PASTA key under the FHE public key — the one-time
    /// provisioning step of Fig. 1.
    #[must_use]
    pub fn provision_key<R: Rng>(
        &self,
        ctx: &BfvContext,
        pk: &BfvPublicKey,
        rng: &mut R,
    ) -> EncryptedPastaKey {
        let elements = self
            .cipher
            .key()
            .expose_elements()
            .iter()
            .map(|&k| ctx.encrypt(pk, &ctx.encode_scalar(k), rng))
            .collect();
        EncryptedPastaKey { elements }
    }

    /// Symmetrically encrypts `message` under `nonce` — the hot path the
    /// cryptoprocessor accelerates.
    ///
    /// # Errors
    ///
    /// Propagates [`PastaError`] for non-canonical message elements.
    pub fn encrypt(&self, nonce: u128, message: &[u64]) -> Result<PastaCiphertext, PastaError> {
        self.cipher.encrypt(nonce, message)
    }

    /// Decrypts an FHE result returned by the server.
    #[must_use]
    pub fn retrieve(
        &self,
        ctx: &BfvContext,
        fhe_sk: &BfvSecretKey,
        results: &[FheCiphertext],
    ) -> Vec<u64> {
        results
            .iter()
            .map(|ct| ctx.decrypt(fhe_sk, ct).scalar())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_fhe::BfvParams;
    use pasta_math::Modulus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> PastaParams {
        PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap()
    }

    #[test]
    fn provisioning_produces_2t_ciphertexts() {
        let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let client = HheClient::new(tiny_params(), b"client");
        let ek = client.provision_key(&ctx, &pk, &mut rng);
        assert_eq!(ek.elements.len(), 8);
        // Each provisioned element decrypts to the PASTA key element.
        for (ct, &k) in ek
            .elements
            .iter()
            .zip(client.cipher().key().expose_elements())
        {
            assert_eq!(ctx.decrypt(&sk, ct).scalar(), k);
        }
        assert!(ek.size_bytes(&ctx) > 0);
    }

    #[test]
    fn client_pasta_encryption_roundtrips_locally() {
        let client = HheClient::new(tiny_params(), b"c2");
        let msg = vec![1u64, 2, 3, 4, 5];
        let ct = client.encrypt(42, &msg).unwrap();
        assert_eq!(client.cipher().decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn retrieve_decrypts_scalars() {
        let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let client = HheClient::new(tiny_params(), b"c3");
        let cts: Vec<_> = [5u64, 6, 7]
            .iter()
            .map(|&v| ctx.encrypt(&pk, &ctx.encode_scalar(v), &mut rng))
            .collect();
        assert_eq!(client.retrieve(&ctx, &sk, &cts), vec![5, 6, 7]);
    }
}
