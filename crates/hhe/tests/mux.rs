//! Cross-tenant slot multiplexing: randomized bucket compositions must
//! demux to exactly what each member's standalone scalar transcipher
//! produces — mixed tenants, partial final blocks, repeated members,
//! and single-member fast-path buckets alike.

use pasta_core::PastaParams;
use pasta_fhe::{BfvContext, BfvParams, BfvSecretKey, FheError};
use pasta_hhe::{retrieve_muxed, HheClient, HheServer, MuxHheServer, MuxMember};
use pasta_math::Modulus;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

const TENANTS: usize = 4;

/// One analyst FHE keypair (the domain), several tenants provisioned
/// under it — each with its own PASTA key and a private scalar server to
/// compare against.
struct World {
    params: PastaParams,
    ctx: BfvContext,
    sk: BfvSecretKey,
    clients: Vec<HheClient>,
    scalars: Vec<HheServer>,
    mux: MuxHheServer,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
        // One extra prime vs the batched tests: the composed key costs
        // one more plaintext multiplication (the slot mask).
        let bfv = BfvParams {
            prime_count: 6,
            ..BfvParams::test_tiny()
        };
        let ctx = BfvContext::new(bfv).unwrap();
        let mut rng = StdRng::seed_from_u64(0x3A7);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let mut clients = Vec::new();
        let mut scalars = Vec::new();
        for j in 0..TENANTS {
            let client = HheClient::new(params, &(j as u64).to_le_bytes());
            let ek = client.provision_key(&ctx, &pk, &mut rng);
            let relin = ctx.generate_relin_key(&sk, &mut rng);
            scalars.push(HheServer::new(params, relin, ek).unwrap());
            clients.push(client);
        }
        let relin = ctx.generate_relin_key(&sk, &mut rng);
        let mux = MuxHheServer::new(params, &ctx, relin).unwrap();
        World {
            params,
            ctx,
            sk,
            clients,
            scalars,
            mux,
        }
    })
}

/// A deterministic message of `len` canonical field elements.
fn message(seed: u64, len: usize) -> Vec<u64> {
    let modulus = world().params.modulus().value();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..modulus)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any bucket of 1–4 members (possibly the same tenant twice, each
    /// with its own session nonce; 1–10 elements each, so final blocks
    /// are usually partial) demuxes member-exactly, and every demuxed
    /// message equals what the member's *private scalar* transcipher
    /// recovers for the same ciphertext.
    #[test]
    fn random_buckets_demux_to_the_scalar_result(
        spec in proptest::collection::vec(any::<u64>(), 1..=4),
        seed in any::<u64>(),
    ) {
        let w = world();
        let encrypted: Vec<(usize, Vec<u64>, pasta_core::Ciphertext)> = spec
            .iter()
            .enumerate()
            .map(|(i, &raw)| {
                // Unpack one u64 into (tenant, element count, nonce).
                let tenant = (raw % TENANTS as u64) as usize;
                let elements = 1 + ((raw >> 8) % 10) as usize;
                let nonce = raw >> 16;
                let msg = message(seed ^ i as u64, elements);
                let ct = w.clients[tenant].encrypt(u128::from(nonce), &msg).unwrap();
                (tenant, msg, ct)
            })
            .collect();
        let members: Vec<MuxMember<'_>> = encrypted
            .iter()
            .map(|(tenant, _, ct)| MuxMember {
                tenant: *tenant as u64,
                encrypted_key: w.scalars[*tenant].encrypted_key(),
                ct,
            })
            .collect();
        let muxed = w.mux.transcipher_mux(&w.ctx, &members).unwrap();
        prop_assert_eq!(muxed.ranges.len(), members.len());
        for ((tenant, msg, ct), range) in encrypted.iter().zip(&muxed.ranges) {
            let demuxed = retrieve_muxed(&w.ctx, &w.sk, &muxed.positions, *range).unwrap();
            prop_assert_eq!(&demuxed, msg, "muxed slot range must decrypt to the message");
            let scalar_cts = w.scalars[*tenant].transcipher(&w.ctx, ct).unwrap();
            let scalar = w.clients[*tenant].retrieve(&w.ctx, &w.sk, &scalar_cts);
            prop_assert_eq!(&demuxed, &scalar, "mux and scalar paths must agree");
        }
    }
}

#[test]
fn repeated_bucket_replays_bit_exact_from_the_cache() {
    let w = world();
    let msg_a = message(11, 6);
    let msg_b = message(12, 3);
    let ct_a = w.clients[0].encrypt(0xA0, &msg_a).unwrap();
    let ct_b = w.clients[1].encrypt(0xB0, &msg_b).unwrap();
    let members = [
        MuxMember {
            tenant: 0,
            encrypted_key: w.scalars[0].encrypted_key(),
            ct: &ct_a,
        },
        MuxMember {
            tenant: 1,
            encrypted_key: w.scalars[1].encrypted_key(),
            ct: &ct_b,
        },
    ];
    let cold = w.mux.transcipher_mux(&w.ctx, &members).unwrap();
    let misses = w.mux.cache().stats().misses;
    let warm = w.mux.transcipher_mux(&w.ctx, &members).unwrap();
    assert_eq!(
        cold.positions, warm.positions,
        "memoized composition and material must be bit-exact"
    );
    assert_eq!(
        w.mux.cache().stats().misses,
        misses,
        "the warm pass must not rebuild the composed key or material"
    );
}

#[test]
fn oversized_bucket_is_refused() {
    let w = world();
    let msg = message(5, 4);
    let cts: Vec<_> = (0..w.mux.capacity() + 1)
        .map(|i| w.clients[0].encrypt(0x1000 + i as u128, &msg).unwrap())
        .collect();
    let members: Vec<MuxMember<'_>> = cts
        .iter()
        .map(|ct| MuxMember {
            tenant: 0,
            encrypted_key: w.scalars[0].encrypted_key(),
            ct,
        })
        .collect();
    assert!(matches!(
        w.mux.transcipher_mux(&w.ctx, &members),
        Err(FheError::Incompatible(_))
    ));
    assert!(matches!(
        w.mux.transcipher_mux(&w.ctx, &[]),
        Err(FheError::Incompatible(_))
    ));
}
