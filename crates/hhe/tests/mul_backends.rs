//! Multiplication-backend equivalence: a full transcipher run on the
//! default RNS path must recover the same plaintext as a run on the
//! retained bigint oracle (`PASTA_MUL=bigint`). The ciphertext bytes
//! may differ — the RNS lift produces a near-centered representative,
//! not the oracle's exactly centered one — but decryption must agree.
//!
//! These tests live in their own integration-test binary so mutating
//! the `PASTA_MUL` process environment cannot race unrelated unit
//! tests.

use pasta_core::PastaParams;
use pasta_fhe::{BfvContext, BfvParams, MUL_BACKEND_ENV};
use pasta_hhe::{provision_batched_key, BatchedHheServer, HheClient, HheServer};
use pasta_math::Modulus;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `f` with the multiplication backend forced to `backend`
/// (`None` = default RNS path), restoring the prior value after.
fn with_backend<T>(backend: Option<&str>, f: impl FnOnce() -> T) -> T {
    let prior = std::env::var(MUL_BACKEND_ENV).ok();
    match backend {
        Some(v) => std::env::set_var(MUL_BACKEND_ENV, v),
        None => std::env::remove_var(MUL_BACKEND_ENV),
    }
    let out = f();
    match prior {
        Some(v) => std::env::set_var(MUL_BACKEND_ENV, v),
        None => std::env::remove_var(MUL_BACKEND_ENV),
    }
    out
}

#[test]
fn scalar_transcipher_decrypts_identically_on_both_backends() {
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(4242);
    let sk = ctx.generate_secret_key(&mut rng);
    let pk = ctx.generate_public_key(&sk, &mut rng);
    let relin = ctx.generate_relin_key(&sk, &mut rng);
    let client = HheClient::new(params, b"mul-backends");
    let ek = client.provision_key(&ctx, &pk, &mut rng);

    let message: Vec<u64> = (0..8u64).map(|i| (i * 31_337 + 7) % 65_537).collect();
    let pasta_ct = client.encrypt(99, &message).unwrap();

    // Fresh server per backend: the keystream material cache must not
    // let the first run's backend leak into the second.
    let run = |backend: Option<&str>| {
        with_backend(backend, || {
            let server = HheServer::new(params, relin.clone(), ek.clone()).unwrap();
            server.transcipher(&ctx, &pasta_ct).unwrap()
        })
    };
    let fast = run(None);
    let oracle = run(Some("bigint"));

    assert_eq!(client.retrieve(&ctx, &sk, &fast), message);
    assert_eq!(client.retrieve(&ctx, &sk, &oracle), message);
}

#[test]
fn batched_transcipher_decrypts_identically_on_both_backends() {
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let bfv = BfvParams {
        prime_count: 5,
        ..BfvParams::test_tiny()
    };
    let ctx = BfvContext::new(bfv).unwrap();
    let mut rng = StdRng::seed_from_u64(2727);
    let sk = ctx.generate_secret_key(&mut rng);
    let pk = ctx.generate_public_key(&sk, &mut rng);
    let relin = ctx.generate_relin_key(&sk, &mut rng);
    let client = HheClient::new(params, b"mul-backends");
    let ek = provision_batched_key(client.cipher().key().expose_elements(), &ctx, &pk, &mut rng)
        .unwrap();

    let message: Vec<u64> = (0..12u64).map(|i| (i * 3_141 + 59) % 65_537).collect();
    let pasta_ct = client.encrypt(0xBEEF, &message).unwrap();

    let run = |backend: Option<&str>| {
        with_backend(backend, || {
            let server = BatchedHheServer::new(params, &ctx, relin.clone(), ek.clone()).unwrap();
            let batch = server.transcipher_batched(&ctx, &pasta_ct).unwrap();
            let t = params.t();
            let mut recovered = vec![0u64; message.len()];
            for position in 0..t {
                for (block, &v) in server
                    .decode_position(&ctx, &sk, &batch, position)
                    .iter()
                    .enumerate()
                {
                    let idx = block * t + position;
                    if idx < recovered.len() {
                        recovered[idx] = v;
                    }
                }
            }
            recovered
        })
    };

    assert_eq!(run(None), message);
    assert_eq!(run(Some("bigint")), message);
}
