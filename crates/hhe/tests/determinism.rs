//! Thread-count and SIMD-backend determinism: the parallel fan-outs
//! (`pasta-par`) must be bit-exact for any worker count, and the
//! vectorized arithmetic kernels (`pasta_math::simd`) for any backend.
//! `PASTA_THREADS=1` and `=4` — and the scalar vs AVX2 kernels — have
//! to produce *identical* transciphered ciphertexts, not just
//! ciphertexts that decrypt to the same message. The serial legs here
//! force the scalar backend and the threaded legs force AVX2 (which
//! falls back to scalar off x86), so one comparison pins both
//! dimensions at once.
//!
//! These tests live in their own integration-test binary so mutating the
//! `PASTA_THREADS` process environment cannot race against unrelated
//! unit tests.

use pasta_core::PastaParams;
use pasta_fhe::{BfvContext, BfvParams, Ciphertext as FheCiphertext};
use pasta_hhe::{provision_batched_key, BatchedHheServer, HheClient, HheServer, PackedHheServer};
use pasta_math::{simd, Modulus};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `f` under a forced thread count AND a forced SIMD backend:
/// `"1"` pairs with the scalar kernels, everything else with AVX2.
fn with_threads<T>(n: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var(pasta_par::THREADS_ENV, n);
    simd::force_backend(Some(if n == "1" {
        simd::Backend::Scalar
    } else {
        simd::Backend::Avx2
    }));
    let out = f();
    simd::force_backend(None);
    std::env::remove_var(pasta_par::THREADS_ENV);
    out
}

#[test]
fn batched_transcipher_is_thread_count_invariant() {
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let bfv = BfvParams {
        prime_count: 5,
        ..BfvParams::test_tiny()
    };
    let ctx = BfvContext::new(bfv).unwrap();
    let mut rng = StdRng::seed_from_u64(808);
    let sk = ctx.generate_secret_key(&mut rng);
    let pk = ctx.generate_public_key(&sk, &mut rng);
    let relin = ctx.generate_relin_key(&sk, &mut rng);
    let client = HheClient::new(params, b"determinism");
    let ek = provision_batched_key(client.cipher().key().expose_elements(), &ctx, &pk, &mut rng)
        .unwrap();
    let server = BatchedHheServer::new(params, &ctx, relin, ek).unwrap();

    // Three blocks (12 elements / t = 4) so the batch genuinely spans
    // multiple counters.
    let message: Vec<u64> = (0..12u64).map(|i| (i * 3_141 + 59) % 65_537).collect();
    let pasta_ct = client.encrypt(0xD1CE, &message).unwrap();

    let serial = with_threads("1", || server.transcipher_batched(&ctx, &pasta_ct).unwrap());
    // Fresh server for the threaded pass: a cache hit from the serial
    // pass must not mask a scheduling-dependent material build.
    let threaded = with_threads("4", || {
        let mut rng = StdRng::seed_from_u64(808);
        let sk2 = ctx.generate_secret_key(&mut rng);
        let pk2 = ctx.generate_public_key(&sk2, &mut rng);
        let relin2 = ctx.generate_relin_key(&sk2, &mut rng);
        let client2 = HheClient::new(params, b"determinism");
        let ek2 = provision_batched_key(
            client2.cipher().key().expose_elements(),
            &ctx,
            &pk2,
            &mut rng,
        )
        .unwrap();
        let server2 = BatchedHheServer::new(params, &ctx, relin2, ek2).unwrap();
        server2.transcipher_batched(&ctx, &pasta_ct).unwrap()
    });

    assert_eq!(serial.blocks, 3);
    assert_eq!(
        serial.positions, threaded.positions,
        "PASTA_THREADS=1/scalar and =4/avx2 must produce identical ciphertexts"
    );

    // And re-running on the same (warm) server stays identical too.
    let warm = with_threads("4", || server.transcipher_batched(&ctx, &pasta_ct).unwrap());
    assert_eq!(serial.positions, warm.positions);
}

#[test]
fn scalar_transcipher_is_thread_count_invariant() {
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let sk = ctx.generate_secret_key(&mut rng);
    let pk = ctx.generate_public_key(&sk, &mut rng);
    let relin = ctx.generate_relin_key(&sk, &mut rng);
    let client = HheClient::new(params, b"determinism");
    let ek = client.provision_key(&ctx, &pk, &mut rng);
    let server = HheServer::new(params, relin, ek).unwrap();

    let message: Vec<u64> = (0..8u64).map(|i| i * 999 + 1).collect();
    let pasta_ct = client.encrypt(7, &message).unwrap();

    let serial: Vec<FheCiphertext> =
        with_threads("1", || server.transcipher(&ctx, &pasta_ct).unwrap());
    let threaded = with_threads("4", || server.transcipher(&ctx, &pasta_ct).unwrap());
    assert_eq!(serial, threaded);
    assert_eq!(client.retrieve(&ctx, &sk, &serial), message);
}

#[test]
fn packed_bsgs_transcipher_is_thread_count_invariant() {
    // The BSGS affine evaluation fans its baby rotations and giant
    // groups over the worker pool; the group terms are summed serially
    // in group order, so the packed (default BSGS) transcipher must be
    // bit-identical for any PASTA_THREADS — cold cache and warm.
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let bfv = BfvParams {
        prime_count: 8,
        ..BfvParams::test_tiny()
    };
    let ctx = BfvContext::new(bfv).unwrap();
    let client = HheClient::new(params, b"determinism");
    let message = vec![11u64, 22, 33, 44];
    let pasta_ct = client.encrypt(0xDEC0, &message).unwrap();

    let build = || {
        let mut rng = StdRng::seed_from_u64(909);
        let sk = ctx.generate_secret_key(&mut rng);
        let server = PackedHheServer::new(
            params,
            &ctx,
            &sk,
            client.cipher().key().expose_elements(),
            &mut rng,
        )
        .unwrap();
        (sk, server)
    };

    // Cold-cache passes: a fresh server per thread count, so a cache hit
    // cannot mask a scheduling-dependent material build.
    let (sk, server1) = with_threads("1", build);
    let serial = with_threads("1", || {
        server1.transcipher_packed(&ctx, &pasta_ct, 0).unwrap()
    });
    let (_, server4) = with_threads("4", build);
    let cold = with_threads("4", || {
        server4.transcipher_packed(&ctx, &pasta_ct, 0).unwrap()
    });
    assert_eq!(
        serial, cold,
        "PASTA_THREADS=1/scalar and =4/avx2 must produce identical packed ciphertexts"
    );

    // Warm-cache pass: re-running on the already-populated server stays
    // identical too.
    let warm = with_threads("4", || {
        server4.transcipher_packed(&ctx, &pasta_ct, 0).unwrap()
    });
    assert_eq!(serial, warm);
    assert_eq!(server1.decode(&ctx, &sk, &serial, 4), message);
}
