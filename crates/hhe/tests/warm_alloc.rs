//! Warm-path zero-allocation invariant for transciphering: once the
//! scratch pool (`pasta_fhe::scratch`) and the server's material cache
//! are warm, a full transcipher pass must allocate **zero** coefficient
//! rows and zero big integers in the kernels — the software analogue of
//! the paper's fixed on-chip buffers.
//!
//! Lives in its own integration-test binary: the test pins
//! `PASTA_THREADS=1` (the thread-local debug counters can only observe
//! the calling thread), and mutating the process environment must not
//! race other tests.

use pasta_core::PastaParams;
use pasta_fhe::{BfvContext, BfvParams};
use pasta_hhe::{HheClient, HheServer};
use pasta_math::Modulus;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn warm_transcipher_allocates_no_poly_rows_or_bigints() {
    std::env::set_var(pasta_par::THREADS_ENV, "1");
    let params = PastaParams::custom(4, 2, Modulus::PASTA_17_BIT).unwrap();
    let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(4242);
    let fhe_sk = ctx.generate_secret_key(&mut rng);
    let fhe_pk = ctx.generate_public_key(&fhe_sk, &mut rng);
    let relin = ctx.generate_relin_key(&fhe_sk, &mut rng);
    let client = HheClient::new(params, b"warm alloc");
    let encrypted_key = client.provision_key(&ctx, &fhe_pk, &mut rng);
    let server = HheServer::new(params, relin, encrypted_key).unwrap();

    let message = vec![5u64, 17, 4096, 65_000];
    let pasta_ct = client.encrypt(0xBEEF, &message).unwrap();

    // Cold passes: build the cached keystream material and populate the
    // scratch pool with every buffer shape the pipeline needs.
    let _ = server.transcipher(&ctx, &pasta_ct).unwrap();
    let _ = server.transcipher(&ctx, &pasta_ct).unwrap();

    // Warm pass: every polynomial buffer must come from the pool.
    let rows_before = pasta_fhe::scratch::poly_alloc_count();
    let ubig_before = pasta_fhe::bigint::ubig_alloc_count();
    let fhe_cts = server.transcipher(&ctx, &pasta_ct).unwrap();
    let rows_after = pasta_fhe::scratch::poly_alloc_count();
    let ubig_after = pasta_fhe::bigint::ubig_alloc_count();

    if cfg!(debug_assertions) {
        assert_eq!(
            rows_after, rows_before,
            "warm transcipher allocated fresh coefficient rows"
        );
        assert_eq!(
            ubig_after, ubig_before,
            "warm transcipher allocated big integers"
        );
    }

    // The warm pass still transciphers correctly.
    let recovered = client.retrieve(&ctx, &fhe_sk, &fhe_cts);
    assert_eq!(recovered, message);
    std::env::remove_var(pasta_par::THREADS_ENV);
}
