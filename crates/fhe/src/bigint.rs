//! Minimal unsigned big-integer arithmetic.
//!
//! BFV decryption computes `round(t · [c(s)]_q / q) mod t` where `q` is a
//! product of several 50–60-bit RNS primes (hundreds of bits). The RNS
//! representation must therefore be CRT-reconstructed into a positional
//! integer for the final scaled rounding. This module implements exactly
//! the operations that pipeline needs — little-endian `u64`-limb add,
//! subtract, compare, multiply, shift, and divide-with-remainder — with no
//! external dependencies.

use std::cmp::Ordering;

#[cfg(debug_assertions)]
thread_local! {
    static UBIG_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Debug-build instrumentation: the number of [`UBig`] values constructed
/// on the **current thread** since it started. Release builds always
/// return 0. Tests use the delta across a code region to prove the RNS
/// multiplication fast path allocates no big integers; the counter is
/// thread-local so `pasta-par` worker threads and unrelated test threads
/// cannot pollute the measurement.
#[must_use]
pub fn ubig_alloc_count() -> u64 {
    #[cfg(debug_assertions)]
    {
        UBIG_ALLOCS.with(std::cell::Cell::get)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[cfg(debug_assertions)]
fn count_alloc() {
    UBIG_ALLOCS.with(|c| c.set(c.get() + 1));
}

#[cfg(not(debug_assertions))]
fn count_alloc() {}

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs,
/// normalized: no trailing zero limbs; zero is the empty limb vector).
///
/// # Examples
///
/// ```
/// use pasta_fhe::bigint::UBig;
/// let a = UBig::from_u128(u128::MAX);
/// let b = a.mul(&a);
/// let (q, r) = b.div_rem(&a);
/// assert_eq!(q, a);
/// assert!(r.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        count_alloc();
        UBig { limbs: Vec::new() }
    }

    /// One.
    #[must_use]
    pub fn one() -> Self {
        count_alloc();
        UBig { limbs: vec![1] }
    }

    /// From a `u64`.
    #[must_use]
    pub fn from_u64(x: u64) -> Self {
        count_alloc();
        if x == 0 {
            UBig { limbs: Vec::new() }
        } else {
            UBig { limbs: vec![x] }
        }
    }

    /// From a `u128`.
    #[must_use]
    pub fn from_u128(x: u128) -> Self {
        count_alloc();
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        let mut v = UBig {
            limbs: vec![lo, hi],
        };
        v.normalize();
        v
    }

    /// From little-endian limbs (normalizing).
    #[must_use]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        count_alloc();
        let mut v = UBig { limbs };
        v.normalize();
        v
    }

    /// The little-endian limbs (no trailing zeros).
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Whether the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Bit length (0 for zero).
    #[must_use]
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Lowest 64 bits.
    #[must_use]
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Comparison.
    #[must_use]
    pub fn cmp_big(&self, other: &UBig) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &UBig) -> UBig {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u128;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = u128::from(self.limbs.get(i).copied().unwrap_or(0));
            let b = u128::from(other.limbs.get(i).copied().unwrap_or(0));
            let s = a + b + carry;
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (the pipeline never subtracts past zero).
    #[must_use]
    pub fn sub(&self, other: &UBig) -> UBig {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "bigint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = i128::from(self.limbs[i]);
            let b = i128::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        debug_assert_eq!(borrow, 0);
        UBig::from_limbs(out)
    }

    /// `self · x` for a single limb.
    #[must_use]
    pub fn mul_u64(&self, x: u64) -> UBig {
        if x == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let p = u128::from(l) * u128::from(x) + carry;
            out.push(p as u64);
            carry = p >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }

    /// `self · other` (schoolbook).
    #[must_use]
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        UBig::from_limbs(out)
    }

    /// `self << bits`.
    #[must_use]
    pub fn shl(&self, bits: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        UBig::from_limbs(out)
    }

    /// `self >> bits`.
    #[must_use]
    pub fn shr(&self, bits: usize) -> UBig {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return UBig::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = src.get(i + 1).map_or(0, |&n| n << (64 - bit_shift));
            out.push(lo | hi);
        }
        UBig::from_limbs(out)
    }

    /// Tests bit `i`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .is_some_and(|&l| (l >> (i % 64)) & 1 == 1)
    }

    /// `(self / divisor, self % divisor)` by limb-wise schoolbook long
    /// division (Knuth Algorithm D, base 2⁶⁴).
    ///
    /// This sits on the BFV tensor-multiplication hot path: every CRT
    /// reconstruction and every scaled rounding divides by a *fixed*
    /// multi-hundred-bit modulus once per coefficient, so division must
    /// cost O(limbs²) words of work — not O(bits) full-width
    /// compare/subtract passes like naive binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem(&self, divisor: &UBig) -> (UBig, UBig) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_big(divisor) == Ordering::Less {
            return (UBig::zero(), self.clone());
        }
        let n = divisor.limbs.len();
        if n == 1 {
            // Short division: one 128/64 step per dividend limb.
            let d = u128::from(divisor.limbs[0]);
            let mut q = vec![0u64; self.limbs.len()];
            let mut r: u128 = 0;
            for (i, &l) in self.limbs.iter().enumerate().rev() {
                let cur = (r << 64) | u128::from(l);
                q[i] = (cur / d) as u64;
                r = cur % d;
            }
            return (UBig::from_limbs(q), UBig::from_u64(r as u64));
        }

        // Normalize so the divisor's top limb has its high bit set; the
        // two-limb quotient-digit estimate is then off by at most two.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        debug_assert_eq!(v.len(), n);
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // explicit top limb for the loop
        let m = u.len() - 1 - n;
        let mut q = vec![0u64; m + 1];
        let v_top = u128::from(v[n - 1]);
        let v_next = u128::from(v[n - 2]);
        for j in (0..=m).rev() {
            // Estimate q̂ from the top two dividend limbs against v's top limb.
            let top = (u128::from(u[j + n]) << 64) | u128::from(u[j + n - 1]);
            let mut qhat = top / v_top;
            let mut rhat = top % v_top;
            while qhat >> 64 != 0 || qhat * v_next > (rhat << 64 | u128::from(u[j + n - 2])) {
                qhat -= 1;
                rhat += v_top;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // u[j..=j+n] -= q̂ · v, tracking a signed borrow.
            let qh = qhat as u64;
            let mut borrow: i128 = 0;
            for i in 0..n {
                let p = u128::from(qh) * u128::from(v[i]);
                let t = i128::from(u[j + i]) - borrow - i128::from(p as u64);
                u[j + i] = t as u64;
                borrow = i128::from((p >> 64) as u64) - (t >> 64);
            }
            let t = i128::from(u[j + n]) - borrow;
            u[j + n] = t as u64;
            if t < 0 {
                // q̂ was one too large (rare): add one divisor back.
                q[j] = qh - 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let s = u128::from(u[j + i]) + u128::from(v[i]) + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            } else {
                q[j] = qh;
            }
        }
        u.truncate(n);
        (UBig::from_limbs(q), UBig::from_limbs(u).shr(shift))
    }

    /// `self mod m` as a `u64`, for `m < 2^63` (used to push CRT values
    /// into small prime fields).
    #[must_use]
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "modulo zero");
        let mut r: u128 = 0;
        for &l in self.limbs.iter().rev() {
            r = ((r << 64) | u128::from(l)) % u128::from(m);
        }
        r as u64
    }

    /// Rounded division `round(self / divisor)` (half-up).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_round(&self, divisor: &UBig) -> UBig {
        let (q, r) = self.div_rem(divisor);
        // round half up: if 2r >= divisor, bump.
        if r.mul_u64(2).cmp_big(divisor) != Ordering::Less {
            q.add(&UBig::one())
        } else {
            q
        }
    }
}

impl std::fmt::Display for UBig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        write!(f, "0x")?;
        for (i, l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_construction() {
        assert!(UBig::zero().is_zero());
        assert_eq!(UBig::from_u64(0), UBig::zero());
        assert_eq!(UBig::from_u128(5).low_u64(), 5);
        assert_eq!(UBig::from_limbs(vec![1, 0, 0]).limbs(), &[1]);
        assert_eq!(UBig::from_u128(1 << 100).bits(), 101);
        assert_eq!(UBig::zero().bits(), 0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = UBig::from_u128(u128::MAX);
        let b = UBig::from_u128(u128::MAX - 12345);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), UBig::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = UBig::from_u64(1).sub(&UBig::from_u64(2));
    }

    #[test]
    fn mul_against_u128() {
        for (a, b) in [
            (u64::MAX, u64::MAX),
            (12345, 678_910),
            (0, 99),
            (1, u64::MAX),
        ] {
            let big = UBig::from_u64(a).mul(&UBig::from_u64(b));
            assert_eq!(big, UBig::from_u128(u128::from(a) * u128::from(b)));
            assert_eq!(UBig::from_u64(a).mul_u64(b), big);
        }
    }

    #[test]
    fn shifts() {
        let a = UBig::from_u64(0b1011);
        assert_eq!(a.shl(100).shr(100), a);
        assert_eq!(a.shl(1).low_u64(), 0b10110);
        assert_eq!(a.shr(2).low_u64(), 0b10);
        assert_eq!(a.shr(64), UBig::zero());
        assert!(a.shl(64).bit(64 + 3));
    }

    #[test]
    fn div_rem_small_cases() {
        let (q, r) = UBig::from_u64(100).div_rem(&UBig::from_u64(7));
        assert_eq!((q.low_u64(), r.low_u64()), (14, 2));
        let (q, r) = UBig::from_u64(3).div_rem(&UBig::from_u64(7));
        assert_eq!((q, r.low_u64()), (UBig::zero(), 3));
    }

    #[test]
    fn div_round_half_up() {
        assert_eq!(UBig::from_u64(7).div_round(&UBig::from_u64(2)).low_u64(), 4);
        assert_eq!(UBig::from_u64(6).div_round(&UBig::from_u64(4)).low_u64(), 2); // 1.5 -> 2
        assert_eq!(UBig::from_u64(5).div_round(&UBig::from_u64(4)).low_u64(), 1);
    }

    #[test]
    fn div_rem_add_back_branch() {
        // Classic Knuth-D stress shape: the two-limb quotient estimate
        // overshoots and the multiply-subtract underflows, forcing the
        // add-back correction. Verified via the division identity.
        let a = UBig::from_limbs(vec![0, 0xffff_ffff_ffff_fffe, 0x8000_0000_0000_0000]);
        let b = UBig::from_limbs(vec![0xffff_ffff_ffff_ffff, 0x8000_0000_0000_0000]);
        let (q, r) = a.div_rem(&b);
        assert!(r.cmp_big(&b) == Ordering::Less);
        assert_eq!(q.mul(&b).add(&r), a);

        // And a wider case with a maximal divisor top limb.
        let a = UBig::from_limbs(vec![u64::MAX; 9]);
        let b = UBig::from_limbs(vec![1, 0, u64::MAX, u64::MAX]);
        let (q, r) = a.div_rem(&b);
        assert!(r.cmp_big(&b) == Ordering::Less);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn rem_u64_matches_div_rem() {
        let a = UBig::from_u128(u128::MAX).mul(&UBig::from_u128(u128::MAX / 3));
        for m in [2u64, 65_537, (1 << 61) - 1, u64::MAX >> 1] {
            let (_, r) = a.div_rem(&UBig::from_u64(m));
            assert_eq!(a.rem_u64(m), r.low_u64(), "m = {m}");
        }
    }

    #[test]
    fn display_hex() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(
            UBig::from_u128((1u128 << 64) + 0xAB).to_string(),
            "0x100000000000000ab"
        );
    }

    proptest! {
        #[test]
        fn prop_div_rem_reconstructs(a in proptest::collection::vec(any::<u64>(), 1..12),
                                     b in proptest::collection::vec(any::<u64>(), 1..7)) {
            let a = UBig::from_limbs(a);
            let b = UBig::from_limbs(b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r.cmp_big(&b) == Ordering::Less);
            prop_assert_eq!(q.mul(&b).add(&r), a);
        }

        #[test]
        fn prop_mul_commutes_and_distributes(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
            let (ba, bb, bc) = (UBig::from_u128(a), UBig::from_u128(b), UBig::from_u128(c));
            prop_assert_eq!(ba.mul(&bb), bb.mul(&ba));
            prop_assert_eq!(ba.mul(&bb.add(&bc)), ba.mul(&bb).add(&ba.mul(&bc)));
        }

        #[test]
        fn prop_shift_is_mul_by_power(a in any::<u128>(), s in 0usize..130) {
            let big = UBig::from_u128(a);
            let pow = UBig::one().shl(s);
            prop_assert_eq!(big.shl(s), big.mul(&pow));
        }
    }
}
