//! Negacyclic number-theoretic transform over a single RNS prime.
//!
//! BFV works in `R_q = Z_q[X]/(X^N + 1)`. Multiplication in `R_q` is a
//! *negacyclic* convolution, computed by pre-twisting with powers of a
//! primitive 2N-th root of unity ψ, applying a length-N NTT (ω = ψ²),
//! pointwise multiplying, and untwisting. We fold the twists into the
//! butterfly tables as usual (Cooley–Tukey forward / Gentleman–Sande
//! inverse with ψ-power tables), so one forward + one inverse transform
//! costs `N log N` butterflies.

use pasta_math::{simd, MathError, Modulus, Zp};

/// Precomputed NTT tables for one prime and ring degree.
///
/// Twiddles are stored twice: canonical, and in Shoup form
/// (`w' = ⌊w·2⁶⁴/p⌋`) so the butterflies run Harvey's lazy-reduction
/// kernel — one high-half multiply per twiddle product, values kept in
/// `[0, 4p)` (forward) / `[0, 2p)` (inverse) through the transform, with
/// a single correction pass at the end. Sound because every supported
/// [`Modulus`] is ≤ 62 bits, so `4p < 2⁶⁴`.
#[derive(Debug, Clone)]
pub struct NttTable {
    zp: Zp,
    n: usize,
    /// ψ^bitrev(i) powers for the forward transform.
    fwd: Vec<u64>,
    /// Shoup companions of `fwd`.
    fwd_shoup: Vec<u64>,
    /// ψ^{-bitrev(i)} powers for the inverse transform.
    inv: Vec<u64>,
    /// Shoup companions of `inv`.
    inv_shoup: Vec<u64>,
    /// N^{-1} mod p.
    n_inv: u64,
    /// Shoup companion of `n_inv`.
    n_inv_shoup: u64,
}

impl NttTable {
    /// Builds tables for `Z_p[X]/(X^n + 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotInvertible`] if `2n ∤ p - 1` (no 2N-th
    /// root of unity exists) or [`MathError::UnsupportedWidth`] if `n` is
    /// not a power of two.
    pub fn new(modulus: Modulus, n: usize) -> Result<Self, MathError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(MathError::UnsupportedWidth(
                u32::try_from(n).unwrap_or(u32::MAX),
            ));
        }
        let zp = Zp::new(modulus)?;
        let psi = zp.primitive_root_of_unity(2 * n as u64)?;
        let psi_inv = zp.inv(psi)?;
        let mut fwd = vec![0u64; n];
        let mut inv = vec![0u64; n];
        let log_n = n.trailing_zeros();
        let mut p_pow = 1u64;
        let mut pi_pow = 1u64;
        let mut powers = Vec::with_capacity(n);
        let mut ipowers = Vec::with_capacity(n);
        for _ in 0..n {
            powers.push(p_pow);
            ipowers.push(pi_pow);
            p_pow = zp.mul(p_pow, psi);
            pi_pow = zp.mul(pi_pow, psi_inv);
        }
        for (i, (fw, iv)) in fwd.iter_mut().zip(inv.iter_mut()).enumerate() {
            let r = bit_reverse(i, log_n);
            *fw = powers[r];
            *iv = ipowers[r];
        }
        let n_inv = zp.inv(n as u64 % zp.p())?;
        // Butterfly twiddles carry radix-aware Shoup companions (β = 2³²
        // below the small-modulus bound); the N⁻¹ scaling goes through
        // the wide-radix broadcast kernel and keeps `Zp::shoup`.
        let fwd_shoup: Vec<u64> = fwd
            .iter()
            .map(|&w| simd::twiddle_shoup(zp.p(), w))
            .collect();
        let inv_shoup: Vec<u64> = inv
            .iter()
            .map(|&w| simd::twiddle_shoup(zp.p(), w))
            .collect();
        let n_inv_shoup = zp.shoup(n_inv);
        Ok(NttTable {
            zp,
            n,
            fwd,
            fwd_shoup,
            inv,
            inv_shoup,
            n_inv,
            n_inv_shoup,
        })
    }

    /// Ring degree `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The field context.
    #[must_use]
    pub fn zp(&self) -> &Zp {
        &self.zp
    }

    /// In-place forward negacyclic NTT (standard order in, standard order
    /// out) — Harvey/Shoup lazy-reduction Cooley–Tukey butterflies.
    ///
    /// Butterfly invariant: inputs `< 4p`. The left input is reduced to
    /// `< 2p`, the right is a lazy Shoup product in `[0, 2p)`, so both
    /// outputs stay `< 4p`. One final pass canonicalizes to `[0, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "NTT input length mismatch");
        let p = self.zp.p();
        let be = simd::backend();
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t /= 2;
            // Stage i uses the contiguous twiddle block fwd[m..2m]; one
            // stage-level dispatch covers all m groups (the short final
            // stages vectorize across groups inside the kernel).
            simd::fwd_stage_with(be, p, &self.fwd[m..2 * m], &self.fwd_shoup[m..2 * m], t, a);
            m *= 2;
        }
        simd::canonicalize_with(be, p, a);
    }

    /// In-place inverse negacyclic NTT — Harvey/Shoup lazy-reduction
    /// Gentleman–Sande butterflies.
    ///
    /// Butterfly invariant: values `< 2p` throughout; the final `N⁻¹`
    /// scaling canonicalizes to `[0, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "NTT input length mismatch");
        let p = self.zp.p();
        let be = simd::backend();
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            // Stage uses the contiguous twiddle block inv[h..2h]; one
            // stage-level dispatch covers all h groups.
            simd::inv_stage_with(be, p, &self.inv[h..2 * h], &self.inv_shoup[h..2 * h], t, a);
            t *= 2;
            m = h;
        }
        simd::mul_const_shoup_with(be, p, self.n_inv, self.n_inv_shoup, a);
    }

    /// The pre-optimization forward transform (one full Barrett/add-shift
    /// reduction per butterfly). Kept as the bit-exactness reference for
    /// tests and the before/after benches.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_reference(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "NTT input length mismatch");
        let zp = &self.zp;
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.fwd[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = zp.mul(a[j + t], s);
                    a[j] = zp.add(u, v);
                    a[j + t] = zp.sub(u, v);
                }
            }
            m *= 2;
        }
    }

    /// The pre-optimization inverse transform (see
    /// [`NttTable::forward_reference`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_reference(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "NTT input length mismatch");
        let zp = &self.zp;
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let s = self.inv[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = zp.add(u, v);
                    a[j + t] = zp.mul(zp.sub(u, v), s);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = zp.mul(*x, self.n_inv);
        }
    }

    /// Pointwise product `a ∘ b` into `a` (both in NTT domain).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn pointwise_mul_assign(&self, a: &mut [u64], b: &[u64]) {
        assert_eq!(a.len(), b.len(), "pointwise length mismatch");
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x = self.zp.mul(*x, y);
        }
    }

    /// Full negacyclic polynomial product (convenience; transforms both
    /// inputs).
    #[must_use]
    pub fn negacyclic_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        self.pointwise_mul_assign(&mut fa, &fb);
        self.inverse(&mut fa);
        fa
    }
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Slot permutation realizing the Galois automorphism `σ_g: X ↦ X^g`
/// directly in the NTT domain: `NTT(σ_g(a))[i] = NTT(a)[perm[i]]`.
///
/// The forward transform above (Cooley–Tukey with `ψ^bitrev` twiddles)
/// leaves slot `i` holding the evaluation `A(ψ^{e_i})` with
/// `e_i = 2·bitrev(i) + 1`. Since `σ_g(A)(ψ^e) = A(ψ^{e·g mod 2N})` and
/// odd exponents stay odd under multiplication by odd `g`, the
/// automorphism is a pure slot permutation — no sign corrections — and
/// an N-rotation batch can skip the inverse/forward transform pair
/// entirely (Halevi–Shoup hoisting).
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2 or `g` is even.
#[must_use]
pub fn galois_slot_permutation(n: usize, g: usize) -> Vec<usize> {
    assert!(n.is_power_of_two() && n >= 2, "ring degree must be 2^k");
    assert!(g % 2 == 1, "Galois element must be odd");
    let log_n = n.trailing_zeros();
    let two_n = 2 * n;
    (0..n)
        .map(|i| {
            let e = 2 * bit_reverse(i, log_n) + 1;
            let eg = (e * (g % two_n)) % two_n;
            bit_reverse((eg - 1) / 2, log_n)
        })
        .collect()
}

/// Schoolbook negacyclic multiplication (reference for tests and for
/// rings whose modulus lacks NTT structure).
#[must_use]
pub fn negacyclic_mul_schoolbook(zp: &Zp, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n, "length mismatch");
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let prod = zp.mul(ai, bj);
            let k = i + j;
            if k < n {
                out[k] = zp.add(out[k], prod);
            } else {
                out[k - n] = zp.sub(out[k - n], prod); // X^N = -1
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table(n: usize) -> NttTable {
        NttTable::new(Modulus::NTT_60_BIT, n).unwrap()
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 8, 64, 1024] {
            let t = table(n);
            let original: Vec<u64> = (0..n as u64).map(|i| i * 1_234_567 % t.zp().p()).collect();
            let mut a = original.clone();
            t.forward(&mut a);
            assert_ne!(a, original, "transform must not be identity");
            t.inverse(&mut a);
            assert_eq!(a, original, "n = {n}");
        }
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        let n = 32;
        let t = table(n);
        let p = t.zp().p();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 1) % p).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| p - 1 - i * 53 % p).collect();
        assert_eq!(
            t.negacyclic_mul(&a, &b),
            negacyclic_mul_schoolbook(t.zp(), &a, &b)
        );
    }

    #[test]
    fn x_times_x_pow_n_minus_1_wraps_negatively() {
        // X · X^{N-1} = X^N = -1 in the negacyclic ring.
        let n = 16;
        let t = table(n);
        let mut x = vec![0u64; n];
        x[1] = 1;
        let mut xn1 = vec![0u64; n];
        xn1[n - 1] = 1;
        let prod = t.negacyclic_mul(&x, &xn1);
        let mut expect = vec![0u64; n];
        expect[0] = t.zp().p() - 1; // -1
        assert_eq!(prod, expect);
    }

    #[test]
    fn constant_multiplication_scales() {
        let n = 8;
        let t = table(n);
        let c = vec![7u64, 0, 0, 0, 0, 0, 0, 0];
        let a: Vec<u64> = (1..=8u64).collect();
        let prod = t.negacyclic_mul(&c, &a);
        let expect: Vec<u64> = a.iter().map(|&x| t.zp().mul(7, x)).collect();
        assert_eq!(prod, expect);
    }

    #[test]
    fn plaintext_modulus_ntt_works_for_batching() {
        // 65537 supports 2N-th roots for N up to 2^15: the batch encoder
        // relies on this.
        let t = NttTable::new(Modulus::PASTA_17_BIT, 1024).unwrap();
        let mut a: Vec<u64> = (0..1024u64).map(|i| i % 65_537).collect();
        let orig = a.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn lazy_kernels_match_reference_transforms() {
        // The Shoup fast path must be bit-exact against the seed's
        // full-reduction butterflies, element by element.
        for modulus in [
            Modulus::PASTA_17_BIT,
            Modulus::PASTA_33_BIT,
            Modulus::NTT_60_BIT,
        ] {
            for n in [4usize, 64, 1024] {
                let t = NttTable::new(modulus, n).unwrap();
                let p = t.zp().p();
                let input: Vec<u64> = (0..n as u64)
                    .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % p)
                    .collect();
                let (mut fast, mut slow) = (input.clone(), input.clone());
                t.forward(&mut fast);
                t.forward_reference(&mut slow);
                assert_eq!(fast, slow, "forward p={p} n={n}");
                t.inverse(&mut fast);
                t.inverse_reference(&mut slow);
                assert_eq!(fast, slow, "inverse p={p} n={n}");
                assert_eq!(fast, input, "roundtrip p={p} n={n}");
            }
        }
    }

    #[test]
    fn lazy_ntt_mul_matches_schoolbook_multiple_sizes_and_primes() {
        for modulus in [
            Modulus::PASTA_17_BIT,
            Modulus::PASTA_33_BIT,
            Modulus::NTT_60_BIT,
        ] {
            for n in [8usize, 32, 128] {
                let t = NttTable::new(modulus, n).unwrap();
                let p = t.zp().p();
                let a: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 1) % p).collect();
                let b: Vec<u64> = (0..n as u64).map(|i| p - 1 - i * 53 % p).collect();
                assert_eq!(
                    t.negacyclic_mul(&a, &b),
                    negacyclic_mul_schoolbook(t.zp(), &a, &b),
                    "p={p} n={n}"
                );
            }
        }
    }

    /// Coefficient-domain reference automorphism: `X^j ↦ ±X^{jg mod N}`
    /// with a sign flip on negacyclic wraparound.
    fn automorphism_ref(zp: &Zp, a: &[u64], g: usize) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for (j, &c) in a.iter().enumerate() {
            let e = (j * g) % (2 * n);
            if e < n {
                out[e] = zp.add(out[e], c);
            } else {
                out[e - n] = zp.sub(out[e - n], c);
            }
        }
        out
    }

    #[test]
    fn galois_slot_permutation_matches_coefficient_automorphism() {
        for n in [4usize, 16, 64, 256] {
            let t = table(n);
            let p = t.zp().p();
            let a: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95) % p)
                .collect();
            let mut ntt_a = a.clone();
            t.forward(&mut ntt_a);
            for g in [3usize, 5, 9, 2 * n - 1, ((3usize.pow(7)) % (2 * n)) | 1] {
                let perm = galois_slot_permutation(n, g);
                // Bijection check.
                let mut seen = vec![false; n];
                for &s in &perm {
                    assert!(!seen[s], "duplicate image n={n} g={g}");
                    seen[s] = true;
                }
                let mut expect = automorphism_ref(t.zp(), &a, g);
                t.forward(&mut expect);
                let permuted: Vec<u64> = perm.iter().map(|&s| ntt_a[s]).collect();
                assert_eq!(permuted, expect, "n={n} g={g}");
            }
        }
    }

    #[test]
    fn galois_slot_permutation_identity_and_composition() {
        let n = 32;
        let id = galois_slot_permutation(n, 1);
        assert_eq!(id, (0..n).collect::<Vec<_>>());
        // perm(g) ∘ perm(h) = perm(g·h mod 2N): composing table lookups
        // in the order `permute by h, then by g` matches the product.
        let (g, h) = (3usize, 5usize);
        let pg = galois_slot_permutation(n, g);
        let ph = galois_slot_permutation(n, h);
        let pgh = galois_slot_permutation(n, (g * h) % (2 * n));
        let composed: Vec<usize> = (0..n).map(|i| ph[pg[i]]).collect();
        assert_eq!(composed, pgh);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(
            NttTable::new(Modulus::NTT_60_BIT, 3).is_err(),
            "non power of two"
        );
        // 2^20-th roots don't exist mod 65537 (p-1 = 2^16).
        assert!(NttTable::new(Modulus::PASTA_17_BIT, 1 << 19).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_ntt_mul_matches_schoolbook(
            a in proptest::collection::vec(0u64..65_537, 16),
            b in proptest::collection::vec(0u64..65_537, 16),
        ) {
            let t = NttTable::new(Modulus::PASTA_17_BIT, 16).unwrap();
            prop_assert_eq!(
                t.negacyclic_mul(&a, &b),
                negacyclic_mul_schoolbook(t.zp(), &a, &b)
            );
        }

        #[test]
        fn prop_forward_is_linear(
            a in proptest::collection::vec(0u64..65_537, 32),
            b in proptest::collection::vec(0u64..65_537, 32),
        ) {
            let t = NttTable::new(Modulus::PASTA_17_BIT, 32).unwrap();
            let zp = *t.zp();
            let sum: Vec<u64> = a.iter().zip(b.iter()).map(|(&x, &y)| zp.add(x, y)).collect();
            let (mut fa, mut fb, mut fs) = (a.clone(), b.clone(), sum);
            t.forward(&mut fa);
            t.forward(&mut fb);
            t.forward(&mut fs);
            let lin: Vec<u64> = fa.iter().zip(fb.iter()).map(|(&x, &y)| zp.add(x, y)).collect();
            prop_assert_eq!(fs, lin);
        }
    }
}
