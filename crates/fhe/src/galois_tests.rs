//! Tests for Galois automorphisms and homomorphic slot permutations.

#![cfg(test)]

use crate::bfv::{BfvContext, BfvParams};
use crate::encoding::BatchEncoder;
use crate::ring::RnsPoly;
use pasta_math::Modulus;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (
    BfvContext,
    crate::bfv::BfvSecretKey,
    crate::bfv::BfvPublicKey,
    StdRng,
) {
    let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x6A10);
    let sk = ctx.generate_secret_key(&mut rng);
    let pk = ctx.generate_public_key(&sk, &mut rng);
    (ctx, sk, pk, rng)
}

#[test]
fn ring_automorphism_is_a_ring_homomorphism() {
    // σ_g(a·b) = σ_g(a)·σ_g(b) and σ_g(a+b) = σ_g(a)+σ_g(b).
    let (ctx, _, _, _) = setup();
    let basis = ctx.basis();
    let a_coeffs: Vec<u64> = (0..256u64).map(|i| i * 97 + 1).collect();
    let b_coeffs: Vec<u64> = (0..256u64).map(|i| i * 31 + 5).collect();
    let a = RnsPoly::from_u64_coeffs(basis, &a_coeffs);
    let b = RnsPoly::from_u64_coeffs(basis, &b_coeffs);
    let g = 3;
    // Sum path.
    let sum_sigma = a.add(basis, &b).automorphism(basis, g);
    let sigma_sum = a
        .automorphism(basis, g)
        .add(basis, &b.automorphism(basis, g));
    assert_eq!(sum_sigma, sigma_sum);
    // Product path (through NTT).
    let (mut an, mut bn) = (a.clone(), b.clone());
    an.to_ntt(basis);
    bn.to_ntt(basis);
    let mut prod = an.mul(basis, &bn);
    prod.to_coeff(basis);
    let prod_sigma = prod.automorphism(basis, g);
    let (mut asg, mut bsg) = (a.automorphism(basis, g), b.automorphism(basis, g));
    asg.to_ntt(basis);
    bsg.to_ntt(basis);
    let mut sigma_prod = asg.mul(basis, &bsg);
    sigma_prod.to_coeff(basis);
    assert_eq!(prod_sigma, sigma_prod);
}

#[test]
fn automorphism_composition() {
    let (ctx, _, _, _) = setup();
    let basis = ctx.basis();
    let n = 256;
    let a = RnsPoly::from_u64_coeffs(basis, &(0..n as u64).map(|i| i + 2).collect::<Vec<_>>());
    let (g1, g2) = (3usize, 5usize);
    let lhs = a.automorphism(basis, g1).automorphism(basis, g2);
    let rhs = a.automorphism(basis, (g1 * g2) % (2 * n));
    assert_eq!(lhs, rhs, "σ_5 ∘ σ_3 = σ_15");
    // Identity element.
    assert_eq!(a.automorphism(basis, 1), a);
}

#[test]
fn slot_permutation_structure() {
    let enc = BatchEncoder::new(Modulus::PASTA_17_BIT, 256).unwrap();
    let perm = enc.automorphism_permutation(3);
    // A permutation: every index exactly once.
    let mut seen = vec![false; 256];
    for &p in &perm {
        assert!(!seen[p], "index {p} repeated");
        seen[p] = true;
    }
    // Nontrivial.
    assert!(perm.iter().enumerate().any(|(i, &p)| i != p));
    // g = 3 generates orbits of length dividing N/2 = 128 (the standard
    // two-orbit batching structure).
    let mut orbit_len = 1;
    let mut pos = perm[0];
    while pos != 0 && orbit_len < 1_000 {
        pos = perm[pos];
        orbit_len += 1;
    }
    assert!(
        128 % orbit_len == 0,
        "orbit length {orbit_len} must divide 128"
    );
}

#[test]
fn homomorphic_galois_matches_plaintext_automorphism() {
    let (ctx, sk, pk, mut rng) = setup();
    let enc = BatchEncoder::new(Modulus::PASTA_17_BIT, ctx.params().n).unwrap();
    let slots: Vec<u64> = (0..256u64).map(|i| i * 137 % 65_537).collect();
    let pt = enc.encode(&slots);
    let ct = ctx.encrypt(&pk, &pt, &mut rng);
    for g in [3usize, 5, 511] {
        let gk = ctx.generate_galois_key(&sk, g, &mut rng).unwrap();
        assert_eq!(gk.galois_element(), g);
        let rotated = ctx.apply_galois(&ct, &gk).unwrap();
        let expect = enc.plaintext_automorphism(&pt, g);
        assert_eq!(ctx.decrypt(&sk, &rotated), expect, "g = {g}");
        // Slot view: the decoded slots are permuted per the map.
        let perm = enc.automorphism_permutation(g);
        let decoded = enc.decode(&ctx.decrypt(&sk, &rotated));
        for (i, &p) in perm.iter().enumerate() {
            assert_eq!(decoded[i], slots[p], "slot {i} under g = {g}");
        }
    }
}

#[test]
fn galois_noise_budget_survives() {
    let (ctx, sk, pk, mut rng) = setup();
    let ct = ctx.encrypt(&pk, &ctx.encode_scalar(9), &mut rng);
    let gk = ctx.generate_galois_key(&sk, 3, &mut rng).unwrap();
    let rotated = ctx.apply_galois(&ct, &gk).unwrap();
    let budget = ctx.noise_budget(&sk, &rotated);
    assert!(budget > 50, "post-rotation budget {budget}");
    // Chain a few rotations.
    let mut chained = rotated;
    for _ in 0..3 {
        chained = ctx.apply_galois(&chained, &gk).unwrap();
    }
    assert!(ctx.noise_budget(&sk, &chained) > 20);
}

#[test]
fn galois_rejects_bad_inputs() {
    let (ctx, sk, pk, mut rng) = setup();
    assert!(
        ctx.generate_galois_key(&sk, 4, &mut rng).is_err(),
        "even g rejected"
    );
    let a = ctx.encrypt(&pk, &ctx.encode_scalar(1), &mut rng);
    let b = ctx.encrypt(&pk, &ctx.encode_scalar(2), &mut rng);
    let three = ctx.mul(&a, &b).unwrap();
    let gk = ctx.generate_galois_key(&sk, 3, &mut rng).unwrap();
    assert!(
        ctx.apply_galois(&three, &gk).is_err(),
        "3-component input rejected"
    );
}

#[test]
fn sum_slots_totals_everything() {
    // The log-depth rotate-and-add tree must leave Σ slots in every slot.
    let (ctx, sk, pk, mut rng) = setup();
    let n = ctx.params().n;
    let enc = BatchEncoder::new(Modulus::PASTA_17_BIT, n).unwrap();
    let slots: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 1) % 1_000).collect();
    let total: u64 = slots.iter().sum::<u64>() % 65_537;
    let ct = ctx.encrypt(&pk, &enc.encode(&slots), &mut rng);
    let keys = ctx.generate_sum_keys(&sk, &mut rng).unwrap();
    assert_eq!(keys.len(), (n / 2).trailing_zeros() as usize + 1);
    let summed = ctx.sum_slots(&ct, &keys).unwrap();
    let decoded = enc.decode(&ctx.decrypt(&sk, &summed));
    assert!(
        decoded.iter().all(|&v| v == total),
        "every slot must hold the total {total}"
    );
    assert!(
        ctx.noise_budget(&sk, &summed) > 10,
        "budget must survive the tree"
    );
}

#[test]
fn hoisted_rotation_decrypts_identically_and_shares_one_decomposition() {
    // One hoist, many rotations: every hoisted rotation must decrypt to
    // exactly the plaintext the unhoisted key-switch produces, and the
    // noise budget must stay comparable.
    let (ctx, sk, pk, mut rng) = setup();
    let enc = BatchEncoder::new(Modulus::PASTA_17_BIT, ctx.params().n).unwrap();
    let slots: Vec<u64> = (0..256u64).map(|i| (i * 991 + 7) % 65_537).collect();
    let ct = ctx.encrypt(&pk, &enc.encode(&slots), &mut rng);
    let hoisted = ctx.hoist(&ct).unwrap();
    for g in [3usize, 9, 27, 511] {
        let gk = ctx.generate_galois_key(&sk, g, &mut rng).unwrap();
        let classic = ctx.apply_galois(&ct, &gk).unwrap();
        let mut fast = ctx.apply_galois_hoisted(&hoisted, &gk).unwrap();
        ctx.to_coeff_ct(&mut fast);
        assert_eq!(
            ctx.decrypt(&sk, &fast),
            ctx.decrypt(&sk, &classic),
            "g = {g}"
        );
        let (bf, bc) = (
            ctx.noise_budget(&sk, &fast),
            ctx.noise_budget(&sk, &classic),
        );
        assert!(
            bf + 2 >= bc,
            "hoisted budget {bf} must not trail classic {bc}"
        );
    }
    // The hoisted form rejects what apply_galois rejects.
    let a = ctx.encrypt(&pk, &ctx.encode_scalar(1), &mut rng);
    let three = ctx.mul(&a, &a).unwrap();
    assert!(ctx.hoist(&three).is_err(), "3-component input rejected");
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]

    #[test]
    fn prop_automorphism_composition(
        coeffs in proptest::collection::vec(0u64..65_537, 256),
        gi in 0usize..256,
        hi in 0usize..256,
    ) {
        // σ_h ∘ σ_g = σ_{g·h mod 2N} for arbitrary odd Galois elements.
        let (ctx, _, _, _) = setup();
        let basis = ctx.basis();
        let n = ctx.params().n;
        let (g, h) = (2 * gi + 1, 2 * hi + 1);
        let a = RnsPoly::from_u64_coeffs(basis, &coeffs);
        let lhs = a.automorphism(basis, g).automorphism(basis, h);
        let rhs = a.automorphism(basis, (g * h) % (2 * n));
        proptest::prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn prop_hoisted_rotation_decrypts_like_unhoisted(
        slots in proptest::collection::vec(0u64..65_537, 256),
        gi in 0usize..256,
    ) {
        let (ctx, sk, pk, mut rng) = setup();
        let enc = BatchEncoder::new(Modulus::PASTA_17_BIT, ctx.params().n).unwrap();
        let g = 2 * gi + 1;
        let gk = ctx.generate_galois_key(&sk, g, &mut rng).unwrap();
        let ct = ctx.encrypt(&pk, &enc.encode(&slots), &mut rng);
        let mut fast = ctx
            .apply_galois_hoisted(&ctx.hoist(&ct).unwrap(), &gk)
            .unwrap();
        ctx.to_coeff_ct(&mut fast);
        proptest::prop_assert_eq!(
            ctx.decrypt(&sk, &fast),
            ctx.decrypt(&sk, &ctx.apply_galois(&ct, &gk).unwrap())
        );
    }
}

#[test]
fn rotate_and_sum_all_slots() {
    // The classic rotations application: summing across slots by
    // repeated rotate-and-add (log N steps along the g = 3 orbit plus the
    // conjugate orbit) — here demonstrated along one orbit.
    let (ctx, sk, pk, mut rng) = setup();
    let n = ctx.params().n;
    let enc = BatchEncoder::new(Modulus::PASTA_17_BIT, n).unwrap();
    let slots: Vec<u64> = (0..n as u64).map(|i| i % 7).collect();
    let ct = ctx.encrypt(&pk, &enc.encode(&slots), &mut rng);
    // One rotation step: acc = ct + σ(ct) merges each slot with its
    // orbit neighbour.
    let gk = ctx.generate_galois_key(&sk, 3, &mut rng).unwrap();
    let acc = ctx.add(&ct, &ctx.apply_galois(&ct, &gk).unwrap()).unwrap();
    let decoded = enc.decode(&ctx.decrypt(&sk, &acc));
    let perm = enc.automorphism_permutation(3);
    let zp = pasta_math::Zp::new(Modulus::PASTA_17_BIT).unwrap();
    for i in 0..n {
        assert_eq!(decoded[i], zp.add(slots[i], slots[perm[i]]), "slot {i}");
    }
}
