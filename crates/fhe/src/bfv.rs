//! The BFV fully homomorphic encryption scheme (textbook BFV with RNS
//! ciphertexts, full-RNS ciphertext multiplication, and
//! RNS-decomposition relinearization).
//!
//! Ciphertext multiplication runs the BEHZ fast-base-conversion path of
//! [`crate::rns_mul`] by default — per-prime 64-bit arithmetic end to
//! end. The original exact big-integer tensor path is retained as
//! [`BfvContext::mul_exact_bigint`], an oracle the tests check
//! decrypt-equality against; set [`MUL_BACKEND_ENV`]
//! (`PASTA_MUL=bigint`) to route `mul`/`square` through it at runtime.
//!
//! This is the server-side substrate of the HHE workflow (paper Fig. 1):
//! the client FHE-encrypts the PASTA key once; the server homomorphically
//! evaluates PASTA decryption to transcipher symmetric ciphertexts into
//! BFV ciphertexts. Parameters here are chosen for *functional* noise
//! budgets, not for a security level — the paper's client-side scope does
//! not depend on server parameters, and we document this substitution in
//! DESIGN.md.

use crate::bigint::UBig;
use crate::ntt::galois_slot_permutation;
use crate::ring::{generate_ntt_primes, RnsBasis, RnsPoly, PAR_MIN_RING_DEGREE};
use crate::rns_mul::RnsMulContext;
use pasta_math::{MathError, Modulus, Zp};
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Environment variable selecting the ciphertext-multiplication backend.
/// Unset (or any value other than `bigint`): the full-RNS BEHZ fast
/// path. `bigint`: the exact big-integer oracle
/// ([`BfvContext::mul_exact_bigint`]). Re-read on every multiplication,
/// like [`pasta_par::THREADS_ENV`], so tests can toggle it.
pub const MUL_BACKEND_ENV: &str = "PASTA_MUL";

/// Whether `PASTA_MUL=bigint` routes multiplications to the oracle.
fn use_bigint_backend() -> bool {
    std::env::var(MUL_BACKEND_ENV).is_ok_and(|v| v == "bigint")
}

/// Errors from the FHE substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FheError {
    /// Underlying arithmetic error.
    Math(MathError),
    /// Parameter validation failure.
    InvalidParams(String),
    /// Operation on incompatible ciphertexts (size/domain).
    Incompatible(String),
    /// The noise budget is exhausted (decryption would be wrong).
    NoiseBudgetExhausted,
}

impl fmt::Display for FheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FheError::Math(e) => write!(f, "arithmetic error: {e}"),
            FheError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            FheError::Incompatible(m) => write!(f, "incompatible operands: {m}"),
            FheError::NoiseBudgetExhausted => write!(f, "noise budget exhausted"),
        }
    }
}

impl Error for FheError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FheError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for FheError {
    fn from(e: MathError) -> Self {
        FheError::Math(e)
    }
}

/// BFV parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfvParams {
    /// Ring degree `N` (power of two).
    pub n: usize,
    /// Plaintext modulus `t` (must satisfy `2N | t - 1` for batching).
    pub plain_modulus: Modulus,
    /// Bits per RNS ciphertext prime.
    pub prime_bits: u32,
    /// Number of RNS ciphertext primes `k`.
    pub prime_count: usize,
}

impl BfvParams {
    /// Demo parameters sized for transciphering PASTA-4 (t = 32, 4
    /// rounds): `N = 2048`, `t = 65537`, `q ≈ 330` bits.
    ///
    /// **Not secure** — `N` is far too small for this `q`; chosen for
    /// functional end-to-end demonstrations.
    #[must_use]
    pub fn transcipher_demo() -> Self {
        BfvParams {
            n: 2_048,
            plain_modulus: Modulus::PASTA_17_BIT,
            prime_bits: 55,
            prime_count: 6,
        }
    }

    /// Tiny parameters for fast unit tests (`N = 256`, `q ≈ 200` bits).
    #[must_use]
    pub fn test_tiny() -> Self {
        BfvParams {
            n: 256,
            plain_modulus: Modulus::PASTA_17_BIT,
            prime_bits: 50,
            prime_count: 4,
        }
    }
}

/// The BFV context: basis, plaintext field, Δ, relinearization and
/// multiplication precomputation.
#[derive(Debug, Clone)]
pub struct BfvContext {
    params: BfvParams,
    basis: RnsBasis,
    /// Extended basis for the exact bigint tensor-product oracle.
    ext_basis: RnsBasis,
    /// Fast base conversion for full-RNS multiplication (default path).
    rns_mul: RnsMulContext,
    plain: Zp,
    /// `Δ = ⌊q/t⌋`.
    delta: UBig,
    /// `Δ mod q_i`.
    delta_rns: Vec<u64>,
    /// `γ_j mod q_i` where `γ_j = q̂_j·[q̂_j^{-1}]_{q_j}` (relin bases).
    gamma_rns: Vec<Vec<u64>>,
    /// `q/2` for centering.
    half_q: UBig,
    /// `Q_ext/2` for centering tensor results.
    half_ext: UBig,
}

impl BfvContext {
    /// Builds a context (generates RNS primes, NTT tables, CRT and
    /// relinearization constants).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] if the ring/moduli are
    /// inconsistent (e.g. batching impossible or not enough primes).
    pub fn new(params: BfvParams) -> Result<Self, FheError> {
        if !params.n.is_power_of_two() || params.n < 8 {
            return Err(FheError::InvalidParams(format!(
                "bad ring degree {}",
                params.n
            )));
        }
        let basis =
            RnsBasis::with_generated_primes(params.n, params.prime_bits, params.prime_count)
                .map_err(FheError::from)?;
        // Extended basis: enough extra primes (disjoint from the main
        // ones, one bit wider so values never collide) to hold the exact
        // tensor product: 2·bits(q) + log2(N) + 2 bits.
        let needed_bits = 2 * basis.q().bits() + params.n.trailing_zeros() as usize + 2;
        let ext_bits = (params.prime_bits + 1).min(60);
        let ext_count = needed_bits.div_ceil(ext_bits as usize - 1) + 1;
        let ext_primes = generate_ntt_primes(ext_bits, (2 * params.n).trailing_zeros(), ext_count)
            .map_err(FheError::from)?;
        let ext_basis = RnsBasis::new(params.n, ext_primes).map_err(FheError::from)?;
        let rns_mul =
            RnsMulContext::new(&basis, params.plain_modulus.value()).map_err(FheError::from)?;

        let plain = Zp::new(params.plain_modulus).map_err(FheError::from)?;
        let (delta, _) = basis.q().div_rem(&UBig::from_u64(plain.p()));
        let delta_rns = basis.reduce_bigint(&delta);
        // γ_j = q̂_j · [q̂_j^{-1}]_{q_j}: reconstruct via CRT of the unit
        // vector e_j.
        let k = basis.len();
        let mut gamma_rns = Vec::with_capacity(k);
        for j in 0..k {
            let mut unit = vec![0u64; k];
            unit[j] = 1;
            let gamma = basis.crt_reconstruct(&unit);
            gamma_rns.push(basis.reduce_bigint(&gamma));
        }
        let half_q = basis.q().shr(1);
        let half_ext = ext_basis.q().shr(1);
        Ok(BfvContext {
            params,
            basis,
            ext_basis,
            rns_mul,
            plain,
            delta,
            delta_rns,
            gamma_rns,
            half_q,
            half_ext,
        })
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &BfvParams {
        &self.params
    }

    /// The RNS basis.
    #[must_use]
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }

    /// Plaintext field `Z_t`.
    #[must_use]
    pub fn plain(&self) -> &Zp {
        &self.plain
    }

    /// Total ciphertext modulus bits.
    #[must_use]
    pub fn q_bits(&self) -> usize {
        self.basis.q().bits()
    }

    /// Generates a secret key (ternary).
    #[must_use]
    pub fn generate_secret_key<R: Rng>(&self, rng: &mut R) -> BfvSecretKey {
        let mut s = RnsPoly::random_ternary(&self.basis, rng);
        s.to_ntt(&self.basis);
        BfvSecretKey { s }
    }

    /// Generates a public key for `sk`.
    #[must_use]
    pub fn generate_public_key<R: Rng>(&self, sk: &BfvSecretKey, rng: &mut R) -> BfvPublicKey {
        let mut a = RnsPoly::random_uniform(&self.basis, rng);
        a.to_ntt(&self.basis);
        let mut e = RnsPoly::random_error(&self.basis, rng);
        e.to_ntt(&self.basis);
        // b = -(a·s + e)
        let b = a
            .mul(&self.basis, &sk.s)
            .add(&self.basis, &e)
            .neg(&self.basis);
        BfvPublicKey { b, a }
    }

    /// Generates a relinearization key (RNS decomposition, one component
    /// per ciphertext prime).
    #[must_use]
    pub fn generate_relin_key<R: Rng>(&self, sk: &BfvSecretKey, rng: &mut R) -> BfvRelinKey {
        let s2 = sk.s.mul(&self.basis, &sk.s);
        let mut components = Vec::with_capacity(self.basis.len());
        for gamma in &self.gamma_rns {
            let mut a = RnsPoly::random_uniform(&self.basis, rng);
            a.to_ntt(&self.basis);
            let mut e = RnsPoly::random_error(&self.basis, rng);
            e.to_ntt(&self.basis);
            // b = -(a·s + e) + γ_j·s²
            let b = s2
                .mul_scalar_rns(&self.basis, gamma)
                .sub(&self.basis, &a.mul(&self.basis, &sk.s).add(&self.basis, &e));
            components.push((b, a));
        }
        let components_shoup = components
            .iter()
            .map(|(b, a)| (b.shoup_rows(&self.basis), a.shoup_rows(&self.basis)))
            .collect();
        BfvRelinKey {
            components,
            components_shoup,
        }
    }

    /// Encodes a scalar into a constant plaintext polynomial.
    #[must_use]
    pub fn encode_scalar(&self, value: u64) -> Plaintext {
        let mut coeffs = vec![0u64; self.params.n];
        coeffs[0] = value % self.plain.p();
        Plaintext { coeffs }
    }

    /// Encrypts a plaintext under the public key.
    #[must_use]
    pub fn encrypt<R: Rng>(&self, pk: &BfvPublicKey, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let mut u = RnsPoly::random_ternary(&self.basis, rng);
        u.to_ntt(&self.basis);
        let mut e1 = RnsPoly::random_error(&self.basis, rng);
        let mut e2 = RnsPoly::random_error(&self.basis, rng);
        let mut c0 = pk.b.mul(&self.basis, &u);
        let mut c1 = pk.a.mul(&self.basis, &u);
        c0.to_coeff(&self.basis);
        c1.to_coeff(&self.basis);
        e1.to_coeff(&self.basis);
        e2.to_coeff(&self.basis);
        let dm = self.delta_times_plain(pt);
        let c0 = c0.add(&self.basis, &e1).add(&self.basis, &dm);
        let c1 = c1.add(&self.basis, &e2);
        Ciphertext {
            polys: vec![c0, c1],
        }
    }

    /// Encrypts the zero-noise "trivial" ciphertext `(Δ·m, 0)` — useful
    /// for injecting public constants into homomorphic computations.
    #[must_use]
    pub fn encrypt_trivial(&self, pt: &Plaintext) -> Ciphertext {
        let c0 = self.delta_times_plain(pt);
        let c1 = RnsPoly::zero(&self.basis);
        Ciphertext {
            polys: vec![c0, c1],
        }
    }

    fn delta_times_plain(&self, pt: &Plaintext) -> RnsPoly {
        let mut m = RnsPoly::from_u64_coeffs(&self.basis, &pt.coeffs);
        m.mul_scalar_rns_assign(&self.basis, &self.delta_rns);
        m
    }

    /// Pre-encodes a plaintext for repeated homomorphic use: the
    /// NTT-domain polynomial (for multiplications) and `Δ·m` in
    /// coefficient domain (for additions and trivial encryptions).
    ///
    /// The encode + forward-NTT cost is paid once here instead of on
    /// every [`BfvContext::mul_plain`]/[`BfvContext::add_plain`] call —
    /// the contract the `pasta-hhe` material cache is built on.
    #[must_use]
    pub fn prepare_plaintext(&self, pt: &Plaintext) -> PreparedPlaintext {
        let mut ntt = RnsPoly::from_u64_coeffs(&self.basis, &pt.coeffs);
        ntt.to_ntt(&self.basis);
        let ntt_shoup = ntt.shoup_rows(&self.basis);
        PreparedPlaintext {
            ntt,
            ntt_shoup,
            delta_m: self.delta_times_plain(pt),
        }
    }

    /// [`BfvContext::encrypt_trivial`] from a prepared plaintext (no
    /// re-encoding).
    #[must_use]
    pub fn encrypt_trivial_prepared(&self, prep: &PreparedPlaintext) -> Ciphertext {
        Ciphertext {
            polys: vec![prep.delta_m.clone(), RnsPoly::zero(&self.basis)],
        }
    }

    /// Decrypts a ciphertext (2 or 3 components).
    #[must_use]
    pub fn decrypt(&self, sk: &BfvSecretKey, ct: &Ciphertext) -> Plaintext {
        let phase = self.phase(sk, ct);
        let t = self.plain.p();
        let coeffs = phase
            .iter()
            .map(|x| {
                // m = round(t·x / q) mod t
                let scaled = x.mul_u64(t).div_round(self.basis.q());
                scaled.rem_u64(t)
            })
            .collect();
        Plaintext { coeffs }
    }

    /// The decryption phase `[c0 + c1·s (+ c2·s²)]_q` as big integers.
    fn phase(&self, sk: &BfvSecretKey, ct: &Ciphertext) -> Vec<UBig> {
        assert!(
            (2..=3).contains(&ct.polys.len()),
            "ciphertext must have 2 or 3 components"
        );
        let mut acc = ct.polys[0].clone();
        acc.to_ntt(&self.basis);
        let mut c1 = ct.polys[1].clone();
        c1.to_ntt(&self.basis);
        acc = acc.add(&self.basis, &c1.mul(&self.basis, &sk.s));
        if ct.polys.len() == 3 {
            let mut c2 = ct.polys[2].clone();
            c2.to_ntt(&self.basis);
            let s2 = sk.s.mul(&self.basis, &sk.s);
            acc = acc.add(&self.basis, &c2.mul(&self.basis, &s2));
        }
        acc.to_coeff(&self.basis);
        acc.to_bigint_coeffs(&self.basis)
    }

    /// Remaining noise budget in bits (0 = decryption about to fail).
    ///
    /// Computed exactly: `log2(q / (2·‖v‖∞)) - 1` where `v` is the
    /// centered distance of the phase from `Δ·m`.
    #[must_use]
    pub fn noise_budget(&self, sk: &BfvSecretKey, ct: &Ciphertext) -> u32 {
        let phase = self.phase(sk, ct);
        let pt = self.decrypt(sk, ct);
        let mut worst = 0usize;
        for (x, &m) in phase.iter().zip(pt.coeffs.iter()) {
            let dm = self.delta.mul_u64(m);
            let diff = if x.cmp_big(&dm) == std::cmp::Ordering::Less {
                dm.sub(x)
            } else {
                x.sub(&dm)
            };
            let mag = self
                .basis
                .centered_magnitude(&diff.div_rem(self.basis.q()).1);
            worst = worst.max(mag.bits());
        }
        let q_bits = self.basis.q().bits();
        (q_bits.saturating_sub(worst + 2)) as u32
    }

    /// Homomorphic addition.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] on component-count mismatch.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, FheError> {
        if a.polys.len() != b.polys.len() {
            return Err(FheError::Incompatible("component count differs".into()));
        }
        let polys = a
            .polys
            .iter()
            .zip(b.polys.iter())
            .map(|(x, y)| {
                let (mut x, mut y) = (x.clone(), y.clone());
                x.to_coeff(&self.basis);
                y.to_coeff(&self.basis);
                x.add(&self.basis, &y)
            })
            .collect();
        Ok(Ciphertext { polys })
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] on component-count mismatch.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, FheError> {
        let neg = Ciphertext {
            polys: b.polys.iter().map(|p| p.neg(&self.basis)).collect(),
        };
        self.add(a, &neg)
    }

    /// In-place homomorphic addition `a += b` — no per-component clones
    /// of `a`. (`b` is only cloned per component if it needs a domain
    /// conversion, which the server hot paths never trigger.)
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] on component-count mismatch.
    pub fn add_assign(&self, a: &mut Ciphertext, b: &Ciphertext) -> Result<(), FheError> {
        if a.polys.len() != b.polys.len() {
            return Err(FheError::Incompatible("component count differs".into()));
        }
        for (x, y) in a.polys.iter_mut().zip(b.polys.iter()) {
            x.to_coeff(&self.basis);
            if y.is_ntt() {
                let mut y = y.clone();
                y.to_coeff(&self.basis);
                x.add_assign(&self.basis, &y);
            } else {
                x.add_assign(&self.basis, y);
            }
        }
        Ok(())
    }

    /// In-place homomorphic subtraction `a -= b` (see
    /// [`BfvContext::add_assign`]).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] on component-count mismatch.
    pub fn sub_assign(&self, a: &mut Ciphertext, b: &Ciphertext) -> Result<(), FheError> {
        if a.polys.len() != b.polys.len() {
            return Err(FheError::Incompatible("component count differs".into()));
        }
        for (x, y) in a.polys.iter_mut().zip(b.polys.iter()) {
            x.to_coeff(&self.basis);
            if y.is_ntt() {
                let mut y = y.clone();
                y.to_coeff(&self.basis);
                x.sub_assign(&self.basis, &y);
            } else {
                x.sub_assign(&self.basis, y);
            }
        }
        Ok(())
    }

    /// In-place homomorphic negation (domain-agnostic).
    pub fn neg_assign(&self, ct: &mut Ciphertext) {
        for p in &mut ct.polys {
            p.neg_assign(&self.basis);
        }
    }

    /// Adds the public scalar `Δ·value` to the ciphertext in place —
    /// O(k) work (one constant coefficient per prime) instead of a full
    /// plaintext encode. This is how a symmetric-ciphertext element
    /// enters `Enc(m) = Δ·c − Enc(KS)`.
    pub fn add_scalar_assign(&self, ct: &mut Ciphertext, value: u64) {
        let v = value % self.plain.p();
        let dv: Vec<u64> = self
            .delta_rns
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let zp = self.basis.zp(i);
                zp.mul(d, v % zp.p())
            })
            .collect();
        ct.polys[0].to_coeff(&self.basis);
        ct.polys[0].add_assign_coeff0(&self.basis, &dv);
    }

    /// Adds a plaintext to a ciphertext (`c0 += Δ·m`).
    #[must_use]
    pub fn add_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let mut out = ct.clone();
        out.polys[0].to_coeff(&self.basis);
        out.polys[0].add_assign(&self.basis, &self.delta_times_plain(pt));
        out
    }

    /// In-place [`BfvContext::add_plain`] from a prepared plaintext: no
    /// encode, no allocation.
    pub fn add_plain_prepared_assign(&self, ct: &mut Ciphertext, prep: &PreparedPlaintext) {
        ct.polys[0].to_coeff(&self.basis);
        ct.polys[0].add_assign(&self.basis, &prep.delta_m);
    }

    /// Multiplies a ciphertext by a plaintext polynomial.
    #[must_use]
    pub fn mul_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let mut m = RnsPoly::from_u64_coeffs(&self.basis, &pt.coeffs);
        m.to_ntt(&self.basis);
        let polys = ct
            .polys
            .iter()
            .map(|p| {
                let mut r = p.clone();
                r.to_ntt(&self.basis);
                r.pointwise_mul_assign(&self.basis, &m);
                r.to_coeff(&self.basis);
                r
            })
            .collect();
        Ciphertext { polys }
    }

    /// [`BfvContext::mul_plain`] from a prepared plaintext: skips the
    /// per-call encode + forward NTT of the plaintext.
    #[must_use]
    pub fn mul_plain_prepared(&self, ct: &Ciphertext, prep: &PreparedPlaintext) -> Ciphertext {
        let polys = ct
            .polys
            .iter()
            .map(|p| {
                let mut r = p.clone();
                r.to_ntt(&self.basis);
                r.pointwise_mul_shoup_assign(&self.basis, &prep.ntt, &prep.ntt_shoup);
                r.to_coeff(&self.basis);
                r
            })
            .collect();
        Ciphertext { polys }
    }

    /// Converts every component to NTT domain in place. Hoists the
    /// transforms out of inner loops: an affine layer that multiplies
    /// one ciphertext by `t` plaintexts converts it once, not `t` times.
    pub fn to_ntt_ct(&self, ct: &mut Ciphertext) {
        for p in &mut ct.polys {
            p.to_ntt(&self.basis);
        }
    }

    /// Converts every component to coefficient domain in place.
    pub fn to_coeff_ct(&self, ct: &mut Ciphertext) {
        for p in &mut ct.polys {
            p.to_coeff(&self.basis);
        }
    }

    /// `ct ∘ prep` with the ciphertext already in NTT domain; the result
    /// stays in NTT domain (affine-layer accumulator seeding).
    ///
    /// # Panics
    ///
    /// Panics if any component is in coefficient domain.
    #[must_use]
    pub fn mul_plain_prepared_ntt(&self, ct: &Ciphertext, prep: &PreparedPlaintext) -> Ciphertext {
        let polys = ct
            .polys
            .iter()
            .map(|p| {
                let mut r = p.clone();
                r.pointwise_mul_shoup_assign(&self.basis, &prep.ntt, &prep.ntt_shoup);
                r
            })
            .collect();
        Ciphertext { polys }
    }

    /// Fused `acc += ct ∘ prep` with everything in NTT domain — one pass
    /// per component, no temporaries. The affine-layer inner loop.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] on component-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if any component is in coefficient domain.
    pub fn add_mul_plain_ntt_assign(
        &self,
        acc: &mut Ciphertext,
        ct: &Ciphertext,
        prep: &PreparedPlaintext,
    ) -> Result<(), FheError> {
        if acc.polys.len() != ct.polys.len() {
            return Err(FheError::Incompatible("component count differs".into()));
        }
        for (a, c) in acc.polys.iter_mut().zip(ct.polys.iter()) {
            a.add_mul_shoup_assign(&self.basis, c, &prep.ntt, &prep.ntt_shoup);
        }
        Ok(())
    }

    /// Multiplies a ciphertext by a plaintext scalar (cheap: no NTT).
    #[must_use]
    pub fn mul_scalar(&self, ct: &Ciphertext, scalar: u64) -> Ciphertext {
        let s = scalar % self.plain.p();
        Ciphertext {
            polys: ct
                .polys
                .iter()
                .map(|p| p.mul_scalar(&self.basis, s))
                .collect(),
        }
    }

    /// Homomorphic multiplication (tensor + `t/q` scaled rounding),
    /// *without* relinearization: the result has three components.
    ///
    /// Runs the full-RNS BEHZ path by default (no big-integer work);
    /// `PASTA_MUL=bigint` routes through the exact oracle
    /// ([`BfvContext::mul_exact_bigint`]) instead. The two backends are
    /// decrypt-equal but not byte-identical: the RNS path floors with a
    /// bounded fast-conversion slack where the oracle rounds half-up —
    /// the difference lands in noise far below the decryption threshold.
    ///
    /// Aliased operands (`mul(ct, ct)`) are detected by pointer and
    /// dispatched to the squaring specialization; use
    /// [`BfvContext::square`] directly to make the intent explicit.
    /// (Equal-but-distinct ciphertexts are *not* deep-compared — that
    /// scan cost O(N·k) on every multiply.)
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] unless both inputs have two
    /// components.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, FheError> {
        if a.polys.len() != 2 || b.polys.len() != 2 {
            return Err(FheError::Incompatible(
                "mul requires 2-component inputs".into(),
            ));
        }
        if std::ptr::eq(a, b) {
            return self.square(a);
        }
        if use_bigint_backend() {
            self.mul_exact_bigint(a, b)
        } else {
            Ok(self.mul_rns(a, Some(b)))
        }
    }

    /// Squares a ciphertext *without* relinearization — the Feistel/cube
    /// S-box hot case. Reuses each lifted operand: two lifts instead of
    /// four and three products per basis instead of four. Same backend
    /// dispatch as [`BfvContext::mul`].
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] unless the input has two
    /// components.
    pub fn square(&self, a: &Ciphertext) -> Result<Ciphertext, FheError> {
        if a.polys.len() != 2 {
            return Err(FheError::Incompatible(
                "square requires a 2-component input".into(),
            ));
        }
        if use_bigint_backend() {
            // `mul_exact_bigint` sees the aliased pointer and takes its
            // own squaring specialization.
            self.mul_exact_bigint(a, a)
        } else {
            Ok(self.mul_rns(a, None))
        }
    }

    /// The full-RNS multiply: each operand component is lifted once into
    /// the auxiliary basis (fast base conversion, coefficient domain),
    /// the tensor is evaluated NTT-pointwise in the `q` and auxiliary
    /// bases independently, and each product component is scaled by
    /// `t/q` residue-wise with a Shenoy–Kumaresan exact return to `q`.
    /// `b = None` squares `a`.
    fn mul_rns(&self, a: &Ciphertext, b: Option<&Ciphertext>) -> Ciphertext {
        let aux = self.rns_mul.aux();
        // One lift per component: (q-basis NTT, aux-basis NTT).
        let lift = |p: &RnsPoly| -> (RnsPoly, RnsPoly) {
            let mut pq = p.clone();
            pq.to_coeff(&self.basis);
            let mut paux = self.rns_mul.lift_to_aux(&self.basis, &pq);
            pq.to_ntt(&self.basis);
            paux.to_ntt(aux);
            (pq, paux)
        };
        let (a0q, a0x) = lift(&a.polys[0]);
        let (a1q, a1x) = lift(&a.polys[1]);
        let tensor = |b: Option<(&RnsPoly, &RnsPoly)>,
                      basis: &RnsBasis,
                      a0: &RnsPoly,
                      a1: &RnsPoly|
         -> (RnsPoly, RnsPoly, RnsPoly) {
            match b {
                // Squaring: t01 = a0·b1 + a1·b0 collapses to cross + cross.
                None => {
                    let cross = a0.mul(basis, a1);
                    (
                        a0.mul(basis, a0),
                        cross.add(basis, &cross),
                        a1.mul(basis, a1),
                    )
                }
                Some((b0, b1)) => {
                    let mut t01 = a0.mul(basis, b1);
                    t01.add_mul_assign(basis, a1, b0);
                    (a0.mul(basis, b0), t01, a1.mul(basis, b1))
                }
            }
        };
        let ((t00q, t01q, t11q), (t00x, t01x, t11x)) = match b {
            None => (
                tensor(None, &self.basis, &a0q, &a1q),
                tensor(None, aux, &a0x, &a1x),
            ),
            Some(b) => {
                let (b0q, b0x) = lift(&b.polys[0]);
                let (b1q, b1x) = lift(&b.polys[1]);
                (
                    tensor(Some((&b0q, &b1q)), &self.basis, &a0q, &a1q),
                    tensor(Some((&b0x, &b1x)), aux, &a0x, &a1x),
                )
            }
        };
        let scale = |mut tq: RnsPoly, mut tx: RnsPoly| -> RnsPoly {
            tq.to_coeff(&self.basis);
            tx.to_coeff(aux);
            self.rns_mul.scale_to_q(&self.basis, &tq, &tx)
        };
        Ciphertext {
            polys: vec![scale(t00q, t00x), scale(t01q, t01x), scale(t11q, t11x)],
        }
    }

    /// Homomorphic multiplication via the exact big-integer tensor
    /// product — the oracle the full-RNS path is validated against, and
    /// the backend `PASTA_MUL=bigint` selects. Every coefficient is
    /// CRT-reconstructed into the extended basis for the tensor and the
    /// `t/q` rounding is done with exact half-up big-integer division;
    /// both per-coefficient sweeps are chunked across threads
    /// (`PASTA_THREADS`, bit-identical for any count).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] unless both inputs have two
    /// components.
    pub fn mul_exact_bigint(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, FheError> {
        if a.polys.len() != 2 || b.polys.len() != 2 {
            return Err(FheError::Incompatible(
                "mul requires 2-component inputs".into(),
            ));
        }
        let parallel = self.params.n >= PAR_MIN_RING_DEGREE;
        // Lift all four polys (centered) into the extended basis, NTT there.
        let lift = |p: &RnsPoly| -> RnsPoly {
            let mut p = p.clone();
            p.to_coeff(&self.basis);
            let big = p.to_bigint_coeffs(&self.basis);
            let values: Vec<UBig> = pasta_par::maybe_parallel_map(parallel, &big, |_, v| {
                if v.cmp_big(&self.half_q) == std::cmp::Ordering::Greater {
                    // negative: Q_ext - (q - v)
                    self.ext_basis.q().sub(&self.basis.q().sub(v))
                } else {
                    v.clone()
                }
            });
            let mut ext = RnsPoly::from_bigint_coeffs(&self.ext_basis, &values);
            ext.to_ntt(&self.ext_basis);
            ext
        };
        let a0 = lift(&a.polys[0]);
        let a1 = lift(&a.polys[1]);
        // Squaring reuses the lifted operand: two lifts instead of four
        // and three extended-basis products instead of four. Aliasing is
        // detected by pointer only (`square` routes here with a == b).
        let (t00, t01, t11) = if std::ptr::eq(a, b) {
            let cross = a0.mul(&self.ext_basis, &a1);
            (
                a0.mul(&self.ext_basis, &a0),
                cross.add(&self.ext_basis, &cross),
                a1.mul(&self.ext_basis, &a1),
            )
        } else {
            let b0 = lift(&b.polys[0]);
            let b1 = lift(&b.polys[1]);
            (
                a0.mul(&self.ext_basis, &b0),
                a0.mul(&self.ext_basis, &b1)
                    .add(&self.ext_basis, &a1.mul(&self.ext_basis, &b0)),
                a1.mul(&self.ext_basis, &b1),
            )
        };
        let scale = |mut p: RnsPoly| -> RnsPoly {
            p.to_coeff(&self.ext_basis);
            let big = p.to_bigint_coeffs(&self.ext_basis);
            let t = self.plain.p();
            let values: Vec<UBig> = pasta_par::maybe_parallel_map(parallel, &big, |_, w| {
                // Center in the extended basis, scale by t/q with
                // rounding, then map back into [0, q).
                let (mag, negative) = if w.cmp_big(&self.half_ext) == std::cmp::Ordering::Greater {
                    (self.ext_basis.q().sub(w), true)
                } else {
                    (w.clone(), false)
                };
                let rounded = mag.mul_u64(t).div_round(self.basis.q());
                let reduced = rounded.div_rem(self.basis.q()).1;
                if negative && !reduced.is_zero() {
                    self.basis.q().sub(&reduced)
                } else {
                    reduced
                }
            });
            RnsPoly::from_bigint_coeffs(&self.basis, &values)
        };
        Ok(Ciphertext {
            polys: vec![scale(t00), scale(t01), scale(t11)],
        })
    }

    /// Relinearizes a 3-component ciphertext back to 2 components.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] unless the input has exactly
    /// three components.
    pub fn relinearize(&self, ct: &Ciphertext, rk: &BfvRelinKey) -> Result<Ciphertext, FheError> {
        if ct.polys.len() != 3 {
            return Err(FheError::Incompatible(
                "relinearization needs 3 components".into(),
            ));
        }
        let mut c2 = ct.polys[2].clone();
        c2.to_coeff(&self.basis);
        let mut c0 = ct.polys[0].clone();
        let mut c1 = ct.polys[1].clone();
        c0.to_ntt(&self.basis);
        c1.to_ntt(&self.basis);
        for (j, ((b, a), (b_sh, a_sh))) in rk
            .components
            .iter()
            .zip(rk.components_shoup.iter())
            .enumerate()
        {
            // d_j: the j-th RNS digit of c2 as a small-coefficient poly,
            // represented in every prime (straight from the row — no
            // intermediate copy).
            let mut d = RnsPoly::from_u64_coeffs(&self.basis, c2.row(j));
            d.to_ntt(&self.basis);
            c0.add_mul_shoup_assign(&self.basis, &d, b, b_sh);
            c1.add_mul_shoup_assign(&self.basis, &d, a, a_sh);
        }
        c0.to_coeff(&self.basis);
        c1.to_coeff(&self.basis);
        Ok(Ciphertext {
            polys: vec![c0, c1],
        })
    }

    /// Generates a Galois key for the automorphism `X ↦ X^g`
    /// (RNS decomposition, like the relinearization key but encrypting
    /// `γ_j·σ(s)`).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::InvalidParams`] for even `g`.
    pub fn generate_galois_key<R: Rng>(
        &self,
        sk: &BfvSecretKey,
        g: usize,
        rng: &mut R,
    ) -> Result<BfvGaloisKey, FheError> {
        if g.is_multiple_of(2) {
            return Err(FheError::InvalidParams(format!(
                "Galois element {g} must be odd"
            )));
        }
        let mut s = sk.s.clone();
        s.to_coeff(&self.basis);
        let mut sigma_s = s.automorphism(&self.basis, g);
        sigma_s.to_ntt(&self.basis);
        let mut components = Vec::with_capacity(self.basis.len());
        for gamma in &self.gamma_rns {
            let mut a = RnsPoly::random_uniform(&self.basis, rng);
            a.to_ntt(&self.basis);
            let mut e = RnsPoly::random_error(&self.basis, rng);
            e.to_ntt(&self.basis);
            let b = sigma_s
                .mul_scalar_rns(&self.basis, gamma)
                .sub(&self.basis, &a.mul(&self.basis, &sk.s).add(&self.basis, &e));
            components.push((b, a));
        }
        let components_shoup = components
            .iter()
            .map(|(b, a)| (b.shoup_rows(&self.basis), a.shoup_rows(&self.basis)))
            .collect();
        Ok(BfvGaloisKey {
            g,
            components,
            components_shoup,
            ntt_perm: galois_slot_permutation(self.params.n, g % (2 * self.params.n)),
        })
    }

    /// Decomposes a 2-component ciphertext into its hoisted form: the
    /// RNS digits of `c1` are extracted and forward-transformed **once**,
    /// so any number of subsequent [`BfvContext::apply_galois_hoisted`]
    /// calls skip the decompose + NTT work entirely (Halevi–Shoup
    /// hoisting). Use when rotating the same ciphertext by several
    /// Galois elements — e.g. the baby steps of a BSGS matrix–vector
    /// product.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] for a 3-component input
    /// (relinearize first).
    pub fn hoist(&self, ct: &Ciphertext) -> Result<HoistedCiphertext, FheError> {
        if ct.polys.len() != 2 {
            return Err(FheError::Incompatible("hoist needs 2 components".into()));
        }
        let mut c0 = ct.polys[0].clone();
        let mut c1 = ct.polys[1].clone();
        c0.to_ntt(&self.basis);
        c1.to_coeff(&self.basis);
        let digits = (0..self.basis.len())
            .map(|j| {
                let mut d = RnsPoly::from_u64_coeffs(&self.basis, c1.row(j));
                d.to_ntt(&self.basis);
                d
            })
            .collect();
        Ok(HoistedCiphertext { c0, digits })
    }

    /// Applies the automorphism `X ↦ X^g` to a hoisted ciphertext:
    /// an O(kN) slot permutation of the cached digits plus the fused
    /// multiply–accumulate against the key — no per-rotation NTTs.
    ///
    /// The result is returned in **NTT domain** (rotations are almost
    /// always followed by plaintext multiplications; call
    /// [`BfvContext::to_coeff_ct`] if coefficients are needed). It
    /// decrypts identically to [`BfvContext::apply_galois`] on the
    /// original ciphertext — the digit decomposition is taken before
    /// rather than after σ, which changes the digit vectors but not the
    /// value `Σ_j σ(d_j)·γ_j ≡ σ(c1) (mod q)` they represent, and the
    /// key-switch noise `Σ_j σ(d_j)·e_j` has the same per-digit bound.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] if the key was generated by a
    /// context with a different digit count.
    pub fn apply_galois_hoisted(
        &self,
        hoisted: &HoistedCiphertext,
        gk: &BfvGaloisKey,
    ) -> Result<Ciphertext, FheError> {
        if gk.components.len() != self.basis.len() || gk.ntt_perm.len() != self.params.n {
            return Err(FheError::Incompatible(
                "Galois key shape does not match context".into(),
            ));
        }
        let mut out0 = hoisted.c0.permute_slots(&self.basis, &gk.ntt_perm);
        let mut out1: Option<RnsPoly> = None;
        for (d, ((b, a), (b_sh, a_sh))) in hoisted
            .digits
            .iter()
            .zip(gk.components.iter().zip(gk.components_shoup.iter()))
        {
            let sigma_d = d.permute_slots(&self.basis, &gk.ntt_perm);
            out0.add_mul_shoup_assign(&self.basis, &sigma_d, b, b_sh);
            out1 = Some(match out1 {
                None => sigma_d.mul(&self.basis, a),
                Some(mut acc) => {
                    acc.add_mul_shoup_assign(&self.basis, &sigma_d, a, a_sh);
                    acc
                }
            });
        }
        let out1 =
            out1.ok_or_else(|| FheError::Incompatible("context has an empty RNS basis".into()))?;
        Ok(Ciphertext {
            polys: vec![out0, out1],
        })
    }

    /// Applies the automorphism `X ↦ X^g` homomorphically: the result
    /// encrypts `σ_g(m)` — a fixed permutation of the batching slots.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Incompatible`] for a mismatched key or a
    /// 3-component input (relinearize first).
    pub fn apply_galois(&self, ct: &Ciphertext, gk: &BfvGaloisKey) -> Result<Ciphertext, FheError> {
        if ct.polys.len() != 2 {
            return Err(FheError::Incompatible(
                "apply_galois needs 2 components".into(),
            ));
        }
        let mut c0 = ct.polys[0].clone();
        let mut c1 = ct.polys[1].clone();
        c0.to_coeff(&self.basis);
        c1.to_coeff(&self.basis);
        let sigma_c1 = c1.automorphism(&self.basis, gk.g);
        let mut out0 = c0.automorphism(&self.basis, gk.g);
        out0.to_ntt(&self.basis);
        let mut out1: Option<RnsPoly> = None;
        // Key-switch σ(c1)·σ(s) onto s via the RNS digits of σ(c1).
        for (j, (b, a)) in gk.components.iter().enumerate() {
            let mut d = RnsPoly::from_u64_coeffs(&self.basis, sigma_c1.row(j));
            d.to_ntt(&self.basis);
            out0 = out0.add(&self.basis, &d.mul(&self.basis, b));
            let term = d.mul(&self.basis, a);
            out1 = Some(match out1 {
                None => term,
                Some(acc) => acc.add(&self.basis, &term),
            });
        }
        let mut out1 =
            out1.ok_or_else(|| FheError::Incompatible("context has an empty RNS basis".into()))?;
        out0.to_coeff(&self.basis);
        out1.to_coeff(&self.basis);
        Ok(Ciphertext {
            polys: vec![out0, out1],
        })
    }

    /// Generates the Galois key set for [`BfvContext::sum_slots`]:
    /// powers `3^(2^i)` walking one batching orbit, plus the conjugation
    /// element `2N − 1` that folds in the second orbit.
    ///
    /// # Errors
    ///
    /// Propagates key-generation errors.
    pub fn generate_sum_keys<R: Rng>(
        &self,
        sk: &BfvSecretKey,
        rng: &mut R,
    ) -> Result<Vec<BfvGaloisKey>, FheError> {
        let two_n = 2 * self.params.n;
        let mut keys = Vec::new();
        let mut g = 3usize;
        // N/2 orbit positions -> log2(N/2) doubling steps.
        let steps = (self.params.n / 2).trailing_zeros();
        for _ in 0..steps {
            keys.push(self.generate_galois_key(sk, g, rng)?);
            g = (g * g) % two_n;
        }
        keys.push(self.generate_galois_key(sk, two_n - 1, rng)?);
        Ok(keys)
    }

    /// Homomorphically sums *all* batching slots: the result holds
    /// `Σ_i slots[i]` in every slot — the classic rotate-and-add tree
    /// (log N rotations), used for encrypted inner products.
    ///
    /// # Errors
    ///
    /// Propagates rotation errors (wrong key set).
    pub fn sum_slots(
        &self,
        ct: &Ciphertext,
        sum_keys: &[BfvGaloisKey],
    ) -> Result<Ciphertext, FheError> {
        let mut acc = ct.clone();
        for key in sum_keys {
            let rotated = self.apply_galois(&acc, key)?;
            acc = self.add(&acc, &rotated)?;
        }
        Ok(acc)
    }

    /// Multiplication followed by relinearization.
    ///
    /// # Errors
    ///
    /// Propagates [`BfvContext::mul`]/[`BfvContext::relinearize`] errors.
    pub fn mul_relin(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        rk: &BfvRelinKey,
    ) -> Result<Ciphertext, FheError> {
        self.relinearize(&self.mul(a, b)?, rk)
    }

    /// Squares a ciphertext and relinearizes (the S-box entry point —
    /// takes the [`BfvContext::square`] specialization explicitly).
    ///
    /// # Errors
    ///
    /// Propagates multiplication errors.
    pub fn square_relin(&self, a: &Ciphertext, rk: &BfvRelinKey) -> Result<Ciphertext, FheError> {
        self.relinearize(&self.square(a)?, rk)
    }
}

/// A BFV plaintext polynomial (coefficients `< t`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    /// Coefficients (length `N`, values in `[0, t)`).
    pub coeffs: Vec<u64>,
}

impl Plaintext {
    /// The constant coefficient (the scalar for scalar-encoded values).
    #[must_use]
    pub fn scalar(&self) -> u64 {
        self.coeffs.first().copied().unwrap_or(0)
    }
}

/// A plaintext pre-encoded for repeated homomorphic use (see
/// [`BfvContext::prepare_plaintext`]): the NTT-domain polynomial feeds
/// multiplications, the coefficient-domain `Δ·m` feeds additions and
/// trivial encryptions. Both are context-specific — a prepared
/// plaintext must only be used with the context that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedPlaintext {
    /// Encoded plaintext in NTT domain.
    ntt: RnsPoly,
    /// Per-prime Shoup companions of `ntt`'s rows, so repeated
    /// multiplications run the SIMD Shoup kernels (one high-half
    /// multiply per product) instead of a generic Barrett reduction.
    ntt_shoup: Vec<Vec<u64>>,
    /// `Δ·m` in coefficient domain.
    delta_m: RnsPoly,
}

/// A BFV secret key (ternary, stored in NTT domain).
#[derive(Clone)]
pub struct BfvSecretKey {
    s: RnsPoly,
}

impl fmt::Debug for BfvSecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BfvSecretKey(redacted)")
    }
}

/// A BFV public key `(b, a) = (-(a·s + e), a)`.
#[derive(Debug, Clone)]
pub struct BfvPublicKey {
    b: RnsPoly,
    a: RnsPoly,
}

/// Per-component Shoup companions `(b_shoup, a_shoup)` of a key-switch
/// key's rows: for each component, one companion row per RNS prime.
type KeyShoupRows = Vec<(Vec<Vec<u64>>, Vec<Vec<u64>>)>;

/// A relinearization key: one `(b_j, a_j)` pair per RNS prime.
#[derive(Debug, Clone)]
pub struct BfvRelinKey {
    components: Vec<(RnsPoly, RnsPoly)>,
    /// Shoup companions of the key rows, precomputed at keygen so the
    /// key-switch inner loop runs the SIMD Shoup MAC kernel.
    components_shoup: KeyShoupRows,
}

/// A Galois key for the automorphism `X ↦ X^g` (slot permutations),
/// stored NTT-prepared: the `(b_j, a_j)` pairs live in NTT domain and
/// the slot permutation realizing σ_g on NTT-domain polynomials is
/// precomputed at key generation, so both the classic and the hoisted
/// rotation paths touch no transform tables per application.
#[derive(Debug, Clone)]
pub struct BfvGaloisKey {
    g: usize,
    components: Vec<(RnsPoly, RnsPoly)>,
    /// Per-component Shoup companions `(b_shoup, a_shoup)`; see
    /// [`BfvRelinKey::components_shoup`].
    components_shoup: KeyShoupRows,
    /// `NTT(σ_g(a))[i] = NTT(a)[ntt_perm[i]]` (see
    /// [`galois_slot_permutation`]).
    ntt_perm: Vec<usize>,
}

impl BfvGaloisKey {
    /// The Galois element `g`.
    #[must_use]
    pub fn galois_element(&self) -> usize {
        self.g
    }

    /// The precomputed NTT-domain slot permutation for σ_g.
    #[must_use]
    pub fn ntt_permutation(&self) -> &[usize] {
        &self.ntt_perm
    }
}

/// A ciphertext pre-decomposed for repeated rotation (see
/// [`BfvContext::hoist`]): `c0` and the RNS key-switching digits of
/// `c1`, all in NTT domain. Producing one costs the same as the
/// decomposition inside a single [`BfvContext::apply_galois`]; every
/// rotation applied to it afterwards is transform-free.
#[derive(Debug, Clone)]
pub struct HoistedCiphertext {
    /// `c0` in NTT domain.
    c0: RnsPoly,
    /// Digit `j` of `c1` (the residue row lifted to all primes),
    /// forward-transformed.
    digits: Vec<RnsPoly>,
}

/// A BFV ciphertext (2 components; 3 transiently after multiplication).
///
/// `PartialEq` compares raw component polynomials (residues + domain) —
/// the bit-exactness predicate the threaded-vs-serial determinism tests
/// rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    polys: Vec<RnsPoly>,
}

impl Ciphertext {
    /// Number of polynomial components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.polys.len()
    }

    /// Serialized size in bytes: `components · N · Σ_i ⌈log2 q_i⌉ / 8`.
    ///
    /// This is the quantity the paper's §V communication analysis uses
    /// (e.g. RISE's `2 · 2^14 · 390` bits = 1.5 MB per ciphertext).
    #[must_use]
    pub fn size_bytes(&self, ctx: &BfvContext) -> usize {
        let bits_per_coeff: usize = ctx.basis().primes().iter().map(|p| p.bits() as usize).sum();
        (self.polys.len() * ctx.params().n * bits_per_coeff).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Serializes tests that twiddle the `PASTA_MUL` backend override
    /// so the allocation-counter assertions cannot race it.
    static BACKEND_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Serializes tests that twiddle `PASTA_THREADS`.
    static THREADS_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A plaintext with every coefficient drawn uniformly from `Z_t`.
    fn random_plaintext(ctx: &BfvContext, rng: &mut StdRng) -> Plaintext {
        let t = ctx.params().plain_modulus.value();
        Plaintext {
            coeffs: (0..ctx.params().n).map(|_| rng.gen_range(0..t)).collect(),
        }
    }

    fn setup() -> (BfvContext, BfvSecretKey, BfvPublicKey, BfvRelinKey, StdRng) {
        let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let rk = ctx.generate_relin_key(&sk, &mut rng);
        (ctx, sk, pk, rk, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, sk, pk, _, mut rng) = setup();
        for v in [0u64, 1, 42, 65_536] {
            let ct = ctx.encrypt(&pk, &ctx.encode_scalar(v), &mut rng);
            assert_eq!(ctx.decrypt(&sk, &ct).scalar(), v);
        }
    }

    #[test]
    fn fresh_ciphertext_has_healthy_budget() {
        let (ctx, sk, pk, _, mut rng) = setup();
        let ct = ctx.encrypt(&pk, &ctx.encode_scalar(7), &mut rng);
        let budget = ctx.noise_budget(&sk, &ct);
        assert!(budget > 100, "fresh budget = {budget} bits");
        assert!(budget < ctx.q_bits() as u32, "budget bounded by q");
    }

    #[test]
    fn trivial_encryption_decrypts_with_full_budget() {
        let (ctx, sk, _, _, _) = setup();
        let ct = ctx.encrypt_trivial(&ctx.encode_scalar(123));
        assert_eq!(ctx.decrypt(&sk, &ct).scalar(), 123);
        assert!(ctx.noise_budget(&sk, &ct) > ctx.q_bits() as u32 - 25);
    }

    #[test]
    fn homomorphic_addition() {
        let (ctx, sk, pk, _, mut rng) = setup();
        let a = ctx.encrypt(&pk, &ctx.encode_scalar(60_000), &mut rng);
        let b = ctx.encrypt(&pk, &ctx.encode_scalar(10_000), &mut rng);
        let sum = ctx.add(&a, &b).unwrap();
        assert_eq!(ctx.decrypt(&sk, &sum).scalar(), (60_000 + 10_000) % 65_537);
        let diff = ctx.sub(&a, &b).unwrap();
        assert_eq!(ctx.decrypt(&sk, &diff).scalar(), 50_000);
    }

    #[test]
    fn plaintext_operations() {
        let (ctx, sk, pk, _, mut rng) = setup();
        let ct = ctx.encrypt(&pk, &ctx.encode_scalar(1_000), &mut rng);
        let plus = ctx.add_plain(&ct, &ctx.encode_scalar(65_000));
        assert_eq!(ctx.decrypt(&sk, &plus).scalar(), (1_000 + 65_000) % 65_537);
        let scaled = ctx.mul_scalar(&ct, 123);
        assert_eq!(ctx.decrypt(&sk, &scaled).scalar(), 1_000 * 123 % 65_537);
        let pm = ctx.mul_plain(&ct, &ctx.encode_scalar(65_536));
        assert_eq!(ctx.decrypt(&sk, &pm).scalar(), 1_000 * 65_536 % 65_537);
    }

    #[test]
    fn homomorphic_multiplication_pre_relin() {
        let (ctx, sk, pk, _, mut rng) = setup();
        let a = ctx.encrypt(&pk, &ctx.encode_scalar(300), &mut rng);
        let b = ctx.encrypt(&pk, &ctx.encode_scalar(500), &mut rng);
        let prod = ctx.mul(&a, &b).unwrap();
        assert_eq!(prod.components(), 3);
        assert_eq!(ctx.decrypt(&sk, &prod).scalar(), 300 * 500 % 65_537);
    }

    #[test]
    fn relinearization_preserves_plaintext() {
        let (ctx, sk, pk, rk, mut rng) = setup();
        let a = ctx.encrypt(&pk, &ctx.encode_scalar(12_345), &mut rng);
        let b = ctx.encrypt(&pk, &ctx.encode_scalar(54_321), &mut rng);
        let prod = ctx.mul_relin(&a, &b, &rk).unwrap();
        assert_eq!(prod.components(), 2);
        assert_eq!(
            ctx.decrypt(&sk, &prod).scalar(),
            12_345u64 * 54_321 % 65_537
        );
    }

    #[test]
    fn multiplication_chain_with_budget_tracking() {
        let (ctx, sk, pk, rk, mut rng) = setup();
        let mut ct = ctx.encrypt(&pk, &ctx.encode_scalar(2), &mut rng);
        let mut expect = 2u64;
        let mut prev_budget = ctx.noise_budget(&sk, &ct);
        for _ in 0..2 {
            ct = ctx.square_relin(&ct, &rk).unwrap();
            expect = expect * expect % 65_537;
            let budget = ctx.noise_budget(&sk, &ct);
            assert!(
                budget < prev_budget,
                "budget must shrink: {budget} < {prev_budget}"
            );
            assert!(budget > 0, "budget exhausted too early");
            prev_budget = budget;
            assert_eq!(ctx.decrypt(&sk, &ct).scalar(), expect);
        }
    }

    #[test]
    fn mixed_plain_and_cipher_pipeline() {
        // Emulates one PASTA affine step: Σ scalar·ct + const.
        let (ctx, sk, pk, _, mut rng) = setup();
        let values = [5u64, 10, 15, 20];
        let scalars = [3u64, 7, 11, 13];
        let cts: Vec<Ciphertext> = values
            .iter()
            .map(|&v| ctx.encrypt(&pk, &ctx.encode_scalar(v), &mut rng))
            .collect();
        let mut acc = ctx.encrypt_trivial(&ctx.encode_scalar(0));
        for (ct, &s) in cts.iter().zip(scalars.iter()) {
            acc = ctx.add(&acc, &ctx.mul_scalar(ct, s)).unwrap();
        }
        acc = ctx.add_plain(&acc, &ctx.encode_scalar(999));
        let expect = values
            .iter()
            .zip(scalars.iter())
            .map(|(&v, &s)| v * s)
            .sum::<u64>()
            + 999;
        assert_eq!(ctx.decrypt(&sk, &acc).scalar(), expect % 65_537);
    }

    #[test]
    fn prepared_paths_match_direct_paths() {
        let (ctx, _, pk, _, mut rng) = setup();
        let ct = ctx.encrypt(&pk, &ctx.encode_scalar(777), &mut rng);
        let mut pt_coeffs = vec![0u64; ctx.params().n];
        for (j, c) in pt_coeffs.iter_mut().enumerate() {
            *c = (j as u64 * 31 + 5) % 65_537;
        }
        let pt = Plaintext { coeffs: pt_coeffs };
        let prep = ctx.prepare_plaintext(&pt);

        // mul_plain: prepared must be bit-exact vs direct.
        assert_eq!(ctx.mul_plain_prepared(&ct, &prep), ctx.mul_plain(&ct, &pt));
        // add_plain: prepared in-place vs direct.
        let mut added = ct.clone();
        ctx.add_plain_prepared_assign(&mut added, &prep);
        assert_eq!(added, ctx.add_plain(&ct, &pt));
        // trivial encryption.
        assert_eq!(
            ctx.encrypt_trivial_prepared(&prep),
            ctx.encrypt_trivial(&pt)
        );
        // NTT-resident fused accumulate vs add(mul_plain(..)).
        let ct2 = ctx.encrypt(&pk, &ctx.encode_scalar(123), &mut rng);
        let expect = ctx
            .add(&ctx.mul_plain(&ct, &pt), &ctx.mul_plain(&ct2, &pt))
            .unwrap();
        let (mut na, mut nb) = (ct.clone(), ct2.clone());
        ctx.to_ntt_ct(&mut na);
        ctx.to_ntt_ct(&mut nb);
        let mut acc = ctx.mul_plain_prepared_ntt(&na, &prep);
        ctx.add_mul_plain_ntt_assign(&mut acc, &nb, &prep).unwrap();
        ctx.to_coeff_ct(&mut acc);
        assert_eq!(acc, expect);
    }

    #[test]
    fn assign_ops_match_cloning_ops() {
        let (ctx, sk, pk, _, mut rng) = setup();
        let a = ctx.encrypt(&pk, &ctx.encode_scalar(60_000), &mut rng);
        let b = ctx.encrypt(&pk, &ctx.encode_scalar(10_000), &mut rng);

        let mut sum = a.clone();
        ctx.add_assign(&mut sum, &b).unwrap();
        assert_eq!(sum, ctx.add(&a, &b).unwrap());

        let mut diff = a.clone();
        ctx.sub_assign(&mut diff, &b).unwrap();
        assert_eq!(diff, ctx.sub(&a, &b).unwrap());

        let mut neg = a.clone();
        ctx.neg_assign(&mut neg);
        assert_eq!(ctx.decrypt(&sk, &neg).scalar(), 65_537 - 60_000);

        // Δ·c injection: neg + add_scalar must equal sub from a trivial.
        let mut fast = b.clone();
        ctx.neg_assign(&mut fast);
        ctx.add_scalar_assign(&mut fast, 12_345);
        let slow = ctx
            .sub(&ctx.encrypt_trivial(&ctx.encode_scalar(12_345)), &b)
            .unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn incompatible_operations_rejected() {
        let (ctx, _, pk, _, mut rng) = setup();
        let a = ctx.encrypt(&pk, &ctx.encode_scalar(1), &mut rng);
        let b = ctx.encrypt(&pk, &ctx.encode_scalar(2), &mut rng);
        let three = ctx.mul(&a, &b).unwrap();
        assert!(matches!(
            ctx.add(&a, &three),
            Err(FheError::Incompatible(_))
        ));
        assert!(matches!(
            ctx.mul(&a, &three),
            Err(FheError::Incompatible(_))
        ));
        assert!(matches!(
            ctx.relinearize(
                &a,
                &ctx.generate_relin_key(&ctx.generate_secret_key(&mut rng), &mut rng)
            ),
            Err(FheError::Incompatible(_))
        ));
    }

    #[test]
    fn ciphertext_size_accounting() {
        let (ctx, _, pk, _, mut rng) = setup();
        let ct = ctx.encrypt(&pk, &ctx.encode_scalar(1), &mut rng);
        // 2 components × 256 coeffs × 200 bits = 12,800 bytes.
        assert_eq!(ct.size_bytes(&ctx), 2 * 256 * 200 / 8);
    }

    #[test]
    fn bad_params_rejected() {
        let bad = BfvParams {
            n: 100,
            ..BfvParams::test_tiny()
        };
        assert!(matches!(
            BfvContext::new(bad),
            Err(FheError::InvalidParams(_))
        ));
    }

    #[test]
    fn rns_mul_decrypt_equals_bigint_oracle() {
        // The RNS product is decrypt-equal to the bigint oracle's — not
        // byte-identical: the near-centered lift may differ by q in a
        // 2^-15-wide band, which the noise absorbs.
        let (ctx, sk, pk, rk, mut rng) = setup();
        for _ in 0..3 {
            let a = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
            let b = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);

            let fast = ctx.mul_rns(&a, Some(&b));
            let oracle = ctx.mul_exact_bigint(&a, &b).unwrap();
            assert_eq!(ctx.decrypt(&sk, &fast), ctx.decrypt(&sk, &oracle));

            let fast_sq = ctx.mul_rns(&a, None);
            let oracle_sq = ctx.mul_exact_bigint(&a, &a).unwrap();
            assert_eq!(ctx.decrypt(&sk, &fast_sq), ctx.decrypt(&sk, &oracle_sq));

            let fast_rl = ctx.relinearize(&fast, &rk).unwrap();
            let oracle_rl = ctx.relinearize(&oracle, &rk).unwrap();
            assert_eq!(ctx.decrypt(&sk, &fast_rl), ctx.decrypt(&sk, &oracle_rl));
        }
    }

    #[test]
    fn rns_mul_noise_budget_within_one_bit_of_oracle() {
        let (ctx, sk, pk, _, mut rng) = setup();
        let a = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
        let b = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
        let fast = ctx.noise_budget(&sk, &ctx.mul_rns(&a, Some(&b)));
        let oracle = ctx.noise_budget(&sk, &ctx.mul_exact_bigint(&a, &b).unwrap());
        assert!(
            fast.abs_diff(oracle) <= 1,
            "post-mul budgets diverged: rns {fast} vs bigint {oracle}"
        );
    }

    #[test]
    fn default_mul_path_allocates_no_bigints() {
        let _guard = BACKEND_ENV_LOCK.lock().unwrap();
        std::env::remove_var(MUL_BACKEND_ENV);
        let (ctx, _, pk, rk, mut rng) = setup();
        let a = ctx.encrypt(&pk, &ctx.encode_scalar(300), &mut rng);
        let b = ctx.encrypt(&pk, &ctx.encode_scalar(500), &mut rng);
        // N = 256 keeps the whole pipeline on this thread, so the
        // thread-local counter sees every allocation.
        let before = crate::bigint::ubig_alloc_count();
        let prod = ctx.mul(&a, &b).unwrap();
        let _ = ctx.square(&a).unwrap();
        let _ = ctx.relinearize(&prod, &rk).unwrap();
        let after = crate::bigint::ubig_alloc_count();
        if cfg!(debug_assertions) {
            assert_eq!(
                after, before,
                "UBig allocation leaked into the RNS mul path"
            );
        }
        // The oracle, selected via the env override, must register.
        std::env::set_var(MUL_BACKEND_ENV, "bigint");
        let before = crate::bigint::ubig_alloc_count();
        let oracle = ctx.mul(&a, &b).unwrap();
        let after = crate::bigint::ubig_alloc_count();
        std::env::remove_var(MUL_BACKEND_ENV);
        assert_eq!(oracle.components(), 3);
        if cfg!(debug_assertions) {
            assert!(after > before, "bigint oracle did not allocate");
        }
    }

    #[test]
    fn bigint_oracle_is_thread_count_invariant() {
        let _guard = THREADS_ENV_LOCK.lock().unwrap();
        // N = 1024 crosses the parallel threshold, so the oracle's
        // chunked lift/scale loops actually fan out.
        let params = BfvParams {
            n: 1_024,
            ..BfvParams::test_tiny()
        };
        let ctx = BfvContext::new(params).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let a = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
        let b = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
        std::env::set_var(pasta_par::THREADS_ENV, "1");
        let serial = ctx.mul_exact_bigint(&a, &b).unwrap();
        std::env::set_var(pasta_par::THREADS_ENV, "4");
        let parallel = ctx.mul_exact_bigint(&a, &b).unwrap();
        std::env::remove_var(pasta_par::THREADS_ENV);
        assert_eq!(serial, parallel, "oracle output depends on thread count");
    }

    #[test]
    fn rns_mul_is_thread_count_invariant() {
        let _guard = THREADS_ENV_LOCK.lock().unwrap();
        // The fast BEHZ path through the persistent worker pool: serial,
        // moderately parallel, and oversubscribed (16 threads) runs must
        // be bit-identical — chunk boundaries are a pure function of
        // (len, resolved threads), never of scheduling.
        let params = BfvParams {
            n: 1_024,
            ..BfvParams::test_tiny()
        };
        let ctx = BfvContext::new(params).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let a = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
        let b = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
        std::env::set_var(pasta_par::THREADS_ENV, "1");
        let serial = ctx.mul_rns(&a, Some(&b));
        for threads in ["4", "16"] {
            std::env::set_var(pasta_par::THREADS_ENV, threads);
            let parallel = ctx.mul_rns(&a, Some(&b));
            assert_eq!(
                serial, parallel,
                "RNS mul output depends on thread count ({threads})"
            );
        }
        std::env::remove_var(pasta_par::THREADS_ENV);
    }

    #[test]
    fn warm_mul_relin_allocates_no_poly_rows_or_bigints() {
        let _guard = BACKEND_ENV_LOCK.lock().unwrap();
        std::env::remove_var(MUL_BACKEND_ENV);
        let (ctx, sk, pk, rk, mut rng) = setup();
        let a = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
        let b = ctx.encrypt(&pk, &random_plaintext(&ctx, &mut rng), &mut rng);
        // Cold passes populate the scratch pool with every buffer shape
        // the multiply + relinearize pipeline needs...
        let _ = ctx.mul_relin(&a, &b, &rk).unwrap();
        let _ = ctx.mul_relin(&a, &b, &rk).unwrap();
        // ...after which a warm pass must allocate nothing: N = 256
        // keeps the whole pipeline on this thread, so the thread-local
        // counters see every allocation.
        let rows_before = crate::scratch::poly_alloc_count();
        let ubig_before = crate::bigint::ubig_alloc_count();
        let prod = ctx.mul_relin(&a, &b, &rk).unwrap();
        let rows_after = crate::scratch::poly_alloc_count();
        let ubig_after = crate::bigint::ubig_alloc_count();
        assert_eq!(prod.components(), 2);
        assert_eq!(ctx.decrypt(&sk, &prod).coeffs.len(), ctx.params().n);
        if cfg!(debug_assertions) {
            assert_eq!(
                rows_after, rows_before,
                "warm mul_relin allocated fresh coefficient rows"
            );
            assert_eq!(ubig_after, ubig_before, "warm mul_relin allocated bigints");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        // One shared context: key generation is the expensive part.
        fn with_world(
            f: impl FnOnce(&BfvContext, &BfvSecretKey, &BfvPublicKey, &BfvRelinKey, &mut StdRng),
        ) {
            let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
            let mut rng = StdRng::seed_from_u64(31337);
            let sk = ctx.generate_secret_key(&mut rng);
            let pk = ctx.generate_public_key(&sk, &mut rng);
            let rk = ctx.generate_relin_key(&sk, &mut rng);
            f(&ctx, &sk, &pk, &rk, &mut rng);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[test]
            fn prop_additive_homomorphism(a in 0u64..65_537, b in 0u64..65_537) {
                with_world(|ctx, sk, pk, _, rng| {
                    let ca = ctx.encrypt(pk, &ctx.encode_scalar(a), rng);
                    let cb = ctx.encrypt(pk, &ctx.encode_scalar(b), rng);
                    assert_eq!(
                        ctx.decrypt(sk, &ctx.add(&ca, &cb).unwrap()).scalar(),
                        (a + b) % 65_537
                    );
                    assert_eq!(
                        ctx.decrypt(sk, &ctx.sub(&ca, &cb).unwrap()).scalar(),
                        (a + 65_537 - b) % 65_537
                    );
                });
            }

            #[test]
            fn prop_multiplicative_homomorphism(a in 0u64..65_537, b in 0u64..65_537) {
                with_world(|ctx, sk, pk, rk, rng| {
                    let ca = ctx.encrypt(pk, &ctx.encode_scalar(a), rng);
                    let cb = ctx.encrypt(pk, &ctx.encode_scalar(b), rng);
                    let prod = ctx.mul_relin(&ca, &cb, rk).unwrap();
                    assert_eq!(
                        u128::from(ctx.decrypt(sk, &prod).scalar()),
                        u128::from(a) * u128::from(b) % 65_537
                    );
                });
            }

            #[test]
            fn prop_rns_mul_decrypt_equals_oracle(seed in any::<u64>()) {
                with_world(|ctx, sk, pk, rk, _| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let a = ctx.encrypt(pk, &random_plaintext(ctx, &mut rng), &mut rng);
                    let b = ctx.encrypt(pk, &random_plaintext(ctx, &mut rng), &mut rng);
                    let fast = ctx
                        .relinearize(&ctx.mul_rns(&a, Some(&b)), rk)
                        .unwrap();
                    let oracle = ctx
                        .relinearize(&ctx.mul_exact_bigint(&a, &b).unwrap(), rk)
                        .unwrap();
                    assert_eq!(ctx.decrypt(sk, &fast), ctx.decrypt(sk, &oracle));
                    let fast_sq = ctx.mul_rns(&a, None);
                    let oracle_sq = ctx.mul_exact_bigint(&a, &a).unwrap();
                    assert_eq!(ctx.decrypt(sk, &fast_sq), ctx.decrypt(sk, &oracle_sq));
                });
            }

            #[test]
            fn prop_plain_ops(a in 0u64..65_537, s in 0u64..65_537) {
                with_world(|ctx, sk, pk, _, rng| {
                    let ct = ctx.encrypt(pk, &ctx.encode_scalar(a), rng);
                    assert_eq!(
                        ctx.decrypt(sk, &ctx.add_plain(&ct, &ctx.encode_scalar(s))).scalar(),
                        (a + s) % 65_537
                    );
                    assert_eq!(
                        u128::from(ctx.decrypt(sk, &ctx.mul_scalar(&ct, s)).scalar()),
                        u128::from(a) * u128::from(s) % 65_537
                    );
                });
            }
        }
    }
}
