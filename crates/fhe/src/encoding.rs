//! SIMD batch encoding over `Z_t` slots.
//!
//! When `2N | t - 1` (true for `t = 65537` and `N ≤ 2^15`), the plaintext
//! ring `Z_t[X]/(X^N + 1)` splits into `N` copies of `Z_t` by evaluating
//! at the primitive 2N-th roots of unity — so one BFV ciphertext packs
//! `N` independent `F_p` values, and homomorphic ring operations act
//! slot-wise. This is what lets the HHE server transcipher `N` PASTA
//! blocks in parallel (the original PASTA software does exactly this with
//! SEAL's `BatchEncoder`).
//!
//! Encoding is the inverse negacyclic NTT over `Z_t`; decoding is the
//! forward transform. The slot order is the transform's internal
//! (bit-reverse-twisted) order — consistent between encode and decode.
//! Galois rotations are implemented and load-bearing: homomorphic
//! `X ↦ X^g` automorphisms ([`crate::bfv::BfvContext::apply_galois`],
//! and the hoisted form behind [`crate::bfv::BfvContext::hoist`])
//! permute these slots, and the packed HHE evaluator drives its whole
//! affine layer through them; [`BatchEncoder::automorphism_permutation`]
//! exposes the induced slot map.

use crate::bfv::Plaintext;
use crate::ntt::NttTable;
use pasta_math::{MathError, Modulus};

/// A batch encoder mapping `N` slot values to/from plaintext polynomials.
///
/// # Examples
///
/// ```
/// use pasta_fhe::encoding::BatchEncoder;
/// use pasta_math::Modulus;
/// let enc = BatchEncoder::new(Modulus::PASTA_17_BIT, 64)?;
/// let slots: Vec<u64> = (0..64).collect();
/// let pt = enc.encode(&slots);
/// assert_eq!(enc.decode(&pt), slots);
/// # Ok::<(), pasta_math::MathError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    table: NttTable,
    n: usize,
}

impl BatchEncoder {
    /// Builds an encoder for plaintext modulus `t` and ring degree `n`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotInvertible`] if `2n ∤ t - 1`.
    pub fn new(plain_modulus: Modulus, n: usize) -> Result<Self, MathError> {
        Ok(BatchEncoder {
            table: NttTable::new(plain_modulus, n)?,
            n,
        })
    }

    /// Number of slots (`N`).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.n
    }

    /// Encodes up to `N` slot values (missing slots are zero).
    ///
    /// # Panics
    ///
    /// Panics if more than `N` values are supplied or a value is `≥ t`.
    #[must_use]
    pub fn encode(&self, values: &[u64]) -> Plaintext {
        assert!(values.len() <= self.n, "too many slot values");
        let t = self.table.zp().p();
        let mut slots = vec![0u64; self.n];
        for (s, &v) in slots.iter_mut().zip(values.iter()) {
            assert!(v < t, "slot value {v} not canonical mod {t}");
            *s = v;
        }
        self.table.inverse(&mut slots);
        Plaintext { coeffs: slots }
    }

    /// Decodes a plaintext polynomial back into its `N` slot values.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext degree differs from `N`.
    #[must_use]
    pub fn decode(&self, pt: &Plaintext) -> Vec<u64> {
        assert_eq!(pt.coeffs.len(), self.n, "plaintext degree mismatch");
        let mut slots = pt.coeffs.clone();
        self.table.forward(&mut slots);
        slots
    }

    /// Applies the Galois automorphism `X ↦ X^g` to a plaintext — the
    /// reference against which the homomorphic
    /// [`crate::BfvContext::apply_galois`] is validated. On the slot
    /// side this is a fixed permutation (see
    /// [`BatchEncoder::automorphism_permutation`]).
    ///
    /// # Panics
    ///
    /// Panics for even `g` or degree mismatch.
    #[must_use]
    pub fn plaintext_automorphism(&self, pt: &Plaintext, g: usize) -> Plaintext {
        assert!(g % 2 == 1, "Galois element must be odd");
        assert_eq!(pt.coeffs.len(), self.n, "plaintext degree mismatch");
        let zp = self.table.zp();
        let mut coeffs = vec![0u64; self.n];
        for (j, &c) in pt.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let e = (j * g) % (2 * self.n);
            if e < self.n {
                coeffs[e] = zp.add(coeffs[e], c);
            } else {
                coeffs[e - self.n] = zp.sub(coeffs[e - self.n], c);
            }
        }
        Plaintext { coeffs }
    }

    /// The slot permutation induced by `σ_g`: returns `π` such that
    /// `decode(σ_g(pt))[i] = decode(pt)[π[i]]`.
    ///
    /// # Panics
    ///
    /// Panics for even `g`, or if `N > t` (cannot build the probe).
    #[must_use]
    pub fn automorphism_permutation(&self, g: usize) -> Vec<usize> {
        let t = self.table.zp().p();
        assert!((self.n as u64) < t, "probe needs distinct slot values");
        // Probe with the identity map: slot i holds value i + 1 (nonzero).
        let probe: Vec<u64> = (0..self.n as u64).map(|i| i + 1).collect();
        let moved = self.decode(&self.plaintext_automorphism(&self.encode(&probe), g));
        moved
            .iter()
            .map(|&v| {
                assert!(
                    v >= 1 && v <= self.n as u64,
                    "automorphism must permute slots"
                );
                (v - 1) as usize
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::{BfvContext, BfvParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(n: usize) -> BatchEncoder {
        BatchEncoder::new(Modulus::PASTA_17_BIT, n).unwrap()
    }

    #[test]
    fn roundtrip() {
        let enc = encoder(128);
        let values: Vec<u64> = (0..128u64).map(|i| i * 511 % 65_537).collect();
        assert_eq!(enc.decode(&enc.encode(&values)), values);
    }

    #[test]
    fn partial_fill_pads_with_zero() {
        let enc = encoder(16);
        let values = vec![7u64, 8, 9];
        let decoded = enc.decode(&enc.encode(&values));
        assert_eq!(&decoded[..3], &[7, 8, 9]);
        assert!(decoded[3..].iter().all(|&v| v == 0));
    }

    #[test]
    fn addition_is_slotwise() {
        let enc = encoder(32);
        let zp = pasta_math::Zp::new(Modulus::PASTA_17_BIT).unwrap();
        let a: Vec<u64> = (0..32u64).map(|i| i * 999 % 65_537).collect();
        let b: Vec<u64> = (0..32u64).map(|i| 65_536 - i).collect();
        let pa = enc.encode(&a);
        let pb = enc.encode(&b);
        let sum_coeffs: Vec<u64> = pa
            .coeffs
            .iter()
            .zip(pb.coeffs.iter())
            .map(|(&x, &y)| zp.add(x, y))
            .collect();
        let sum = Plaintext { coeffs: sum_coeffs };
        let expect: Vec<u64> = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| zp.add(x, y))
            .collect();
        assert_eq!(enc.decode(&sum), expect);
    }

    #[test]
    fn polynomial_product_is_slotwise_product() {
        let enc = encoder(16);
        let zp = pasta_math::Zp::new(Modulus::PASTA_17_BIT).unwrap();
        let a: Vec<u64> = (1..=16u64).collect();
        let b: Vec<u64> = (0..16u64).map(|i| 3 * i + 2).collect();
        let prod_poly = crate::ntt::negacyclic_mul_schoolbook(
            &zp,
            &enc.encode(&a).coeffs,
            &enc.encode(&b).coeffs,
        );
        let decoded = enc.decode(&Plaintext { coeffs: prod_poly });
        let expect: Vec<u64> = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| zp.mul(x, y))
            .collect();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn end_to_end_simd_through_bfv() {
        // Encrypt a batch, homomorphically add slot-wise, decrypt+decode.
        let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
        let enc = BatchEncoder::new(Modulus::PASTA_17_BIT, ctx.params().n).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let a: Vec<u64> = (0..256u64).map(|i| i * 31 % 65_537).collect();
        let b: Vec<u64> = (0..256u64).map(|i| i * 17 % 65_537).collect();
        let ca = ctx.encrypt(&pk, &enc.encode(&a), &mut rng);
        let cb = ctx.encrypt(&pk, &enc.encode(&b), &mut rng);
        let sum = ctx.add(&ca, &cb).unwrap();
        let decoded = enc.decode(&ctx.decrypt(&sk, &sum));
        let zp = pasta_math::Zp::new(Modulus::PASTA_17_BIT).unwrap();
        let expect: Vec<u64> = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| zp.add(x, y))
            .collect();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn rejects_unsupported_degree() {
        // 2·2^17 does not divide 65537 - 1 = 2^16.
        assert!(BatchEncoder::new(Modulus::PASTA_17_BIT, 1 << 17).is_err());
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn too_many_values_panics() {
        let _ = encoder(8).encode(&[0u64; 9]);
    }
}
