//! Static noise-growth prediction and BFV parameter sizing.
//!
//! The HHE server must finish the whole PASTA decryption circuit with
//! noise budget to spare. This module provides a conservative symbolic
//! tracker ([`NoiseModel`]) mirroring each homomorphic operation's
//! worst-case `log2` noise growth, and [`suggest_prime_count`], which
//! sizes the RNS modulus for a given transciphering circuit the way
//! SEAL users size `coeff_modulus` — but derived from the model instead
//! of trial and error. Predictions are validated against the *measured*
//! noise budget (`BfvContext::noise_budget`) in the tests.

use crate::bfv::{BfvContext, BfvParams};
use pasta_math::Modulus;

/// Upper bound on fresh error magnitude (centered binomial, parameter 4).
const ERROR_BOUND: f64 = 4.0;

/// A symbolic worst-case noise tracker for one ciphertext.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// `log2` of the worst-case noise magnitude.
    pub log2_noise: f64,
    n: f64,
    t: f64,
    q_bits: f64,
    relin_floor: f64,
}

impl NoiseModel {
    /// Noise of a fresh public-key encryption under `ctx`.
    #[must_use]
    pub fn fresh(ctx: &BfvContext) -> Self {
        Self::fresh_for(
            ctx.params().n,
            ctx.params().plain_modulus,
            ctx.q_bits(),
            ctx.params().prime_bits,
            ctx.params().prime_count,
        )
    }

    /// Noise model from raw parameters (used by the sizing search before
    /// a context exists).
    #[must_use]
    pub fn fresh_for(
        n: usize,
        plain_modulus: Modulus,
        q_bits: usize,
        prime_bits: u32,
        prime_count: usize,
    ) -> Self {
        let n = n as f64;
        // pk encryption: e1 + u·e + s·e2 → ≈ B(2N + 1).
        let log2_noise = (ERROR_BOUND * (2.0 * n + 1.0)).log2();
        // RNS relinearization adds Σ_j d_j e_j ≈ k·q_j·B·N.
        let relin_floor =
            (prime_count as f64).log2() + f64::from(prime_bits) + ERROR_BOUND.log2() + n.log2();
        NoiseModel {
            log2_noise,
            n,
            t: plain_modulus.value() as f64,
            q_bits: q_bits as f64,
            relin_floor,
        }
    }

    /// After a ciphertext–ciphertext addition.
    #[must_use]
    pub fn after_add(mut self, other: &NoiseModel) -> Self {
        self.log2_noise = self.log2_noise.max(other.log2_noise) + 1.0;
        self
    }

    /// After adding a plaintext (noise unchanged up to rounding slack).
    #[must_use]
    pub fn after_add_plain(mut self) -> Self {
        self.log2_noise += 0.1;
        self
    }

    /// After multiplying by a scalar `< bound`.
    #[must_use]
    pub fn after_mul_scalar(mut self, bound: u64) -> Self {
        self.log2_noise += (bound.max(2) as f64).log2();
        self
    }

    /// After multiplying by a full plaintext polynomial (batched
    /// material): worst case `t · N` amplification.
    #[must_use]
    pub fn after_mul_plain(mut self) -> Self {
        self.log2_noise += self.t.log2() + self.n.log2();
        self
    }

    /// After a ciphertext multiplication plus relinearization.
    #[must_use]
    pub fn after_mul_relin(mut self, other: &NoiseModel) -> Self {
        // BFV tensor: ν ≈ t·N·(ν1 + ν2) (+ small terms).
        let tensor = self.log2_noise.max(other.log2_noise) + self.t.log2() + self.n.log2() + 2.0;
        self.log2_noise = tensor.max(self.relin_floor) + 1.0;
        self
    }

    /// Predicted remaining budget in bits (`0` = decryption at risk).
    #[must_use]
    pub fn predicted_budget(&self) -> f64 {
        (self.q_bits - self.log2_noise - self.t.log2() - 2.0).max(0.0)
    }
}

/// Symbolically executes the scalar-mode transciphering circuit for a
/// PASTA-style cipher with block size `t_pasta` and `rounds`, returning
/// the final noise model.
#[must_use]
pub fn transcipher_noise(
    t_pasta: usize,
    rounds: usize,
    batched: bool,
    start: NoiseModel,
) -> NoiseModel {
    let mut state = start;
    let plain = state.t as u64;
    for layer in 0..=rounds {
        // Affine: Σ_j scalar·ct (t_pasta terms) + RC.
        let term = if batched {
            state.after_mul_plain()
        } else {
            state.after_mul_scalar(plain)
        };
        let mut acc = term;
        for _ in 1..t_pasta {
            acc = acc.after_add(&term);
        }
        state = acc.after_add_plain();
        if layer < rounds {
            // Mix: two adds.
            state = state.after_add(&state.clone()).after_add(&state.clone());
            // S-box: one squaring (Feistel) or two chained
            // multiplications (cube, last round) + the Feistel addition.
            if layer == rounds - 1 {
                let sq = state.after_mul_relin(&state.clone());
                state = sq.after_mul_relin(&state.clone());
            } else {
                let sq = state.after_mul_relin(&state.clone());
                state = state.after_add(&sq);
            }
        }
    }
    state
}

/// Sizes the RNS prime count so the transciphering circuit retains at
/// least `margin_bits` of predicted budget.
///
/// Returns `None` when no count up to 32 primes suffices (degenerate
/// inputs — e.g. a ring dimension far too small for the circuit).
#[must_use]
pub fn suggest_prime_count(
    t_pasta: usize,
    rounds: usize,
    batched: bool,
    n: usize,
    plain_modulus: Modulus,
    prime_bits: u32,
    margin_bits: f64,
) -> Option<usize> {
    (2..=32).find(|&count| {
        let q_bits = count * prime_bits as usize;
        let start = NoiseModel::fresh_for(n, plain_modulus, q_bits, prime_bits, count);
        let end = transcipher_noise(t_pasta, rounds, batched, start);
        end.predicted_budget() >= margin_bits
    })
}

/// Suggests complete BFV parameters for transciphering a PASTA instance,
/// or `None` when no RNS modulus of up to 32 primes carries the circuit.
#[must_use]
pub fn suggest_bfv_params(
    t_pasta: usize,
    rounds: usize,
    batched: bool,
    n: usize,
    prime_bits: u32,
) -> Option<BfvParams> {
    let plain = Modulus::PASTA_17_BIT;
    let prime_count = suggest_prime_count(t_pasta, rounds, batched, n, plain, prime_bits, 12.0)?;
    Some(BfvParams {
        n,
        plain_modulus: plain,
        prime_bits,
        prime_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::BfvContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        BfvContext,
        crate::bfv::BfvSecretKey,
        crate::bfv::BfvPublicKey,
        crate::bfv::BfvRelinKey,
        StdRng,
    ) {
        let ctx = BfvContext::new(BfvParams::test_tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(404);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let rk = ctx.generate_relin_key(&sk, &mut rng);
        (ctx, sk, pk, rk, rng)
    }

    #[test]
    fn fresh_prediction_is_conservative_but_sane() {
        let (ctx, sk, pk, _, mut rng) = setup();
        let ct = ctx.encrypt(&pk, &ctx.encode_scalar(7), &mut rng);
        let measured = f64::from(ctx.noise_budget(&sk, &ct));
        let predicted = NoiseModel::fresh(&ctx).predicted_budget();
        assert!(
            predicted <= measured,
            "prediction must be conservative: {predicted} vs {measured}"
        );
        assert!(
            measured - predicted < 25.0,
            "prediction too pessimistic: {predicted} vs {measured}"
        );
    }

    #[test]
    fn mul_relin_prediction_tracks_measurement() {
        let (ctx, sk, pk, rk, mut rng) = setup();
        let mut ct = ctx.encrypt(&pk, &ctx.encode_scalar(3), &mut rng);
        let mut model = NoiseModel::fresh(&ctx);
        for step in 0..2 {
            ct = ctx.square_relin(&ct, &rk).unwrap();
            model = model.after_mul_relin(&model.clone());
            let measured = f64::from(ctx.noise_budget(&sk, &ct));
            let predicted = model.predicted_budget();
            assert!(
                predicted <= measured + 2.0,
                "step {step}: prediction {predicted} exceeds measured {measured}"
            );
            assert!(
                measured - predicted < 45.0,
                "step {step}: prediction {predicted} too pessimistic vs {measured}"
            );
        }
    }

    #[test]
    fn scalar_mul_prediction() {
        let (ctx, sk, pk, _, mut rng) = setup();
        let ct = ctx.encrypt(&pk, &ctx.encode_scalar(3), &mut rng);
        let scaled = ctx.mul_scalar(&ct, 65_000);
        let measured = f64::from(ctx.noise_budget(&sk, &scaled));
        let predicted = NoiseModel::fresh(&ctx)
            .after_mul_scalar(65_536)
            .predicted_budget();
        assert!(predicted <= measured + 2.0, "{predicted} vs {measured}");
    }

    #[test]
    fn suggested_params_match_hand_tuned() {
        // The scalar t=4/r=2 test circuit was hand-tuned to 4×50-bit
        // primes; the model should land within one prime of that.
        let count = suggest_prime_count(4, 2, false, 256, Modulus::PASTA_17_BIT, 50, 12.0).unwrap();
        assert!((4..=6).contains(&count), "suggested {count} primes");
        // The batched variant needs at least as much.
        let batched =
            suggest_prime_count(4, 2, true, 256, Modulus::PASTA_17_BIT, 50, 12.0).unwrap();
        assert!(batched >= count);
        // PASTA-4 proper needs substantially more.
        let p4 = suggest_prime_count(32, 4, false, 2_048, Modulus::PASTA_17_BIT, 55, 12.0).unwrap();
        assert!((6..=10).contains(&p4), "PASTA-4 suggestion {p4}");
        // Degenerate inputs (1-bit primes cannot outgrow the circuit)
        // yield None instead of a bogus suggestion.
        assert_eq!(
            suggest_prime_count(32, 4, true, 256, Modulus::PASTA_17_BIT, 1, 12.0),
            None
        );
    }

    #[test]
    fn suggested_params_actually_work_end_to_end() {
        // Build a context from the model's suggestion and run the
        // real homomorphic circuit's noisiest primitive chain.
        let params = suggest_bfv_params(4, 2, false, 256, 50).unwrap();
        let ctx = BfvContext::new(params).unwrap();
        let mut rng = StdRng::seed_from_u64(777);
        let sk = ctx.generate_secret_key(&mut rng);
        let pk = ctx.generate_public_key(&sk, &mut rng);
        let rk = ctx.generate_relin_key(&sk, &mut rng);
        // Emulate the circuit: 3 affine layers of scalar-mul+sum, 1
        // Feistel square, 1 cube (two muls).
        let mut ct = ctx.encrypt(&pk, &ctx.encode_scalar(2), &mut rng);
        for layer in 0..3 {
            ct = ctx.mul_scalar(&ct, 65_000);
            for _ in 1..4 {
                ct = ctx.add(&ct, &ct).unwrap();
            }
            ct = ctx.add_plain(&ct, &ctx.encode_scalar(5));
            if layer == 0 {
                ct = ctx.square_relin(&ct, &rk).unwrap();
            } else if layer == 1 {
                let sq = ctx.square_relin(&ct, &rk).unwrap();
                ct = ctx.mul_relin(&sq, &ct, &rk).unwrap();
            }
        }
        let budget = ctx.noise_budget(&sk, &ct);
        assert!(budget > 0, "suggested parameters exhausted the budget");
        // And the plaintext is still exact.
        let expected_nonzero = ctx.decrypt(&sk, &ct).scalar();
        let _ = expected_nonzero; // value is circuit-defined; exactness is
                                  // implied by the positive budget
    }

    #[test]
    fn budget_never_negative() {
        let m = NoiseModel::fresh_for(256, Modulus::PASTA_17_BIT, 60, 50, 1);
        let end = transcipher_noise(8, 4, true, m);
        assert_eq!(end.predicted_budget(), 0.0);
    }
}
