//! Full-RNS (BEHZ-style) base conversion for ciphertext multiplication.
//!
//! [`crate::bfv::BfvContext::mul`] needs two operations that naively
//! leave the residue number system: lifting a ciphertext polynomial from
//! `Z_q` into a basis wide enough to hold the exact tensor product, and
//! the `t/q` scaled rounding that brings the product back down. The
//! bigint oracle CRT-reconstructs every coefficient into a
//! multi-hundred-bit integer for both steps; this module replaces them
//! with the fast base conversions of Bajard–Eynard–Hasan–Zucca
//! ("A Full RNS Variant of FV-like Somewhat Homomorphic Encryption
//! Schemes", SAC 2016), so the hot path is pure per-prime 64-bit
//! arithmetic:
//!
//! * **Lift** (`q → B ∪ {m_sk}`): the input residues are pre-multiplied
//!   by `m̃ = 2^16`, fast-base-converted (`ξ_i = [m̃·x_i·q̃_i]_{q_i}`,
//!   `y_p = Σ_i ξ_i·[q̂_i]_p`), and the conversion's multiple-of-`q`
//!   excess is read off a power-of-two correction channel (mask
//!   arithmetic, no extra prime) — the small-Montgomery reduction
//!   `SmMRq`. Taking the correction **centered** makes the output the
//!   near-centered signed representative: `x̃ ≡ x (mod q)` with
//!   `|x̃| ≤ (q/2)·(1 + 2(k+1)/m̃)` — within a 2⁻¹⁵ sliver of the
//!   oracle's exactly-centered lift, which only nudges the tensor noise
//!   by a correspondingly negligible amount.
//! * **Scale** (`⌊t·c/q⌋`, `c` held in `q ∪ B ∪ {m_sk}`): computed
//!   residue-wise as `d = [(t·c − y)·q^{-1}]` in the auxiliary basis
//!   (`y` again a fast base conversion from `q`), which equals
//!   `⌊t·c/q⌋ − α` with `α ∈ [0, k)` — a bounded additive error far
//!   below the ciphertext noise. The result returns to the `q` basis
//!   through the **Shenoy–Kumaresan** exact conversion: the redundant
//!   modulus `m_sk` (the last auxiliary prime) pins down the multiple
//!   of `P = Π p_j` to subtract, so no rounding error is introduced on
//!   the way back.
//!
//! All conversion matrices (`[q̂_i]_{p_j}`, `[P/p_j]_{q_i}`) and scalar
//! constants (with Shoup precomputation where they multiply vectors)
//! are built once in [`RnsMulContext::new`]; the per-call kernels
//! allocate no big integers, and every row/chunk temporary is a
//! recycled [`crate::scratch`] buffer — a warm multiplication performs
//! zero heap allocations here. Base conversion parallelizes over *both*
//! primes and fixed-size coefficient chunks via [`pasta_par`] — every
//! output element is a pure function of the inputs, so results are
//! bit-identical for any `PASTA_THREADS` setting.

use crate::bigint::UBig;
use crate::ring::{generate_ntt_primes, RnsBasis, RnsPoly, PAR_MIN_RING_DEGREE};
use crate::scratch;
use pasta_math::{simd, MathError};

/// The power-of-two correction channel `m̃` of the SmMRq lift.
const MTILDE_BITS: u32 = 16;
const MTILDE: u64 = 1 << MTILDE_BITS;
const MTILDE_MASK: u64 = MTILDE - 1;

/// Coefficients per parallel work item. Fixed (not derived from the
/// thread count) so the task decomposition — and therefore the output —
/// is identical for any `PASTA_THREADS`.
const CHUNK: usize = 1024;

/// `a^{-1} mod 2^16` for odd `a`, by Newton iteration (each step
/// doubles the number of correct low bits; 5 steps ≥ 32 bits).
fn inv_mod_mtilde(a: u64) -> u64 {
    debug_assert!(a & 1 == 1, "inverse mod 2^16 requires an odd input");
    let mut x: u64 = 1;
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x & MTILDE_MASK
}

fn ceil_log2(x: usize) -> u32 {
    usize::BITS - x.saturating_sub(1).leading_zeros()
}

/// Precomputed material for full-RNS ciphertext multiplication over a
/// given ciphertext basis `q = Π q_i` and plaintext modulus `t`.
///
/// The auxiliary basis is `B ∪ {m_sk}`: `l` primes whose product `P`
/// holds `⌊t·c/q⌋` for any tensor coefficient `c`, plus the redundant
/// Shenoy–Kumaresan modulus `m_sk` stored as the **last** auxiliary
/// prime. This is roughly *half* the size of the extended basis the
/// bigint oracle needs (`P ≳ t·N·q` instead of `Q_ext ≳ N·q²`), so the
/// fast path also runs fewer NTTs per product.
#[derive(Debug, Clone)]
pub struct RnsMulContext {
    /// `B ∪ {m_sk}` with NTT tables; `m_sk` is the last prime.
    aux: RnsBasis,
    /// Number of primes in `B` (the auxiliary basis minus `m_sk`).
    l: usize,
    // ---- lift (q → aux, SmMRq) ----
    /// `[m̃·q̃_i]_{q_i}` with Shoup precomputation.
    lift_w: Vec<u64>,
    lift_w_shoup: Vec<u64>,
    /// `[q̂_i]_{p_j}`, indexed `[j][i]` (row per auxiliary prime).
    conv_q_to_aux: Vec<Vec<u64>>,
    /// `[q̂_i] mod m̃`.
    conv_q_to_mtilde: Vec<u64>,
    /// `[−q^{-1}] mod m̃`.
    neg_q_inv_mtilde: u64,
    /// `[q]_{p_j}` with Shoup precomputation.
    q_mod_aux: Vec<u64>,
    q_mod_aux_shoup: Vec<u64>,
    /// `[m̃^{-1}]_{p_j}` with Shoup precomputation.
    mtilde_inv_aux: Vec<u64>,
    mtilde_inv_aux_shoup: Vec<u64>,
    // ---- scale (⌊t·c/q⌋ in aux) ----
    /// `[t·q̃_i]_{q_i}` with Shoup precomputation.
    tq_inv: Vec<u64>,
    tq_inv_shoup: Vec<u64>,
    /// `[t]_{p_j}` with Shoup precomputation.
    t_mod_aux: Vec<u64>,
    t_mod_aux_shoup: Vec<u64>,
    /// `[q^{-1}]_{p_j}` with Shoup precomputation.
    q_inv_aux: Vec<u64>,
    q_inv_aux_shoup: Vec<u64>,
    // ---- Shenoy–Kumaresan exact conversion (B → q via m_sk) ----
    /// `[(P/p_j)^{-1}]_{p_j}` with Shoup precomputation, `j < l`.
    p_tilde: Vec<u64>,
    p_tilde_shoup: Vec<u64>,
    /// `[P/p_j]_{q_i}`, indexed `[i][j]` (row per ciphertext prime).
    conv_b_to_q: Vec<Vec<u64>>,
    /// `[P/p_j]_{m_sk}`.
    conv_b_to_msk: Vec<u64>,
    /// `[P^{-1}]_{m_sk}` with Shoup precomputation.
    p_inv_msk: u64,
    p_inv_msk_shoup: u64,
    /// `[P]_{q_i}` with Shoup precomputation.
    p_mod_q: Vec<u64>,
    p_mod_q_shoup: Vec<u64>,
}

impl RnsMulContext {
    /// Builds the auxiliary basis and all conversion constants for
    /// multiplying ciphertexts over `basis` with plaintext modulus `t`.
    ///
    /// Setup-time only: this constructor is free to use [`UBig`]
    /// arithmetic; the per-multiplication kernels are not.
    ///
    /// # Errors
    ///
    /// Returns an error if not enough NTT-friendly auxiliary primes
    /// exist, or if the prime widths would overflow the `u128`
    /// accumulators of the conversion inner loops.
    pub fn new(basis: &RnsBasis, t: u64) -> Result<Self, MathError> {
        let n = basis.n();
        let k = basis.len();
        let max_q_bits = basis
            .primes()
            .iter()
            .map(pasta_math::Modulus::bits)
            .max()
            .unwrap_or(0);
        // P must hold ⌊t·c/q⌋ − α for |c| ≤ N·q²/2 (the worst tensor
        // coefficient): bits(P) ≥ bits(q) + bits(t) + log2(N) + margin.
        let t_bits = (64 - t.leading_zeros()) as usize;
        let needed_p_bits = basis.q().bits() + t_bits + ceil_log2(n) as usize + 4;
        let aux_bits = (max_q_bits + 1).min(60);
        let l = needed_p_bits.div_ceil(aux_bits as usize - 1);
        // u128 accumulator guard for the conversion inner loops:
        // Σ over max(k, l) terms of (q-prime × aux-prime) products.
        let acc_bits = max_q_bits as usize + aux_bits as usize + ceil_log2(k.max(l + 1)) as usize;
        if acc_bits > 126 {
            return Err(MathError::UnsupportedWidth(aux_bits));
        }
        // l + 1 auxiliary primes (m_sk last), disjoint from the q
        // primes: generate slack and filter collisions away.
        let two_adicity = (2 * n).trailing_zeros();
        let candidates = generate_ntt_primes(aux_bits, two_adicity, l + 1 + k)?;
        let aux_primes: Vec<_> = candidates
            .into_iter()
            .filter(|p| !basis.primes().contains(p))
            .take(l + 1)
            .collect();
        if aux_primes.len() < l + 1 {
            return Err(MathError::UnsupportedWidth(aux_bits));
        }
        let aux = RnsBasis::new(n, aux_primes)?;

        let q = basis.q();
        let mut lift_w = Vec::with_capacity(k);
        let mut lift_w_shoup = Vec::with_capacity(k);
        let mut conv_q_to_mtilde = Vec::with_capacity(k);
        let mut tq_inv = Vec::with_capacity(k);
        let mut tq_inv_shoup = Vec::with_capacity(k);
        for i in 0..k {
            let zp = basis.zp(i);
            let w = zp.mul(MTILDE % zp.p(), basis.q_hat_inv(i));
            lift_w.push(w);
            lift_w_shoup.push(zp.shoup(w));
            conv_q_to_mtilde.push(basis.q_hat(i).low_u64() & MTILDE_MASK);
            let tqi = zp.mul(t % zp.p(), basis.q_hat_inv(i));
            tq_inv.push(tqi);
            tq_inv_shoup.push(zp.shoup(tqi));
        }
        let neg_q_inv_mtilde = MTILDE - inv_mod_mtilde(q.low_u64() & MTILDE_MASK);

        let mut conv_q_to_aux = Vec::with_capacity(l + 1);
        let mut q_mod_aux = Vec::with_capacity(l + 1);
        let mut q_mod_aux_shoup = Vec::with_capacity(l + 1);
        let mut mtilde_inv_aux = Vec::with_capacity(l + 1);
        let mut mtilde_inv_aux_shoup = Vec::with_capacity(l + 1);
        let mut t_mod_aux = Vec::with_capacity(l + 1);
        let mut t_mod_aux_shoup = Vec::with_capacity(l + 1);
        let mut q_inv_aux = Vec::with_capacity(l + 1);
        let mut q_inv_aux_shoup = Vec::with_capacity(l + 1);
        for j in 0..=l {
            let zp = aux.zp(j);
            conv_q_to_aux.push((0..k).map(|i| basis.q_hat(i).rem_u64(zp.p())).collect());
            let qm = q.rem_u64(zp.p());
            q_mod_aux.push(qm);
            q_mod_aux_shoup.push(zp.shoup(qm));
            let mi = zp.inv(MTILDE % zp.p())?;
            mtilde_inv_aux.push(mi);
            mtilde_inv_aux_shoup.push(zp.shoup(mi));
            let tm = t % zp.p();
            t_mod_aux.push(tm);
            t_mod_aux_shoup.push(zp.shoup(tm));
            let qi = zp.inv(qm)?;
            q_inv_aux.push(qi);
            q_inv_aux_shoup.push(zp.shoup(qi));
        }

        // P = Π_{j<l} p_j — the Shenoy–Kumaresan modulus excludes m_sk.
        let mut p_big = UBig::one();
        for j in 0..l {
            p_big = p_big.mul_u64(aux.primes()[j].value());
        }
        let msk = aux.primes()[l].value();
        let msk_zp = aux.zp(l);
        let mut p_tilde = Vec::with_capacity(l);
        let mut p_tilde_shoup = Vec::with_capacity(l);
        let mut p_hats = Vec::with_capacity(l);
        for j in 0..l {
            let zp = aux.zp(j);
            let (p_hat, rem) = p_big.div_rem(&UBig::from_u64(zp.p()));
            debug_assert!(rem.is_zero());
            let inv = zp.inv(p_hat.rem_u64(zp.p()))?;
            p_tilde.push(inv);
            p_tilde_shoup.push(zp.shoup(inv));
            p_hats.push(p_hat);
        }
        let conv_b_to_q = (0..k)
            .map(|i| {
                let p = basis.zp(i).p();
                p_hats.iter().map(|h| h.rem_u64(p)).collect()
            })
            .collect();
        let conv_b_to_msk = p_hats.iter().map(|h| h.rem_u64(msk)).collect();
        let p_inv_msk = msk_zp.inv(p_big.rem_u64(msk))?;
        let p_inv_msk_shoup = msk_zp.shoup(p_inv_msk);
        let mut p_mod_q = Vec::with_capacity(k);
        let mut p_mod_q_shoup = Vec::with_capacity(k);
        for i in 0..k {
            let zp = basis.zp(i);
            let pm = p_big.rem_u64(zp.p());
            p_mod_q.push(pm);
            p_mod_q_shoup.push(zp.shoup(pm));
        }

        Ok(RnsMulContext {
            aux,
            l,
            lift_w,
            lift_w_shoup,
            conv_q_to_aux,
            conv_q_to_mtilde,
            neg_q_inv_mtilde,
            q_mod_aux,
            q_mod_aux_shoup,
            mtilde_inv_aux,
            mtilde_inv_aux_shoup,
            tq_inv,
            tq_inv_shoup,
            t_mod_aux,
            t_mod_aux_shoup,
            q_inv_aux,
            q_inv_aux_shoup,
            p_tilde,
            p_tilde_shoup,
            conv_b_to_q,
            conv_b_to_msk,
            p_inv_msk,
            p_inv_msk_shoup,
            p_mod_q,
            p_mod_q_shoup,
        })
    }

    /// The auxiliary basis `B ∪ {m_sk}` (NTT tables included; `m_sk`
    /// last).
    #[must_use]
    pub fn aux(&self) -> &RnsBasis {
        &self.aux
    }

    /// Number of primes in `B` (the auxiliary basis without `m_sk`).
    #[must_use]
    pub fn aux_b_len(&self) -> usize {
        self.l
    }

    /// Runs `f(row, chunk_start, chunk_end) -> ChunkBuf` over every
    /// (row, coefficient-chunk) pair — possibly in parallel — and
    /// stitches the chunk buffers back into `n_rows` pooled rows of
    /// length `n` (the caller recycles them, typically via
    /// `RnsPoly::drop`). Tasks are independent pure functions, so the
    /// result is identical for any thread count.
    fn par_chunked<F>(n_rows: usize, n: usize, parallel: bool, f: F) -> Vec<Vec<u64>>
    where
        F: Fn(usize, usize, usize) -> scratch::ChunkBuf + Sync,
    {
        let tasks: Vec<(usize, usize)> = (0..n_rows)
            .flat_map(|r| (0..n).step_by(CHUNK).map(move |s| (r, s)))
            .collect();
        let bufs = pasta_par::maybe_parallel_map(parallel, &tasks, |_, &(r, start)| {
            f(r, start, (start + CHUNK).min(n))
        });
        let mut rows = scratch::take_rows(n_rows, n);
        for (&(r, start), buf) in tasks.iter().zip(&bufs) {
            rows[r][start..start + buf.len()].copy_from_slice(buf);
        }
        rows
    }

    /// Lifts a coefficient-domain polynomial from the `q` basis into the
    /// auxiliary basis: the output residues represent a signed integer
    /// `x̃ ≡ x (mod q)` with `|x̃| ≤ (q/2)·(1 + 2(k+1)/m̃)` — the
    /// near-centered representative of the SmMRq reduction with a
    /// centered correction term. No approximation beyond that bound:
    /// the `m̃` channel pins the multiple of `q` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `poly` is in NTT domain.
    #[must_use]
    pub fn lift_to_aux(&self, basis: &RnsBasis, poly: &RnsPoly) -> RnsPoly {
        assert!(!poly.is_ntt(), "lift requires coefficient domain");
        let n = basis.n();
        let k = basis.len();
        let parallel = n >= PAR_MIN_RING_DEGREE;

        // ξ_i = [x_i·m̃·q̃_i]_{q_i}, prime-row parallel.
        let row_idx: Vec<usize> = (0..k).collect();
        let xi: Vec<scratch::ChunkBuf> =
            pasta_par::maybe_parallel_map(parallel, &row_idx, |_, &i| {
                let zp = basis.zp(i);
                let (w, ws) = (self.lift_w[i], self.lift_w_shoup[i]);
                let mut row = scratch::take_chunk(n);
                for (dst, &x) in row.iter_mut().zip(poly.row(i)) {
                    *dst = zp.mul_shoup(x, w, ws);
                }
                row
            });

        // Correction r̃ = [−y_m̃·q^{-1}]_{m̃} per coefficient from the
        // power-of-two channel: wrapping u64 arithmetic + masks. Taken
        // centered (r̃ ≤ m̃/2 adds, else subtracts m̃ − r̃) so the
        // result lands on the near-centered representative.
        let starts: Vec<usize> = (0..n).step_by(CHUNK).collect();
        let r_chunks = pasta_par::maybe_parallel_map(parallel, &starts, |_, &s| {
            let end = (s + CHUNK).min(n);
            let mut buf = scratch::take_chunk(end - s);
            for (idx, c) in (s..end).enumerate() {
                let mut acc = 0u64;
                for (row, &conv) in xi.iter().zip(self.conv_q_to_mtilde.iter()) {
                    acc = acc.wrapping_add(row[c].wrapping_mul(conv));
                }
                buf[idx] = (acc & MTILDE_MASK).wrapping_mul(self.neg_q_inv_mtilde) & MTILDE_MASK;
            }
            buf
        });
        let mut r_tilde = scratch::take_chunk(n);
        for (chunk, &s) in r_chunks.iter().zip(&starts) {
            r_tilde[s..s + chunk.len()].copy_from_slice(chunk);
        }
        drop(r_chunks);

        // y_p = Σ_i ξ_i·[q̂_i]_p; x̃_p = [(y_p ± r·q)·m̃^{-1}]_p.
        let be = simd::backend();
        let rows = Self::par_chunked(self.aux.len(), n, parallel, |j, start, end| {
            let zp = self.aux.zp(j);
            let conv = &self.conv_q_to_aux[j];
            let xi_chunk: Vec<&[u64]> = xi.iter().map(|row| &row[start..end]).collect();
            // `dot_mod_with` fully overwrites `ys`, so the recycled
            // scratch row needs no zeroing.
            let mut ys = scratch::take_chunk(end - start);
            simd::dot_mod_with(be, zp.p(), &xi_chunk, conv, &mut ys);
            let mut buf = scratch::take_chunk(end - start);
            for (idx, c) in (start..end).enumerate() {
                let y = ys[idx];
                let r = r_tilde[c];
                let v = if r <= MTILDE / 2 {
                    zp.add(
                        y,
                        zp.mul_shoup(r, self.q_mod_aux[j], self.q_mod_aux_shoup[j]),
                    )
                } else {
                    zp.sub(
                        y,
                        zp.mul_shoup(MTILDE - r, self.q_mod_aux[j], self.q_mod_aux_shoup[j]),
                    )
                };
                buf[idx] = zp.mul_shoup(v, self.mtilde_inv_aux[j], self.mtilde_inv_aux_shoup[j]);
            }
            buf
        });
        RnsPoly::from_rows(rows, false)
    }

    /// Computes `⌊t·c/q⌋ − α` (with `α ∈ [0, k)`) residue-wise, where
    /// the signed tensor coefficient `c` is held jointly by its `q`-basis
    /// residues (`c_q`) and auxiliary-basis residues (`c_aux`), and
    /// returns the result in the `q` basis via the Shenoy–Kumaresan
    /// exact conversion. The `α` slack is a bounded additive error of at
    /// most `k` per coefficient — orders of magnitude below the
    /// ciphertext noise this operation rounds off.
    ///
    /// # Panics
    ///
    /// Panics if either input is in NTT domain.
    #[must_use]
    pub fn scale_to_q(&self, basis: &RnsBasis, c_q: &RnsPoly, c_aux: &RnsPoly) -> RnsPoly {
        assert!(
            !c_q.is_ntt() && !c_aux.is_ntt(),
            "scale requires coefficient domain"
        );
        let n = basis.n();
        let k = basis.len();
        let l = self.l;
        let parallel = n >= PAR_MIN_RING_DEGREE;

        // ξ_i = [c_i·t·q̃_i]_{q_i}, prime-row parallel.
        let row_idx: Vec<usize> = (0..k).collect();
        let xi: Vec<scratch::ChunkBuf> =
            pasta_par::maybe_parallel_map(parallel, &row_idx, |_, &i| {
                let zp = basis.zp(i);
                let (w, ws) = (self.tq_inv[i], self.tq_inv_shoup[i]);
                let mut row = scratch::take_chunk(n);
                for (dst, &x) in row.iter_mut().zip(c_q.row(i)) {
                    *dst = zp.mul_shoup(x, w, ws);
                }
                row
            });

        // Per auxiliary prime: d = [(t·c − y)·q^{-1}]_p with y the fast
        // base conversion of ξ. Rows j < l store η_j = [d·(P/p_j)^{-1}]
        // (ready for Shenoy–Kumaresan); row l (m_sk) stores d itself.
        let be = simd::backend();
        let eta = Self::par_chunked(l + 1, n, parallel, |j, start, end| {
            let zp = self.aux.zp(j);
            let conv = &self.conv_q_to_aux[j];
            let aux_row = c_aux.row(j);
            let xi_chunk: Vec<&[u64]> = xi.iter().map(|row| &row[start..end]).collect();
            let mut ys = scratch::take_chunk(end - start);
            simd::dot_mod_with(be, zp.p(), &xi_chunk, conv, &mut ys);
            let mut buf = scratch::take_chunk(end - start);
            for (idx, c) in (start..end).enumerate() {
                let y = ys[idx];
                let tc = zp.mul_shoup(aux_row[c], self.t_mod_aux[j], self.t_mod_aux_shoup[j]);
                let d = zp.mul_shoup(zp.sub(tc, y), self.q_inv_aux[j], self.q_inv_aux_shoup[j]);
                buf[idx] = if j < l {
                    zp.mul_shoup(d, self.p_tilde[j], self.p_tilde_shoup[j])
                } else {
                    d
                };
            }
            buf
        });

        // Shenoy–Kumaresan: the m_sk channel yields the exact multiple
        // of P to subtract, α_sk = [(z_sk − d_sk)·P^{-1}]_{m_sk} ≤ l.
        let msk_zp = self.aux.zp(l);
        let starts: Vec<usize> = (0..n).step_by(CHUNK).collect();
        let alpha_chunks = pasta_par::maybe_parallel_map(parallel, &starts, |_, &s| {
            let end = (s + CHUNK).min(n);
            let eta_chunk: Vec<&[u64]> = eta[..l].iter().map(|row| &row[s..end]).collect();
            let mut zs = scratch::take_chunk(end - s);
            simd::dot_mod_with(be, msk_zp.p(), &eta_chunk, &self.conv_b_to_msk, &mut zs);
            let mut buf = scratch::take_chunk(end - s);
            for (idx, c) in (s..end).enumerate() {
                let a = msk_zp.mul_shoup(
                    msk_zp.sub(zs[idx], eta[l][c]),
                    self.p_inv_msk,
                    self.p_inv_msk_shoup,
                );
                debug_assert!(a <= l as u64, "S-K correction must stay below l + 1");
                buf[idx] = a;
            }
            buf
        });
        let mut alpha = scratch::take_chunk(n);
        for (chunk, &s) in alpha_chunks.iter().zip(&starts) {
            alpha[s..s + chunk.len()].copy_from_slice(chunk);
        }
        drop(alpha_chunks);

        let rows = Self::par_chunked(k, n, parallel, |i, start, end| {
            let zp = basis.zp(i);
            let conv = &self.conv_b_to_q[i];
            let eta_chunk: Vec<&[u64]> = eta[..l].iter().map(|row| &row[start..end]).collect();
            let mut zs = scratch::take_chunk(end - start);
            simd::dot_mod_with(be, zp.p(), &eta_chunk, conv, &mut zs);
            let mut buf = scratch::take_chunk(end - start);
            for (idx, c) in (start..end).enumerate() {
                buf[idx] = zp.sub(
                    zs[idx],
                    zp.mul_shoup(alpha[c], self.p_mod_q[i], self.p_mod_q_shoup[i]),
                );
            }
            buf
        });
        scratch::put_rows(eta);
        RnsPoly::from_rows(rows, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const T: u64 = 65_537;

    fn world() -> (RnsBasis, RnsMulContext) {
        let basis = RnsBasis::with_generated_primes(16, 50, 3).unwrap();
        let ctx = RnsMulContext::new(&basis, T).unwrap();
        (basis, ctx)
    }

    /// The signed value a residue vector over `basis` represents, as
    /// `(magnitude, negative)` after centering.
    fn centered_value(basis: &RnsBasis, residues: &[u64]) -> (UBig, bool) {
        let v = basis.crt_reconstruct(residues);
        let half = basis.q().shr(1);
        if v.cmp_big(&half) == std::cmp::Ordering::Greater {
            (basis.q().sub(&v), true)
        } else {
            (v, false)
        }
    }

    fn boundary_values(basis: &RnsBasis) -> Vec<UBig> {
        let q = basis.q();
        let half = q.shr(1);
        vec![
            UBig::zero(),
            UBig::one(),
            half.sub(&UBig::one()),
            half.clone(),
            half.add(&UBig::one()),
            q.sub(&UBig::one()),
        ]
    }

    fn check_lift(basis: &RnsBasis, ctx: &RnsMulContext, values: &[UBig]) {
        let n = basis.n();
        let k = basis.len();
        let mut padded = values.to_vec();
        padded.resize(n, UBig::zero());
        let poly = RnsPoly::from_bigint_coeffs(basis, &padded);
        let lifted = ctx.lift_to_aux(basis, &poly);
        let q = basis.q();
        // |x̃| ≤ (q/2)·(1 + 2(k+1)/m̃) = q/2 + q(k+1)/m̃.
        let bound = q
            .shr(1)
            .add(&q.mul_u64(k as u64 + 1).shr(MTILDE_BITS as usize))
            .add(&UBig::one());
        for (c, expected) in padded.iter().enumerate() {
            let residues: Vec<u64> = (0..ctx.aux().len()).map(|j| lifted.row(j)[c]).collect();
            let (got_mag, got_neg) = centered_value(ctx.aux(), &residues);
            // Congruence: x̃ ≡ x (mod q).
            let got_mod_q = {
                let r = got_mag.div_rem(q).1;
                if got_neg && !r.is_zero() {
                    q.sub(&r)
                } else {
                    r
                }
            };
            assert_eq!(&got_mod_q, expected, "coefficient {c} congruence mod q");
            // Near-centered magnitude bound.
            assert!(
                got_mag.cmp_big(&bound) != std::cmp::Ordering::Greater,
                "coefficient {c} magnitude exceeds near-centered bound"
            );
        }
    }

    /// `⌊t·c/q⌋` for the signed coefficient `c`, reduced into `[0, q)`.
    fn exact_floor_mod_q(basis: &RnsBasis, mag: &UBig, negative: bool) -> UBig {
        let q = basis.q();
        let scaled = mag.mul_u64(T);
        let f = if negative {
            // ⌊−x/q⌋ = −⌈x/q⌉
            scaled.add(q).sub(&UBig::one()).div_rem(q).0
        } else {
            scaled.div_rem(q).0
        };
        let r = f.div_rem(q).1;
        if negative && !r.is_zero() {
            q.sub(&r)
        } else {
            r
        }
    }

    fn check_scale(basis: &RnsBasis, ctx: &RnsMulContext, values: &[(UBig, bool)]) {
        let n = basis.n();
        let k = basis.len();
        let mut padded = values.to_vec();
        padded.resize(n, (UBig::zero(), false));
        let q_rows: Vec<Vec<u64>> = (0..k)
            .map(|i| {
                padded
                    .iter()
                    .map(|(m, neg)| {
                        let p = basis.primes()[i].value();
                        let r = m.rem_u64(p);
                        if *neg && r != 0 {
                            p - r
                        } else {
                            r
                        }
                    })
                    .collect()
            })
            .collect();
        let aux_rows: Vec<Vec<u64>> = (0..ctx.aux().len())
            .map(|j| {
                padded
                    .iter()
                    .map(|(m, neg)| {
                        let p = ctx.aux().primes()[j].value();
                        let r = m.rem_u64(p);
                        if *neg && r != 0 {
                            p - r
                        } else {
                            r
                        }
                    })
                    .collect()
            })
            .collect();
        let c_q = RnsPoly::from_rows(q_rows, false);
        let c_aux = RnsPoly::from_rows(aux_rows, false);
        let out = ctx.scale_to_q(basis, &c_q, &c_aux);
        for (c, (mag, neg)) in padded.iter().enumerate() {
            let residues: Vec<u64> = (0..k).map(|i| out.row(i)[c]).collect();
            let got = basis.crt_reconstruct(&residues);
            let want = exact_floor_mod_q(basis, mag, *neg);
            // got = want − α mod q with α ∈ [0, k).
            let diff = if want.cmp_big(&got) == std::cmp::Ordering::Less {
                want.add(basis.q()).sub(&got)
            } else {
                want.sub(&got)
            };
            assert!(
                diff.cmp_big(&UBig::from_u64(k as u64)) == std::cmp::Ordering::Less,
                "coefficient {c}: fast-conversion slack {diff:?} ≥ k"
            );
        }
    }

    #[test]
    fn lift_matches_exact_crt_at_sign_boundaries() {
        let (basis, ctx) = world();
        check_lift(&basis, &ctx, &boundary_values(&basis));
    }

    #[test]
    fn scale_matches_exact_floor_at_boundaries() {
        let (basis, ctx) = world();
        // |c| up to N·q²/2 — the worst tensor coefficient the scale
        // path must handle. Exercise both signs at the extremes plus
        // the q/2 sign-centering boundary.
        let q = basis.q();
        let c_max = q.mul(q).mul_u64(basis.n() as u64 / 2);
        let half = q.shr(1);
        let values = vec![
            (UBig::zero(), false),
            (UBig::one(), false),
            (UBig::one(), true),
            (half.clone(), false),
            (half.add(&UBig::one()), true),
            (c_max.clone(), false),
            (c_max.clone(), true),
            (c_max.sub(&UBig::one()), true),
        ];
        check_scale(&basis, &ctx, &values);
    }

    #[test]
    fn aux_basis_is_disjoint_and_sized() {
        let (basis, ctx) = world();
        for p in ctx.aux().primes() {
            assert!(!basis.primes().contains(p), "aux prime collides with q");
        }
        // P (without m_sk) must hold t·N·q/2 with margin.
        let needed = basis.q().bits() + 17 + 4;
        let p_bits: usize = ctx.aux().primes()[..ctx.aux_b_len()]
            .iter()
            .map(|p| p.bits() as usize - 1)
            .sum();
        assert!(p_bits >= needed, "P too small: {p_bits} < {needed}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[test]
            fn prop_lift_matches_exact_crt(seed in any::<u64>()) {
                let (basis, ctx) = world();
                let mut rng = StdRng::seed_from_u64(seed);
                let values: Vec<UBig> = (0..basis.n())
                    .map(|_| {
                        let residues: Vec<u64> = basis
                            .primes()
                            .iter()
                            .map(|p| rng.gen_range(0..p.value()))
                            .collect();
                        basis.crt_reconstruct(&residues)
                    })
                    .collect();
                check_lift(&basis, &ctx, &values);
            }

            #[test]
            fn prop_scale_within_fast_conversion_slack(seed in any::<u64>()) {
                let (basis, ctx) = world();
                let mut rng = StdRng::seed_from_u64(seed);
                let c_max = basis.q().mul(basis.q()).mul_u64(basis.n() as u64 / 2);
                let values: Vec<(UBig, bool)> = (0..basis.n())
                    .map(|_| {
                        // Random magnitude below c_max: random limbs,
                        // reduced mod c_max.
                        let limbs: Vec<u64> =
                            (0..c_max.limbs().len() + 1).map(|_| rng.gen()).collect();
                        let mag = UBig::from_limbs(limbs).div_rem(&c_max).1;
                        (mag, rng.gen())
                    })
                    .collect();
                check_scale(&basis, &ctx, &values);
            }
        }
    }
}
