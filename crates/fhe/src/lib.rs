//! A from-scratch BFV fully homomorphic encryption substrate.
//!
//! The HHE workflow of the PASTA-on-Edge paper (Fig. 1) needs a server
//! that evaluates the PASTA *decryption circuit homomorphically*. The
//! original PASTA software uses Microsoft SEAL; nothing comparable is
//! available offline, so this crate implements the required subset of BFV
//! from first principles:
//!
//! - [`bigint`]: minimal multi-limb unsigned integers for decryption
//!   scaling, setup-time precomputation, and the bigint multiplication
//!   oracle;
//! - [`ntt`]: the negacyclic number-theoretic transform;
//! - [`ring`]: RNS polynomials over `Z_q[X]/(X^N + 1)`;
//! - [`rns_mul`]: BEHZ-style fast base conversion so ciphertext
//!   multiplication never leaves RNS (the `PASTA_MUL=bigint` escape
//!   hatch selects the retained exact big-integer oracle);
//! - [`bfv`]: key generation, encryption, decryption, addition,
//!   plaintext/scalar multiplication, tensor-product ciphertext
//!   multiplication and RNS-decomposition relinearization, with an exact
//!   noise-budget meter;
//! - [`encoding`]: SIMD batching over `Z_t` slots (`t = 65537`).
//!
//! Parameters are sized for *functional* noise budgets, not security —
//! the paper's contribution is the client accelerator; the server side
//! here exists to run the end-to-end workflow. See DESIGN.md.
//!
//! # Examples
//!
//! ```
//! use pasta_fhe::{BfvContext, BfvParams};
//! use rand::SeedableRng;
//!
//! let ctx = BfvContext::new(BfvParams::test_tiny())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let sk = ctx.generate_secret_key(&mut rng);
//! let pk = ctx.generate_public_key(&sk, &mut rng);
//! let ct = ctx.encrypt(&pk, &ctx.encode_scalar(41), &mut rng);
//! let ct = ctx.add_plain(&ct, &ctx.encode_scalar(1));
//! assert_eq!(ctx.decrypt(&sk, &ct).scalar(), 42);
//! # Ok::<(), pasta_fhe::FheError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfv;
pub mod bigint;
pub mod encoding;
mod galois_tests;
pub mod noise;
pub mod ntt;
pub mod ring;
pub mod rns_mul;
pub mod scratch;

pub use bfv::{
    BfvContext, BfvGaloisKey, BfvParams, BfvPublicKey, BfvRelinKey, BfvSecretKey, Ciphertext,
    FheError, HoistedCiphertext, Plaintext, PreparedPlaintext, MUL_BACKEND_ENV,
};
pub use encoding::BatchEncoder;
pub use noise::{suggest_bfv_params, NoiseModel};
pub use rns_mul::RnsMulContext;
