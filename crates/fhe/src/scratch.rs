//! Pooled scratch memory for RNS polynomial rows.
//!
//! Every hot-path [`crate::RnsPoly`](crate::ring::RnsPoly) and every
//! BEHZ temporary is a *bundle* of `u64` rows — `rows` vectors of
//! `row_len` coefficients each. This module recycles those bundles so
//! a warm transcipher or ciphertext-multiply pass performs **zero**
//! heap allocations in the kernels: `RnsPoly::drop` returns its rows
//! here, and the pooled constructors (`zero`, `Clone`, the BEHZ chunk
//! buffers) take them back.
//!
//! # Structure
//!
//! Two levels, keyed by `(rows, row_len)` — i.e. `(prime_count,
//! degree)` for polynomial bundles:
//!
//! - a **thread-local** pool (lock-free fast path) serving takes and
//!   puts on the owning thread;
//! - a **global overflow bin** (one `Mutex`) that receives local
//!   excess and serves local misses, so bundles allocated on a
//!   `pasta-par` worker but dropped on the dispatching thread (or vice
//!   versa) still recirculate instead of being reallocated each pass.
//!
//! Both levels are bounded ([`LOCAL_CAP_U64S`] per thread,
//! [`GLOBAL_CAP_U64S`] shared); over-cap local buckets spill to the
//! global bin in least-recently-used order (a monotonic per-thread
//! tick — never wall-clock, which the determinism audit bans), and the
//! global bin frees over-cap bundles outright. Each local bucket also
//! holds at most [`LOCAL_BUCKET_CAP`] bundles of one key: any excess
//! goes straight to the global bin, so a producer/consumer thread pair
//! (pool workers allocating output rows that the dispatching thread
//! drops) recirculates within a few passes instead of the consumer
//! hoarding bundles up to its byte cap while the producers reallocate.
//!
//! # Determinism and accounting
//!
//! Pooling is invisible to the math: a recycled buffer is either
//! zeroed ([`take_rows_zeroed`]) or fully overwritten by its taker
//! before any read, so values never depend on pool state. What *is*
//! observable is the allocation count: mirroring
//! [`ubig_alloc_count`](crate::bigint::ubig_alloc_count), debug builds
//! count every freshly allocated coefficient row in a thread-local
//! [`poly_alloc_count`], and the warm-path tests in `fhe`/`hhe` assert
//! it stays flat across a warm pass. Release builds keep only the
//! cheap global [`stats`] counters (hits/misses/evictions), which
//! `bench_hotpath` reports as `warm_allocs`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-thread pooled-capacity bound, in `u64` coefficients (16 MiB).
pub const LOCAL_CAP_U64S: usize = 2 << 20;

/// Global overflow-bin bound, in `u64` coefficients (128 MiB).
pub const GLOBAL_CAP_U64S: usize = 16 << 20;

/// Per-key depth bound of a thread-local bucket, in bundles. Sized to
/// the single-threaded working set (take/put pairs rarely leave more
/// than a couple of same-key bundles parked); beyond it, puts spill to
/// the global bin so other threads can take them.
pub const LOCAL_BUCKET_CAP: usize = 4;

/// A recyclable row bundle: `rows` vectors of identical length.
type Bundle = Vec<Vec<u64>>;

struct Bucket {
    rows: usize,
    row_len: usize,
    bundles: Vec<Bundle>,
    /// Monotonic per-thread tick of the last take/put; LRU spill key.
    last_used: u64,
}

struct LocalPool {
    buckets: Vec<Bucket>,
    held_u64s: usize,
    tick: u64,
}

struct GlobalPool {
    buckets: Vec<((usize, usize), Vec<Bundle>)>,
    held_u64s: usize,
}

thread_local! {
    static LOCAL: RefCell<LocalPool> = const {
        RefCell::new(LocalPool { buckets: Vec::new(), held_u64s: 0, tick: 0 })
    };
}

static GLOBAL: Mutex<GlobalPool> = Mutex::new(GlobalPool {
    buckets: Vec::new(),
    held_u64s: 0,
});

static TAKES: AtomicU64 = AtomicU64::new(0);
static LOCAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTED_BUNDLES: AtomicU64 = AtomicU64::new(0);

#[cfg(debug_assertions)]
thread_local! {
    static POLY_ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of coefficient rows (`Vec<u64>` limb vectors) freshly
/// allocated on this thread — i.e. pool misses, in rows. Debug-only
/// mirror of [`crate::bigint::ubig_alloc_count`]: always 0 in release
/// builds. A warm hot-path pass must leave this unchanged.
#[must_use]
pub fn poly_alloc_count() -> u64 {
    #[cfg(debug_assertions)]
    {
        POLY_ALLOCS.with(std::cell::Cell::get)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[cfg(debug_assertions)]
fn count_fresh_rows(rows: usize) {
    POLY_ALLOCS.with(|c| c.set(c.get() + rows as u64));
}

#[cfg(not(debug_assertions))]
fn count_fresh_rows(_rows: usize) {}

/// Point-in-time counters for the scratch pool (process-global).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ScratchStats {
    /// Bundle requests served (any path).
    pub takes: u64,
    /// Requests served from the caller's thread-local pool.
    pub local_hits: u64,
    /// Requests served from the global overflow bin.
    pub global_hits: u64,
    /// Requests that allocated fresh rows — the steady-state
    /// `warm_allocs` figure; 0 once every working buffer recirculates.
    pub misses: u64,
    /// Bundles freed because a pool exceeded its capacity bound.
    pub evicted_bundles: u64,
}

/// Snapshots the scratch-pool counters.
#[must_use]
pub fn stats() -> ScratchStats {
    ScratchStats {
        takes: TAKES.load(Ordering::Relaxed),
        local_hits: LOCAL_HITS.load(Ordering::Relaxed),
        global_hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evicted_bundles: EVICTED_BUNDLES.load(Ordering::Relaxed),
    }
}

fn lock_global() -> std::sync::MutexGuard<'static, GlobalPool> {
    match GLOBAL.lock() {
        Ok(guard) => guard,
        // The critical sections below are pure Vec plumbing over plain
        // data; a poisoning panic cannot corrupt them.
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn take_global(rows: usize, row_len: usize) -> Option<Bundle> {
    let mut global = lock_global();
    let bucket = global
        .buckets
        .iter_mut()
        .find(|(key, _)| *key == (rows, row_len))?;
    let bundle = bucket.1.pop()?;
    global.held_u64s = global.held_u64s.saturating_sub(rows * row_len);
    Some(bundle)
}

/// Moves a batch of same-key bundles into the global bin, freeing any
/// overflow beyond [`GLOBAL_CAP_U64S`].
fn put_global(rows: usize, row_len: usize, mut bundles: Vec<Bundle>) {
    let each = rows * row_len;
    let mut global = lock_global();
    while !bundles.is_empty() && global.held_u64s + each > GLOBAL_CAP_U64S {
        bundles.pop();
        EVICTED_BUNDLES.fetch_add(1, Ordering::Relaxed);
    }
    if bundles.is_empty() {
        return;
    }
    global.held_u64s += each * bundles.len();
    if let Some(bucket) = global
        .buckets
        .iter_mut()
        .find(|(key, _)| *key == (rows, row_len))
    {
        bucket.1.append(&mut bundles);
    } else {
        global.buckets.push(((rows, row_len), bundles));
    }
}

fn fresh_bundle(rows: usize, row_len: usize) -> Bundle {
    MISSES.fetch_add(1, Ordering::Relaxed);
    count_fresh_rows(rows);
    (0..rows).map(|_| vec![0u64; row_len]).collect()
}

/// Takes a `rows × row_len` bundle from the pool. Row *contents are
/// unspecified* (recycled values or zeros); the caller must fully
/// overwrite every row before reading, or use [`take_rows_zeroed`].
pub(crate) fn take_rows(rows: usize, row_len: usize) -> Bundle {
    TAKES.fetch_add(1, Ordering::Relaxed);
    if rows == 0 || row_len == 0 {
        return (0..rows).map(|_| Vec::new()).collect();
    }
    let local = LOCAL.try_with(|local| {
        let mut pool = local.borrow_mut();
        pool.tick += 1;
        let tick = pool.tick;
        let bucket = pool
            .buckets
            .iter_mut()
            .find(|b| b.rows == rows && b.row_len == row_len)?;
        bucket.last_used = tick;
        let bundle = bucket.bundles.pop()?;
        pool.held_u64s = pool.held_u64s.saturating_sub(rows * row_len);
        Some(bundle)
    });
    match local {
        Ok(Some(bundle)) => {
            LOCAL_HITS.fetch_add(1, Ordering::Relaxed);
            bundle
        }
        // Local miss (or thread-local storage already torn down): try
        // the global bin, then allocate.
        Ok(None) | Err(_) => match take_global(rows, row_len) {
            Some(bundle) => {
                GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
                bundle
            }
            None => fresh_bundle(rows, row_len),
        },
    }
}

/// [`take_rows`] with every row zeroed.
pub(crate) fn take_rows_zeroed(rows: usize, row_len: usize) -> Bundle {
    let mut bundle = take_rows(rows, row_len);
    for row in &mut bundle {
        row.fill(0);
    }
    bundle
}

/// Returns a bundle to the pool. Accepts any uniform bundle (all rows
/// the same length); ragged or empty bundles are simply freed.
pub(crate) fn put_rows(bundle: Bundle) {
    let rows = bundle.len();
    let Some(row_len) = bundle.first().map(Vec::len) else {
        return;
    };
    if row_len == 0 || bundle.iter().any(|row| row.len() != row_len) {
        return;
    }
    let outcome = LOCAL.try_with(|local| {
        let mut pool = local.borrow_mut();
        pool.tick += 1;
        let tick = pool.tick;
        let mut spill = Vec::new();
        if let Some(bucket) = pool
            .buckets
            .iter_mut()
            .find(|b| b.rows == rows && b.row_len == row_len)
        {
            bucket.last_used = tick;
            bucket.bundles.push(bundle);
            // Per-key depth bound: excess goes to the global bin so a
            // thread that only ever *drops* this shape (while another
            // thread takes it) cannot hoard up to its byte cap.
            if bucket.bundles.len() > LOCAL_BUCKET_CAP {
                spill = bucket.bundles.split_off(LOCAL_BUCKET_CAP);
            }
        } else {
            pool.buckets.push(Bucket {
                rows,
                row_len,
                bundles: vec![bundle],
                last_used: tick,
            });
        }
        pool.held_u64s += rows * row_len;
        pool.held_u64s = pool.held_u64s.saturating_sub(rows * row_len * spill.len());
        if pool.held_u64s > LOCAL_CAP_U64S {
            spill_lru(&mut pool);
        }
        spill
    });
    match outcome {
        // The global put happens outside the thread-local borrow, so
        // the common (under-cap) put never touches the mutex.
        Ok(spill) if !spill.is_empty() => put_global(rows, row_len, spill),
        // Thread-local storage torn down (thread exit): let the bundle
        // drop; nothing on this thread will take it again anyway.
        _ => {}
    }
}

/// Spills least-recently-used local buckets to the global bin until
/// this thread is back under [`LOCAL_CAP_U64S`].
fn spill_lru(pool: &mut LocalPool) {
    while pool.held_u64s > LOCAL_CAP_U64S {
        let Some(lru) = pool
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.bundles.is_empty())
            .min_by_key(|(_, b)| b.last_used)
            .map(|(i, _)| i)
        else {
            return;
        };
        let bucket = &mut pool.buckets[lru];
        let freed = bucket.rows * bucket.row_len * bucket.bundles.len();
        let spilled = std::mem::take(&mut bucket.bundles);
        let (rows, row_len) = (bucket.rows, bucket.row_len);
        pool.held_u64s = pool.held_u64s.saturating_sub(freed);
        put_global(rows, row_len, spilled);
    }
}

/// A pooled single-row scratch buffer for BEHZ chunk temporaries;
/// derefs to `[u64]` and recycles itself on drop.
///
/// Contents on take are unspecified — fully overwrite before reading.
pub(crate) struct ChunkBuf {
    bundle: Bundle,
}

impl ChunkBuf {
    fn row(&self) -> &Vec<u64> {
        // `take_chunk` always builds a 1-row bundle; the fallback keeps
        // the accessor panic-free even if that invariant ever broke.
        static EMPTY: Vec<u64> = Vec::new();
        self.bundle.first().unwrap_or(&EMPTY)
    }
}

/// Takes a pooled scratch row of length `len`.
pub(crate) fn take_chunk(len: usize) -> ChunkBuf {
    ChunkBuf {
        bundle: take_rows(1, len),
    }
}

impl std::ops::Deref for ChunkBuf {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        self.row()
    }
}

impl std::ops::DerefMut for ChunkBuf {
    fn deref_mut(&mut self) -> &mut [u64] {
        match self.bundle.first_mut() {
            Some(row) => row,
            None => &mut [],
        }
    }
}

impl Drop for ChunkBuf {
    fn drop(&mut self) {
        put_rows(std::mem::take(&mut self.bundle));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_bundles_by_key() {
        if !cfg!(debug_assertions) {
            // The observable is the debug-only thread-local counter;
            // release builds have nothing to assert.
            return;
        }
        // (3, 97) is unique to this test, so neither this thread's pool
        // nor the global bin can hold bundles for it beforehand, and
        // the thread-local counter is immune to concurrent tests.
        let (rows, row_len) = (3, 97);
        let base = poly_alloc_count();
        let a = take_rows(rows, row_len);
        let b = take_rows(rows, row_len);
        assert_eq!(poly_alloc_count(), base + 6, "cold takes allocate");
        assert_eq!(a.len(), rows);
        assert!(a.iter().all(|row| row.len() == row_len));
        put_rows(a);
        put_rows(b);
        let a = take_rows(rows, row_len);
        let b = take_rows(rows, row_len);
        assert_eq!(poly_alloc_count(), base + 6, "warm takes must not allocate");
        put_rows(a);
        put_rows(b);
    }

    #[test]
    fn over_cap_bundles_spill_to_global_and_still_recycle() {
        if !cfg!(debug_assertions) {
            return;
        }
        // (7, 53) is unique to this test. Park more bundles than one
        // local bucket may hold; the excess lands in the global bin and
        // must still serve warm takes without a fresh allocation.
        let (rows, row_len) = (7, 53);
        let n = LOCAL_BUCKET_CAP + 3;
        let bundles: Vec<Bundle> = (0..n).map(|_| take_rows(rows, row_len)).collect();
        let base = poly_alloc_count();
        for b in bundles {
            put_rows(b);
        }
        let bundles: Vec<Bundle> = (0..n).map(|_| take_rows(rows, row_len)).collect();
        assert_eq!(
            poly_alloc_count(),
            base,
            "takes beyond the local depth cap must hit the global bin"
        );
        for b in bundles {
            put_rows(b);
        }
    }

    #[test]
    fn zeroed_take_really_zeroes() {
        let mut bundle = take_rows(2, 64);
        for row in &mut bundle {
            row.fill(0xdead_beef);
        }
        put_rows(bundle);
        let bundle = take_rows_zeroed(2, 64);
        assert!(bundle.iter().all(|row| row.iter().all(|&x| x == 0)));
        put_rows(bundle);
    }

    #[test]
    fn ragged_bundles_are_freed_not_pooled() {
        put_rows(vec![vec![1, 2, 3], vec![4]]);
        put_rows(Vec::new());
        put_rows(vec![Vec::new()]);
        // Nothing to assert beyond "no panic": ragged input must not
        // poison a bucket whose key it doesn't match.
    }

    #[test]
    fn chunk_buf_roundtrip() {
        let mut chunk = take_chunk(33);
        assert_eq!(chunk.len(), 33);
        chunk[0] = 7;
        chunk[32] = 9;
        drop(chunk);
        let chunk = take_chunk(33);
        assert_eq!(chunk.len(), 33);
    }

    #[test]
    fn debug_counter_tracks_fresh_rows_only() {
        if !cfg!(debug_assertions) {
            return;
        }
        // A distinctive key no other test uses: first take allocates...
        let before = poly_alloc_count();
        let bundle = take_rows(5, 41);
        assert_eq!(poly_alloc_count(), before + 5);
        // ...and the warm take does not.
        put_rows(bundle);
        let bundle = take_rows(5, 41);
        assert_eq!(poly_alloc_count(), before + 5);
        put_rows(bundle);
    }
}
