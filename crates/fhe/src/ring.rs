//! RNS polynomial arithmetic in `R_q = Z_q[X]/(X^N + 1)`.
//!
//! The ciphertext modulus `q` is a product of NTT-friendly primes
//! `q_0 … q_{k-1}`; a polynomial is stored as its residue vectors modulo
//! each prime ([`RnsPoly`]), so all ring operations are prime-wise and
//! `u64`-sized. CRT reconstruction into a [`UBig`] is only needed at
//! decryption scaling and ciphertext-multiplication time.

use crate::bigint::UBig;
use crate::ntt::NttTable;
use pasta_math::{is_prime_u64, simd, MathError, Modulus, Zp};
use rand::Rng;

/// Minimum ring degree before the per-prime transforms fan out across
/// threads: below this a row's NTT is far cheaper than a thread spawn
/// (`pasta-par` has no persistent pool).
pub(crate) const PAR_MIN_RING_DEGREE: usize = 1024;

/// The RNS basis: primes, NTT tables and CRT precomputation.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    n: usize,
    primes: Vec<Modulus>,
    tables: Vec<NttTable>,
    /// `q = Π q_i`.
    q: UBig,
    /// `q̂_i = q / q_i`.
    q_hats: Vec<UBig>,
    /// `[q̂_i^{-1}]_{q_i}`.
    q_hat_invs: Vec<u64>,
}

impl RnsBasis {
    /// Builds a basis over explicit primes.
    ///
    /// # Errors
    ///
    /// Returns an error if any modulus lacks a 2N-th root of unity, if
    /// primes repeat, or if `n` is not a power of two.
    pub fn new(n: usize, primes: Vec<Modulus>) -> Result<Self, MathError> {
        let mut tables = Vec::with_capacity(primes.len());
        for (i, &p) in primes.iter().enumerate() {
            if primes[..i].contains(&p) {
                return Err(MathError::NotPrime(p.value()));
            }
            tables.push(NttTable::new(p, n)?);
        }
        let mut q = UBig::one();
        for p in &primes {
            q = q.mul_u64(p.value());
        }
        let mut q_hats = Vec::with_capacity(primes.len());
        let mut q_hat_invs = Vec::with_capacity(primes.len());
        for p in &primes {
            let (q_hat, rem) = q.div_rem(&UBig::from_u64(p.value()));
            debug_assert!(rem.is_zero());
            let zp = Zp::new(*p)?;
            let hat_mod = q_hat.rem_u64(p.value());
            q_hat_invs.push(zp.inv(hat_mod)?);
            q_hats.push(q_hat);
        }
        Ok(RnsBasis {
            n,
            primes,
            tables,
            q,
            q_hats,
            q_hat_invs,
        })
    }

    /// Picks `count` distinct NTT-friendly primes of `bits` bits
    /// (scanning downward with step `2^two_adicity`) and builds the basis.
    ///
    /// # Errors
    ///
    /// Propagates construction errors; errors if not enough primes exist.
    pub fn with_generated_primes(n: usize, bits: u32, count: usize) -> Result<Self, MathError> {
        let two_adicity = (2 * n).trailing_zeros();
        let primes = generate_ntt_primes(bits, two_adicity, count)?;
        Self::new(n, primes)
    }

    /// Ring degree `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The RNS primes.
    #[must_use]
    pub fn primes(&self) -> &[Modulus] {
        &self.primes
    }

    /// Number of primes `k`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// Whether the basis is empty (never, for a constructed basis).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// The full modulus `q`.
    #[must_use]
    pub fn q(&self) -> &UBig {
        &self.q
    }

    /// The NTT table for prime `i`.
    #[must_use]
    pub fn table(&self, i: usize) -> &NttTable {
        &self.tables[i]
    }

    /// Field context for prime `i`.
    #[must_use]
    pub fn zp(&self, i: usize) -> &Zp {
        self.tables[i].zp()
    }

    /// `q̂_i = q / q_i` for prime `i` (the CRT garner constant).
    #[must_use]
    pub fn q_hat(&self, i: usize) -> &UBig {
        &self.q_hats[i]
    }

    /// `[q̂_i^{-1}]_{q_i}` for prime `i`.
    #[must_use]
    pub fn q_hat_inv(&self, i: usize) -> u64 {
        self.q_hat_invs[i]
    }

    /// CRT-reconstructs one coefficient from its residues into `[0, q)`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len() != k`.
    #[must_use]
    pub fn crt_reconstruct(&self, residues: &[u64]) -> UBig {
        assert_eq!(residues.len(), self.len(), "residue count mismatch");
        let mut acc = UBig::zero();
        for (i, &r) in residues.iter().enumerate() {
            let zp = self.zp(i);
            let coeff = zp.mul(r, self.q_hat_invs[i]);
            acc = acc.add(&self.q_hats[i].mul_u64(coeff));
        }
        let (_, rem) = acc.div_rem(&self.q);
        rem
    }

    /// Reduces a non-negative big integer into RNS residues.
    #[must_use]
    pub fn reduce_bigint(&self, x: &UBig) -> Vec<u64> {
        self.primes.iter().map(|p| x.rem_u64(p.value())).collect()
    }

    /// Centered magnitude of a value in `[0, q)`: `min(x, q - x)`.
    #[must_use]
    pub fn centered_magnitude(&self, x: &UBig) -> UBig {
        let neg = self.q.sub(x);
        if x.cmp_big(&neg) == std::cmp::Ordering::Greater {
            neg
        } else {
            x.clone()
        }
    }
}

/// Scans downward for `count` distinct primes `≡ 1 (mod 2^two_adicity)`
/// of exactly `bits` bits.
pub(crate) fn generate_ntt_primes(
    bits: u32,
    two_adicity: u32,
    count: usize,
) -> Result<Vec<Modulus>, MathError> {
    if !(20..=62).contains(&bits) || two_adicity >= bits {
        return Err(MathError::UnsupportedWidth(bits));
    }
    let step = 1u64 << two_adicity;
    let mut candidate = (((1u64 << bits) - 1) >> two_adicity << two_adicity) + 1;
    let mut out = Vec::with_capacity(count);
    while out.len() < count && candidate > (1u64 << (bits - 1)) {
        if is_prime_u64(candidate) {
            out.push(Modulus::new(candidate)?);
        }
        candidate -= step;
    }
    if out.len() < count {
        return Err(MathError::UnsupportedWidth(bits));
    }
    Ok(out)
}

/// A polynomial in RNS representation.
///
/// `coeffs[i][j]` is coefficient `j` modulo prime `i`. The `is_ntt` flag
/// tracks the domain; mixing domains is a programming error and asserts.
#[derive(Debug, PartialEq, Eq)]
pub struct RnsPoly {
    coeffs: Vec<Vec<u64>>,
    is_ntt: bool,
}

/// Clones take their rows from [`crate::scratch`] (and return them
/// there on drop), so a warm clone allocates nothing.
impl Clone for RnsPoly {
    fn clone(&self) -> Self {
        let rows = self.coeffs.len();
        let row_len = self.coeffs.first().map_or(0, Vec::len);
        let mut coeffs = crate::scratch::take_rows(rows, row_len);
        for (dst, src) in coeffs.iter_mut().zip(&self.coeffs) {
            dst.copy_from_slice(src);
        }
        RnsPoly {
            coeffs,
            is_ntt: self.is_ntt,
        }
    }
}

/// Dropping a polynomial recycles its coefficient rows through
/// [`crate::scratch`] for the next constructor to reuse.
impl Drop for RnsPoly {
    fn drop(&mut self) {
        if !self.coeffs.is_empty() {
            crate::scratch::put_rows(std::mem::take(&mut self.coeffs));
        }
    }
}

impl RnsPoly {
    /// The zero polynomial (coefficient domain).
    #[must_use]
    pub fn zero(basis: &RnsBasis) -> Self {
        RnsPoly {
            coeffs: crate::scratch::take_rows_zeroed(basis.len(), basis.n()),
            is_ntt: false,
        }
    }

    /// A constant polynomial with the given value in every prime.
    #[must_use]
    pub fn constant(basis: &RnsBasis, value: u64) -> Self {
        let mut p = Self::zero(basis);
        for (i, row) in p.coeffs.iter_mut().enumerate() {
            row[0] = value % basis.zp(i).p();
        }
        p
    }

    /// Builds from per-coefficient non-negative big integers (`< q`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    #[must_use]
    pub fn from_bigint_coeffs(basis: &RnsBasis, values: &[UBig]) -> Self {
        assert_eq!(values.len(), basis.n(), "coefficient count mismatch");
        let mut p = Self::zero(basis);
        let parallel = basis.n() >= PAR_MIN_RING_DEGREE;
        pasta_par::maybe_parallel_for_each_mut(parallel, &mut p.coeffs, |i, row| {
            let prime = basis.primes()[i].value();
            for (j, v) in values.iter().enumerate() {
                row[j] = v.rem_u64(prime);
            }
        });
        p
    }

    /// Builds directly from residue rows (`rows[i][j]` = coefficient `j`
    /// mod prime `i`) — the zero-copy constructor the RNS base-conversion
    /// kernels use. Residues must already be canonical.
    pub(crate) fn from_rows(rows: Vec<Vec<u64>>, is_ntt: bool) -> Self {
        RnsPoly {
            coeffs: rows,
            is_ntt,
        }
    }

    /// Builds from small unsigned coefficients (e.g. a plaintext poly).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    #[must_use]
    pub fn from_u64_coeffs(basis: &RnsBasis, values: &[u64]) -> Self {
        assert_eq!(values.len(), basis.n(), "coefficient count mismatch");
        let mut p = Self::zero(basis);
        for (i, row) in p.coeffs.iter_mut().enumerate() {
            let zp = basis.zp(i);
            for (j, &v) in values.iter().enumerate() {
                row[j] = v % zp.p();
            }
        }
        p
    }

    /// Builds from small signed coefficients (secrets/errors).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != N`.
    #[must_use]
    pub fn from_signed_coeffs(basis: &RnsBasis, values: &[i64]) -> Self {
        assert_eq!(values.len(), basis.n(), "coefficient count mismatch");
        let mut p = Self::zero(basis);
        for (i, row) in p.coeffs.iter_mut().enumerate() {
            let zp = basis.zp(i);
            for (j, &v) in values.iter().enumerate() {
                row[j] = zp.from_i128(i128::from(v));
            }
        }
        p
    }

    /// Uniformly random polynomial mod q (the `a` component of keys).
    #[must_use]
    pub fn random_uniform<R: Rng>(basis: &RnsBasis, rng: &mut R) -> Self {
        let mut p = Self::zero(basis);
        for (i, row) in p.coeffs.iter_mut().enumerate() {
            let modulus = basis.primes()[i].value();
            for c in row.iter_mut() {
                *c = rng.gen_range(0..modulus);
            }
        }
        p
    }

    /// Random ternary polynomial (coefficients in `{-1, 0, 1}`).
    #[must_use]
    pub fn random_ternary<R: Rng>(basis: &RnsBasis, rng: &mut R) -> Self {
        let signed: Vec<i64> = (0..basis.n()).map(|_| rng.gen_range(-1..=1)).collect();
        Self::from_signed_coeffs(basis, &signed)
    }

    /// Random error polynomial: centered binomial with parameter 4
    /// (range ±4, standard deviation √2).
    #[must_use]
    pub fn random_error<R: Rng>(basis: &RnsBasis, rng: &mut R) -> Self {
        let signed: Vec<i64> = (0..basis.n())
            .map(|_| {
                let bits: u8 = rng.gen();
                i64::from((bits & 0x0F).count_ones()) - i64::from((bits >> 4).count_ones())
            })
            .collect();
        Self::from_signed_coeffs(basis, &signed)
    }

    /// Whether the polynomial is in NTT (evaluation) domain.
    #[must_use]
    pub fn is_ntt(&self) -> bool {
        self.is_ntt
    }

    /// Residue row for prime `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.coeffs[i]
    }

    /// Converts to NTT domain in place (no-op if already there).
    ///
    /// Prime rows are independent, so for rings large enough to amortize
    /// a thread spawn the transforms run prime-parallel (see
    /// [`pasta_par`]; `PASTA_THREADS=1` forces serial, bit-identical).
    pub fn to_ntt(&mut self, basis: &RnsBasis) {
        if self.is_ntt {
            return;
        }
        let parallel = basis.n() >= PAR_MIN_RING_DEGREE;
        pasta_par::maybe_parallel_for_each_mut(parallel, &mut self.coeffs, |i, row| {
            basis.table(i).forward(row);
        });
        self.is_ntt = true;
    }

    /// Converts to coefficient domain in place (no-op if already there).
    /// Prime-parallel like [`RnsPoly::to_ntt`].
    pub fn to_coeff(&mut self, basis: &RnsBasis) {
        if !self.is_ntt {
            return;
        }
        let parallel = basis.n() >= PAR_MIN_RING_DEGREE;
        pasta_par::maybe_parallel_for_each_mut(parallel, &mut self.coeffs, |i, row| {
            basis.table(i).inverse(row);
        });
        self.is_ntt = false;
    }

    /// `self += other` in place (domains must match) — no allocation.
    ///
    /// # Panics
    ///
    /// Panics on domain or size mismatch.
    pub fn add_assign(&mut self, basis: &RnsBasis, other: &RnsPoly) {
        assert_eq!(self.is_ntt, other.is_ntt, "domain mismatch in add");
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            let zp = basis.zp(i);
            for (a, &b) in row.iter_mut().zip(other.coeffs[i].iter()) {
                *a = zp.add(*a, b);
            }
        }
    }

    /// `self -= other` in place (domains must match) — no allocation.
    ///
    /// # Panics
    ///
    /// Panics on domain or size mismatch.
    pub fn sub_assign(&mut self, basis: &RnsBasis, other: &RnsPoly) {
        assert_eq!(self.is_ntt, other.is_ntt, "domain mismatch in sub");
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            let zp = basis.zp(i);
            for (a, &b) in row.iter_mut().zip(other.coeffs[i].iter()) {
                *a = zp.sub(*a, b);
            }
        }
    }

    /// `self = -self` in place — no allocation.
    pub fn neg_assign(&mut self, basis: &RnsBasis) {
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            let zp = basis.zp(i);
            for a in row.iter_mut() {
                *a = zp.neg(*a);
            }
        }
    }

    /// `self ∘= other` pointwise in place (both in NTT domain) — no
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient domain.
    pub fn pointwise_mul_assign(&mut self, basis: &RnsBasis, other: &RnsPoly) {
        assert!(self.is_ntt && other.is_ntt, "ring mul requires NTT domain");
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            basis.table(i).pointwise_mul_assign(row, &other.coeffs[i]);
        }
    }

    /// Fused multiply–accumulate `self += a ∘ b` (all three in NTT
    /// domain) — the affine-layer accumulation primitive; allocates
    /// nothing and reads each input once.
    ///
    /// # Panics
    ///
    /// Panics if any operand is in coefficient domain.
    pub fn add_mul_assign(&mut self, basis: &RnsBasis, a: &RnsPoly, b: &RnsPoly) {
        assert!(
            self.is_ntt && a.is_ntt && b.is_ntt,
            "fused multiply-accumulate requires NTT domain"
        );
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            let zp = basis.zp(i);
            for ((acc, &x), &y) in row
                .iter_mut()
                .zip(a.coeffs[i].iter())
                .zip(b.coeffs[i].iter())
            {
                *acc = zp.add(*acc, zp.mul(x, y));
            }
        }
    }

    /// Per-prime Shoup companions (`⌊w·2⁶⁴/p_i⌋` for every residue) of
    /// this polynomial's rows — precomputed once for long-lived
    /// operands (prepared plaintexts, relinearization and Galois key
    /// components) so the affine/key-switch inner loops can run the
    /// SIMD Shoup kernels instead of a generic Barrett reduction.
    ///
    /// Residues must be canonical (they always are outside the lazy
    /// NTT interior).
    #[must_use]
    pub fn shoup_rows(&self, basis: &RnsBasis) -> Vec<Vec<u64>> {
        self.coeffs
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let zp = basis.zp(i);
                row.iter().map(|&w| zp.shoup(w)).collect()
            })
            .collect()
    }

    /// `self ∘= other` pointwise against a Shoup-prepared operand
    /// (`other_shoup` from [`RnsPoly::shoup_rows`]). Bit-identical to
    /// [`RnsPoly::pointwise_mul_assign`] — `mul_shoup` and the Barrett
    /// reducer agree on every canonical product — but dispatches to the
    /// SIMD backend.
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient domain.
    pub fn pointwise_mul_shoup_assign(
        &mut self,
        basis: &RnsBasis,
        other: &RnsPoly,
        other_shoup: &[Vec<u64>],
    ) {
        assert!(self.is_ntt && other.is_ntt, "ring mul requires NTT domain");
        let be = simd::backend();
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            simd::pointwise_mul_shoup_with(
                be,
                basis.zp(i).p(),
                row,
                &other.coeffs[i],
                &other_shoup[i],
            );
        }
    }

    /// Fused multiply–accumulate `self += a ∘ b` against a
    /// Shoup-prepared `b` (`b_shoup` from [`RnsPoly::shoup_rows`]).
    /// Bit-identical to [`RnsPoly::add_mul_assign`], dispatched to the
    /// SIMD backend — the hoisted key-switch and cached-material affine
    /// accumulation primitive.
    ///
    /// # Panics
    ///
    /// Panics if any operand is in coefficient domain.
    pub fn add_mul_shoup_assign(
        &mut self,
        basis: &RnsBasis,
        a: &RnsPoly,
        b: &RnsPoly,
        b_shoup: &[Vec<u64>],
    ) {
        assert!(
            self.is_ntt && a.is_ntt && b.is_ntt,
            "fused multiply-accumulate requires NTT domain"
        );
        let be = simd::backend();
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            simd::mac_shoup_with(
                be,
                basis.zp(i).p(),
                row,
                &a.coeffs[i],
                &b.coeffs[i],
                &b_shoup[i],
            );
        }
    }

    /// Adds `c[i]` to the constant coefficient of prime row `i` — O(k)
    /// work, used to inject `Δ·scalar` constants without touching the
    /// other `N−1` coefficients.
    ///
    /// # Panics
    ///
    /// Panics in NTT domain (a constant is not slot-constant there) or
    /// if `c.len() != k`.
    pub fn add_assign_coeff0(&mut self, basis: &RnsBasis, c: &[u64]) {
        assert!(
            !self.is_ntt,
            "constant injection requires coefficient domain"
        );
        assert_eq!(c.len(), basis.len(), "per-prime scalar count mismatch");
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            row[0] = basis.zp(i).add(row[0], c[i]);
        }
    }

    /// `self ·= c` in place for a small scalar `c` (domain-agnostic).
    pub fn mul_scalar_assign(&mut self, basis: &RnsBasis, c: u64) {
        let be = simd::backend();
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            let zp = basis.zp(i);
            let cm = c % zp.p();
            let cm_shoup = zp.shoup(cm);
            simd::mul_const_shoup_with(be, zp.p(), cm, cm_shoup, row);
        }
    }

    /// `self ·= c` in place with `c` given per prime.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != k`.
    pub fn mul_scalar_rns_assign(&mut self, basis: &RnsBasis, c: &[u64]) {
        assert_eq!(c.len(), basis.len(), "per-prime scalar count mismatch");
        let be = simd::backend();
        for (i, row) in self.coeffs.iter_mut().enumerate() {
            let zp = basis.zp(i);
            let cm = c[i];
            let cm_shoup = zp.shoup(cm);
            simd::mul_const_shoup_with(be, zp.p(), cm, cm_shoup, row);
        }
    }

    /// `self + other` (domains must match).
    ///
    /// # Panics
    ///
    /// Panics on domain or size mismatch.
    #[must_use]
    pub fn add(&self, basis: &RnsBasis, other: &RnsPoly) -> RnsPoly {
        let mut out = self.clone();
        out.add_assign(basis, other);
        out
    }

    /// `self - other` (domains must match).
    ///
    /// # Panics
    ///
    /// Panics on domain or size mismatch.
    #[must_use]
    pub fn sub(&self, basis: &RnsBasis, other: &RnsPoly) -> RnsPoly {
        let mut out = self.clone();
        out.sub_assign(basis, other);
        out
    }

    /// `-self`.
    #[must_use]
    pub fn neg(&self, basis: &RnsBasis) -> RnsPoly {
        let mut out = self.clone();
        out.neg_assign(basis);
        out
    }

    /// `self · other` (both must be in NTT domain).
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient domain.
    #[must_use]
    pub fn mul(&self, basis: &RnsBasis, other: &RnsPoly) -> RnsPoly {
        let mut out = self.clone();
        out.pointwise_mul_assign(basis, other);
        out
    }

    /// `self · c` for a small scalar `c` (domain-agnostic).
    #[must_use]
    pub fn mul_scalar(&self, basis: &RnsBasis, c: u64) -> RnsPoly {
        let mut out = self.clone();
        out.mul_scalar_assign(basis, c);
        out
    }

    /// `self · c` where `c` is given per prime (e.g. `Δ mod q_i` or a
    /// CRT-reduced big constant).
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != k`.
    #[must_use]
    pub fn mul_scalar_rns(&self, basis: &RnsBasis, c: &[u64]) -> RnsPoly {
        let mut out = self.clone();
        out.mul_scalar_rns_assign(basis, c);
        out
    }

    /// Applies the Galois automorphism `X ↦ X^g` (requires coefficient
    /// domain; `g` must be odd so it is invertible mod `2N`).
    ///
    /// `X^{jg} = ±X^{jg mod N}` with a sign flip whenever
    /// `⌊jg/N⌋` is odd (negacyclic wraparound).
    ///
    /// # Panics
    ///
    /// Panics in NTT domain or for even `g`.
    #[must_use]
    pub fn automorphism(&self, basis: &RnsBasis, g: usize) -> RnsPoly {
        assert!(!self.is_ntt, "automorphism requires coefficient domain");
        assert!(g % 2 == 1, "Galois element must be odd");
        let n = basis.n();
        let mut out = RnsPoly::zero(basis);
        for (i, row) in self.coeffs.iter().enumerate() {
            let zp = basis.zp(i);
            for (j, &c) in row.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let e = (j * g) % (2 * n);
                if e < n {
                    out.coeffs[i][e] = zp.add(out.coeffs[i][e], c);
                } else {
                    out.coeffs[i][e - n] = zp.sub(out.coeffs[i][e - n], c);
                }
            }
        }
        out
    }

    /// Applies a precomputed Galois slot permutation in the NTT domain:
    /// `out.row(i)[j] = self.row(i)[perm[j]]` for every prime row.
    ///
    /// With `perm = galois_slot_permutation(N, g)` this computes
    /// `NTT(σ_g(a))` from `NTT(a)` in O(kN) table lookups — no
    /// transforms and no sign flips (odd ψ-exponents stay odd under
    /// `X ↦ X^g`). This is the per-rotation cost of a hoisted
    /// automorphism.
    ///
    /// # Panics
    ///
    /// Panics in coefficient domain or if `perm.len() != N`.
    #[must_use]
    pub fn permute_slots(&self, basis: &RnsBasis, perm: &[usize]) -> RnsPoly {
        assert!(self.is_ntt, "slot permutation requires NTT domain");
        assert_eq!(perm.len(), basis.n(), "permutation length mismatch");
        let mut coeffs = crate::scratch::take_rows(self.coeffs.len(), basis.n());
        for (dst, row) in coeffs.iter_mut().zip(&self.coeffs) {
            for (d, &s) in dst.iter_mut().zip(perm.iter()) {
                *d = row[s];
            }
        }
        RnsPoly {
            coeffs,
            is_ntt: true,
        }
    }

    /// CRT-reconstructs all coefficients (input must be in coefficient
    /// domain) into `[0, q)` big integers.
    ///
    /// # Panics
    ///
    /// Panics if called in NTT domain.
    #[must_use]
    pub fn to_bigint_coeffs(&self, basis: &RnsBasis) -> Vec<UBig> {
        assert!(
            !self.is_ntt,
            "CRT reconstruction requires coefficient domain"
        );
        let indices: Vec<usize> = (0..basis.n()).collect();
        let parallel = basis.n() >= PAR_MIN_RING_DEGREE;
        pasta_par::maybe_parallel_map(parallel, &indices, |_, &j| {
            let residues: Vec<u64> = (0..basis.len()).map(|i| self.coeffs[i][j]).collect();
            basis.crt_reconstruct(&residues)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn basis() -> RnsBasis {
        RnsBasis::with_generated_primes(64, 50, 3).unwrap()
    }

    #[test]
    fn prime_generation_distinct_and_ntt_friendly() {
        let primes = generate_ntt_primes(50, 8, 5).unwrap();
        assert_eq!(primes.len(), 5);
        for (i, p) in primes.iter().enumerate() {
            assert_eq!(p.bits(), 50);
            assert_eq!((p.value() - 1) % 256, 0);
            assert!(!primes[..i].contains(p));
        }
    }

    #[test]
    fn crt_roundtrip() {
        let b = basis();
        let x = UBig::from_u128(0x1234_5678_9ABC_DEF0_1122_3344u128);
        let residues = b.reduce_bigint(&x);
        assert_eq!(b.crt_reconstruct(&residues), x);
        // Extremes.
        let top = b.q().sub(&UBig::one());
        assert_eq!(b.crt_reconstruct(&b.reduce_bigint(&top)), top);
        assert_eq!(
            b.crt_reconstruct(&b.reduce_bigint(&UBig::zero())),
            UBig::zero()
        );
    }

    #[test]
    fn ntt_roundtrip_preserves_poly() {
        let b = basis();
        let mut rng = StdRng::seed_from_u64(7);
        let mut p = RnsPoly::random_uniform(&b, &mut rng);
        let orig = p.clone();
        p.to_ntt(&b);
        assert!(p.is_ntt());
        p.to_coeff(&b);
        assert_eq!(p, orig);
    }

    #[test]
    fn ring_mul_matches_bigint_schoolbook() {
        // Multiply two small polys and verify the negacyclic product via
        // per-prime schoolbook.
        let b = basis();
        let a_coeffs: Vec<u64> = (0..64u64).map(|i| i + 1).collect();
        let c_coeffs: Vec<u64> = (0..64u64).map(|i| 2 * i + 3).collect();
        let mut a = RnsPoly::from_u64_coeffs(&b, &a_coeffs);
        let mut c = RnsPoly::from_u64_coeffs(&b, &c_coeffs);
        a.to_ntt(&b);
        c.to_ntt(&b);
        let mut prod = a.mul(&b, &c);
        prod.to_coeff(&b);
        for i in 0..b.len() {
            let zp = b.zp(i);
            let reference = crate::ntt::negacyclic_mul_schoolbook(
                zp,
                &a_coeffs.iter().map(|&x| x % zp.p()).collect::<Vec<_>>(),
                &c_coeffs.iter().map(|&x| x % zp.p()).collect::<Vec<_>>(),
            );
            assert_eq!(prod.row(i), &reference[..], "prime {i}");
        }
    }

    #[test]
    fn signed_coeffs_centered() {
        let b = basis();
        let p = RnsPoly::from_signed_coeffs(&b, &vec![-1i64; 64]);
        for i in 0..b.len() {
            assert!(p.row(i).iter().all(|&c| c == b.zp(i).p() - 1));
        }
        // CRT of -1 must be q - 1.
        let big = p.to_bigint_coeffs(&b);
        assert_eq!(big[0], b.q().sub(&UBig::one()));
    }

    #[test]
    fn ternary_and_error_ranges() {
        let b = basis();
        let mut rng = StdRng::seed_from_u64(42);
        let t = RnsPoly::random_ternary(&b, &mut rng);
        let q0 = b.zp(0).p();
        for &c in t.row(0) {
            assert!(c == 0 || c == 1 || c == q0 - 1, "ternary out of range: {c}");
        }
        let e = RnsPoly::random_error(&b, &mut rng);
        for &c in e.row(0) {
            let centered = if c > q0 / 2 {
                (q0 - c) as i64
            } else {
                c as i64
            };
            assert!(centered.abs() <= 4, "error out of range: {centered}");
        }
    }

    #[test]
    fn add_sub_neg_identities() {
        let b = basis();
        let mut rng = StdRng::seed_from_u64(1);
        let x = RnsPoly::random_uniform(&b, &mut rng);
        let y = RnsPoly::random_uniform(&b, &mut rng);
        assert_eq!(x.add(&b, &y).sub(&b, &y), x);
        assert_eq!(x.add(&b, &x.neg(&b)), RnsPoly::zero(&b));
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = basis();
        let x = RnsPoly::from_u64_coeffs(&b, &(0..64u64).collect::<Vec<_>>());
        let tripled = x.mul_scalar(&b, 3);
        assert_eq!(tripled, x.add(&b, &x).add(&b, &x));
    }

    #[test]
    fn assign_ops_match_cloning_ops() {
        let b = basis();
        let mut rng = StdRng::seed_from_u64(9);
        let x = RnsPoly::random_uniform(&b, &mut rng);
        let y = RnsPoly::random_uniform(&b, &mut rng);

        let mut a = x.clone();
        a.add_assign(&b, &y);
        assert_eq!(a, x.add(&b, &y));

        let mut s = x.clone();
        s.sub_assign(&b, &y);
        assert_eq!(s, x.sub(&b, &y));

        let mut n = x.clone();
        n.neg_assign(&b);
        assert_eq!(n, x.neg(&b));

        let mut m = x.clone();
        m.mul_scalar_assign(&b, 12_345);
        assert_eq!(m, x.mul_scalar(&b, 12_345));

        let per_prime: Vec<u64> = (0..b.len() as u64).map(|i| i * 7 + 3).collect();
        let mut mr = x.clone();
        mr.mul_scalar_rns_assign(&b, &per_prime);
        assert_eq!(mr, x.mul_scalar_rns(&b, &per_prime));

        let (mut nx, mut ny) = (x.clone(), y.clone());
        nx.to_ntt(&b);
        ny.to_ntt(&b);
        let mut pm = nx.clone();
        pm.pointwise_mul_assign(&b, &ny);
        assert_eq!(pm, nx.mul(&b, &ny));
    }

    #[test]
    fn fused_mac_matches_mul_then_add() {
        let b = basis();
        let mut rng = StdRng::seed_from_u64(10);
        let mut acc = RnsPoly::random_uniform(&b, &mut rng);
        let mut x = RnsPoly::random_uniform(&b, &mut rng);
        let mut y = RnsPoly::random_uniform(&b, &mut rng);
        acc.to_ntt(&b);
        x.to_ntt(&b);
        y.to_ntt(&b);
        let expect = acc.add(&b, &x.mul(&b, &y));
        let mut fused = acc.clone();
        fused.add_mul_assign(&b, &x, &y);
        assert_eq!(fused, expect);
    }

    #[test]
    fn parallel_transforms_match_serial() {
        // A ring degree above the parallel threshold, crossing the
        // thread override with the SIMD backend override: all four
        // (threads × backend) combinations must produce bit-identical
        // transforms. On machines without AVX2 the forced-Avx2 legs
        // fall back to scalar and the test degenerates to the
        // thread-only check.
        let b = RnsBasis::with_generated_primes(2048, 50, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let poly = RnsPoly::random_uniform(&b, &mut rng);
        let mut outputs = Vec::new();
        for threads in ["1", "4"] {
            for backend in [simd::Backend::Scalar, simd::Backend::Avx2] {
                std::env::set_var(pasta_par::THREADS_ENV, threads);
                let got = simd::force_backend(Some(backend));
                let mut fwd = poly.clone();
                fwd.to_ntt(&b);
                let mut round = fwd.clone();
                round.to_coeff(&b);
                outputs.push((threads, got.label(), fwd, round));
            }
        }
        simd::force_backend(None);
        std::env::remove_var(pasta_par::THREADS_ENV);
        let (_, _, fwd0, round0) = &outputs[0];
        assert_eq!(round0, &poly, "NTT round-trip must be the identity");
        for (threads, backend, fwd, round) in &outputs[1..] {
            assert_eq!(
                fwd, fwd0,
                "forward NTT differs for threads={threads}, backend={backend}"
            );
            assert_eq!(
                round, round0,
                "inverse NTT differs for threads={threads}, backend={backend}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn domain_mismatch_asserts() {
        let b = basis();
        let x = RnsPoly::constant(&b, 1);
        let mut y = RnsPoly::constant(&b, 2);
        y.to_ntt(&b);
        let _ = x.add(&b, &y);
    }

    #[test]
    fn centered_magnitude() {
        let b = basis();
        assert_eq!(b.centered_magnitude(&UBig::one()), UBig::one());
        let near_q = b.q().sub(&UBig::from_u64(5));
        assert_eq!(b.centered_magnitude(&near_q), UBig::from_u64(5));
    }
}
