//! RV32IM disassembler.
//!
//! The inverse of [`crate::asm`]: turns instruction words back into
//! assembly text, for firmware debugging and trace dumps. The test suite
//! round-trips the entire supported ISA through
//! assembler → disassembler → assembler.

/// Disassembles one instruction word. Unknown encodings come back as
/// `.word 0x…` (re-assemblable).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn disassemble(inst: u32) -> String {
    let opcode = inst & 0x7F;
    let rd = ((inst >> 7) & 0x1F) as usize;
    let rs1 = ((inst >> 15) & 0x1F) as usize;
    let rs2 = ((inst >> 20) & 0x1F) as usize;
    let funct3 = (inst >> 12) & 0x7;
    let funct7 = inst >> 25;
    let r = reg_name;
    match opcode {
        0x37 => format!("lui {}, 0x{:X}", r(rd), inst >> 12),
        0x17 => format!("auipc {}, 0x{:X}", r(rd), inst >> 12),
        0x6F => {
            let imm = imm_j(inst);
            format!("jal {}, {}", r(rd), imm)
        }
        0x67 if funct3 == 0 => format!("jalr {}, {}({})", r(rd), imm_i(inst), r(rs1)),
        0x63 => {
            let name = match funct3 {
                0b000 => "beq",
                0b001 => "bne",
                0b100 => "blt",
                0b101 => "bge",
                0b110 => "bltu",
                0b111 => "bgeu",
                _ => return raw(inst),
            };
            format!("{name} {}, {}, {}", r(rs1), r(rs2), imm_b(inst))
        }
        0x03 => {
            let name = match funct3 {
                0b000 => "lb",
                0b001 => "lh",
                0b010 => "lw",
                0b100 => "lbu",
                0b101 => "lhu",
                _ => return raw(inst),
            };
            format!("{name} {}, {}({})", r(rd), imm_i(inst), r(rs1))
        }
        0x23 => {
            let name = match funct3 {
                0b000 => "sb",
                0b001 => "sh",
                0b010 => "sw",
                _ => return raw(inst),
            };
            format!("{name} {}, {}({})", r(rs2), imm_s(inst), r(rs1))
        }
        0x13 => {
            let shamt = (inst >> 20) & 0x1F;
            match funct3 {
                0b000 => format!("addi {}, {}, {}", r(rd), r(rs1), imm_i(inst)),
                0b010 => format!("slti {}, {}, {}", r(rd), r(rs1), imm_i(inst)),
                0b011 => format!("sltiu {}, {}, {}", r(rd), r(rs1), imm_i(inst)),
                0b100 => format!("xori {}, {}, {}", r(rd), r(rs1), imm_i(inst)),
                0b110 => format!("ori {}, {}, {}", r(rd), r(rs1), imm_i(inst)),
                0b111 => format!("andi {}, {}, {}", r(rd), r(rs1), imm_i(inst)),
                0b001 if funct7 == 0 => format!("slli {}, {}, {shamt}", r(rd), r(rs1)),
                0b101 if funct7 == 0 => format!("srli {}, {}, {shamt}", r(rd), r(rs1)),
                0b101 if funct7 == 0b010_0000 => format!("srai {}, {}, {shamt}", r(rd), r(rs1)),
                _ => raw(inst),
            }
        }
        0x33 => {
            let name = match (funct7, funct3) {
                (0b000_0000, 0b000) => "add",
                (0b010_0000, 0b000) => "sub",
                (0b000_0000, 0b001) => "sll",
                (0b000_0000, 0b010) => "slt",
                (0b000_0000, 0b011) => "sltu",
                (0b000_0000, 0b100) => "xor",
                (0b000_0000, 0b101) => "srl",
                (0b010_0000, 0b101) => "sra",
                (0b000_0000, 0b110) => "or",
                (0b000_0000, 0b111) => "and",
                (0b000_0001, 0b000) => "mul",
                (0b000_0001, 0b001) => "mulh",
                (0b000_0001, 0b010) => "mulhsu",
                (0b000_0001, 0b011) => "mulhu",
                (0b000_0001, 0b100) => "div",
                (0b000_0001, 0b101) => "divu",
                (0b000_0001, 0b110) => "rem",
                (0b000_0001, 0b111) => "remu",
                _ => return raw(inst),
            };
            format!("{name} {}, {}, {}", r(rd), r(rs1), r(rs2))
        }
        0x0F => "fence".to_string(),
        0x73 => match inst {
            0x0000_0073 => "ecall".to_string(),
            0x0010_0073 => "ebreak".to_string(),
            _ if funct3 == 0b010 && rs1 == 0 => match inst >> 20 {
                0xC00 => format!("rdcycle {}", r(rd)),
                0xC02 => format!("rdinstret {}", r(rd)),
                0xC80 => format!("rdcycleh {}", r(rd)),
                _ => raw(inst),
            },
            _ => raw(inst),
        },
        _ => raw(inst),
    }
}

/// Disassembles a program with addresses.
#[must_use]
pub fn disassemble_program(base: u32, words: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:#010x}: {:08x}  {}",
            base + 4 * i as u32,
            w,
            disassemble(w)
        );
    }
    out
}

fn raw(inst: u32) -> String {
    format!(".word 0x{inst:08X}")
}

fn reg_name(i: usize) -> &'static str {
    const ABI: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    ABI[i]
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn imm_i(inst: u32) -> i32 {
    (inst as i32) >> 20
}

fn imm_s(inst: u32) -> i32 {
    (((inst & 0xFE00_0000) as i32) >> 20) | (((inst >> 7) & 0x1F) as i32)
}

fn imm_b(inst: u32) -> i32 {
    let imm = ((inst >> 31) & 1) << 12
        | ((inst >> 7) & 1) << 11
        | ((inst >> 25) & 0x3F) << 5
        | ((inst >> 8) & 0xF) << 1;
    sign_extend(imm, 13)
}

fn imm_j(inst: u32) -> i32 {
    let imm = ((inst >> 31) & 1) << 20
        | ((inst >> 12) & 0xFF) << 12
        | ((inst >> 20) & 1) << 11
        | ((inst >> 21) & 0x3FF) << 1;
    sign_extend(imm, 21)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn known_words() {
        assert_eq!(disassemble(0x0000_0013), "addi zero, zero, 0");
        assert_eq!(disassemble(0x0010_0073), "ebreak");
        assert_eq!(disassemble(0x00C5_8533), "add a0, a1, a2");
        assert_eq!(disassemble(0x0081_2283), "lw t0, 8(sp)");
        assert_eq!(disassemble(0x0051_2423), "sw t0, 8(sp)");
        assert_eq!(disassemble(0xFFFF_FFFF), ".word 0xFFFFFFFF");
    }

    /// Every supported instruction survives asm → disasm → asm.
    #[test]
    fn full_isa_roundtrip() {
        let programs = [
            "addi a0, a1, -17",
            "slti a0, a1, 5",
            "sltiu a0, a1, 5",
            "xori a0, a1, 0x7F",
            "ori a0, a1, 1",
            "andi a0, a1, 15",
            "slli a0, a1, 7",
            "srli a0, a1, 7",
            "srai a0, a1, 7",
            "add a0, a1, a2",
            "sub a0, a1, a2",
            "sll a0, a1, a2",
            "slt a0, a1, a2",
            "sltu a0, a1, a2",
            "xor a0, a1, a2",
            "srl a0, a1, a2",
            "sra a0, a1, a2",
            "or a0, a1, a2",
            "and a0, a1, a2",
            "mul a0, a1, a2",
            "mulh a0, a1, a2",
            "mulhsu a0, a1, a2",
            "mulhu a0, a1, a2",
            "div a0, a1, a2",
            "divu a0, a1, a2",
            "rem a0, a1, a2",
            "remu a0, a1, a2",
            "lb a0, -4(sp)",
            "lh a0, 2(sp)",
            "lw a0, 8(sp)",
            "lbu a0, 1(sp)",
            "lhu a0, 2(sp)",
            "sb a0, -4(sp)",
            "sh a0, 2(sp)",
            "sw a0, 8(sp)",
            "jalr a0, 12(t0)",
            "lui a0, 0xFEDCB",
            "auipc a0, 0x123",
            "ecall",
            "ebreak",
            "fence",
            "rdcycle a0",
            "rdcycleh a0",
            "rdinstret s5",
        ];
        for src in programs {
            let word = assemble(0, src).unwrap()[0];
            let text = disassemble(word);
            let word2 = assemble(0, &text).unwrap()[0];
            assert_eq!(word, word2, "{src} -> {text}");
        }
    }

    #[test]
    fn branch_and_jump_offsets_render() {
        // Branches/jumps disassemble with numeric offsets (no labels);
        // verify the offset arithmetic is right.
        let words = assemble(0, "x: beq a0, a1, x").unwrap();
        assert_eq!(disassemble(words[0]), "beq a0, a1, 0");
        let words = assemble(0, "nop\nj target\nnop\ntarget: nop").unwrap();
        assert_eq!(disassemble(words[1]), "jal zero, 8");
    }

    #[test]
    fn program_listing() {
        let words = assemble(0x100, "li a0, 5\nebreak").unwrap();
        let listing = disassemble_program(0x100, &words);
        assert!(listing.contains("0x00000100"));
        assert!(listing.contains("addi a0, zero, 5"));
        assert!(listing.contains("ebreak"));
    }
}
