//! An RV32IM instruction-set simulator (the Ibex-class core of the SoC,
//! paper §IV.A ❸).
//!
//! The paper integrates the PASTA peripheral into a 32-bit RISC-V SoC
//! built around the Ibex core. This module implements the RV32I base ISA
//! plus the M extension — everything the bundled firmware needs — with a
//! one-instruction-per-cycle timing model (Ibex runs close to 1 CPI on
//! the polling-loop workloads used here; the SoC latency is dominated by
//! the peripheral anyway).

use std::error::Error;
use std::fmt;

/// Memory/bus access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessWidth {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
}

/// Bus interface the core drives.
pub trait Bus {
    /// Reads `width` bits from `addr` (zero-extended into the `u32`).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::BusFault`] for unmapped addresses.
    fn read(&mut self, addr: u32, width: AccessWidth) -> Result<u32, Trap>;

    /// Writes the low `width` bits of `value` to `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::BusFault`] for unmapped addresses.
    fn write(&mut self, addr: u32, value: u32, width: AccessWidth) -> Result<(), Trap>;
}

/// Core traps.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// `ecall` executed (a7 = syscall number by convention).
    Ecall,
    /// `ebreak` executed (the firmware's halt).
    Ebreak,
    /// Undecodable instruction word.
    IllegalInstruction(u32),
    /// Unmapped bus access.
    BusFault(u32),
    /// Misaligned load/store/jump.
    Misaligned(u32),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Ecall => write!(f, "environment call"),
            Trap::Ebreak => write!(f, "breakpoint"),
            Trap::IllegalInstruction(w) => write!(f, "illegal instruction {w:#010x}"),
            Trap::BusFault(a) => write!(f, "bus fault at {a:#010x}"),
            Trap::Misaligned(a) => write!(f, "misaligned access at {a:#010x}"),
        }
    }
}

impl Error for Trap {}

/// Machine-mode CSR state (the subset an interrupt-driven firmware
/// needs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Csrs {
    /// `mstatus` (bit 3 = MIE, bit 7 = MPIE).
    pub mstatus: u32,
    /// `mie` (bit 11 = MEIE, machine external interrupt enable).
    pub mie: u32,
    /// `mtvec` — trap vector base.
    pub mtvec: u32,
    /// `mepc` — PC saved on trap entry.
    pub mepc: u32,
    /// `mcause` — trap cause.
    pub mcause: u32,
}

/// The RV32IM hart state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers (`x0` hardwired to zero).
    regs: [u32; 32],
    /// Program counter.
    pc: u32,
    /// Retired instruction count (= cycles at CPI 1).
    instret: u64,
    /// Machine CSRs.
    csrs: Csrs,
    /// Level of the external interrupt line (driven by the platform).
    irq_line: bool,
    /// Core parked by `wfi`.
    waiting: bool,
}

impl Cpu {
    /// Creates a hart with `pc` at the reset vector.
    #[must_use]
    pub fn new(reset_pc: u32) -> Self {
        Cpu {
            regs: [0; 32],
            pc: reset_pc,
            instret: 0,
            csrs: Csrs::default(),
            irq_line: false,
            waiting: false,
        }
    }

    /// Drives the external interrupt line (level-sensitive).
    pub fn set_irq(&mut self, level: bool) {
        self.irq_line = level;
    }

    /// The machine CSRs (for test inspection).
    #[must_use]
    pub fn csrs(&self) -> &Csrs {
        &self.csrs
    }

    /// Register read (`x0` reads zero).
    #[must_use]
    pub fn reg(&self, i: usize) -> u32 {
        if i == 0 {
            0
        } else {
            self.regs[i]
        }
    }

    /// Register write (`x0` writes are ignored).
    pub fn set_reg(&mut self, i: usize, v: u32) {
        if i != 0 {
            self.regs[i] = v;
        }
    }

    /// The program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Retired instructions (cycles at the modelled CPI of 1).
    #[must_use]
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Fetches, decodes and executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] raised by the instruction, leaving `pc` at
    /// the trapping instruction (so the harness can report it).
    pub fn step(&mut self, bus: &mut impl Bus) -> Result<(), Trap> {
        // External interrupt: taken when the line is high, MIE and MEIE
        // are set. Entry pushes MIE into MPIE and clears MIE, so a level
        // interrupt cannot re-enter until `mret` (after the handler has
        // acknowledged the device).
        let mie_set = self.csrs.mstatus & (1 << 3) != 0;
        let meie_set = self.csrs.mie & (1 << 11) != 0;
        if self.irq_line && mie_set && meie_set {
            self.waiting = false;
            self.csrs.mepc = self.pc;
            self.csrs.mcause = 0x8000_000B; // machine external interrupt
            let mie_bit = (self.csrs.mstatus >> 3) & 1;
            self.csrs.mstatus = (self.csrs.mstatus & !(1 << 3)) | (mie_bit << 7);
            self.pc = self.csrs.mtvec & !0x3;
            self.instret += 1; // trap entry costs a cycle
            return Ok(());
        }
        if self.waiting {
            // Parked by wfi: time passes, nothing retires architecturally
            // (modelled as one idle cycle).
            self.instret += 1;
            return Ok(());
        }
        if !self.pc.is_multiple_of(4) {
            return Err(Trap::Misaligned(self.pc));
        }
        let inst = bus.read(self.pc, AccessWidth::Word)?;
        let next_pc = self.execute(inst, bus)?;
        self.pc = next_pc;
        self.instret += 1;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, inst: u32, bus: &mut impl Bus) -> Result<u32, Trap> {
        let opcode = inst & 0x7F;
        let rd = ((inst >> 7) & 0x1F) as usize;
        let rs1 = ((inst >> 15) & 0x1F) as usize;
        let rs2 = ((inst >> 20) & 0x1F) as usize;
        let funct3 = (inst >> 12) & 0x7;
        let funct7 = inst >> 25;
        let pc = self.pc;
        let next = pc.wrapping_add(4);

        match opcode {
            0x37 => {
                // LUI
                self.set_reg(rd, inst & 0xFFFF_F000);
                Ok(next)
            }
            0x17 => {
                // AUIPC
                self.set_reg(rd, pc.wrapping_add(inst & 0xFFFF_F000));
                Ok(next)
            }
            0x6F => {
                // JAL
                let imm = imm_j(inst);
                let target = pc.wrapping_add(imm as u32);
                if !target.is_multiple_of(4) {
                    return Err(Trap::Misaligned(target));
                }
                self.set_reg(rd, next);
                Ok(target)
            }
            0x67 if funct3 == 0 => {
                // JALR
                let imm = imm_i(inst);
                let target = self.reg(rs1).wrapping_add(imm as u32) & !1;
                if !target.is_multiple_of(4) {
                    return Err(Trap::Misaligned(target));
                }
                self.set_reg(rd, next);
                Ok(target)
            }
            0x63 => {
                // Branches
                let imm = imm_b(inst);
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match funct3 {
                    0b000 => a == b,
                    0b001 => a != b,
                    0b100 => (a as i32) < (b as i32),
                    0b101 => (a as i32) >= (b as i32),
                    0b110 => a < b,
                    0b111 => a >= b,
                    _ => return Err(Trap::IllegalInstruction(inst)),
                };
                if taken {
                    let target = pc.wrapping_add(imm as u32);
                    if !target.is_multiple_of(4) {
                        return Err(Trap::Misaligned(target));
                    }
                    Ok(target)
                } else {
                    Ok(next)
                }
            }
            0x03 => {
                // Loads
                let addr = self.reg(rs1).wrapping_add(imm_i(inst) as u32);
                let value = match funct3 {
                    0b000 => sign_extend(bus.read(addr, AccessWidth::Byte)?, 8),
                    0b001 => {
                        check_align(addr, 2)?;
                        sign_extend(bus.read(addr, AccessWidth::Half)?, 16)
                    }
                    0b010 => {
                        check_align(addr, 4)?;
                        bus.read(addr, AccessWidth::Word)?
                    }
                    0b100 => bus.read(addr, AccessWidth::Byte)?,
                    0b101 => {
                        check_align(addr, 2)?;
                        bus.read(addr, AccessWidth::Half)?
                    }
                    _ => return Err(Trap::IllegalInstruction(inst)),
                };
                self.set_reg(rd, value);
                Ok(next)
            }
            0x23 => {
                // Stores
                let addr = self.reg(rs1).wrapping_add(imm_s(inst) as u32);
                let value = self.reg(rs2);
                match funct3 {
                    0b000 => bus.write(addr, value, AccessWidth::Byte)?,
                    0b001 => {
                        check_align(addr, 2)?;
                        bus.write(addr, value, AccessWidth::Half)?;
                    }
                    0b010 => {
                        check_align(addr, 4)?;
                        bus.write(addr, value, AccessWidth::Word)?;
                    }
                    _ => return Err(Trap::IllegalInstruction(inst)),
                }
                Ok(next)
            }
            0x13 => {
                // ALU immediate
                let imm = imm_i(inst);
                let a = self.reg(rs1);
                let shamt = (inst >> 20) & 0x1F;
                let value = match funct3 {
                    0b000 => a.wrapping_add(imm as u32),
                    0b010 => u32::from((a as i32) < imm),
                    0b011 => u32::from(a < imm as u32),
                    0b100 => a ^ imm as u32,
                    0b110 => a | imm as u32,
                    0b111 => a & imm as u32,
                    0b001 if funct7 == 0 => a << shamt,
                    0b101 if funct7 == 0 => a >> shamt,
                    0b101 if funct7 == 0b010_0000 => ((a as i32) >> shamt) as u32,
                    _ => return Err(Trap::IllegalInstruction(inst)),
                };
                self.set_reg(rd, value);
                Ok(next)
            }
            0x33 => {
                // ALU register (incl. M extension)
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let value = match (funct7, funct3) {
                    (0b000_0000, 0b000) => a.wrapping_add(b),
                    (0b010_0000, 0b000) => a.wrapping_sub(b),
                    (0b000_0000, 0b001) => a << (b & 0x1F),
                    (0b000_0000, 0b010) => u32::from((a as i32) < (b as i32)),
                    (0b000_0000, 0b011) => u32::from(a < b),
                    (0b000_0000, 0b100) => a ^ b,
                    (0b000_0000, 0b101) => a >> (b & 0x1F),
                    (0b010_0000, 0b101) => ((a as i32) >> (b & 0x1F)) as u32,
                    (0b000_0000, 0b110) => a | b,
                    (0b000_0000, 0b111) => a & b,
                    // M extension
                    (0b000_0001, 0b000) => a.wrapping_mul(b),
                    (0b000_0001, 0b001) => {
                        ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32
                    }
                    (0b000_0001, 0b010) => ((i64::from(a as i32) * i64::from(b)) >> 32) as u32,
                    (0b000_0001, 0b011) => ((u64::from(a) * u64::from(b)) >> 32) as u32,
                    (0b000_0001, 0b100) => match b as i32 {
                        0 => u32::MAX,
                        -1 if a as i32 == i32::MIN => a,
                        d => ((a as i32) / d) as u32,
                    },
                    (0b000_0001, 0b101) => a.checked_div(b).unwrap_or(u32::MAX),
                    (0b000_0001, 0b110) => match b as i32 {
                        0 => a,
                        -1 if a as i32 == i32::MIN => 0,
                        d => ((a as i32) % d) as u32,
                    },
                    (0b000_0001, 0b111) => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                    _ => return Err(Trap::IllegalInstruction(inst)),
                };
                self.set_reg(rd, value);
                Ok(next)
            }
            0x0F => Ok(next), // FENCE: no-op on this single-hart SoC
            0x73 => match inst {
                0x0000_0073 => Err(Trap::Ecall),
                0x0010_0073 => Err(Trap::Ebreak),
                0x3020_0073 => {
                    // MRET: restore MIE from MPIE, return to mepc.
                    let mpie = (self.csrs.mstatus >> 7) & 1;
                    self.csrs.mstatus = (self.csrs.mstatus & !(1 << 3)) | (mpie << 3) | (1 << 7);
                    Ok(self.csrs.mepc)
                }
                0x1050_0073 => {
                    // WFI: park until an interrupt is pending.
                    if !self.irq_line {
                        self.waiting = true;
                    }
                    Ok(next)
                }
                // CSRRW/CSRRS on the supported machine CSRs and the
                // read-only performance counters.
                _ if funct3 == 0b001 || funct3 == 0b010 => {
                    let csr = inst >> 20;
                    let old = self.read_csr(csr, inst)?;
                    if funct3 == 0b001 {
                        // CSRRW: write rs1.
                        self.write_csr(csr, self.reg(rs1), inst)?;
                    } else if rs1 != 0 {
                        // CSRRS with rs1 != 0: set bits.
                        self.write_csr(csr, old | self.reg(rs1), inst)?;
                    }
                    self.set_reg(rd, old);
                    Ok(next)
                }
                _ => Err(Trap::IllegalInstruction(inst)),
            },
            _ => Err(Trap::IllegalInstruction(inst)),
        }
    }
}

impl Cpu {
    fn read_csr(&self, csr: u32, inst: u32) -> Result<u32, Trap> {
        Ok(match csr {
            0x300 => self.csrs.mstatus,
            0x304 => self.csrs.mie,
            0x305 => self.csrs.mtvec,
            0x341 => self.csrs.mepc,
            0x342 => self.csrs.mcause,
            0xC00 | 0xC02 => self.instret as u32,
            0xC80 | 0xC82 => (self.instret >> 32) as u32,
            _ => return Err(Trap::IllegalInstruction(inst)),
        })
    }

    fn write_csr(&mut self, csr: u32, value: u32, inst: u32) -> Result<(), Trap> {
        match csr {
            0x300 => self.csrs.mstatus = value,
            0x304 => self.csrs.mie = value,
            0x305 => self.csrs.mtvec = value,
            0x341 => self.csrs.mepc = value,
            0x342 => self.csrs.mcause = value,
            0xC00 | 0xC02 | 0xC80 | 0xC82 => {
                return Err(Trap::IllegalInstruction(inst)); // read-only
            }
            _ => return Err(Trap::IllegalInstruction(inst)),
        }
        Ok(())
    }
}

fn check_align(addr: u32, align: u32) -> Result<(), Trap> {
    if !addr.is_multiple_of(align) {
        Err(Trap::Misaligned(addr))
    } else {
        Ok(())
    }
}

fn sign_extend(value: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((value << shift) as i32) >> shift) as u32
}

/// I-type immediate (sign-extended).
fn imm_i(inst: u32) -> i32 {
    (inst as i32) >> 20
}

/// S-type immediate.
fn imm_s(inst: u32) -> i32 {
    (((inst & 0xFE00_0000) as i32) >> 20) | (((inst >> 7) & 0x1F) as i32)
}

/// B-type immediate.
fn imm_b(inst: u32) -> i32 {
    let imm = (((inst & 0x8000_0000) as i32) >> 19) as u32 & 0xFFFF_F000
        | ((inst >> 7) & 0x1) << 11
        | ((inst >> 25) & 0x3F) << 5
        | ((inst >> 8) & 0xF) << 1;
    sign_extend(imm, 13) as i32
}

/// J-type immediate.
fn imm_j(inst: u32) -> i32 {
    let imm = ((inst >> 31) & 0x1) << 20
        | ((inst >> 12) & 0xFF) << 12
        | ((inst >> 20) & 0x1) << 11
        | ((inst >> 21) & 0x3FF) << 1;
    sign_extend(imm, 21) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial flat-RAM bus for core tests.
    struct TestBus {
        mem: Vec<u8>,
    }

    impl TestBus {
        fn with_program(words: &[u32]) -> Self {
            let mut mem = vec![0u8; 0x1_0000];
            for (i, w) in words.iter().enumerate() {
                mem[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
            }
            TestBus { mem }
        }
    }

    impl Bus for TestBus {
        fn read(&mut self, addr: u32, width: AccessWidth) -> Result<u32, Trap> {
            let a = addr as usize;
            if a >= self.mem.len() {
                return Err(Trap::BusFault(addr));
            }
            Ok(match width {
                AccessWidth::Byte => u32::from(self.mem[a]),
                AccessWidth::Half => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
                AccessWidth::Word => u32::from_le_bytes([
                    self.mem[a],
                    self.mem[a + 1],
                    self.mem[a + 2],
                    self.mem[a + 3],
                ]),
            })
        }

        fn write(&mut self, addr: u32, value: u32, width: AccessWidth) -> Result<(), Trap> {
            let a = addr as usize;
            if a >= self.mem.len() {
                return Err(Trap::BusFault(addr));
            }
            match width {
                AccessWidth::Byte => self.mem[a] = value as u8,
                AccessWidth::Half => {
                    self.mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes());
                }
                AccessWidth::Word => {
                    self.mem[a..a + 4].copy_from_slice(&value.to_le_bytes());
                }
            }
            Ok(())
        }
    }

    fn run(words: &[u32], steps: usize) -> (Cpu, TestBus) {
        let mut cpu = Cpu::new(0);
        let mut bus = TestBus::with_program(words);
        for _ in 0..steps {
            match cpu.step(&mut bus) {
                Ok(()) => {}
                Err(Trap::Ebreak) => break,
                Err(t) => panic!("unexpected trap: {t}"),
            }
        }
        (cpu, bus)
    }

    // Hand-encoded instruction helpers for tests (cross-checked against
    // the assembler in `asm.rs`).
    fn addi(rd: u32, rs1: u32, imm: i32) -> u32 {
        ((imm as u32) << 20) | (rs1 << 15) | (rd << 7) | 0x13
    }
    fn add(rd: u32, rs1: u32, rs2: u32) -> u32 {
        (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33
    }
    fn mul(rd: u32, rs1: u32, rs2: u32) -> u32 {
        (1 << 25) | (rs2 << 20) | (rs1 << 15) | (rd << 7) | 0x33
    }
    const EBREAK: u32 = 0x0010_0073;

    #[test]
    fn x0_is_hardwired_zero() {
        let (cpu, _) = run(&[addi(0, 0, 42), addi(1, 0, 7), EBREAK], 10);
        assert_eq!(cpu.reg(0), 0);
        assert_eq!(cpu.reg(1), 7);
    }

    #[test]
    fn arithmetic_basics() {
        let (cpu, _) = run(
            &[
                addi(1, 0, 100),
                addi(2, 0, -3),
                add(3, 1, 2),
                mul(4, 1, 2),
                EBREAK,
            ],
            10,
        );
        assert_eq!(cpu.reg(3), 97);
        assert_eq!(cpu.reg(4) as i32, -300);
    }

    #[test]
    fn division_edge_cases() {
        // div by zero = -1, rem by zero = dividend, overflow case.
        fn divi(rd: u32, rs1: u32, rs2: u32) -> u32 {
            (1 << 25) | (rs2 << 20) | (rs1 << 15) | (0b100 << 12) | (rd << 7) | 0x33
        }
        fn remi(rd: u32, rs1: u32, rs2: u32) -> u32 {
            (1 << 25) | (rs2 << 20) | (rs1 << 15) | (0b110 << 12) | (rd << 7) | 0x33
        }
        let (cpu, _) = run(&[addi(1, 0, 7), divi(2, 1, 0), remi(3, 1, 0), EBREAK], 10);
        assert_eq!(cpu.reg(2), u32::MAX, "div by zero yields -1");
        assert_eq!(cpu.reg(3), 7, "rem by zero yields dividend");
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        // sw x1, 0x100(x0); lw x2, 0x100(x0)
        let sw = ((0x100u32 >> 5) << 25 | 1 << 20 | (0b010 << 12)) | 0x23;
        let lw = 0x100u32 << 20 | (0b010 << 12) | (2 << 7) | 0x03;
        let (cpu, bus) = run(&[addi(1, 0, 0x555), sw, lw, EBREAK], 10);
        assert_eq!(cpu.reg(2), 0x555);
        assert_eq!(bus.mem[0x100], 0x55);
    }

    #[test]
    fn byte_load_sign_extends() {
        // sb then lb of 0xFF -> -1; lbu -> 255.
        let sb = ((0x80u32 >> 5) << 25 | 1 << 20) | 0x23; // sb x1, 0x80(x0)
        let lb = (0x80u32 << 20) | (2 << 7) | 0x03;
        let lbu = 0x80u32 << 20 | (0b100 << 12) | (3 << 7) | 0x03;
        let (cpu, _) = run(&[addi(1, 0, 0xFF), sb, lb, lbu, EBREAK], 10);
        assert_eq!(cpu.reg(2), u32::MAX);
        assert_eq!(cpu.reg(3), 0xFF);
    }

    #[test]
    fn branch_loop_counts() {
        // x1 = 0; loop: x1 += 1; blt x1, 10 -> loop; (count to 10)
        let blt_back = {
            // blt x1, x2, -4
            let imm: i32 = -4;
            let u = imm as u32;
            ((u >> 12) & 1) << 31
                | ((u >> 5) & 0x3F) << 25
                | 2 << 20
                | 1 << 15
                | 0b100 << 12
                | ((u >> 1) & 0xF) << 8
                | ((u >> 11) & 1) << 7
                | 0x63
        };
        let (cpu, _) = run(&[addi(2, 0, 10), addi(1, 1, 1), blt_back, EBREAK], 100);
        assert_eq!(cpu.reg(1), 10);
    }

    #[test]
    fn jal_links_return_address() {
        // jal x1, +8 ; ebreak (skipped) ; ebreak
        let jal = (8u32 >> 1) << 21 | (1 << 7) | 0x6F;
        let (cpu, _) = run(&[jal, EBREAK, EBREAK], 10);
        assert_eq!(cpu.reg(1), 4);
        assert_eq!(cpu.pc(), 8);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut cpu = Cpu::new(0);
        let mut bus = TestBus::with_program(&[0xFFFF_FFFF]);
        assert!(matches!(
            cpu.step(&mut bus),
            Err(Trap::IllegalInstruction(_))
        ));
    }

    #[test]
    fn misaligned_load_traps() {
        // lw x1, 1(x0)
        let lw = 1u32 << 20 | (0b010 << 12) | (1 << 7) | 0x03;
        let mut cpu = Cpu::new(0);
        let mut bus = TestBus::with_program(&[lw]);
        assert!(matches!(cpu.step(&mut bus), Err(Trap::Misaligned(1))));
    }

    #[test]
    fn instret_counts_retired() {
        let (cpu, _) = run(&[addi(1, 0, 1), addi(2, 0, 2), EBREAK], 10);
        assert_eq!(cpu.instret(), 2, "ebreak does not retire");
    }

    /// Assemble-and-run coverage of the full RV32IM ALU/branch matrix
    /// (cross-validates the decoder against the assembler).
    #[test]
    fn full_alu_matrix_via_assembler() {
        use crate::asm::assemble;
        let cases: &[(&str, u32)] = &[
            ("li a1, -7\nli a2, 3\nadd a0, a1, a2", (-4i32) as u32),
            ("li a1, -7\nli a2, 3\nsub a0, a1, a2", (-10i32) as u32),
            ("li a1, 1\nli a2, 31\nsll a0, a1, a2", 1 << 31),
            ("li a1, -8\nli a2, 2\nsra a0, a1, a2", (-2i32) as u32),
            ("li a1, -8\nli a2, 2\nsrl a0, a1, a2", 0xFFFF_FFF8u32 >> 2),
            ("li a1, -1\nli a2, 1\nslt a0, a1, a2", 1),
            ("li a1, -1\nli a2, 1\nsltu a0, a1, a2", 0),
            ("li a1, 0xF0\nli a2, 0x0F\nxor a0, a1, a2", 0xFF),
            ("li a1, 0xF0\nli a2, 0x1F\nand a0, a1, a2", 0x10),
            ("li a1, 0xF0\nli a2, 0x0F\nor a0, a1, a2", 0xFF),
            ("li a1, -1\nli a2, -1\nmulh a0, a1, a2", 0),
            ("li a1, -1\nli a2, -1\nmulhu a0, a1, a2", 0xFFFF_FFFE),
            ("li a1, -1\nli a2, 2\nmulhsu a0, a1, a2", 0xFFFF_FFFF),
            ("li a1, -7\nli a2, 2\ndiv a0, a1, a2", (-3i32) as u32),
            ("li a1, -7\nli a2, 2\nrem a0, a1, a2", (-1i32) as u32),
            ("li a1, 7\nli a2, 2\ndivu a0, a1, a2", 3),
            ("li a1, 7\nli a2, 2\nremu a0, a1, a2", 1),
            ("li a1, 5\nslti a0, a1, 6", 1),
            ("li a1, 5\nsltiu a0, a1, 5", 0),
            ("li a1, 5\nxori a0, a1, -1", !5u32),
            ("li a1, 0x70\nori a0, a1, 0x0F", 0x7F),
            ("li a1, 0x73\nandi a0, a1, 0x0F", 0x03),
            ("li a1, 3\nslli a0, a1, 4", 48),
            ("li a1, -16\nsrai a0, a1, 2", (-4i32) as u32),
            ("lui a0, 0xABCDE", 0xABCD_E000),
            ("auipc a0, 1", 0x1000), // pc = 0 at the auipc
        ];
        for (src, expect) in cases {
            let source = format!("{src}\nebreak");
            let words = assemble(0, &source).unwrap();
            let (cpu, _) = run(&words, 50);
            assert_eq!(cpu.reg(10), *expect, "case: {src}");
        }
    }

    #[test]
    fn signed_division_overflow_case() {
        use crate::asm::assemble;
        // i32::MIN / -1 must yield i32::MIN; rem yields 0 (RISC-V spec).
        let words = assemble(
            0,
            "
            li a1, -2147483648
            li a2, -1
            div a0, a1, a2
            rem a3, a1, a2
            ebreak
            ",
        )
        .unwrap();
        let (cpu, _) = run(&words, 20);
        assert_eq!(cpu.reg(10), i32::MIN as u32);
        assert_eq!(cpu.reg(13), 0);
    }

    #[test]
    fn branch_matrix_via_assembler() {
        use crate::asm::assemble;
        // Each case sets a0 = 1 iff the branch is taken.
        let cases: &[(&str, bool)] = &[
            ("li t1, 5\nli t2, 5\nbeq t1, t2, yes", true),
            ("li t1, 5\nli t2, 6\nbne t1, t2, yes", true),
            ("li t1, -1\nli t2, 0\nblt t1, t2, yes", true),
            ("li t1, -1\nli t2, 0\nbltu t1, t2, yes", false), // -1 unsigned is max
            ("li t1, 0\nli t2, -1\nbge t1, t2, yes", true),
            ("li t1, 0\nli t2, -1\nbgeu t1, t2, yes", false),
        ];
        for (prelude, taken) in cases {
            let source = format!("{prelude}\n li a0, 0\n j out\nyes: li a0, 1\nout: ebreak");
            let words = assemble(0, &source).unwrap();
            let (cpu, _) = run(&words, 50);
            assert_eq!(cpu.reg(10) == 1, *taken, "case: {prelude}");
        }
    }

    #[test]
    fn fence_is_a_nop() {
        use crate::asm::assemble;
        let words = assemble(0, "fence\nli a0, 9\nebreak").unwrap();
        let (cpu, _) = run(&words, 10);
        assert_eq!(cpu.reg(10), 9);
    }
}
