//! RISC-V SoC simulator with the PASTA accelerator peripheral.
//!
//! The paper's third evaluation platform (§IV.A ❸) integrates the PASTA
//! cryptoprocessor into a 32-bit RISC-V SoC (Ibex core, 130nm/65nm,
//! 100 MHz) as a loosely-coupled peripheral with a DMA master port. This
//! crate rebuilds that platform in software:
//!
//! - [`rv32`]: an RV32IM instruction-set simulator;
//! - [`asm`]: a two-pass RV32IM assembler for the bundled firmware;
//! - [`bus`]: the shared system bus (RAM, UART, peripheral window);
//! - [`peripheral`]: the memory-mapped PASTA accelerator, whose per-block
//!   latency comes from the cycle-accurate `pasta-hw` model plus the
//!   serialized bus transfers the paper describes;
//! - [`soc`]: the assembled system with cycle accounting;
//! - [`firmware`]: the driver program and a harness measuring the
//!   Tab. II "RISC-V" column end to end.
//!
//! # Examples
//!
//! ```
//! use pasta_core::{PastaParams, SecretKey};
//! use pasta_soc::firmware::encrypt_on_soc;
//!
//! let params = PastaParams::pasta4_17bit();
//! let key = SecretKey::from_seed(&params, b"doc");
//! let message: Vec<u64> = (0..32).collect();
//! let run = encrypt_on_soc(params, &key, 7, &message)?;
//! // Tab. II: ≈15.9 µs per PASTA-4 block at 100 MHz.
//! assert!(run.micros < 25.0);
//! # Ok::<(), pasta_soc::firmware::FirmwareError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod baseline;
pub mod bus;
pub mod disasm;
pub mod firmware;
pub mod peripheral;
pub mod rv32;
pub mod soc;

pub use firmware::{encrypt_on_soc, SocEncryption};
pub use peripheral::PastaPeripheral;
pub use rv32::{Cpu, Trap};
pub use soc::{RunOutcome, Soc, SOC_CLOCK_MHZ};
