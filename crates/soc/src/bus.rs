//! The SoC system bus: RAM, UART, and the PASTA peripheral.
//!
//! A single shared data bus (as in the paper's SoC, §IV.A ❸): the core is
//! the bus master for its loads/stores; the PASTA peripheral's DMA port
//! reaches RAM through the same fabric, which is why block processing is
//! fully serialized.
//!
//! ## Memory map
//!
//! | base          | device              |
//! |---------------|---------------------|
//! | `0x0000_0000` | RAM (program + data)|
//! | `0x1000_0000` | UART (TX register)  |
//! | `0x4000_0000` | PASTA peripheral    |

use crate::peripheral::{PastaPeripheral, PeripheralAction};
use crate::rv32::{AccessWidth, Bus, Trap};
use pasta_core::PastaParams;

/// RAM base address.
pub const RAM_BASE: u32 = 0x0000_0000;
/// UART base address (write a byte to TX).
pub const UART_BASE: u32 = 0x1000_0000;
/// PASTA peripheral base address.
pub const PASTA_BASE: u32 = 0x4000_0000;
/// Size of the peripheral register window.
const PASTA_WINDOW: u32 = 0x100;

/// Byte-addressable RAM.
#[derive(Debug, Clone)]
pub struct Ram {
    bytes: Vec<u8>,
}

impl Ram {
    /// Creates zeroed RAM of `size` bytes.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Ram {
            bytes: vec![0; size],
        }
    }

    /// RAM size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the RAM is empty (zero-sized).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Word read (little-endian), `None` when out of range.
    #[must_use]
    pub fn read_u32(&self, addr: u32) -> Option<u32> {
        let a = addr as usize;
        if a + 4 > self.bytes.len() {
            return None;
        }
        Some(u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ]))
    }

    /// Word write (little-endian); `false` when out of range.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> bool {
        let a = addr as usize;
        if a + 4 > self.bytes.len() {
            return false;
        }
        self.bytes[a..a + 4].copy_from_slice(&value.to_le_bytes());
        true
    }
}

/// A write-only console UART that captures output for the harness.
#[derive(Debug, Clone, Default)]
pub struct Uart {
    output: Vec<u8>,
}

impl Uart {
    /// Everything written to TX so far, lossily decoded.
    #[must_use]
    pub fn output(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

/// The system bus with all devices and the global cycle reference.
#[derive(Debug, Clone)]
pub struct SystemBus {
    /// Main memory.
    pub ram: Ram,
    /// Console.
    pub uart: Uart,
    /// The PASTA accelerator.
    pub pasta: PastaPeripheral,
    /// Current absolute cycle (maintained by the SoC stepper).
    pub now: u64,
}

impl SystemBus {
    /// Builds the bus with `ram_size` bytes of RAM and a PASTA peripheral
    /// configured for `params`.
    #[must_use]
    pub fn new(params: PastaParams, ram_size: usize) -> Self {
        SystemBus {
            ram: Ram::new(ram_size),
            uart: Uart::default(),
            pasta: PastaPeripheral::new(params),
            now: 0,
        }
    }

    fn pasta_write(&mut self, offset: u32, value: u32) {
        if self.pasta.write_reg(offset, value) == PeripheralAction::Start {
            // Service the DMA job immediately; latency is modelled via
            // the peripheral's done_at cycle.
            let ram = &mut self.ram;
            let now = self.now;
            let _cycles = {
                // Split borrows: the closure captures only `ram`.
                let ram_ptr: &mut Ram = ram;
                let ram_cell = std::cell::RefCell::new(ram_ptr);
                self.pasta.start(
                    now,
                    |addr| ram_cell.borrow().read_u32(addr),
                    |addr, v| ram_cell.borrow_mut().write_u32(addr, v),
                )
            };
        }
    }
}

impl Bus for SystemBus {
    fn read(&mut self, addr: u32, width: AccessWidth) -> Result<u32, Trap> {
        if (addr as usize) < self.ram.len() {
            let a = addr as usize;
            let bytes = &self.ram.bytes;
            return Ok(match width {
                AccessWidth::Byte => u32::from(bytes[a]),
                AccessWidth::Half => {
                    if a + 2 > bytes.len() {
                        return Err(Trap::BusFault(addr));
                    }
                    u32::from(u16::from_le_bytes([bytes[a], bytes[a + 1]]))
                }
                AccessWidth::Word => self.ram.read_u32(addr).ok_or(Trap::BusFault(addr))?,
            });
        }
        if (PASTA_BASE..PASTA_BASE + PASTA_WINDOW).contains(&addr) {
            if width != AccessWidth::Word || !addr.is_multiple_of(4) {
                return Err(Trap::Misaligned(addr));
            }
            return Ok(self.pasta.read_reg(addr - PASTA_BASE, self.now));
        }
        if addr == UART_BASE {
            return Ok(0); // TX always ready
        }
        Err(Trap::BusFault(addr))
    }

    fn write(&mut self, addr: u32, value: u32, width: AccessWidth) -> Result<(), Trap> {
        if (addr as usize) < self.ram.len() {
            let a = addr as usize;
            match width {
                AccessWidth::Byte => self.ram.bytes[a] = value as u8,
                AccessWidth::Half => {
                    if a + 2 > self.ram.bytes.len() {
                        return Err(Trap::BusFault(addr));
                    }
                    self.ram.bytes[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes());
                }
                AccessWidth::Word => {
                    if !self.ram.write_u32(addr, value) {
                        return Err(Trap::BusFault(addr));
                    }
                }
            }
            return Ok(());
        }
        if (PASTA_BASE..PASTA_BASE + PASTA_WINDOW).contains(&addr) {
            if width != AccessWidth::Word || !addr.is_multiple_of(4) {
                return Err(Trap::Misaligned(addr));
            }
            self.pasta_write(addr - PASTA_BASE, value);
            return Ok(());
        }
        if addr == UART_BASE {
            self.uart.output.push(value as u8);
            return Ok(());
        }
        Err(Trap::BusFault(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv32::{AccessWidth, Bus};

    fn bus() -> SystemBus {
        SystemBus::new(PastaParams::pasta4_17bit(), 64 * 1024)
    }

    #[test]
    fn ram_read_write_widths() {
        let mut b = bus();
        b.write(0x100, 0xDEAD_BEEF, AccessWidth::Word).unwrap();
        assert_eq!(b.read(0x100, AccessWidth::Word).unwrap(), 0xDEAD_BEEF);
        assert_eq!(b.read(0x100, AccessWidth::Byte).unwrap(), 0xEF);
        assert_eq!(b.read(0x102, AccessWidth::Half).unwrap(), 0xDEAD);
        b.write(0x103, 0x12, AccessWidth::Byte).unwrap();
        assert_eq!(b.read(0x100, AccessWidth::Word).unwrap(), 0x12AD_BEEF);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut b = bus();
        assert!(matches!(
            b.read(0x2000_0000, AccessWidth::Word),
            Err(Trap::BusFault(0x2000_0000))
        ));
        assert!(matches!(
            b.write(0xFFFF_0000, 0, AccessWidth::Word),
            Err(Trap::BusFault(_))
        ));
    }

    #[test]
    fn uart_collects_output() {
        let mut b = bus();
        for &c in b"ok\n" {
            b.write(UART_BASE, u32::from(c), AccessWidth::Byte).unwrap();
        }
        assert_eq!(b.uart.output(), "ok\n");
    }

    #[test]
    fn peripheral_visible_through_bus() {
        let mut b = bus();
        // STATUS reads idle initially.
        assert_eq!(b.read(PASTA_BASE + 0x04, AccessWidth::Word).unwrap(), 0);
        // Nonce registers are write-through.
        b.write(PASTA_BASE + 0x14, 0x55, AccessWidth::Word).unwrap();
        assert_eq!(b.pasta.nonce(), 0x55);
    }

    #[test]
    fn peripheral_requires_word_access() {
        let mut b = bus();
        assert!(matches!(
            b.read(PASTA_BASE + 0x04, AccessWidth::Byte),
            Err(Trap::Misaligned(_))
        ));
    }
}
