//! Software-PASTA baseline on the RISC-V core itself.
//!
//! Tab. II compares the accelerator against a Xeon; the more interesting
//! embedded question — answered here — is what PASTA would cost *in
//! software on the SoC's own Ibex-class core*, i.e. what the peripheral
//! buys within the same chip. The estimate combines:
//!
//! - measured per-operation costs from firmware microbenchmarks run on
//!   the RV32IM instruction-set simulator (modular multiply via
//!   `mul`+`remu`, modular add with conditional subtract);
//! - the exact operation counts from `pasta_core::counters`;
//! - a documented constant for Keccak-f\[1600\] on RV32 (the permutation
//!   is 64-bit oriented, so a 32-bit core pays roughly 2× per lane op;
//!   optimized RV32 implementations land in the 10k–20k cycles per
//!   permutation range — we use 15k and expose it for sensitivity
//!   analysis).

use crate::asm::assemble;
use crate::soc::{RunOutcome, Soc};
use pasta_core::counters::encryption_op_count;
use pasta_core::permutation::derive_block_material;
use pasta_core::PastaParams;

/// Assumed Keccak-f\[1600\] cost on an RV32IM core (cycles/permutation).
pub const KECCAK_PERMUTATION_RV32_CYCLES: u64 = 15_000;

/// Measured per-operation costs on the modelled core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrobenchResults {
    /// Cycles per modular multiplication (`mul` + `remu` + move).
    pub modmul_cycles: f64,
    /// Cycles per modular addition (add + compare + conditional sub).
    pub modadd_cycles: f64,
    /// Loop overhead per iteration (subtracted from the raw loops).
    pub loop_overhead_cycles: f64,
}

/// Runs the arithmetic microbenchmarks on the ISS.
///
/// # Panics
///
/// Panics if the bundled firmware fails to assemble or run (a bug).
#[must_use]
pub fn run_microbench() -> MicrobenchResults {
    const ITERS: u64 = 2_000;
    let empty = measure(&format!(
        "
        li   t0, {ITERS}
    loop:
        addi t0, t0, -1
        bnez t0, loop
        ebreak
        "
    ));
    let modmul = measure(&format!(
        "
        li   t0, {ITERS}
        li   a0, 54321
        li   a1, 12345
        li   a2, 65537        # p
    loop:
        mul  a3, a0, a1       # 32x32 product (fits: operands < 2^17)
        remu a3, a3, a2       # modular reduction
        mv   a0, a3           # feed back (serial dependency, as in matgen)
        addi t0, t0, -1
        bnez t0, loop
        ebreak
        "
    ));
    let modadd = measure(&format!(
        "
        li   t0, {ITERS}
        li   a0, 54321
        li   a1, 65000
        li   a2, 65537
    loop:
        add  a3, a0, a1
        sltu a4, a3, a2       # a3 < p ?
        bnez a4, skip
        sub  a3, a3, a2
    skip:
        mv   a0, a3
        addi t0, t0, -1
        bnez t0, loop
        ebreak
        "
    ));
    let iters = ITERS as f64;
    let loop_overhead = empty as f64 / iters;
    MicrobenchResults {
        modmul_cycles: (modmul as f64 / iters) - loop_overhead + 2.0, // + load/store traffic share
        modadd_cycles: (modadd as f64 / iters) - loop_overhead + 1.0,
        loop_overhead_cycles: loop_overhead,
    }
}

fn measure(source: &str) -> u64 {
    let program = assemble(0, source).expect("baseline firmware assembles");
    let mut soc = Soc::new(PastaParams::pasta4_17bit(), 64 * 1024);
    soc.load_program(0, &program);
    assert_eq!(soc.run(10_000_000).expect("no traps"), RunOutcome::Halted);
    soc.cycles()
}

/// Estimated cycles for one software PASTA block on the RV32IM core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareEstimate {
    /// Total estimated cycles.
    pub total_cycles: f64,
    /// Arithmetic share (modmul + modadd).
    pub arithmetic_cycles: f64,
    /// XOF share (Keccak permutations).
    pub keccak_cycles: f64,
    /// Rejection-sampling and bookkeeping share.
    pub sampling_cycles: f64,
}

/// Estimates one-block software PASTA on the core, from the measured
/// per-op costs and exact operation counts.
#[must_use]
pub fn estimate_software_block(
    params: &PastaParams,
    bench: &MicrobenchResults,
) -> SoftwareEstimate {
    let ops = encryption_op_count(params);
    let arithmetic = ops.mul as f64 * bench.modmul_cycles + ops.add as f64 * bench.modadd_cycles;
    // Average permutations per block (measured once over a few nonces).
    let mut perms = 0u64;
    for counter in 0..4 {
        perms += derive_block_material(params, 0xBA5E, counter).keccak_permutations;
    }
    let keccak = (perms as f64 / 4.0) * KECCAK_PERMUTATION_RV32_CYCLES as f64;
    // Each raw word costs a mask/compare/branch (≈4 cycles) in sampling.
    let words = ops.xof_coefficients as f64 / params.acceptance_rate();
    let sampling = words * 4.0;
    SoftwareEstimate {
        total_cycles: arithmetic + keccak + sampling,
        arithmetic_cycles: arithmetic,
        keccak_cycles: keccak,
        sampling_cycles: sampling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::encrypt_on_soc;
    use pasta_core::SecretKey;

    #[test]
    fn microbench_costs_are_sane() {
        let b = run_microbench();
        // CPI-1 core: empty loop body = 2 instructions per iteration.
        assert!((1.9..2.3).contains(&b.loop_overhead_cycles), "{b:?}");
        // modmul = mul + remu + mv (+2 traffic share) ≈ 5; modadd ≈ 5.
        assert!((4.0..7.0).contains(&b.modmul_cycles), "{b:?}");
        assert!((3.0..7.0).contains(&b.modadd_cycles), "{b:?}");
    }

    #[test]
    fn software_pasta_estimate_structure() {
        let b = run_microbench();
        let est = estimate_software_block(&PastaParams::pasta4_17bit(), &b);
        // ~20k muls × ~5 + ~21k adds × ~5 ≈ 0.2M; Keccak ≈ 61 × 15k ≈ 0.9M.
        assert!(est.arithmetic_cycles > 100_000.0 && est.arithmetic_cycles < 400_000.0);
        assert!(est.keccak_cycles > 700_000.0 && est.keccak_cycles < 1_200_000.0);
        assert!(
            est.total_cycles > 0.8e6 && est.total_cycles < 2.0e6,
            "{est:?}"
        );
        // Consistent with the quoted Xeon count (1.36M cycles): an
        // in-order RV32 without 64-bit lanes lands in the same decade.
    }

    #[test]
    fn accelerator_beats_on_chip_software_by_hundreds() {
        let b = run_microbench();
        let params = PastaParams::pasta4_17bit();
        let est = estimate_software_block(&params, &b);
        let key = SecretKey::from_seed(&params, b"vs-sw");
        let run = encrypt_on_soc(params, &key, 1, &(0..32).collect::<Vec<_>>()).unwrap();
        let speedup = est.total_cycles / run.accelerator_cycles as f64;
        assert!(
            speedup > 300.0 && speedup < 1_500.0,
            "on-chip accelerator speedup = {speedup:.0}x"
        );
    }
}
