//! A small RV32IM assembler for the bundled firmware.
//!
//! Supports the instructions the firmware needs, labels, `.word` data,
//! decimal/hex immediates, ABI register names, and the common
//! pseudo-instructions (`li`, `mv`, `nop`, `j`, `ret`, `beqz`, `bnez`).
//! Two-pass: the first pass resolves label addresses (accounting for
//! `li`'s one-or-two-instruction expansion), the second encodes.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Assembly errors, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles `source` into little-endian instruction words, starting at
/// `base` (label arithmetic is relative to it).
///
/// # Errors
///
/// Returns an [`AsmError`] naming the first offending line.
///
/// # Examples
///
/// ```
/// use pasta_soc::asm::assemble;
/// let words = assemble(0, "
///     li   a0, 42
///     nop
/// loop:
///     addi a0, a0, -1
///     bnez a0, loop
///     ebreak
/// ")?;
/// assert!(words.len() >= 5);
/// # Ok::<(), pasta_soc::asm::AsmError>(())
/// ```
pub fn assemble(base: u32, source: &str) -> Result<Vec<u32>, AsmError> {
    let lines = parse_lines(source)?;
    // Pass 1: label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut addr = base;
    for l in &lines {
        for label in &l.labels {
            if labels.insert(label.clone(), addr).is_some() {
                return Err(AsmError {
                    line: l.line,
                    message: format!("duplicate label {label}"),
                });
            }
        }
        if let Some(stmt) = &l.stmt {
            addr += 4 * words_for(stmt, l.line)? as u32;
        }
    }
    // Pass 2: encode.
    let mut out = Vec::new();
    let mut addr = base;
    for l in &lines {
        if let Some(stmt) = &l.stmt {
            let words = encode(stmt, addr, &labels, l.line)?;
            addr += 4 * words.len() as u32;
            out.extend(words);
        }
    }
    Ok(out)
}

struct Line {
    line: usize,
    labels: Vec<String>,
    stmt: Option<Stmt>,
}

struct Stmt {
    mnemonic: String,
    operands: Vec<String>,
}

fn parse_lines(source: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find(['#', ';']) {
            text = &text[..pos];
        }
        let mut text = text.trim();
        let mut labels = Vec::new();
        while let Some(pos) = text.find(':') {
            let label = text[..pos].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(AsmError {
                    line: line_no,
                    message: "malformed label".into(),
                });
            }
            labels.push(label.to_string());
            text = text[pos + 1..].trim();
        }
        let stmt = if text.is_empty() {
            None
        } else {
            let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
            let operands: Vec<String> = rest
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            Some(Stmt {
                mnemonic: mnemonic.to_lowercase(),
                operands,
            })
        };
        if !labels.is_empty() || stmt.is_some() {
            out.push(Line {
                line: line_no,
                labels,
                stmt,
            });
        }
    }
    Ok(out)
}

/// How many words a statement expands to (pass 1).
fn words_for(stmt: &Stmt, line: usize) -> Result<usize, AsmError> {
    match stmt.mnemonic.as_str() {
        "li" => {
            let imm = parse_imm(stmt.operands.get(1).map_or("", |s| s), line)?;
            Ok(if fits_i12(imm) || imm & 0xFFF == 0 {
                1
            } else {
                2
            })
        }
        ".word" => Ok(stmt.operands.len()),
        _ => Ok(1),
    }
}

#[allow(clippy::too_many_lines)]
fn encode(
    stmt: &Stmt,
    addr: u32,
    labels: &HashMap<String, u32>,
    line: usize,
) -> Result<Vec<u32>, AsmError> {
    let err = |message: String| AsmError { line, message };
    let op = |i: usize| -> Result<&str, AsmError> {
        stmt.operands
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing operand {i} for {}", stmt.mnemonic)))
    };
    let reg = |i: usize| -> Result<u32, AsmError> { parse_reg(op(i)?, line) };
    let imm = |i: usize| -> Result<i64, AsmError> { parse_imm(op(i)?, line) };
    let target = |i: usize| -> Result<u32, AsmError> {
        let name = op(i)?;
        labels
            .get(name)
            .copied()
            .ok_or_else(|| err(format!("unknown label {name}")))
    };
    let branch_off = |t: u32| -> Result<i32, AsmError> {
        let off = t.wrapping_sub(addr) as i32;
        if off % 2 != 0 || !(-4096..4096).contains(&off) {
            return Err(err(format!("branch offset {off} out of range")));
        }
        Ok(off)
    };

    let m = stmt.mnemonic.as_str();
    let one = |w: u32| Ok(vec![w]);
    match m {
        ".word" => {
            let mut ws = Vec::new();
            for i in 0..stmt.operands.len() {
                ws.push(imm(i)? as u32);
            }
            Ok(ws)
        }
        "nop" => one(enc_i(0x13, 0, 0, 0, 0)),
        "mv" => one(enc_i(0x13, 0, reg(0)?, reg(1)?, 0)),
        "li" => {
            let v = imm(1)? as i32;
            let rd = reg(0)?;
            if fits_i12(i64::from(v)) {
                one(enc_i(0x13, 0, rd, 0, v))
            } else {
                // lui + addi with carry correction for negative low part.
                let low = (v << 20) >> 20;
                let high = (v.wrapping_sub(low)) as u32;
                let lui = (high & 0xFFFF_F000) | (rd << 7) | 0x37;
                if low == 0 {
                    one(lui)
                } else {
                    Ok(vec![lui, enc_i(0x13, 0, rd, rd, low)])
                }
            }
        }
        "lui" => {
            let v = imm(1)?;
            one(((v as u32) << 12) | (reg(0)? << 7) | 0x37)
        }
        "auipc" => {
            let v = imm(1)?;
            one(((v as u32) << 12) | (reg(0)? << 7) | 0x17)
        }
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "mul"
        | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
            let (f7, f3) = match m {
                "add" => (0b000_0000, 0b000),
                "sub" => (0b010_0000, 0b000),
                "sll" => (0b000_0000, 0b001),
                "slt" => (0b000_0000, 0b010),
                "sltu" => (0b000_0000, 0b011),
                "xor" => (0b000_0000, 0b100),
                "srl" => (0b000_0000, 0b101),
                "sra" => (0b010_0000, 0b101),
                "or" => (0b000_0000, 0b110),
                "and" => (0b000_0000, 0b111),
                "mul" => (0b000_0001, 0b000),
                "mulh" => (0b000_0001, 0b001),
                "mulhsu" => (0b000_0001, 0b010),
                "mulhu" => (0b000_0001, 0b011),
                "div" => (0b000_0001, 0b100),
                "divu" => (0b000_0001, 0b101),
                "rem" => (0b000_0001, 0b110),
                _ => (0b000_0001, 0b111),
            };
            one(f7 << 25 | reg(2)? << 20 | reg(1)? << 15 | f3 << 12 | reg(0)? << 7 | 0x33)
        }
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" => {
            let f3 = match m {
                "addi" => 0b000,
                "slti" => 0b010,
                "sltiu" => 0b011,
                "xori" => 0b100,
                "ori" => 0b110,
                _ => 0b111,
            };
            let v = imm(2)?;
            if !fits_i12(v) {
                return Err(err(format!("immediate {v} out of I-range")));
            }
            one(enc_i(0x13, f3, reg(0)?, reg(1)?, v as i32))
        }
        "slli" | "srli" | "srai" => {
            let f3 = if m == "slli" { 0b001 } else { 0b101 };
            let f7 = if m == "srai" { 0b010_0000 } else { 0 };
            let sh = imm(2)?;
            if !(0..32).contains(&sh) {
                return Err(err(format!("shift amount {sh} out of range")));
            }
            one(f7 << 25 | (sh as u32) << 20 | reg(1)? << 15 | f3 << 12 | reg(0)? << 7 | 0x13)
        }
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            let f3 = match m {
                "lb" => 0b000,
                "lh" => 0b001,
                "lw" => 0b010,
                "lbu" => 0b100,
                _ => 0b101,
            };
            let (off, rs1) = parse_mem(op(1)?, line)?;
            one(enc_i(0x03, f3, reg(0)?, rs1, off))
        }
        "sb" | "sh" | "sw" => {
            let f3 = match m {
                "sb" => 0b000,
                "sh" => 0b001,
                _ => 0b010,
            };
            let (off, rs1) = parse_mem(op(1)?, line)?;
            let rs2 = reg(0)?;
            let u = off as u32;
            one(((u >> 5) & 0x7F) << 25 | rs2 << 20 | rs1 << 15 | f3 << 12 | (u & 0x1F) << 7 | 0x23)
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            let f3 = match m {
                "beq" => 0b000,
                "bne" => 0b001,
                "blt" => 0b100,
                "bge" => 0b101,
                "bltu" => 0b110,
                _ => 0b111,
            };
            let off = branch_off(target(2)?)?;
            one(enc_b(f3, reg(0)?, reg(1)?, off))
        }
        "beqz" => {
            let off = branch_off(target(1)?)?;
            one(enc_b(0b000, reg(0)?, 0, off))
        }
        "bnez" => {
            let off = branch_off(target(1)?)?;
            one(enc_b(0b001, reg(0)?, 0, off))
        }
        "jal" => {
            // jal rd, label  |  jal label (rd = ra)
            let (rd, t) = if stmt.operands.len() == 2 {
                (reg(0)?, target(1)?)
            } else {
                (1, target(0)?)
            };
            one(enc_j(rd, t.wrapping_sub(addr) as i32, line)?)
        }
        "j" => one(enc_j(0, target(0)?.wrapping_sub(addr) as i32, line)?),
        "jalr" => {
            // jalr rd, off(rs1)  |  jalr rs1
            if stmt.operands.len() == 1 {
                one(enc_i(0x67, 0, 1, reg(0)?, 0))
            } else {
                let (off, rs1) = parse_mem(op(1)?, line)?;
                one(enc_i(0x67, 0, reg(0)?, rs1, off))
            }
        }
        "ret" => one(enc_i(0x67, 0, 0, 1, 0)),
        "ecall" => one(0x0000_0073),
        "ebreak" => one(0x0010_0073),
        "fence" => one(0x0000_000F),
        // Performance-counter pseudo-instructions (CSRRS rd, csr, x0).
        "rdcycle" => one(0xC00 << 20 | 0b010 << 12 | reg(0)? << 7 | 0x73),
        "rdcycleh" => one(0xC80 << 20 | 0b010 << 12 | reg(0)? << 7 | 0x73),
        "rdinstret" => one(0xC02 << 20 | 0b010 << 12 | reg(0)? << 7 | 0x73),
        // CSR pseudo-instructions and machine-mode control.
        "csrw" => {
            let csr = parse_csr(op(0)?, line)?;
            one(csr << 20 | reg(1)? << 15 | 0b001 << 12 | 0x73)
        }
        "csrr" => {
            let csr = parse_csr(op(1)?, line)?;
            one(csr << 20 | 0b010 << 12 | reg(0)? << 7 | 0x73)
        }
        "csrs" => {
            let csr = parse_csr(op(0)?, line)?;
            one(csr << 20 | reg(1)? << 15 | 0b010 << 12 | 0x73)
        }
        "mret" => one(0x3020_0073),
        "wfi" => one(0x1050_0073),
        _ => Err(err(format!("unknown mnemonic {m}"))),
    }
}

fn enc_i(opcode: u32, f3: u32, rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32) << 20) | rs1 << 15 | f3 << 12 | rd << 7 | opcode
}

fn enc_b(f3: u32, rs1: u32, rs2: u32, off: i32) -> u32 {
    let u = off as u32;
    ((u >> 12) & 1) << 31
        | ((u >> 5) & 0x3F) << 25
        | rs2 << 20
        | rs1 << 15
        | f3 << 12
        | ((u >> 1) & 0xF) << 8
        | ((u >> 11) & 1) << 7
        | 0x63
}

fn enc_j(rd: u32, off: i32, line: usize) -> Result<u32, AsmError> {
    if off % 2 != 0 || !(-(1 << 20)..(1 << 20)).contains(&off) {
        return Err(AsmError {
            line,
            message: format!("jump offset {off} out of range"),
        });
    }
    let u = off as u32;
    Ok(((u >> 20) & 1) << 31
        | ((u >> 1) & 0x3FF) << 21
        | ((u >> 11) & 1) << 20
        | ((u >> 12) & 0xFF) << 12
        | rd << 7
        | 0x6F)
}

fn fits_i12(v: i64) -> bool {
    (-2048..2048).contains(&v)
}

/// `off(reg)` memory operand.
fn parse_mem(s: &str, line: usize) -> Result<(i32, u32), AsmError> {
    let err = |m: String| AsmError { line, message: m };
    let open = s
        .find('(')
        .ok_or_else(|| err(format!("expected off(reg), got {s}")))?;
    if !s.ends_with(')') {
        return Err(err(format!("expected off(reg), got {s}")));
    }
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str, line)?
    };
    if !fits_i12(off) {
        return Err(err(format!("memory offset {off} out of range")));
    }
    let r = parse_reg(s[open + 1..s.len() - 1].trim(), line)?;
    Ok((off as i32, r))
}

/// CSR operand: a known name or a numeric value.
fn parse_csr(s: &str, line: usize) -> Result<u32, AsmError> {
    let named = match s {
        "mstatus" => Some(0x300),
        "mie" => Some(0x304),
        "mtvec" => Some(0x305),
        "mepc" => Some(0x341),
        "mcause" => Some(0x342),
        "cycle" => Some(0xC00),
        "instret" => Some(0xC02),
        _ => None,
    };
    if let Some(v) = named {
        return Ok(v);
    }
    parse_imm(s, line)
        .ok()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(AsmError {
            line,
            message: format!("unknown CSR {s}"),
        })
}

fn parse_reg(s: &str, line: usize) -> Result<u32, AsmError> {
    const ABI: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('x') {
        if let Ok(n) = rest.parse::<u32>() {
            if n < 32 {
                return Ok(n);
            }
        }
    }
    if s == "fp" {
        return Ok(8);
    }
    if let Some(i) = ABI.iter().position(|&a| a == s) {
        return Ok(i as u32);
    }
    Err(AsmError {
        line,
        message: format!("unknown register {s}"),
    })
}

fn parse_imm(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| AsmError {
        line,
        message: format!("bad immediate {s}"),
    })?;
    Ok(if neg { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_words() {
        // Cross-checked against the standard encodings.
        assert_eq!(assemble(0, "nop").unwrap(), vec![0x0000_0013]);
        assert_eq!(assemble(0, "ebreak").unwrap(), vec![0x0010_0073]);
        assert_eq!(assemble(0, "ecall").unwrap(), vec![0x0000_0073]);
        assert_eq!(assemble(0, "addi a0, zero, 1").unwrap(), vec![0x0010_0513]);
        assert_eq!(assemble(0, "add a0, a1, a2").unwrap(), vec![0x00C5_8533]);
        assert_eq!(assemble(0, "lw t0, 8(sp)").unwrap(), vec![0x0081_2283]);
        assert_eq!(assemble(0, "sw t0, 8(sp)").unwrap(), vec![0x0051_2423]);
        assert_eq!(assemble(0, "ret").unwrap(), vec![0x0000_8067]);
    }

    #[test]
    fn li_expansion() {
        // Small immediates: one addi.
        assert_eq!(assemble(0, "li a0, 5").unwrap().len(), 1);
        // Page-aligned: one lui.
        assert_eq!(assemble(0, "li a0, 0x10000000").unwrap().len(), 1);
        // General 32-bit: lui + addi.
        let words = assemble(0, "li a0, 0x12345678").unwrap();
        assert_eq!(words.len(), 2);
        // Negative low part needs the +1 carry in lui.
        let words = assemble(0, "li a0, 0x12345FFF").unwrap();
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn labels_and_branches() {
        let words = assemble(
            0x100,
            "
            li   t0, 3
        loop:
            addi t0, t0, -1
            bnez t0, loop
            j    end
            nop
        end:
            ebreak
        ",
        )
        .unwrap();
        assert_eq!(words.len(), 6);
    }

    #[test]
    fn word_directive() {
        assert_eq!(
            assemble(0, ".word 0xDEADBEEF, 1, -1").unwrap(),
            vec![0xDEAD_BEEF, 1, 0xFFFF_FFFF]
        );
    }

    #[test]
    fn error_reporting() {
        let e = assemble(0, "frobnicate a0").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
        assert_eq!(e.line, 1);
        assert!(
            assemble(0, "addi a0, a0, 5000").is_err(),
            "imm out of range"
        );
        assert!(assemble(0, "beq a0, a1, nowhere").is_err(), "unknown label");
        assert!(assemble(0, "x: nop\nx: nop").is_err(), "duplicate label");
        assert!(assemble(0, "lw a0, a1").is_err(), "bad mem operand");
    }

    #[test]
    fn comments_ignored() {
        let words = assemble(0, "# full line\n nop # trailing\n ; semicolon style\n").unwrap();
        assert_eq!(words.len(), 1);
    }

    #[test]
    fn abi_and_numeric_registers_agree() {
        assert_eq!(
            assemble(0, "add x10, x11, x12").unwrap(),
            assemble(0, "add a0, a1, a2").unwrap()
        );
        assert_eq!(
            assemble(0, "add s0, s0, s0").unwrap(),
            assemble(0, "add fp, fp, fp").unwrap()
        );
    }

    /// The assembler's encodings must round-trip through the CPU decoder:
    /// assemble a program, run it, check the result.
    #[test]
    fn assembled_program_runs_on_the_core() {
        use crate::rv32::{AccessWidth, Bus, Cpu, Trap};
        struct Ram(Vec<u8>);
        impl Bus for Ram {
            fn read(&mut self, addr: u32, width: AccessWidth) -> Result<u32, Trap> {
                let a = addr as usize;
                Ok(match width {
                    AccessWidth::Byte => u32::from(self.0[a]),
                    AccessWidth::Half => u32::from(self.0[a]) | u32::from(self.0[a + 1]) << 8,
                    AccessWidth::Word => {
                        u32::from_le_bytes([self.0[a], self.0[a + 1], self.0[a + 2], self.0[a + 3]])
                    }
                })
            }
            fn write(&mut self, addr: u32, v: u32, width: AccessWidth) -> Result<(), Trap> {
                let a = addr as usize;
                match width {
                    AccessWidth::Byte => self.0[a] = v as u8,
                    AccessWidth::Half => {
                        self.0[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes())
                    }
                    AccessWidth::Word => self.0[a..a + 4].copy_from_slice(&v.to_le_bytes()),
                }
                Ok(())
            }
        }
        // Compute 10! iteratively.
        let words = assemble(
            0,
            "
            li   a0, 1      # acc
            li   t0, 10     # n
        fact:
            mul  a0, a0, t0
            addi t0, t0, -1
            bnez t0, fact
            ebreak
        ",
        )
        .unwrap();
        let mut mem = vec![0u8; 4096];
        for (i, w) in words.iter().enumerate() {
            mem[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        let mut cpu = Cpu::new(0);
        let mut ram = Ram(mem);
        loop {
            match cpu.step(&mut ram) {
                Ok(()) => {}
                Err(Trap::Ebreak) => break,
                Err(t) => panic!("trap: {t}"),
            }
        }
        assert_eq!(cpu.reg(10), 3_628_800);
    }
}
