//! Firmware for driving the PASTA peripheral, and a high-level harness
//! that measures the paper's Tab. II "RISC-V" column.
//!
//! The driver program loads the key and nonce into the peripheral's
//! registers, points it at the plaintext buffer, starts it, polls STATUS
//! until DONE and halts. The harness assembles it, lays out the data
//! sections, runs the SoC and verifies the ciphertext against the
//! software cipher.

use crate::asm::{assemble, AsmError};
use crate::bus::PASTA_BASE;
use crate::soc::{RunOutcome, Soc};
use pasta_core::{PastaError, PastaParams, SecretKey};

/// Memory layout used by the bundled driver.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// Where the program is loaded.
    pub text: u32,
    /// Key elements as (lo, hi) u32 pairs.
    pub key: u32,
    /// Nonce as four u32 words.
    pub nonce: u32,
    /// Plaintext elements (u32 each).
    pub src: u32,
    /// Ciphertext destination (u32 each).
    pub dst: u32,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            text: 0x0000,
            key: 0x4000,
            nonce: 0x4800,
            src: 0x5000,
            dst: 0xA000,
        }
    }
}

/// Generates the driver program for `n_key_elements` and `n_elements`.
#[must_use]
pub fn driver_source(layout: &Layout, n_key_elements: usize, n_elements: usize) -> String {
    format!(
        "
        li   s0, {base}          # peripheral base
        # --- load key: {nk} (lo, hi) pairs ---
        li   t0, {key}
        li   t1, {nk}
        sw   zero, 0x24(s0)      # KEY_IDX = 0
    key_loop:
        lw   t2, 0(t0)
        sw   t2, 0x28(s0)        # KEY_LO
        lw   t2, 4(t0)
        sw   t2, 0x2C(s0)        # KEY_HI commits
        addi t0, t0, 8
        addi t1, t1, -1
        bnez t1, key_loop
        # --- nonce ---
        li   t0, {nonce}
        lw   t2, 0(t0)
        sw   t2, 0x14(s0)
        lw   t2, 4(t0)
        sw   t2, 0x18(s0)
        lw   t2, 8(t0)
        sw   t2, 0x1C(s0)
        lw   t2, 12(t0)
        sw   t2, 0x20(s0)
        # --- job configuration ---
        li   t0, {src}
        sw   t0, 0x08(s0)        # SRC
        li   t0, {dst}
        sw   t0, 0x0C(s0)        # DST
        li   t0, {nel}
        sw   t0, 0x10(s0)        # NELEMS
        # --- start and poll ---
        li   t0, 1
        sw   t0, 0x00(s0)        # CTRL.start
    poll:
        lw   t0, 0x04(s0)        # STATUS
        addi t1, t0, -2          # DONE?
        beqz t1, done
        addi t1, t0, -4          # ERROR?
        beqz t1, fail
        j    poll
    done:
        lw   a0, 0x30(s0)        # accelerator cycles -> a0
        li   a1, 0
        ebreak
    fail:
        li   a0, -1
        li   a1, 1
        ebreak
        ",
        base = PASTA_BASE,
        key = layout.key,
        nonce = layout.nonce,
        src = layout.src,
        dst = layout.dst,
        nk = n_key_elements,
        nel = n_elements,
    )
}

/// Result of one firmware-driven encryption run.
#[derive(Debug, Clone)]
pub struct SocEncryption {
    /// The ciphertext elements read back from RAM.
    pub ciphertext: Vec<u64>,
    /// Total SoC cycles (core setup + polling until DONE).
    pub soc_cycles: u64,
    /// Accelerator-only cycles reported by the peripheral.
    pub accelerator_cycles: u64,
    /// Wall-clock at 100 MHz in µs.
    pub micros: f64,
}

/// Errors from the firmware harness.
#[derive(Debug)]
pub enum FirmwareError {
    /// The driver failed to assemble (a bug in the generator).
    Asm(AsmError),
    /// The PASTA inputs were invalid.
    Pasta(PastaError),
    /// The SoC trapped or reported failure.
    Run(String),
}

impl std::fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FirmwareError::Asm(e) => write!(f, "assembly error: {e}"),
            FirmwareError::Pasta(e) => write!(f, "pasta error: {e}"),
            FirmwareError::Run(m) => write!(f, "run error: {m}"),
        }
    }
}

impl std::error::Error for FirmwareError {}

impl From<AsmError> for FirmwareError {
    fn from(e: AsmError) -> Self {
        FirmwareError::Asm(e)
    }
}

impl From<PastaError> for FirmwareError {
    fn from(e: PastaError) -> Self {
        FirmwareError::Pasta(e)
    }
}

/// Runs a complete firmware-driven encryption on the SoC and returns the
/// measured latencies (the Tab. II "RISC-V" methodology).
///
/// # Errors
///
/// Returns [`FirmwareError`] on invalid inputs or SoC failure.
pub fn encrypt_on_soc(
    params: PastaParams,
    key: &SecretKey,
    nonce: u128,
    message: &[u64],
) -> Result<SocEncryption, FirmwareError> {
    let layout = Layout::default();
    let source = driver_source(&layout, params.state_size(), message.len());
    let program = assemble(layout.text, &source)?;

    let ram_size = 1 << 20;
    let mut soc = Soc::new(params, ram_size);
    soc.load_program(layout.text, &program);

    // Key as (lo, hi) pairs.
    let key_words: Vec<u32> = key
        .expose_elements()
        .iter()
        .flat_map(|&k| [k as u32, (k >> 32) as u32])
        .collect();
    soc.write_words(layout.key, &key_words);
    // Nonce as four words.
    let nonce_words: Vec<u32> = (0..4).map(|i| (nonce >> (32 * i)) as u32).collect();
    soc.write_words(layout.nonce, &nonce_words);
    // Plaintext elements.
    let msg_words: Vec<u32> = message.iter().map(|&m| m as u32).collect();
    soc.write_words(layout.src, &msg_words);

    let blocks = message.len().div_ceil(params.t()).max(1) as u64;
    let budget = 200_000 + blocks * 50_000;
    match soc.run(budget) {
        Ok(RunOutcome::Halted) => {}
        Ok(other) => return Err(FirmwareError::Run(format!("unexpected outcome {other:?}"))),
        Err(t) => return Err(FirmwareError::Run(format!("trap: {t}"))),
    }
    if soc.cpu().reg(11) != 0 {
        return Err(FirmwareError::Run(
            "firmware reported peripheral error".into(),
        ));
    }
    let ciphertext = soc
        .read_words(layout.dst, message.len())
        .into_iter()
        .map(u64::from)
        .collect();
    Ok(SocEncryption {
        ciphertext,
        soc_cycles: soc.cycles(),
        accelerator_cycles: u64::from(soc.cpu().reg(10)),
        micros: soc.micros(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::PastaCipher;

    #[test]
    fn firmware_encryption_matches_software() {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"fw");
        let message: Vec<u64> = (0..32u64).map(|i| i * 1_999 % 65_537).collect();
        let run = encrypt_on_soc(params, &key, 0xFACE_F00D, &message).unwrap();
        let sw = PastaCipher::new(params, key)
            .encrypt(0xFACE_F00D, &message)
            .unwrap();
        assert_eq!(run.ciphertext, sw.elements());
    }

    #[test]
    fn soc_latency_near_table2() {
        // Tab. II: PASTA-4 RISC-V = 15.9 µs (accelerator cycles at
        // 100 MHz). The full-SoC number adds driver setup + polling.
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"lat");
        let message: Vec<u64> = (0..32).collect();
        let run = encrypt_on_soc(params, &key, 0x7AB2, &message).unwrap();
        let accel_us = run.accelerator_cycles as f64 / 100.0;
        assert!(
            (accel_us - 15.9).abs() / 15.9 < 0.10,
            "accelerator latency {accel_us} µs vs paper 15.9 µs"
        );
        assert!(
            run.soc_cycles > run.accelerator_cycles,
            "SoC adds driver overhead"
        );
        let overhead = run.soc_cycles - run.accelerator_cycles;
        assert!(
            overhead < 3_000,
            "driver overhead {overhead} cycles should be small"
        );
    }

    #[test]
    fn multi_block_scales_linearly() {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"mb");
        let m1: Vec<u64> = (0..32).collect();
        let m4: Vec<u64> = (0..128).collect();
        let r1 = encrypt_on_soc(params, &key, 1, &m1).unwrap();
        let r4 = encrypt_on_soc(params, &key, 1, &m4).unwrap();
        let ratio = r4.accelerator_cycles as f64 / r1.accelerator_cycles as f64;
        assert!(
            (3.5..4.5).contains(&ratio),
            "4 blocks should be ≈4×, got {ratio}"
        );
        // And the 4-block ciphertext's first block matches the 1-block run.
        assert_eq!(&r4.ciphertext[..32], &r1.ciphertext[..]);
    }

    #[test]
    fn pasta3_on_soc() {
        let params = PastaParams::pasta3_17bit();
        let key = SecretKey::from_seed(&params, b"p3");
        let message: Vec<u64> = (0..128).collect();
        let run = encrypt_on_soc(params, &key, 2, &message).unwrap();
        let sw = PastaCipher::new(params, key).encrypt(2, &message).unwrap();
        assert_eq!(run.ciphertext, sw.elements());
        // Tab. II: ≈4,955 cc + bus transfers at 100 MHz ≈ 50 µs (the
        // paper prints 45.5 µs; see EXPERIMENTS.md for the discrepancy).
        let accel_us = run.accelerator_cycles as f64 / 100.0;
        assert!(
            (45.0..56.0).contains(&accel_us),
            "PASTA-3 SoC latency {accel_us} µs"
        );
    }

    #[test]
    fn partial_block_on_soc() {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"pb");
        let message = vec![7u64, 8, 9];
        let run = encrypt_on_soc(params, &key, 3, &message).unwrap();
        let sw = PastaCipher::new(params, key).encrypt(3, &message).unwrap();
        assert_eq!(run.ciphertext, sw.elements());
    }

    #[test]
    fn interrupt_driven_driver() {
        // Instead of polling STATUS, the firmware parks in wfi; the
        // peripheral's DONE level wakes it through the machine external
        // interrupt, and the handler acknowledges and records the result.
        use crate::asm::assemble;
        use crate::soc::{RunOutcome, Soc};
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"irq");
        let layout = Layout::default();
        // Handler at a fixed address past the main program.
        let source = format!(
            "
            li   s0, {base}
            # --- key ---
            li   t0, {key}
            li   t1, {nk}
            sw   zero, 0x24(s0)
        key_loop:
            lw   t2, 0(t0)
            sw   t2, 0x28(s0)
            lw   t2, 4(t0)
            sw   t2, 0x2C(s0)
            addi t0, t0, 8
            addi t1, t1, -1
            bnez t1, key_loop
            # --- nonce (low word only) + job ---
            li   t0, 77
            sw   t0, 0x14(s0)
            sw   zero, 0x18(s0)
            sw   zero, 0x1C(s0)
            sw   zero, 0x20(s0)
            li   t0, {src}
            sw   t0, 0x08(s0)
            li   t0, {dst}
            sw   t0, 0x0C(s0)
            li   t0, 32
            sw   t0, 0x10(s0)
            # --- interrupt setup ---
            li   t3, 0x200    # handler address (loaded separately below)
            csrw mtvec, t3
            li   t1, 2048     # mie.MEIE (bit 11)
            csrw mie, t1
            li   t2, 8        # mstatus.MIE (bit 3)
            csrw mstatus, t2
            # --- start and wait ---
            li   t0, 1
            sw   t0, 0x00(s0)
        idle:
            wfi
            beqz a5, idle     # a5 set by the handler
            ebreak
            ",
            base = crate::bus::PASTA_BASE,
            key = layout.key,
            src = layout.src,
            dst = layout.dst,
            nk = params.state_size(),
        );
        let handler = "
            lw   a0, 0x30(s0)    # accelerator cycles
            li   t0, 2
            sw   t0, 0x00(s0)    # CTRL.ack: clear DONE (deassert IRQ)
            li   a5, 1           # signal the main loop
            mret
        ";
        let program = assemble(layout.text, &source).unwrap();
        assert!(
            4 * program.len() < 0x200,
            "main program must fit below the handler"
        );
        let handler_words = assemble(0x200, handler).unwrap();

        let mut soc = Soc::new(params, 1 << 20);
        soc.load_program(layout.text, &program);
        soc.load_program(0x200, &handler_words);
        let key_words: Vec<u32> = key
            .expose_elements()
            .iter()
            .flat_map(|&k| [k as u32, (k >> 32) as u32])
            .collect();
        soc.write_words(layout.key, &key_words);
        let msg: Vec<u32> = (0..32).collect();
        soc.write_words(layout.src, &msg);

        assert_eq!(soc.run(1_000_000).unwrap(), RunOutcome::Halted);
        // The handler ran: a5 = 1, a0 holds the accelerator cycle count,
        // and mcause records the machine external interrupt.
        assert_eq!(
            soc.cpu().reg(15),
            1,
            "handler must have signalled completion"
        );
        assert!(
            soc.cpu().reg(10) > 1_500,
            "cycles reported: {}",
            soc.cpu().reg(10)
        );
        assert_eq!(soc.cpu().csrs().mcause, 0x8000_000B);
        // Ciphertext landed in RAM and matches software.
        let sw = PastaCipher::new(params, key)
            .encrypt(77, &msg.iter().map(|&m| u64::from(m)).collect::<Vec<_>>())
            .unwrap();
        let got = soc.read_words(layout.dst, 32);
        for (i, &c) in sw.elements().iter().enumerate() {
            assert_eq!(u64::from(got[i]), c, "element {i}");
        }
    }

    #[test]
    fn firmware_self_measures_latency_with_rdcycle() {
        // Firmware brackets the start+poll window with rdcycle and
        // reports its own measurement — which must agree with the
        // harness's accounting.
        use crate::asm::assemble;
        use crate::bus::PASTA_BASE;
        use crate::soc::{RunOutcome, Soc};
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"rdcycle");
        let layout = Layout::default();
        let mut source = driver_source(&layout, params.state_size(), 32);
        // Wrap the CTRL.start + polling section: patch the generated
        // driver by prepending a timestamp before start and replacing the
        // done path.
        source = source.replace(
            "        li   t0, 1\n        sw   t0, 0x00(s0)        # CTRL.start",
            "        rdcycle s2\n        li   t0, 1\n        sw   t0, 0x00(s0)        # CTRL.start",
        );
        source = source.replace(
            "        lw   a0, 0x30(s0)        # accelerator cycles -> a0",
            "        rdcycle s3\n        sub  a0, s3, s2          # self-measured cycles",
        );
        let program = assemble(layout.text, &source).unwrap();
        let mut soc = Soc::new(params, 1 << 20);
        soc.load_program(layout.text, &program);
        let key_words: Vec<u32> = key
            .expose_elements()
            .iter()
            .flat_map(|&k| [k as u32, (k >> 32) as u32])
            .collect();
        soc.write_words(layout.key, &key_words);
        soc.write_words(layout.nonce, &[1, 0, 0, 0]);
        let msg: Vec<u32> = (0..32).collect();
        soc.write_words(layout.src, &msg);
        assert_eq!(soc.run(1_000_000).unwrap(), RunOutcome::Halted);
        assert_eq!(soc.cpu().reg(11), 0, "peripheral must not error");
        let self_measured = u64::from(soc.cpu().reg(10));
        // Self-measured window = accelerator latency + a few polling
        // instructions of slack.
        let accel = u64::from(soc.bus().pasta.read_reg(0x30, u64::MAX));
        let _ = PASTA_BASE; // (register window base, for reference)
        assert!(
            self_measured >= accel && self_measured < accel + 50,
            "self-measured {self_measured} vs accelerator {accel}"
        );
    }

    #[test]
    fn driver_reports_peripheral_error() {
        // An out-of-range plaintext element must surface as an error.
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"err");
        let layout = Layout::default();
        let source = driver_source(&layout, params.state_size(), 1);
        let program = assemble(layout.text, &source).unwrap();
        let mut soc = Soc::new(params, 1 << 20);
        soc.load_program(layout.text, &program);
        let key_words: Vec<u32> = key
            .expose_elements()
            .iter()
            .flat_map(|&k| [k as u32, (k >> 32) as u32])
            .collect();
        soc.write_words(layout.key, &key_words);
        soc.write_words(layout.nonce, &[0, 0, 0, 0]);
        soc.write_words(layout.src, &[70_000]); // >= p
        assert_eq!(soc.run(100_000).unwrap(), RunOutcome::Halted);
        assert_eq!(soc.cpu().reg(11), 1, "firmware must take the fail path");
    }
}
