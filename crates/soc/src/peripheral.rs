//! The memory-mapped PASTA accelerator peripheral (paper §IV.A ❸).
//!
//! The peripheral hangs off the core's data bus as a *slave* (control and
//! status registers, key/nonce loading) and owns a *master* port to RAM
//! through which it fetches plaintext elements and writes back ciphertext
//! (the "loosely coupled design" with direct read access of the paper).
//! Because the single data bus serializes everything, "the processing of
//! one block must be completed before the next block can be started" —
//! the latency model reflects exactly that: per block, the accelerator
//! cycle count (from the cycle-accurate `pasta-hw` model) plus one bus
//! transfer per element in and out.
//!
//! ## Register map (offsets from the peripheral base)
//!
//! | offset | name      | access | function                                   |
//! |--------|-----------|--------|--------------------------------------------|
//! | 0x00   | CTRL      | W      | write 1 to start                           |
//! | 0x04   | STATUS    | R      | 0 idle, 1 busy, 2 done, 4 error            |
//! | 0x08   | SRC       | W      | RAM address of plaintext (u32 per element) |
//! | 0x0C   | DST       | W      | RAM address for ciphertext                 |
//! | 0x10   | NELEMS    | W      | number of elements                         |
//! | 0x14   | NONCE0    | W      | nonce bits 31:0                            |
//! | 0x18   | NONCE1    | W      | nonce bits 63:32                           |
//! | 0x1C   | NONCE2    | W      | nonce bits 95:64                           |
//! | 0x20   | NONCE3    | W      | nonce bits 127:96                          |
//! | 0x24   | KEY_IDX   | W      | index of the next key element              |
//! | 0x28   | KEY_LO    | W      | key element bits 31:0                      |
//! | 0x2C   | KEY_HI    | W      | bits 63:32; commits element, bumps KEY_IDX |
//! | 0x30   | CYCLES_LO | R      | accelerator cycles of the last run         |
//! | 0x34   | CYCLES_HI | R      | —                                          |
//! | 0x38   | BLOCKS    | R      | blocks processed in the last run           |

use pasta_core::{PastaParams, SecretKey};
use pasta_hw::PastaProcessor;

/// Bus-transfer overhead per element moved over the shared data bus
/// (one read of the plaintext word, one write of the ciphertext word).
pub const BUS_CYCLES_PER_ELEMENT: u64 = 2;
/// Fixed per-block handshake overhead (address setup, start/ack).
pub const BLOCK_SETUP_CYCLES: u64 = 8;

/// STATUS register values.
pub mod status {
    /// Nothing started yet.
    pub const IDLE: u32 = 0;
    /// A run is in progress.
    pub const BUSY: u32 = 1;
    /// The last run completed.
    pub const DONE: u32 = 2;
    /// The last start was rejected (bad key/config).
    pub const ERROR: u32 = 4;
}

/// What a register write asks the SoC to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeripheralAction {
    /// Nothing; the write only updated state.
    None,
    /// CTRL start was written: the SoC must run the DMA job.
    Start,
}

/// The PASTA peripheral state.
#[derive(Debug, Clone)]
pub struct PastaPeripheral {
    params: PastaParams,
    processor: PastaProcessor,
    src: u32,
    dst: u32,
    nelems: u32,
    nonce: [u32; 4],
    key_idx: u32,
    key_lo: u32,
    key: Vec<u64>,
    status: u32,
    /// Absolute cycle at which the current run completes.
    done_at: u64,
    last_cycles: u64,
    last_blocks: u32,
}

impl PastaPeripheral {
    /// Creates a peripheral for a PASTA parameter set.
    #[must_use]
    pub fn new(params: PastaParams) -> Self {
        PastaPeripheral {
            params,
            processor: PastaProcessor::new(params),
            src: 0,
            dst: 0,
            nelems: 0,
            nonce: [0; 4],
            key_idx: 0,
            key_lo: 0,
            key: vec![0; params.state_size()],
            status: status::IDLE,
            done_at: 0,
            last_cycles: 0,
            last_blocks: 0,
        }
    }

    /// The parameter set the peripheral is configured for.
    #[must_use]
    pub fn params(&self) -> &PastaParams {
        &self.params
    }

    /// Level of the interrupt line at absolute cycle `now` (high while
    /// STATUS reads DONE, until acknowledged via CTRL bit 1).
    #[must_use]
    pub fn irq_level(&self, now: u64) -> bool {
        self.read_reg(0x04, now) == status::DONE
    }

    /// Slave register read at word `offset`, at absolute cycle `now`.
    #[must_use]
    pub fn read_reg(&self, offset: u32, now: u64) -> u32 {
        match offset {
            0x04 => {
                if self.status == status::BUSY && now >= self.done_at {
                    status::DONE
                } else {
                    self.status
                }
            }
            0x30 => self.last_cycles as u32,
            0x34 => (self.last_cycles >> 32) as u32,
            0x38 => self.last_blocks,
            _ => 0,
        }
    }

    /// Slave register write at word `offset`.
    #[must_use]
    pub fn write_reg(&mut self, offset: u32, value: u32) -> PeripheralAction {
        match offset {
            0x00 if value & 1 == 1 => return PeripheralAction::Start,
            // CTRL bit 1: acknowledge/clear (deasserts the DONE level,
            // i.e. the interrupt line).
            0x00 if value & 2 == 2 => self.status = status::IDLE,
            0x08 => self.src = value,
            0x0C => self.dst = value,
            0x10 => self.nelems = value,
            0x14..=0x20 => self.nonce[((offset - 0x14) / 4) as usize] = value,
            0x24 => self.key_idx = value,
            0x28 => self.key_lo = value,
            0x2C => {
                let element = u64::from(self.key_lo) | u64::from(value) << 32;
                if (self.key_idx as usize) < self.key.len() {
                    self.key[self.key_idx as usize] = element;
                    self.key_idx += 1;
                }
            }
            _ => {}
        }
        PeripheralAction::None
    }

    /// The assembled nonce.
    #[must_use]
    pub fn nonce(&self) -> u128 {
        u128::from(self.nonce[0])
            | u128::from(self.nonce[1]) << 32
            | u128::from(self.nonce[2]) << 64
            | u128::from(self.nonce[3]) << 96
    }

    /// Executes the DMA job (called by the SoC when CTRL start fires).
    ///
    /// `read_elem`/`write_elem` are the master-port accessors into RAM
    /// (u32 per field element). Returns the number of cycles the run
    /// occupies; STATUS reads as BUSY until `now + cycles`.
    pub fn start<RE, WE>(&mut self, now: u64, mut read_elem: RE, mut write_elem: WE) -> u64
    where
        RE: FnMut(u32) -> Option<u32>,
        WE: FnMut(u32, u32) -> bool,
    {
        let key = match SecretKey::from_elements(&self.params, self.key.clone()) {
            Ok(k) => k,
            Err(_) => {
                self.status = status::ERROR;
                return 0;
            }
        };
        let t = self.params.t();
        let nonce = self.nonce();
        let mut total_cycles = 0u64;
        let mut blocks = 0u32;
        let nelems = self.nelems as usize;
        let p = self.params.modulus().value();
        let mut ok = true;
        'blocks: for (counter, start) in (0..nelems).step_by(t).enumerate() {
            let len = t.min(nelems - start);
            let mut message = Vec::with_capacity(len);
            for i in 0..len {
                match read_elem(self.src + 4 * (start + i) as u32) {
                    Some(v) if u64::from(v) < p => message.push(u64::from(v)),
                    _ => {
                        ok = false;
                        break 'blocks;
                    }
                }
            }
            let result = match self
                .processor
                .encrypt_block(&key, nonce, counter as u64, &message)
            {
                Ok(r) => r,
                Err(_) => {
                    ok = false;
                    break;
                }
            };
            let ct = result.ciphertext.expect("message was supplied");
            for (i, &c) in ct.iter().enumerate() {
                if !write_elem(self.dst + 4 * (start + i) as u32, c as u32) {
                    ok = false;
                    break 'blocks;
                }
            }
            // Single shared bus: accelerator compute + element transfers
            // are fully serialized per block (§IV.A ❸).
            total_cycles +=
                result.cycles.total + BUS_CYCLES_PER_ELEMENT * len as u64 + BLOCK_SETUP_CYCLES;
            blocks += 1;
        }
        if !ok {
            self.status = status::ERROR;
            return 0;
        }
        self.status = status::BUSY;
        self.done_at = now + total_cycles;
        self.last_cycles = total_cycles;
        self.last_blocks = blocks;
        total_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::{PastaCipher, PastaParams};
    use std::collections::HashMap;

    fn load_key(p: &mut PastaPeripheral, key: &[u64]) {
        let _ = p.write_reg(0x24, 0);
        for &k in key {
            let _ = p.write_reg(0x28, k as u32);
            let _ = p.write_reg(0x2C, (k >> 32) as u32);
        }
    }

    #[test]
    fn register_interface_and_encryption_match_software() {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"periph");
        let mut p = PastaPeripheral::new(params);
        load_key(&mut p, key.expose_elements());
        let _ = p.write_reg(0x14, 0xDEAD_BEEF);
        let _ = p.write_reg(0x18, 0x0000_CAFE);
        assert_eq!(p.nonce(), 0x0000_CAFE_DEAD_BEEF);
        let _ = p.write_reg(0x08, 0x100);
        let _ = p.write_reg(0x0C, 0x800);
        let _ = p.write_reg(0x10, 32);
        assert_eq!(p.write_reg(0x00, 1), PeripheralAction::Start);

        let mut ram: HashMap<u32, u32> = HashMap::new();
        let message: Vec<u64> = (0..32u64).map(|i| i * 321 % 65_537).collect();
        for (i, &m) in message.iter().enumerate() {
            ram.insert(0x100 + 4 * i as u32, m as u32);
        }
        let ram_cell = std::cell::RefCell::new(ram);
        let cycles = p.start(
            1_000,
            |addr| ram_cell.borrow().get(&addr).copied(),
            |addr, v| {
                ram_cell.borrow_mut().insert(addr, v);
                true
            },
        );
        assert!(
            cycles > 1_500,
            "one PASTA-4 block is >1,500 cycles, got {cycles}"
        );
        // Busy until done_at, done afterwards.
        assert_eq!(p.read_reg(0x04, 1_000), status::BUSY);
        assert_eq!(p.read_reg(0x04, 1_000 + cycles), status::DONE);
        // Ciphertext matches the software cipher.
        let sw = PastaCipher::new(params, key)
            .encrypt(0x0000_CAFE_DEAD_BEEF, &message)
            .unwrap();
        let ram = ram_cell.borrow();
        for (i, &c) in sw.elements().iter().enumerate() {
            assert_eq!(ram.get(&(0x800 + 4 * i as u32)).copied(), Some(c as u32));
        }
        assert_eq!(p.read_reg(0x38, 2_000 + cycles), 1);
        assert_eq!(u64::from(p.read_reg(0x30, 0)), cycles);
    }

    #[test]
    fn multi_block_latency_is_serialized() {
        // §IV.A ❸: one block must complete before the next starts — the
        // two-block latency must be at least twice the single-block one.
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"serial");
        let run = |nelems: u32| -> u64 {
            let mut p = PastaPeripheral::new(params);
            load_key(&mut p, key.expose_elements());
            let _ = p.write_reg(0x10, nelems);
            p.start(0, |_| Some(1), |_, _| true)
        };
        let one = run(32);
        let two = run(64);
        assert!(two >= 2 * one - 200, "two-block {two} vs single {one}");
    }

    #[test]
    fn bad_key_sets_error() {
        let params = PastaParams::pasta4_17bit();
        let mut p = PastaPeripheral::new(params);
        let _ = p.write_reg(0x24, 0);
        let _ = p.write_reg(0x28, 0xFFFF_FFFF);
        let _ = p.write_reg(0x2C, 0xFFFF_FFFF); // element >= p
        let _ = p.write_reg(0x10, 4);
        let cycles = p.start(0, |_| Some(0), |_, _| true);
        assert_eq!(cycles, 0);
        assert_eq!(p.read_reg(0x04, 99), status::ERROR);
    }

    #[test]
    fn dma_fault_sets_error() {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"fault");
        let mut p = PastaPeripheral::new(params);
        load_key(&mut p, key.expose_elements());
        let _ = p.write_reg(0x10, 4);
        let cycles = p.start(0, |_| None, |_, _| true);
        assert_eq!(cycles, 0);
        assert_eq!(p.read_reg(0x04, 0), status::ERROR);
    }

    #[test]
    fn out_of_range_plaintext_rejected() {
        let params = PastaParams::pasta4_17bit();
        let key = SecretKey::from_seed(&params, b"range");
        let mut p = PastaPeripheral::new(params);
        load_key(&mut p, key.expose_elements());
        let _ = p.write_reg(0x10, 1);
        let cycles = p.start(0, |_| Some(70_000), |_, _| true);
        assert_eq!(cycles, 0);
        assert_eq!(p.read_reg(0x04, 0), status::ERROR);
    }
}
