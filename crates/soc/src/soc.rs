//! The assembled SoC: RV32IM core + system bus + PASTA peripheral.
//!
//! Mirrors the paper's 130nm/65nm SoC (§IV.A ❸): an Ibex-class core at
//! 100 MHz drives the accelerator through memory-mapped registers; the
//! peripheral masters the shared bus for its data. The simulator counts
//! cycles (CPI 1) so Tab. II's "RISC-V" column can be measured rather
//! than asserted.

use crate::bus::SystemBus;
use crate::rv32::{Cpu, Trap};
use pasta_core::PastaParams;

/// SoC clock frequency (paper §IV.A ❸: "targets 100MHz").
pub const SOC_CLOCK_MHZ: f64 = 100.0;

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Firmware executed `ebreak` (normal halt).
    Halted,
    /// Firmware executed `ecall` (exit with `a0` as code).
    Exited(u32),
    /// The step budget ran out.
    OutOfSteps,
}

/// The system-on-chip simulator.
#[derive(Debug)]
pub struct Soc {
    cpu: Cpu,
    bus: SystemBus,
}

impl Soc {
    /// Builds a SoC with `ram_size` bytes of RAM and a PASTA peripheral
    /// for `params`; reset vector is address 0.
    #[must_use]
    pub fn new(params: PastaParams, ram_size: usize) -> Self {
        Soc {
            cpu: Cpu::new(0),
            bus: SystemBus::new(params, ram_size),
        }
    }

    /// Loads instruction words at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit in RAM.
    pub fn load_program(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            assert!(
                self.bus.ram.write_u32(base + 4 * i as u32, w),
                "program does not fit in RAM"
            );
        }
    }

    /// Writes data words at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if out of RAM.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            assert!(
                self.bus.ram.write_u32(addr + 4 * i as u32, w),
                "write outside RAM"
            );
        }
    }

    /// Reads `n` data words at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if out of RAM.
    #[must_use]
    pub fn read_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| {
                self.bus
                    .ram
                    .read_u32(addr + 4 * i as u32)
                    .expect("read outside RAM")
            })
            .collect()
    }

    /// Runs until halt/exit or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Returns unexpected traps (illegal instruction, bus fault, …).
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, Trap> {
        for _ in 0..max_steps {
            self.bus.now = self.cpu.instret();
            self.cpu.set_irq(self.bus.pasta.irq_level(self.bus.now));
            match self.cpu.step(&mut self.bus) {
                Ok(()) => {}
                Err(Trap::Ebreak) => return Ok(RunOutcome::Halted),
                Err(Trap::Ecall) => return Ok(RunOutcome::Exited(self.cpu.reg(10))),
                Err(t) => return Err(t),
            }
        }
        Ok(RunOutcome::OutOfSteps)
    }

    /// Cycles elapsed (CPI 1 → retired instructions). While firmware
    /// polls the peripheral, these advance in lockstep with the
    /// accelerator's modelled latency.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cpu.instret()
    }

    /// Microseconds at the SoC clock.
    #[must_use]
    pub fn micros(&self) -> f64 {
        self.cycles() as f64 / SOC_CLOCK_MHZ
    }

    /// Captured UART output.
    #[must_use]
    pub fn uart_output(&self) -> String {
        self.bus.uart.output()
    }

    /// The CPU (for register inspection in tests).
    #[must_use]
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The bus (for device inspection in tests).
    #[must_use]
    pub fn bus(&self) -> &SystemBus {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn runs_a_program_to_halt() {
        let mut soc = Soc::new(PastaParams::pasta4_17bit(), 64 * 1024);
        let prog = assemble(
            0,
            "
            li a0, 6
            li a1, 7
            mul a0, a0, a1
            ebreak
        ",
        )
        .unwrap();
        soc.load_program(0, &prog);
        assert_eq!(soc.run(100).unwrap(), RunOutcome::Halted);
        assert_eq!(soc.cpu().reg(10), 42);
    }

    #[test]
    fn ecall_exits_with_code() {
        let mut soc = Soc::new(PastaParams::pasta4_17bit(), 64 * 1024);
        let prog = assemble(0, "li a0, 3\necall").unwrap();
        soc.load_program(0, &prog);
        assert_eq!(soc.run(100).unwrap(), RunOutcome::Exited(3));
    }

    #[test]
    fn uart_hello() {
        let mut soc = Soc::new(PastaParams::pasta4_17bit(), 64 * 1024);
        let prog = assemble(
            0,
            "
            li t0, 0x10000000
            li t1, 72     # 'H'
            sb t1, 0(t0)
            li t1, 105    # 'i'
            sb t1, 0(t0)
            ebreak
        ",
        )
        .unwrap();
        soc.load_program(0, &prog);
        soc.run(100).unwrap();
        assert_eq!(soc.uart_output(), "Hi");
    }

    #[test]
    fn out_of_steps_reported() {
        let mut soc = Soc::new(PastaParams::pasta4_17bit(), 64 * 1024);
        let prog = assemble(0, "spin: j spin").unwrap();
        soc.load_program(0, &prog);
        assert_eq!(soc.run(50).unwrap(), RunOutcome::OutOfSteps);
    }

    #[test]
    fn data_words_roundtrip() {
        let mut soc = Soc::new(PastaParams::pasta4_17bit(), 64 * 1024);
        soc.write_words(0x400, &[1, 2, 3]);
        assert_eq!(soc.read_words(0x400, 3), vec![1, 2, 3]);
    }
}
