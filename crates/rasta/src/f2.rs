//! Dense linear algebra over `F_2` (bit-packed).
//!
//! RASTA-family ciphers use *fully random* invertible `n × n` binary
//! matrices in every affine layer — in contrast to PASTA's seed-row
//! construction. Rows are packed 64 bits per limb so the matrix–vector
//! product is word-parallel AND/XOR/popcount, exactly like a hardware
//! XOR-tree datapath.

/// A bit vector of fixed length (little-endian bit order within limbs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    limbs: Vec<u64>,
}

impl BitVec {
    /// An all-zero vector of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            limbs: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds from individual bits.
    ///
    /// Branch-free: the bits may be keystream state, so each one is
    /// OR-merged into its limb instead of gating a store on its value.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.limbs[i / 64] |= u64::from(b) << (i % 64);
        }
        v
    }

    /// Builds `len` bits from a `u64` word stream (low bits first).
    #[must_use]
    pub fn from_words(len: usize, words: &[u64]) -> Self {
        assert!(words.len() >= len.div_ceil(64), "not enough words");
        let mut limbs = words[..len.div_ceil(64)].to_vec();
        let tail_bits = len % 64;
        if tail_bits != 0 {
            *limbs.last_mut().expect("len > 0") &= (1u64 << tail_bits) - 1;
        }
        BitVec { len, limbs }
    }

    /// Length in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Bit setter.
    ///
    /// Branch-free on `value` (clear the slot, then OR the bit in), so
    /// setting keystream-derived bits leaves no value-dependent trace.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index out of range");
        let limb = &mut self.limbs[i / 64];
        *limb = (*limb & !(1 << (i % 64))) | (u64::from(value) << (i % 64));
    }

    /// In-place XOR.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            *a ^= b;
        }
    }

    /// Dot product over `F_2` (AND then parity).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        let mut parity = 0u32;
        for (a, b) in self.limbs.iter().zip(other.limbs.iter()) {
            parity ^= (a & b).count_ones() & 1;
        }
        parity == 1
    }

    /// Number of set bits.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }
}

/// A dense binary matrix (row-major bit-packed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    rows: Vec<BitVec>,
}

impl BitMatrix {
    /// The `n × n` identity.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut r = BitVec::zeros(n);
            r.set(i, true);
            rows.push(r);
        }
        BitMatrix { n, rows }
    }

    /// Builds from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let n = rows.len();
        assert!(rows.iter().all(|r| r.len() == n), "matrix must be square");
        BitMatrix { n, rows }
    }

    /// Dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row accessor.
    #[must_use]
    pub fn row(&self, i: usize) -> &BitVec {
        &self.rows[i]
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn mul_vec(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let bits: Vec<bool> = self.rows.iter().map(|r| r.dot(x)).collect();
        BitVec::from_bits(&bits)
    }

    /// Rank over `F_2` by Gaussian elimination on packed rows.
    #[must_use]
    pub fn rank(&self) -> usize {
        let mut rows = self.rows.clone();
        let mut rank = 0;
        for col in 0..self.n {
            let Some(pivot) = (rank..self.n).find(|&r| rows[r].get(col)) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_assign(&pivot_row);
                }
            }
            rank += 1;
            if rank == self.n {
                break;
            }
        }
        rank
    }

    /// Whether the matrix is invertible.
    #[must_use]
    pub fn is_invertible(&self) -> bool {
        self.rank() == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bitvec_basics() {
        let mut v = BitVec::zeros(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.weight(), 0);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1));
        assert_eq!(v.weight(), 4);
        v.set(63, false);
        assert_eq!(v.weight(), 3);
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVec::from_words(65, &[u64::MAX, u64::MAX]);
        assert_eq!(v.weight(), 65, "tail bits beyond len must be cleared");
    }

    #[test]
    fn dot_is_parity_of_and() {
        let a = BitVec::from_bits(&[true, true, false, true]);
        let b = BitVec::from_bits(&[true, false, true, true]);
        // AND = 1001 -> parity 0.
        assert!(!a.dot(&b));
        let c = BitVec::from_bits(&[true, false, false, false]);
        assert!(a.dot(&c));
    }

    #[test]
    fn identity_preserves() {
        let x = BitVec::from_bits(&[true, false, true, true, false]);
        assert_eq!(BitMatrix::identity(5).mul_vec(&x), x);
        assert!(BitMatrix::identity(5).is_invertible());
    }

    #[test]
    fn rank_detects_dependence() {
        let rows = vec![
            BitVec::from_bits(&[true, false, true]),
            BitVec::from_bits(&[false, true, true]),
            BitVec::from_bits(&[true, true, false]), // = row0 + row1
        ];
        let m = BitMatrix::from_rows(rows);
        assert_eq!(m.rank(), 2);
        assert!(!m.is_invertible());
    }

    #[test]
    fn random_matrix_invertibility_rate() {
        // Over F2, a uniformly random n×n matrix is invertible with
        // probability ~28.9% (for n >= ~10): check the ballpark.
        use pasta_keccak::Shake128;
        let mut xof = Shake128::new();
        xof.absorb(b"rate test");
        let mut reader = xof.finalize();
        let n = 63;
        let mut invertible = 0;
        let trials = 200;
        for _ in 0..trials {
            let rows: Vec<BitVec> = (0..n)
                .map(|_| {
                    let words: Vec<u64> = (0..1).map(|_| reader.next_u64()).collect();
                    BitVec::from_words(n, &words)
                })
                .collect();
            if BitMatrix::from_rows(rows).is_invertible() {
                invertible += 1;
            }
        }
        let rate = f64::from(invertible) / f64::from(trials);
        assert!((rate - 0.289).abs() < 0.1, "invertibility rate {rate}");
    }

    proptest! {
        #[test]
        fn prop_matvec_linear(a in proptest::collection::vec(any::<bool>(), 32),
                              b in proptest::collection::vec(any::<bool>(), 32),
                              seed in any::<u64>()) {
            // M(a ^ b) = M(a) ^ M(b).
            use pasta_keccak::Shake128;
            let mut xof = Shake128::new();
            xof.absorb(&seed.to_le_bytes());
            let mut reader = xof.finalize();
            let rows: Vec<BitVec> =
                (0..32).map(|_| BitVec::from_words(32, &[reader.next_u64()])).collect();
            let m = BitMatrix::from_rows(rows);
            let va = BitVec::from_bits(&a);
            let vb = BitVec::from_bits(&b);
            let mut sum = va.clone();
            sum.xor_assign(&vb);
            let mut rhs = m.mul_vec(&va);
            rhs.xor_assign(&m.mul_vec(&vb));
            prop_assert_eq!(m.mul_vec(&sum), rhs);
        }
    }
}
