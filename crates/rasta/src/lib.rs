//! A RASTA-family binary HHE cipher, for the binary-vs-integer
//! comparison the PASTA-on-Edge paper motivates.
//!
//! §I of the paper traces HHE-enabling ciphers from the binary
//! generation (RASTA, FLIP, Kreyvium) to the integer generation (MASTA,
//! PASTA, HERA, RUBATO), and §VI asks what the *hardware* impact of those
//! design changes is. This crate implements the binary side — the RASTA
//! structure over `F_2^n` with fully random invertible affine layers and
//! the χ S-box — plus a hardware cost model in the same terms as the
//! PASTA cryptoprocessor, so the comparison can be run
//! (`cargo run -p pasta-bench --bin binary_vs_integer`).
//!
//! The headline the comparison surfaces: both designs are XOF-bound, but
//! RASTA's *unstructured* matrices need ≈3.5·n² uniform bits per layer
//! where PASTA's sequential construction (Eq. 1) needs only `n` field
//! elements — the single biggest reason integer HHE ciphers won.
//!
//! # Examples
//!
//! ```
//! use pasta_rasta::{RastaCipher, RastaParams};
//! use pasta_rasta::f2::BitVec;
//!
//! let params = RastaParams::toy_65();
//! let cipher = RastaCipher::from_seed(params, b"demo");
//! let data = BitVec::from_bits(&[true; 65]);
//! let ct = cipher.apply_block(1, 0, &data);
//! assert_eq!(cipher.apply_block(1, 0, &ct), data); // XOR stream: involutive
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cipher;
pub mod cost;
pub mod f2;

pub use cipher::{chi, derive_material, keystream_block, RastaCipher, RastaError, RastaParams};
