//! Hardware cost model for the binary cipher, in the same terms as the
//! PASTA cryptoprocessor — enabling the §I.A binary-vs-integer
//! comparison "post-hardware realization" (the paper's future scope).
//!
//! A RASTA-style datapath replaces modular multipliers with AND gates
//! and adder trees with XOR trees (cheap!), but the XOF demand explodes:
//! every affine layer needs `n²` *uniform* bits (times ≈3.46 for the
//! invertibility rejection), where PASTA needs `4·t` field elements per
//! layer. Since the XOF is the bottleneck in both designs (paper §IV.B),
//! the binary cipher's hardware latency is dominated by Keccak runs.

use crate::cipher::RastaParams;
use pasta_keccak::timing::{XofTiming, WORDS_PER_BATCH};
use pasta_keccak::XofCoreKind;

/// Probability that a uniform `n × n` matrix over `F_2` is invertible
/// (`∏_{k≥1} (1 − 2^{-k}) ≈ 0.2888` for moderate `n`).
pub const F2_INVERTIBLE_PROBABILITY: f64 = 0.2888;

/// Expected XOF words for one block of RASTA material.
#[must_use]
pub fn expected_xof_words(params: &RastaParams) -> f64 {
    let n = params.n() as f64;
    let words_per_row = (params.n().div_ceil(64)) as f64;
    let words_per_matrix = n * words_per_row;
    let layers = params.affine_layers() as f64;
    layers * (words_per_matrix / F2_INVERTIBLE_PROBABILITY + words_per_row)
}

/// Expected XOF cycles for one block on the squeeze-parallel core.
#[must_use]
pub fn expected_xof_cycles(params: &RastaParams) -> f64 {
    let words = expected_xof_words(params);
    let batches = words / WORDS_PER_BATCH as f64;
    batches * XofTiming::new(XofCoreKind::SqueezeParallel).cycles_per_batch() as f64
}

/// Expected cycles per *plaintext bit* — the throughput figure to put
/// against PASTA's cycles per element × bits-per-element.
#[must_use]
pub fn cycles_per_plaintext_bit(params: &RastaParams) -> f64 {
    // The XOF dominates just as in PASTA; the XOR-tree affine layer
    // (one row per cycle, as the MAC array does) hides beneath it.
    expected_xof_cycles(params) / params.n() as f64
}

/// Binary-datapath gate estimate (relative area): an `n`-wide affine row
/// evaluation is `n` AND + `n−1` XOR per cycle — tiny next to PASTA's
/// `t` modular multipliers. Returned as (and_gates, xor_gates) for the
/// row-parallel unit.
#[must_use]
pub fn affine_row_gates(params: &RastaParams) -> (usize, usize) {
    (params.n(), params.n() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::derive_material;

    #[test]
    fn expected_words_match_measured() {
        let params = RastaParams::toy_65();
        let expected = expected_xof_words(&params);
        let mut total = 0u64;
        let n = 20u64;
        for counter in 0..n {
            total += derive_material(&params, 0xC0575, counter).stats.words_drawn;
        }
        let measured = total as f64 / n as f64;
        let err = (measured - expected).abs() / expected;
        assert!(
            err < 0.30,
            "expected {expected:.0}, measured {measured:.0} ({err:.2})"
        );
    }

    #[test]
    fn binary_cipher_loses_the_xof_battle() {
        // Per plaintext bit, the binary cipher costs far more XOF cycles
        // than PASTA-4 (≈1,600 cc for 32×17 = 544 bits ≈ 2.9 cc/bit).
        let pasta4_cycles_per_bit = 1_591.0 / (32.0 * 17.0);
        let rasta = cycles_per_plaintext_bit(&RastaParams::toy_65());
        assert!(
            rasta > 10.0 * pasta4_cycles_per_bit,
            "binary: {rasta:.1} cc/bit vs PASTA-4 {pasta4_cycles_per_bit:.1}"
        );
        // And the full-size RASTA-219 is worse still per block (though
        // the wider state amortizes a little).
        let rasta219 = cycles_per_plaintext_bit(&RastaParams::rasta_219());
        assert!(rasta219 > 5.0 * pasta4_cycles_per_bit);
    }

    #[test]
    fn gate_counts_scale_linearly() {
        let (and65, xor65) = affine_row_gates(&RastaParams::toy_65());
        assert_eq!((and65, xor65), (65, 64));
        let (and219, _) = affine_row_gates(&RastaParams::rasta_219());
        assert_eq!(and219, 219);
    }
}
