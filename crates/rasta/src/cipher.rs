//! The RASTA-family binary cipher.
//!
//! RASTA [Dobraunig et al., CRYPTO 2018] is the binary ancestor of PASTA
//! (paper §I): a keyed permutation over `F_2^n` built from *fully random*
//! invertible affine layers (sampled per nonce/counter from an XOF) and
//! the χ S-box, with a key feed-forward:
//!
//! ```text
//! KS = K ⊕ (A_r ∘ χ ∘ A_{r-1} ∘ … ∘ χ ∘ A_0)(K)
//! ```
//!
//! The state width `n` is odd so χ is invertible. This implementation
//! follows the RASTA *structure*; the exact matrix-sampling procedure of
//! the original artifact is not pinned by the DATE paper, so we use the
//! straightforward rejection method (draw `n²` bits, test invertibility,
//! retry — acceptance ≈ 28.9%), which is also what makes the
//! binary-vs-integer XOF-cost comparison so stark: a RASTA affine layer
//! consumes ~3.5·n² XOF bits where PASTA's Eq. 1 needs only `n` field
//! elements.

use crate::f2::{BitMatrix, BitVec};
use pasta_keccak::{Shake128, XofReader};
use std::error::Error;
use std::fmt;

/// Errors from the binary cipher.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RastaError {
    /// Parameter validation failed.
    InvalidParams(String),
    /// Key length mismatch.
    InvalidKey {
        /// Expected bits.
        expected: usize,
        /// Supplied bits.
        found: usize,
    },
}

impl fmt::Display for RastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RastaError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            RastaError::InvalidKey { expected, found } => {
                write!(f, "invalid key: expected {expected} bits, found {found}")
            }
        }
    }
}

impl Error for RastaError {}

/// RASTA parameters: state width `n` (odd) and round count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RastaParams {
    n: usize,
    rounds: usize,
}

impl RastaParams {
    /// A scaled instance comparable to PASTA-4's 544-bit block at
    /// security-irrelevant size (`n = 65`, 5 rounds) — used for the
    /// hardware-cost comparison, not for security claims.
    #[must_use]
    pub fn toy_65() -> Self {
        RastaParams { n: 65, rounds: 5 }
    }

    /// The RASTA paper's smallest "agressive" shape (`n = 219`,
    /// 6 rounds).
    #[must_use]
    pub fn rasta_219() -> Self {
        RastaParams { n: 219, rounds: 6 }
    }

    /// Custom parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RastaError::InvalidParams`] unless `n` is odd and `≥ 5`
    /// (χ invertibility) and `rounds ≥ 1`.
    pub fn custom(n: usize, rounds: usize) -> Result<Self, RastaError> {
        if n.is_multiple_of(2) || n < 5 {
            return Err(RastaError::InvalidParams(format!(
                "state width {n} must be odd and >= 5 for invertible chi"
            )));
        }
        if rounds == 0 {
            return Err(RastaError::InvalidParams("rounds must be >= 1".into()));
        }
        Ok(RastaParams { n, rounds })
    }

    /// State width in bits.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Affine layers (`rounds + 1`).
    #[must_use]
    pub fn affine_layers(&self) -> usize {
        self.rounds + 1
    }
}

/// Statistics of one block's XOF consumption — the quantity that dooms
/// binary HHE ciphers in hardware (paper §I.A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RastaXofStats {
    /// 64-bit words drawn from SHAKE128.
    pub words_drawn: u64,
    /// Matrices rejected as singular.
    pub matrices_rejected: u64,
    /// Keccak permutations consumed.
    pub keccak_permutations: u64,
}

/// The public per-block material: `r + 1` random invertible matrices and
/// round constants.
#[derive(Debug, Clone)]
pub struct RastaMaterial {
    /// Affine matrices `A_0 … A_r`.
    pub matrices: Vec<BitMatrix>,
    /// Round constants.
    pub constants: Vec<BitVec>,
    /// XOF consumption statistics.
    pub stats: RastaXofStats,
}

/// Derives the block material from `(nonce, counter)` — public, exactly
/// as in PASTA's Fig. 2 split.
#[must_use]
pub fn derive_material(params: &RastaParams, nonce: u128, counter: u64) -> RastaMaterial {
    let mut xof = Shake128::new();
    xof.absorb(b"rasta");
    xof.absorb(&nonce.to_le_bytes());
    xof.absorb(&counter.to_le_bytes());
    let mut reader = xof.finalize();
    let mut stats = RastaXofStats::default();
    let n = params.n();
    let words_per_row = n.div_ceil(64);
    let mut matrices = Vec::with_capacity(params.affine_layers());
    let mut constants = Vec::with_capacity(params.affine_layers());
    for _ in 0..params.affine_layers() {
        // Rejection-sample an invertible matrix.
        let matrix = loop {
            let rows: Vec<BitVec> = (0..n)
                .map(|_| {
                    let words: Vec<u64> = (0..words_per_row)
                        .map(|_| next_word(&mut reader, &mut stats))
                        .collect();
                    BitVec::from_words(n, &words)
                })
                .collect();
            let m = BitMatrix::from_rows(rows);
            if m.is_invertible() {
                break m;
            }
            stats.matrices_rejected += 1;
        };
        matrices.push(matrix);
        let words: Vec<u64> = (0..words_per_row)
            .map(|_| next_word(&mut reader, &mut stats))
            .collect();
        constants.push(BitVec::from_words(n, &words));
    }
    stats.keccak_permutations = reader.permutations();
    RastaMaterial {
        matrices,
        constants,
        stats,
    }
}

fn next_word(reader: &mut XofReader, stats: &mut RastaXofStats) -> u64 {
    stats.words_drawn += 1;
    reader.next_u64()
}

/// The χ transformation: `y_i = x_i ⊕ (x_{i+1} ⊕ 1)·x_{i+2}` (indices
/// mod n) — invertible for odd `n` (Keccak's S-box).
#[must_use]
pub fn chi(x: &BitVec) -> BitVec {
    let n = x.len();
    let bits: Vec<bool> = (0..n)
        .map(|i| x.get(i) ^ (!x.get((i + 1) % n) & x.get((i + 2) % n)))
        .collect();
    BitVec::from_bits(&bits)
}

/// The RASTA keyed permutation: keystream block for `(key, material)`.
// audit: secret(key)
#[must_use]
pub fn keystream_block(key: &BitVec, material: &RastaMaterial) -> BitVec {
    let mut state = key.clone();
    let layers = material.matrices.len();
    for (i, (matrix, constant)) in material
        .matrices
        .iter()
        .zip(material.constants.iter())
        .enumerate()
    {
        state = matrix.mul_vec(&state);
        state.xor_assign(constant);
        if i + 1 < layers {
            state = chi(&state);
        }
    }
    // Feed-forward: KS = K ⊕ π(K).
    state.xor_assign(key);
    state
}

/// A RASTA cipher instance bound to a key.
#[derive(Clone)]
pub struct RastaCipher {
    params: RastaParams,
    // audit: secret
    key: BitVec,
}

impl fmt::Debug for RastaCipher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RastaCipher(n = {}, key redacted)", self.params.n())
    }
}

impl RastaCipher {
    /// Binds a key (as bits) to the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RastaError::InvalidKey`] on a length mismatch.
    pub fn new(params: RastaParams, key: BitVec) -> Result<Self, RastaError> {
        if key.len() != params.n() {
            return Err(RastaError::InvalidKey {
                expected: params.n(),
                found: key.len(),
            });
        }
        Ok(RastaCipher { params, key })
    }

    /// Derives a key from seed bytes via SHAKE256.
    #[must_use]
    pub fn from_seed(params: RastaParams, seed: &[u8]) -> Self {
        let mut xof = pasta_keccak::Shake256::new();
        xof.absorb(b"rasta-key");
        xof.absorb(seed);
        let mut reader = xof.finalize();
        // audit: secret
        let words: Vec<u64> = (0..params.n().div_ceil(64))
            .map(|_| reader.next_u64())
            .collect();
        RastaCipher {
            params,
            key: BitVec::from_words(params.n(), &words),
        }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &RastaParams {
        &self.params
    }

    /// Encrypts (= decrypts) one block by XOR with the keystream.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n`.
    #[must_use]
    pub fn apply_block(&self, nonce: u128, counter: u64, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.params.n(), "block width mismatch");
        let material = derive_material(&self.params, nonce, counter);
        let mut out = keystream_block(&self.key, &material);
        out.xor_assign(data);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(RastaParams::custom(64, 4).is_err(), "even n rejected");
        assert!(RastaParams::custom(3, 4).is_err(), "tiny n rejected");
        assert!(RastaParams::custom(65, 0).is_err(), "zero rounds rejected");
        assert!(RastaParams::custom(65, 5).is_ok());
    }

    #[test]
    fn chi_is_invertible_for_odd_n() {
        // Exhaustive bijection check for n = 5.
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for v in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            let y = chi(&BitVec::from_bits(&bits));
            let packed: u32 = (0..n).map(|i| u32::from(y.get(i)) << i).sum();
            assert!(seen.insert(packed), "chi collision at input {v}");
        }
        assert_eq!(seen.len(), 1 << n);
    }

    #[test]
    fn material_matrices_are_invertible() {
        let params = RastaParams::toy_65();
        let material = derive_material(&params, 7, 0);
        assert_eq!(material.matrices.len(), 6);
        for (i, m) in material.matrices.iter().enumerate() {
            assert!(m.is_invertible(), "matrix {i}");
        }
    }

    #[test]
    fn encryption_roundtrip() {
        let params = RastaParams::toy_65();
        let cipher = RastaCipher::from_seed(params, b"rt");
        let data = BitVec::from_bits(&(0..65).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let ct = cipher.apply_block(42, 0, &data);
        assert_ne!(ct, data);
        let back = cipher.apply_block(42, 0, &ct);
        assert_eq!(back, data);
    }

    #[test]
    fn keystream_depends_on_inputs() {
        let params = RastaParams::toy_65();
        let a = RastaCipher::from_seed(params, b"a");
        let b = RastaCipher::from_seed(params, b"b");
        let zero = BitVec::zeros(65);
        let base = a.apply_block(1, 0, &zero);
        assert_ne!(a.apply_block(2, 0, &zero), base, "nonce matters");
        assert_ne!(a.apply_block(1, 1, &zero), base, "counter matters");
        assert_ne!(b.apply_block(1, 0, &zero), base, "key matters");
    }

    #[test]
    fn xof_demand_is_enormous() {
        // The §I.A story quantified: a single toy-65 block needs tens of
        // Keccak permutations for its matrices alone (vs PASTA-4's ~60
        // for a 17x-wider payload).
        let params = RastaParams::toy_65();
        let material = derive_material(&params, 3, 0);
        // 6 layers x >= 65 rows x 2 words minimum.
        assert!(material.stats.words_drawn >= 6 * 65 * 2);
        assert!(material.stats.keccak_permutations > 30);
    }

    #[test]
    fn rejection_rate_near_theory() {
        // ~28.9% of random F2 matrices are invertible -> ~2.46 rejected
        // per accepted on average.
        let params = RastaParams::toy_65();
        let mut rejected = 0u64;
        let mut accepted = 0u64;
        for counter in 0..6 {
            let m = derive_material(&params, 9, counter);
            rejected += m.stats.matrices_rejected;
            accepted += m.matrices.len() as u64;
        }
        let ratio = rejected as f64 / accepted as f64;
        assert!((0.8..6.0).contains(&ratio), "rejected/accepted = {ratio}");
    }

    #[test]
    fn key_length_validated() {
        let params = RastaParams::toy_65();
        assert!(matches!(
            RastaCipher::new(params, BitVec::zeros(64)),
            Err(RastaError::InvalidKey {
                expected: 65,
                found: 64
            })
        ));
    }
}
