//! ASIC area and power model (paper §IV.A ❷/❸).
//!
//! Cadence Genus synthesis on TSMC 28nm and ASAP7 7nm is replaced by an
//! anchored scaling model:
//!
//! - PASTA-4, ω = 17 at 1 GHz: **0.24 mm²** (28nm) and **0.03 mm²** (7nm),
//!   maximum power **1.2 W**;
//! - doubling the bit width to 33/54 bits multiplies the area by ≈2.1×
//!   and ≈4.3× ("Bitlength Comparison");
//! - PASTA-3 consumes ≈3× the PASTA-4 area (§IV.B);
//! - the RISC-V SoC peripheral occupies **1.8 mm²** on 130nm
//!   (4.6 mm² including the Ibex core) at 100 MHz.

use pasta_core::params::{PastaParams, Variant};

/// A silicon technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// ASAP7 predictive 7nm.
    Asap7,
    /// TSMC 28nm.
    Tsmc28,
    /// 65nm (older node used for the SoC discussion).
    Node65,
    /// 130nm (the low-end SoC node).
    Node130,
}

impl TechNode {
    /// Anchor area in mm² for the PASTA-4 ω=17 accelerator on this node.
    #[must_use]
    pub fn base_area_mm2(&self) -> f64 {
        match self {
            // §IV.A ❷ anchors.
            TechNode::Asap7 => 0.03,
            TechNode::Tsmc28 => 0.24,
            // §IV.A ❸: the 130nm peripheral is 1.8 mm²; 65nm scaled by
            // the squared feature-size ratio.
            TechNode::Node130 => 1.8,
            TechNode::Node65 => 1.8 * (65.0 / 130.0) * (65.0 / 130.0),
        }
    }

    /// Nominal clock target on this node (§IV.A: 1 GHz for 28/7nm,
    /// 100 MHz for the low-power SoC nodes).
    #[must_use]
    pub fn clock_mhz(&self) -> f64 {
        match self {
            TechNode::Asap7 | TechNode::Tsmc28 => 1_000.0,
            TechNode::Node65 | TechNode::Node130 => 100.0,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TechNode::Asap7 => "7nm (ASAP7)",
            TechNode::Tsmc28 => "28nm (TSMC)",
            TechNode::Node65 => "65nm",
            TechNode::Node130 => "130nm",
        }
    }
}

/// Area scaling with modulus width: ≈1× at 17 bits, ≈2.1× at 33,
/// ≈4.3× at 54 (paper "Bitlength Comparison"), linearly interpolated.
#[must_use]
pub fn width_factor(omega: u32) -> f64 {
    let anchors = [(17u32, 1.0f64), (33, 2.1), (54, 4.3)];
    let x = f64::from(omega);
    if omega <= 17 {
        return x / 17.0;
    }
    for pair in anchors.windows(2) {
        let (x0, y0) = (f64::from(pair[0].0), pair[0].1);
        let (x1, y1) = (f64::from(pair[1].0), pair[1].1);
        if x <= x1 {
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
    }
    4.3 * x / 54.0
}

/// Variant area factor: PASTA-3 ≈ 3× PASTA-4 (§IV.B); custom variants
/// scale with `t` relative to PASTA-4's 32 lanes (the lane-parallel units
/// dominate).
#[must_use]
pub fn variant_factor(params: &PastaParams) -> f64 {
    match params.variant() {
        Variant::Pasta4 => 1.0,
        Variant::Pasta3 => 3.0,
        Variant::Custom => {
            // Lane-dominated scaling with a fixed Keccak/control floor.
            let lanes = params.t() as f64 / 32.0;
            0.25 + 0.75 * lanes
        }
    }
}

/// An ASIC estimate for a design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicEstimate {
    /// Technology node.
    pub node: TechNode,
    /// Core area in mm².
    pub area_mm2: f64,
    /// Maximum power in W at the node's nominal clock.
    pub power_w: f64,
    /// Nominal clock in MHz.
    pub clock_mhz: f64,
}

/// Maximum power anchor: 1.2 W for PASTA-4 ω=17 at 1 GHz on 28nm.
const POWER_ANCHOR_W: f64 = 1.2;

/// Estimates area and power for a parameter set on a node.
///
/// Power scales with area (switching capacitance) and clock frequency
/// relative to the 28nm anchor; the 7nm node gets a 0.35× capacitance
/// credit (typical 28→7nm dynamic-power scaling).
///
/// # Examples
///
/// ```
/// use pasta_core::PastaParams;
/// use pasta_hw::asic::{estimate_asic, TechNode};
/// let e = estimate_asic(&PastaParams::pasta4_17bit(), TechNode::Tsmc28);
/// assert!((e.area_mm2 - 0.24).abs() < 1e-9);
/// assert!((e.power_w - 1.2).abs() < 1e-9);
/// ```
#[must_use]
pub fn estimate_asic(params: &PastaParams, node: TechNode) -> AsicEstimate {
    let area =
        node.base_area_mm2() * width_factor(params.modulus().bits()) * variant_factor(params);
    let area_ratio = area / TechNode::Tsmc28.base_area_mm2();
    let freq_ratio = node.clock_mhz() / 1_000.0;
    let node_power_credit = match node {
        TechNode::Asap7 => {
            0.35 / (TechNode::Asap7.base_area_mm2() / TechNode::Tsmc28.base_area_mm2())
        }
        _ => 1.0,
    };
    AsicEstimate {
        node,
        area_mm2: area,
        power_w: POWER_ANCHOR_W * area_ratio * freq_ratio * node_power_credit,
        clock_mhz: node.clock_mhz(),
    }
}

/// SoC-level area on 130nm: peripheral + Ibex core (§IV.A ❸: "1.8 mm²
/// (4.6 mm² with Ibex core)").
#[must_use]
pub fn soc_area_mm2(params: &PastaParams) -> (f64, f64) {
    let peripheral = estimate_asic(params, TechNode::Node130).area_mm2;
    const IBEX_AND_UNCORE_MM2: f64 = 4.6 - 1.8;
    (peripheral, peripheral + IBEX_AND_UNCORE_MM2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::PastaParams;

    #[test]
    fn anchors_reproduced() {
        let p4 = PastaParams::pasta4_17bit();
        assert!((estimate_asic(&p4, TechNode::Tsmc28).area_mm2 - 0.24).abs() < 1e-12);
        assert!((estimate_asic(&p4, TechNode::Asap7).area_mm2 - 0.03).abs() < 1e-12);
        assert!((estimate_asic(&p4, TechNode::Node130).area_mm2 - 1.8).abs() < 1e-12);
        assert!((estimate_asic(&p4, TechNode::Tsmc28).power_w - 1.2).abs() < 1e-12);
    }

    #[test]
    fn width_scaling_matches_paper() {
        assert!((width_factor(17) - 1.0).abs() < 1e-12);
        assert!((width_factor(33) - 2.1).abs() < 1e-12);
        assert!((width_factor(54) - 4.3).abs() < 1e-12);
        let p33 = estimate_asic(&PastaParams::pasta4_33bit(), TechNode::Tsmc28);
        assert!((p33.area_mm2 - 0.24 * 2.1).abs() < 1e-9);
    }

    #[test]
    fn pasta3_is_3x() {
        let p3 = estimate_asic(&PastaParams::pasta3_17bit(), TechNode::Tsmc28);
        let p4 = estimate_asic(&PastaParams::pasta4_17bit(), TechNode::Tsmc28);
        assert!((p3.area_mm2 / p4.area_mm2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn soc_totals() {
        let (peripheral, total) = soc_area_mm2(&PastaParams::pasta4_17bit());
        assert!((peripheral - 1.8).abs() < 1e-9);
        assert!((total - 4.6).abs() < 1e-9);
    }

    #[test]
    fn power_stays_within_paper_envelope() {
        // "The maximum power consumed by the design is 1.2W" — no design
        // point at the paper's widths/variants should exceed it except
        // wider/bigger configurations.
        for params in [PastaParams::pasta4_17bit()] {
            for node in [
                TechNode::Asap7,
                TechNode::Tsmc28,
                TechNode::Node130,
                TechNode::Node65,
            ] {
                let e = estimate_asic(&params, node);
                assert!(e.power_w <= 1.2 + 1e-9, "{:?}: {} W", node, e.power_w);
            }
        }
    }

    #[test]
    fn custom_variant_scales_with_t() {
        use pasta_math::Modulus;
        let small = PastaParams::custom(16, 4, Modulus::PASTA_17_BIT).unwrap();
        let big = PastaParams::custom(64, 4, Modulus::PASTA_17_BIT).unwrap();
        let a_small = estimate_asic(&small, TechNode::Tsmc28).area_mm2;
        let a_big = estimate_asic(&big, TechNode::Tsmc28).area_mm2;
        assert!(a_small < 0.24 && a_big > 0.24);
    }

    #[test]
    fn node_65_between_28_and_130() {
        let p4 = PastaParams::pasta4_17bit();
        let a28 = estimate_asic(&p4, TechNode::Tsmc28).area_mm2;
        let a65 = estimate_asic(&p4, TechNode::Node65).area_mm2;
        let a130 = estimate_asic(&p4, TechNode::Node130).area_mm2;
        assert!(a28 < a65 && a65 < a130);
    }
}
