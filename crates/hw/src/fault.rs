//! Fault injection and countermeasure analysis.
//!
//! The paper's future scope (§VI) asks to "analyze the effect of adding
//! countermeasures against side-channel or fault analysis \[30\]" — \[30\]
//! being SASTA, which breaks HHE schemes with a *single* fault in the
//! final rounds. This module provides:
//!
//! - a fault injector over the block computation (targets: XOF-derived
//!   material, intermediate state, the truncated keystream), modelling
//!   transient datapath faults at the value level;
//! - countermeasures with cycle-cost models derived from the
//!   cycle-accurate simulator:
//!   - **full temporal redundancy** — compute the block twice and
//!     compare (≈2× latency, detects any single transient fault);
//!   - **material redundancy** — recompute only the XOF expansion and
//!     compare (the material is *public and deterministic*, so this
//!     needs no secrets; it covers DataGen faults at ≈1.97× latency for
//!     PASTA-4, since the XOF dominates the schedule);
//!   - **arithmetic redundancy** — duplicate only the MatGen/MatMul/
//!     vector datapath while streaming the XOF once (covers arithmetic
//!     faults at only ≈1.03× latency, because arithmetic hides under the
//!     XOF anyway — the interesting asymmetry this analysis surfaces).

use crate::processor::PastaProcessor;
use pasta_core::params::{PastaError, PastaParams};
use pasta_core::permutation::{derive_block_material, permute_with_trace, BlockMaterial};
use pasta_core::SecretKey;

/// Where a single transient fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A coefficient of a matrix seed row (DataGen output).
    MatrixSeed {
        /// Affine layer index.
        layer: usize,
        /// Left (`false` = right) half.
        left: bool,
        /// Coefficient index within the seed row.
        index: usize,
    },
    /// A coefficient of a round constant vector.
    RoundConstant {
        /// Affine layer index.
        layer: usize,
        /// Left (`false` = right) half.
        left: bool,
        /// Coefficient index.
        index: usize,
    },
    /// An element of the final keystream (output register fault).
    KeystreamElement {
        /// Element index within the block.
        index: usize,
    },
}

/// A single transient fault: XOR `mask` into the targeted value
/// (reduced back into the field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault location.
    pub target: FaultTarget,
    /// The XOR difference injected.
    pub mask: u64,
}

/// Applies a fault to the public block material (DataGen-side faults).
fn fault_material(params: &PastaParams, material: &mut BlockMaterial, fault: &FaultSpec) {
    let p = params.modulus().value();
    match fault.target {
        FaultTarget::MatrixSeed { layer, left, index } => {
            let layer = &mut material.layers[layer];
            let seed = if left {
                &mut layer.seed_left
            } else {
                &mut layer.seed_right
            };
            seed[index] = (seed[index] ^ fault.mask) % p;
            if index == 0 && seed[0] == 0 {
                seed[0] = 1; // keep the generator's invariant; still a fault
            }
        }
        FaultTarget::RoundConstant { layer, left, index } => {
            let layer = &mut material.layers[layer];
            let rc = if left {
                &mut layer.rc_left
            } else {
                &mut layer.rc_right
            };
            rc[index] = (rc[index] ^ fault.mask) % p;
        }
        FaultTarget::KeystreamElement { .. } => {}
    }
}

/// Computes the keystream of one block with a transient fault injected.
///
/// # Errors
///
/// Propagates [`PastaError`] for invalid keys.
///
/// # Panics
///
/// Panics if the fault indices are out of range for the parameter set.
pub fn faulty_keystream(
    params: &PastaParams,
    key: &SecretKey,
    nonce: u128,
    counter: u64,
    fault: &FaultSpec,
) -> Result<Vec<u64>, PastaError> {
    let mut material = derive_block_material(params, nonce, counter);
    fault_material(params, &mut material, fault);
    let mut ks = permute_with_trace(params, key.expose_elements(), &material)?.keystream;
    if let FaultTarget::KeystreamElement { index } = fault.target {
        let p = params.modulus().value();
        ks[index] = (ks[index] ^ fault.mask) % p;
    }
    Ok(ks)
}

/// A fault countermeasure with its detection scope and cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Countermeasure {
    /// No protection.
    None,
    /// Compute the whole block twice and compare the keystreams.
    FullTemporalRedundancy,
    /// Recompute the XOF expansion and compare the sampled material
    /// (public-data integrity; covers DataGen/sampler faults only).
    MaterialRedundancy,
    /// Duplicate the arithmetic datapath (MatGen/MatMul/vector units)
    /// against one shared XOF stream (covers arithmetic faults only).
    ArithmeticRedundancy,
}

impl Countermeasure {
    /// Whether the countermeasure detects a fault at `target` (transient,
    /// i.e. it does not recur identically in the redundant computation).
    #[must_use]
    pub fn detects(&self, target: &FaultTarget) -> bool {
        match self {
            Countermeasure::None => false,
            Countermeasure::FullTemporalRedundancy => true,
            Countermeasure::MaterialRedundancy => matches!(
                target,
                FaultTarget::MatrixSeed { .. } | FaultTarget::RoundConstant { .. }
            ),
            Countermeasure::ArithmeticRedundancy => {
                matches!(target, FaultTarget::KeystreamElement { .. })
            }
        }
    }

    /// Latency overhead factor, measured against the cycle-accurate
    /// simulator's unprotected block latency.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (none for valid keys).
    pub fn overhead_factor(
        &self,
        params: &PastaParams,
        key: &SecretKey,
    ) -> Result<f64, PastaError> {
        let proc = PastaProcessor::new(*params);
        let base = proc.keystream_block(key, 0xFA17, 0)?.cycles;
        let comparison_cycles = 3.0; // t-wide comparator, pipelined
        let total = base.total as f64;
        Ok(match self {
            Countermeasure::None => 1.0,
            // Re-run everything, then compare.
            Countermeasure::FullTemporalRedundancy => (2.0 * total + comparison_cycles) / total,
            // Re-run the XOF+sampling span only; arithmetic of the second
            // pass is not needed (material equality implies the inputs to
            // the arithmetic were correct).
            Countermeasure::MaterialRedundancy => {
                (total + base.xof_last_word as f64 + comparison_cycles) / total
            }
            // Second arithmetic datapath works in lockstep off the same
            // XOF stream: only the final comparison is added.
            Countermeasure::ArithmeticRedundancy => (total + comparison_cycles) / total,
        })
    }

    /// Area overhead factor, from the Fig. 7 module shares: duplicating a
    /// subset of modules costs their combined share again.
    #[must_use]
    pub fn area_factor(&self) -> f64 {
        // Fig. 7 FPGA shares (see pasta_hw::area::fpga_breakdown).
        let arithmetic = 0.333 + 0.162 + 0.095 + 0.048; // MatGen+Mul+Add+Mix
        let datagen = 0.174;
        match self {
            Countermeasure::None => 1.0,
            // Temporal redundancy reuses the same hardware.
            Countermeasure::FullTemporalRedundancy => 1.0,
            Countermeasure::MaterialRedundancy => 1.0 + datagen,
            Countermeasure::ArithmeticRedundancy => 1.0 + arithmetic,
        }
    }
}

/// Runs a protected block computation: returns the keystream if accepted,
/// or `None` if the countermeasure detected the (simulated) fault.
///
/// # Errors
///
/// Propagates [`PastaError`] for invalid keys.
pub fn protected_keystream(
    params: &PastaParams,
    key: &SecretKey,
    nonce: u128,
    counter: u64,
    fault: Option<&FaultSpec>,
    countermeasure: Countermeasure,
) -> Result<Option<Vec<u64>>, PastaError> {
    let clean = pasta_core::permute(params, key.expose_elements(), nonce, counter)?;
    let Some(fault) = fault else {
        return Ok(Some(clean)); // no fault: every countermeasure accepts
    };
    let faulted = faulty_keystream(params, key, nonce, counter, fault)?;
    if countermeasure.detects(&fault.target) {
        // The redundant computation (unfaulted — transient model)
        // disagrees, so the block is rejected.
        Ok(None)
    } else {
        Ok(Some(faulted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::permute;

    fn setup() -> (PastaParams, SecretKey) {
        let params = PastaParams::pasta4_17bit();
        (params, SecretKey::from_seed(&params, b"fault"))
    }

    #[test]
    fn faults_corrupt_the_keystream() {
        let (params, key) = setup();
        let clean = permute(&params, key.expose_elements(), 1, 0).unwrap();
        for target in [
            FaultTarget::MatrixSeed {
                layer: 0,
                left: true,
                index: 3,
            },
            FaultTarget::RoundConstant {
                layer: 2,
                left: false,
                index: 7,
            },
            FaultTarget::KeystreamElement { index: 5 },
        ] {
            let fault = FaultSpec { target, mask: 0x55 };
            let faulted = faulty_keystream(&params, &key, 1, 0, &fault).unwrap();
            assert_ne!(faulted, clean, "{target:?} must corrupt the keystream");
        }
    }

    #[test]
    fn matrix_seed_fault_diffuses_widely() {
        // A single seed fault perturbs the whole matrix (every row depends
        // on α), so almost all keystream elements change — the avalanche
        // SASTA exploits.
        let (params, key) = setup();
        let clean = permute(&params, key.expose_elements(), 2, 0).unwrap();
        let fault = FaultSpec {
            target: FaultTarget::MatrixSeed {
                layer: 0,
                left: true,
                index: 0,
            },
            mask: 2,
        };
        let faulted = faulty_keystream(&params, &key, 2, 0, &fault).unwrap();
        let differing = clean
            .iter()
            .zip(faulted.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(differing >= 30, "only {differing}/32 elements changed");
    }

    #[test]
    fn late_round_constant_fault_is_local_before_truncation() {
        // A fault in the FINAL affine layer's round constant changes
        // exactly one keystream element — the low-diffusion window SASTA
        // targets.
        let (params, key) = setup();
        let clean = permute(&params, key.expose_elements(), 3, 0).unwrap();
        let fault = FaultSpec {
            target: FaultTarget::RoundConstant {
                layer: 4,
                left: true,
                index: 9,
            },
            mask: 0xFF,
        };
        let faulted = faulty_keystream(&params, &key, 3, 0, &fault).unwrap();
        let differing: Vec<usize> = (0..32).filter(|&i| clean[i] != faulted[i]).collect();
        assert_eq!(differing, vec![9], "final-layer RC fault must stay local");
    }

    #[test]
    fn detection_coverage_matrix() {
        let targets = [
            FaultTarget::MatrixSeed {
                layer: 1,
                left: true,
                index: 2,
            },
            FaultTarget::RoundConstant {
                layer: 1,
                left: false,
                index: 2,
            },
            FaultTarget::KeystreamElement { index: 0 },
        ];
        for target in targets {
            assert!(!Countermeasure::None.detects(&target));
            assert!(Countermeasure::FullTemporalRedundancy.detects(&target));
        }
        assert!(Countermeasure::MaterialRedundancy.detects(&targets[0]));
        assert!(Countermeasure::MaterialRedundancy.detects(&targets[1]));
        assert!(!Countermeasure::MaterialRedundancy.detects(&targets[2]));
        assert!(!Countermeasure::ArithmeticRedundancy.detects(&targets[0]));
        assert!(Countermeasure::ArithmeticRedundancy.detects(&targets[2]));
    }

    #[test]
    fn protected_pipeline_accepts_clean_and_rejects_faulted() {
        let (params, key) = setup();
        let clean = permute(&params, key.expose_elements(), 4, 0).unwrap();
        // Clean run is accepted.
        let ok = protected_keystream(
            &params,
            &key,
            4,
            0,
            None,
            Countermeasure::FullTemporalRedundancy,
        )
        .unwrap();
        assert_eq!(ok, Some(clean.clone()));
        // Faulted run is rejected by a covering countermeasure…
        let fault = FaultSpec {
            target: FaultTarget::MatrixSeed {
                layer: 0,
                left: true,
                index: 1,
            },
            mask: 2,
        };
        let rejected = protected_keystream(
            &params,
            &key,
            4,
            0,
            Some(&fault),
            Countermeasure::MaterialRedundancy,
        )
        .unwrap();
        assert_eq!(rejected, None);
        // …but slips past a non-covering one.
        let slipped = protected_keystream(
            &params,
            &key,
            4,
            0,
            Some(&fault),
            Countermeasure::ArithmeticRedundancy,
        )
        .unwrap();
        assert!(slipped.is_some());
        assert_ne!(slipped.unwrap(), clean);
    }

    #[test]
    fn overhead_asymmetry() {
        // The XOF dominates the schedule, so protecting the arithmetic is
        // nearly free while protecting the material nearly doubles time.
        let (params, key) = setup();
        let full = Countermeasure::FullTemporalRedundancy
            .overhead_factor(&params, &key)
            .unwrap();
        let material = Countermeasure::MaterialRedundancy
            .overhead_factor(&params, &key)
            .unwrap();
        let arith = Countermeasure::ArithmeticRedundancy
            .overhead_factor(&params, &key)
            .unwrap();
        assert!((full - 2.0).abs() < 0.01, "full redundancy {full}");
        assert!(
            material > 1.9 && material < 2.0,
            "material redundancy {material}"
        );
        assert!(arith < 1.01, "arithmetic redundancy {arith}");
        assert_eq!(
            Countermeasure::None.overhead_factor(&params, &key).unwrap(),
            1.0
        );
    }

    #[test]
    fn area_overheads_from_fig7() {
        assert_eq!(Countermeasure::None.area_factor(), 1.0);
        assert_eq!(Countermeasure::FullTemporalRedundancy.area_factor(), 1.0);
        assert!((Countermeasure::MaterialRedundancy.area_factor() - 1.174).abs() < 1e-9);
        assert!((Countermeasure::ArithmeticRedundancy.area_factor() - 1.638).abs() < 1e-9);
    }
}
