//! Energy model (paper §IV.A ❷ and §IV.C ❶).
//!
//! The paper reports a 1.2 W maximum for the 28nm ASIC at 1 GHz and
//! argues the FPGA design "delivers similar performance while running
//! … at almost 2–3× lower clock frequency, thus lowering the overall
//! energy consumption". This module turns those statements into an
//! activity-scaled energy-per-element metric so the trade-offs can be
//! ranked quantitatively.

use crate::asic::{estimate_asic, TechNode};
use crate::perf::{cycles_to_micros, Platform};
use pasta_core::params::PastaParams;

/// Average-to-peak power activity factor: the XOF squeezes keep most of
/// the datapath toggling, but the multiplier arrays idle >55% of the
/// block (see `CycleBreakdown::affine_utilization`), giving ≈0.7.
pub const ACTIVITY_FACTOR: f64 = 0.7;

/// Estimated FPGA power at 75 MHz (W): Artix-7 static ≈ 0.12 W plus
/// dynamic scaled from the 28nm anchor by clock ratio and an FPGA
/// overhead factor (LUT fabric toggles ≈8× the energy of standard cells
/// at comparable nodes).
#[must_use]
pub fn fpga_power_w(params: &PastaParams) -> f64 {
    let asic_28nm = estimate_asic(params, TechNode::Tsmc28);
    let clock_ratio = 75.0 / 1_000.0;
    const FPGA_OVERHEAD: f64 = 8.0;
    const STATIC_W: f64 = 0.12;
    STATIC_W + asic_28nm.power_w * clock_ratio * FPGA_OVERHEAD
}

/// Power draw for a platform (W).
#[must_use]
pub fn platform_power_w(params: &PastaParams, platform: Platform) -> f64 {
    match platform {
        Platform::Fpga => fpga_power_w(params),
        Platform::Asic => estimate_asic(params, TechNode::Tsmc28).power_w,
        Platform::RiscVSoc => estimate_asic(params, TechNode::Node130).power_w,
    }
}

/// Energy to encrypt one block (µJ) at measured `cycles`.
#[must_use]
pub fn energy_per_block_uj(params: &PastaParams, platform: Platform, cycles: f64) -> f64 {
    let seconds = cycles_to_micros(cycles, platform) * 1e-6;
    platform_power_w(params, platform) * ACTIVITY_FACTOR * seconds * 1e6
}

/// Energy per encrypted element (nJ).
#[must_use]
pub fn energy_per_element_nj(params: &PastaParams, platform: Platform, cycles: f64) -> f64 {
    energy_per_block_uj(params, platform, cycles) / params.t() as f64 * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::measure_row;

    #[test]
    fn power_anchors() {
        let p4 = PastaParams::pasta4_17bit();
        assert!((platform_power_w(&p4, Platform::Asic) - 1.2).abs() < 1e-9);
        let fpga = platform_power_w(&p4, Platform::Fpga);
        assert!(fpga > 0.3 && fpga < 2.0, "FPGA power {fpga} W");
        let soc = platform_power_w(&p4, Platform::RiscVSoc);
        assert!(
            soc < 1.2,
            "the low-power SoC node must stay under the ASIC peak"
        );
    }

    #[test]
    fn energy_rankings() {
        // The 1 GHz ASIC wins energy/element despite its higher power:
        // latency shrinks faster than power grows.
        let p4 = PastaParams::pasta4_17bit();
        let row = measure_row(&p4, 8).unwrap();
        let asic = energy_per_element_nj(&p4, Platform::Asic, row.cycles);
        let fpga = energy_per_element_nj(&p4, Platform::Fpga, row.cycles);
        let soc = energy_per_element_nj(&p4, Platform::RiscVSoc, row.cycles);
        assert!(asic < fpga, "ASIC {asic:.1} nJ vs FPGA {fpga:.1} nJ");
        assert!(soc < fpga, "SoC {soc:.1} nJ vs FPGA {fpga:.1} nJ");
        // Sanity of magnitudes: tens of nJ per element on ASIC.
        assert!(
            asic > 1.0 && asic < 200.0,
            "ASIC energy {asic:.1} nJ/element"
        );
    }

    #[test]
    fn pasta4_more_energy_efficient_per_block_than_pasta3() {
        // PASTA-3's 3x area (≈3x power) and ~3.2x cycles dominate its 4x
        // payload: PASTA-4 wins energy per element on ASIC.
        let p3 = PastaParams::pasta3_17bit();
        let p4 = PastaParams::pasta4_17bit();
        let r3 = measure_row(&p3, 8).unwrap();
        let r4 = measure_row(&p4, 8).unwrap();
        let e3 = energy_per_element_nj(&p3, Platform::Asic, r3.cycles);
        let e4 = energy_per_element_nj(&p4, Platform::Asic, r4.cycles);
        assert!(e4 < e3, "PASTA-4 {e4:.1} vs PASTA-3 {e3:.1} nJ/element");
    }
}
